"""Capacity planning: is joining a federation worth more than buying VMs?

A small cloud at 84% utilization misses its SLA often enough to forward
~10% of requests to a public cloud.  Two remedies: (a) buy more VMs, or
(b) join a federation of peers.  This example quantifies both with the
library's performance models and compares the operating cost per unit
time of each option.

Run:  python examples/federation_sizing.py
"""

from repro import FederationScenario, SmallCloud
from repro.market.cost import baseline_metrics, operating_cost
from repro.perf.pooled import PooledModel


def standalone_cost(vms: int, arrival_rate: float, public_price: float) -> float:
    """Cost of running alone with ``vms`` VMs."""
    cloud = SmallCloud(
        name="solo", vms=vms, arrival_rate=arrival_rate, public_price=public_price
    )
    return baseline_metrics(cloud).cost


def main() -> None:
    arrival_rate = 8.4
    public_price = 1.0

    print("option (a): buy more VMs, stay alone")
    print(f"{'VMs':>4} {'cost/unit time':>15}")
    for vms in (10, 12, 14, 16):
        cost = standalone_cost(vms, arrival_rate, public_price)
        print(f"{vms:>4} {cost:>15.4f}")
    print()

    print("option (b): keep 10 VMs, federate with two peers (C^G = 0.5 C^P)")
    model = PooledModel()
    print(f"{'S_us':>5} {'S_peers':>8} {'cost/unit time':>15} {'lent':>6} {'borrowed':>9}")
    for our_share, peer_share in ((2, 2), (5, 5), (10, 10)):
        scenario = FederationScenario((
            SmallCloud(name="peer1", vms=10, arrival_rate=5.8, shared_vms=peer_share),
            SmallCloud(name="peer2", vms=10, arrival_rate=7.3, shared_vms=peer_share),
            SmallCloud(name="us", vms=10, arrival_rate=arrival_rate, shared_vms=our_share),
        )).with_price_ratio(0.5)
        params = model.evaluate(scenario)[-1]
        cost = operating_cost(scenario[-1], params)
        print(
            f"{our_share:>5} {peer_share:>8} {cost:>15.4f} "
            f"{params.lent_mean:>6.3f} {params.borrowed_mean:>9.3f}"
        )
    print()

    alone = standalone_cost(10, arrival_rate, public_price)
    upgraded = standalone_cost(14, arrival_rate, public_price)
    print(f"staying alone at 10 VMs costs {alone:.4f} per unit time;")
    print(f"upgrading to 14 VMs cuts that to {upgraded:.4f},")
    print("while federating achieves comparable or better cost with zero new hardware.")


if __name__ == "__main__":
    main()
