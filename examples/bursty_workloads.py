"""Sect. VII extension: how bursty demand changes the value of federating.

The paper's base model assumes Poisson arrivals and exponential service;
Sect. VII sketches Markov-modulated arrivals and phase-type service as
extensions.  Both are implemented in this library and plug straight into
the simulator.  This example measures how federation value (the cut in
public-cloud forwarding) grows as demand gets burstier — bursty SCs
rarely peak at the same instant, which is exactly when sharing helps.

Run:  python examples/bursty_workloads.py     (~1 minute)
"""

import numpy as np

from repro import FederationScenario, SmallCloud
from repro.sim.federation import FederationSimulator
from repro.workload.arrivals import MMPPProcess
from repro.workload.phase_type import fit_two_moment


def make_mmpp(mean_rate: float, burst_factor: float, seed: int) -> MMPPProcess:
    """Two-phase MMPP with the given mean rate; higher factor = burstier."""
    low = mean_rate / burst_factor
    high = mean_rate * (2.0 - 1.0 / burst_factor)
    return MMPPProcess(
        rates=[low, high],
        generator=[[-0.05, 0.05], [0.05, -0.05]],
        rng=np.random.default_rng(seed),
    )


def total_forwarding(scenario, arrival_processes=None, service=None, seed=0):
    simulator = FederationSimulator(
        scenario,
        seed=seed,
        arrival_processes=arrival_processes,
        service_distributions=service,
    )
    metrics = simulator.run(horizon=40_000.0, warmup=2_000.0)
    return sum(m.forward_rate for m in metrics)


def main() -> None:
    rates = (7.0, 8.0)
    isolated = FederationScenario((
        SmallCloud(name="a", vms=10, arrival_rate=rates[0]),
        SmallCloud(name="b", vms=10, arrival_rate=rates[1]),
    ))
    federated = isolated.with_sharing((5, 5))

    print("arrival burstiness vs federation value (forwarded req/s)")
    print(f"{'burst factor':>13} {'isolated':>9} {'federated':>10} {'saved':>7}")
    for factor in (1.0, 2.0, 4.0):
        if factor == 1.0:
            processes_iso = processes_fed = None  # plain Poisson
        else:
            processes_iso = [
                make_mmpp(rates[0], factor, 1), make_mmpp(rates[1], factor, 2)
            ]
            processes_fed = [
                make_mmpp(rates[0], factor, 1), make_mmpp(rates[1], factor, 2)
            ]
        alone = total_forwarding(isolated, processes_iso, seed=3)
        together = total_forwarding(federated, processes_fed, seed=3)
        print(f"{factor:>13.1f} {alone:>9.3f} {together:>10.3f} {alone - together:>7.3f}")

    print()
    print("service variability (SCV) vs federation value, Poisson arrivals")
    print(f"{'SCV':>5} {'isolated':>9} {'federated':>10} {'saved':>7}")
    for scv in (0.25, 1.0, 4.0):
        dist = fit_two_moment(mean=1.0, scv=scv)
        alone = total_forwarding(isolated, service=[dist, dist], seed=4)
        together = total_forwarding(federated, service=[dist, dist], seed=4)
        print(f"{scv:>5.2f} {alone:>9.3f} {together:>10.3f} {alone - together:>7.3f}")

    print()
    print(
        "burstier demand forwards more in isolation and gains more from\n"
        "the federation - the paper's motivation, quantified beyond its\n"
        "exponential base model."
    )


if __name__ == "__main__":
    main()
