"""Price setting for a federation operator (the paper's Fig. 7 question).

A federation operator must pick the internal VM price (as a fraction of
the public-cloud price).  Too low and lenders have little to gain; too
high and borrowers might as well use the public cloud.  This example
sweeps the ratio C^G/C^P and reports, for each fairness objective the
operator might hold, which price region maximizes federation efficiency —
reproducing the paper's three-regions conclusion.

Run:  python examples/price_setting.py        (a few minutes)
"""

from repro.bench import fig7
from repro.market.pricing import price_ratio_grid


def main() -> None:
    ratios = price_ratio_grid(points=6)  # 0.2, 0.4, ..., 1.0
    rows = fig7.run_fig7(loads="spread", gamma=0.0, ratios=ratios, strategy_step=2)

    print(fig7.render(rows))
    print()

    for objective in fig7.ALPHAS:
        best = max(rows, key=lambda r: r.efficiency[objective])
        print(
            f"best price for {objective:<13} fairness: "
            f"C^G/C^P = {best.price_ratio:.1f} "
            f"(efficiency {best.efficiency[objective]:.2%}, "
            f"equilibrium {best.equilibrium})"
        )

    broken = [r for r in rows if not r.federation_formed]
    if broken:
        print(
            "\nfederation fails to form at ratios "
            f"{[r.price_ratio for r in broken]} - the paper's warning about "
            "pricing shared VMs at public-cloud level."
        )


if __name__ == "__main__":
    main()
