"""Model validation walkthrough: exact chain vs approximation vs simulation.

Reproduces the paper's Sect. V-A methodology on a 2-SC federation small
enough for the *exact* detailed CTMC: all four estimators of the library
compute the same performance parameters and this script prints them side
by side with relative errors, so you can see where each approximation
stands before trusting it in a market run.

Run:  python examples/validate_models.py      (~2 minutes)
"""

from repro import FederationScenario, SmallCloud
from repro.perf import ApproximateModel, DetailedModel, PooledModel, SimulationModel


def main() -> None:
    scenario = FederationScenario((
        SmallCloud(name="lo", vms=10, arrival_rate=7.0, shared_vms=5),
        SmallCloud(name="hi", vms=10, arrival_rate=8.0, shared_vms=3),
    ))

    models = {
        "detailed (exact)": DetailedModel(),
        "approximate": ApproximateModel(),
        "pooled": PooledModel(),
        "simulation": SimulationModel(horizon=100_000.0, warmup=5_000.0, seed=7),
    }

    results = {name: model.evaluate(scenario) for name, model in models.items()}
    exact = results["detailed (exact)"]

    for i, cloud in enumerate(scenario):
        print(f"--- SC {cloud.name} (lambda={cloud.arrival_rate}, S={cloud.shared_vms})")
        header = f"{'model':<18} {'Ibar':>8} {'Obar':>8} {'Pbar':>8} {'rho':>7} {'err(O-I)':>9}"
        print(header)
        print("-" * len(header))
        for name, params in results.items():
            p = params[i]
            truth = exact[i].net_borrowed
            err = abs(p.net_borrowed - truth) / max(abs(truth), 0.05)
            print(
                f"{name:<18} {p.lent_mean:>8.4f} {p.borrowed_mean:>8.4f} "
                f"{p.forward_rate:>8.4f} {p.utilization:>7.4f} {err:>9.2%}"
            )
        print()

    print(
        "the approximate model tracks the exact chain within the paper's\n"
        "claimed error bands while solving orders of magnitude faster;\n"
        "the pooled model is rougher still but evaluates in milliseconds."
    )


if __name__ == "__main__":
    main()
