"""Quickstart: should three small clouds federate, and at what price?

Three small clouds with different loads consider pooling spare VMs
instead of buying overflow capacity from a public cloud.  This example
runs the full SC-Share loop (performance model -> cost -> utility ->
repeated game -> equilibrium) at one price setting and prints each SC's
position.

Run:  python examples/quickstart.py
"""

from repro import FederationScenario, SCShare, SmallCloud


def main() -> None:
    # Each SC: N VMs, Poisson demand (lambda), exponential service
    # (mu = 1), an SLA bound Q on waiting time, and a public-cloud price.
    scenario = FederationScenario((
        SmallCloud(name="boutique", vms=10, arrival_rate=5.8, sla_bound=0.2),
        SmallCloud(name="campus", vms=10, arrival_rate=7.3, sla_bound=0.2),
        SmallCloud(name="startup", vms=10, arrival_rate=8.4, sla_bound=0.2),
    )).with_price_ratio(0.5)  # federation VMs cost half the public cloud

    runner = SCShare(scenario, gamma=0.0)  # gamma=0: pure cost reduction (UF0)
    outcome = runner.run(alpha=0.0)  # utilitarian welfare scoring

    print(f"equilibrium sharing vector: {outcome.equilibrium}")
    print(f"game rounds to converge:    {outcome.game.iterations}")
    print(f"federation efficiency:      {outcome.efficiency:.2%}")
    print()
    header = f"{'SC':<10} {'S_i':>4} {'cost':>8} {'baseline':>9} {'saving':>8} {'utility':>9}"
    print(header)
    print("-" * len(header))
    for row in outcome.details:
        print(
            f"{row.name:<10} {row.shared_vms:>4} {row.cost:>8.4f} "
            f"{row.baseline_cost:>9.4f} {row.cost_reduction:>8.4f} "
            f"{row.utility:>9.4f}"
        )
    print()
    savers = [r.name for r in outcome.details if r.cost_reduction > 0]
    if savers:
        print(f"every SC in {savers} pays less inside the federation than alone.")
    else:
        print("at this price nobody profits - the federation would not form.")


if __name__ == "__main__":
    main()
