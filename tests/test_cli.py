"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import build_parser, main
from repro.core.serialization import save_scenario
from repro.core.small_cloud import FederationScenario, SmallCloud


@pytest.fixture
def scenario_file(tmp_path):
    scenario = FederationScenario((
        SmallCloud(name="a", vms=5, arrival_rate=2.9, federation_price=0.5),
        SmallCloud(name="b", vms=5, arrival_rate=4.2, federation_price=0.5),
    ))
    path = tmp_path / "scenario.json"
    save_scenario(scenario, path)
    return str(path)


class TestParser:
    def test_commands_registered(self):
        parser = build_parser()
        for command in ("solve", "sweep", "simulate"):
            args = parser.parse_args([command, "file.json"])
            assert args.command == command

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve", "f.json", "--model", "oracle"])


class TestSimulateCommand:
    def test_prints_metrics_json(self, scenario_file, capsys):
        code = main(["simulate", scenario_file, "--horizon", "2000", "--seed", "3"])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert [entry["name"] for entry in data] == ["a", "b"]
        for entry in data:
            assert 0.0 <= entry["utilization"] <= 1.0


class TestSolveCommand:
    def test_solves_and_prints_outcome(self, scenario_file, capsys):
        code = main([
            "solve", scenario_file, "--strategy-step", "2", "--price-ratio", "0.5",
        ])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert len(data["equilibrium"]) == 2
        assert data["converged"] is True
        assert 0.0 <= data["efficiency"] <= 1.0


class TestSweepCommand:
    def test_recommends_regions(self, scenario_file, capsys):
        code = main([
            "sweep", scenario_file, "--points", "3", "--strategy-step", "5",
        ])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        objectives = {r["objective"] for r in data["regions"]}
        assert objectives == {"utilitarian", "proportional", "max-min"}
        for region in data["regions"]:
            low, high = region["range"]
            assert low <= region["best_ratio"] <= high
