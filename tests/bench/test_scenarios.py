"""Tests for the canonical paper scenarios."""

import pytest

from repro.bench.scenarios import (
    FIG7_LOADS,
    fig5_configurations,
    fig6_2sc_scenario,
    fig6_10sc_scenario,
    fig6_100vm_scenario,
    fig7_scenario,
    fig8_game_scenario,
    fig8_perf_scenario,
)


class TestFig5:
    def test_four_curves(self):
        configs = fig5_configurations()
        assert len(configs) == 4
        assert {c.vms for c in configs} == {10, 100}
        assert {c.sla_bound for c in configs} == {0.2, 0.5}


class TestFig6:
    def test_2sc_matches_paper(self):
        scenario = fig6_2sc_scenario(target_share=9, target_rate=6.0)
        assert len(scenario) == 2
        fixed, target = scenario
        assert fixed.arrival_rate == 7.0
        assert fixed.shared_vms == 5
        assert target.shared_vms == 9
        assert target.name == "target"

    def test_10sc_matches_paper(self):
        scenario = fig6_10sc_scenario(target_share=5, target_rate=7.0)
        assert len(scenario) == 10
        shares = [c.shared_vms for c in scenario][:9]
        rates = [c.arrival_rate for c in scenario][:9]
        assert shares == [3, 3, 3, 2, 2, 2, 1, 1, 1]
        assert rates == [7.0, 7.0, 7.0, 8.0, 8.0, 8.0, 9.0, 9.0, 9.0]
        assert scenario.shared_by_others(9) == 18

    def test_100vm_matches_paper(self):
        scenario = fig6_100vm_scenario(other_rate=80.0, target_rate=70.0)
        assert all(c.vms == 100 for c in scenario)
        assert all(c.shared_vms == 10 for c in scenario)


class TestFig7:
    @pytest.mark.parametrize("key", sorted(FIG7_LOADS))
    def test_load_mixes(self, key):
        scenario = fig7_scenario(key)
        assert len(scenario) == 3
        assert all(c.vms == 10 for c in scenario)
        rates = tuple(c.arrival_rate for c in scenario)
        assert rates == FIG7_LOADS[key]

    def test_spread_is_the_paper_default(self):
        rates = tuple(c.arrival_rate for c in fig7_scenario())
        assert rates == (5.8, 7.3, 8.4)

    def test_unknown_mix_rejected(self):
        with pytest.raises(KeyError):
            fig7_scenario("bogus")


class TestFig8:
    def test_perf_scenario_sizes(self):
        scenario = fig8_perf_scenario(6)
        assert len(scenario) == 6
        assert all(c.shared_vms == 2 for c in scenario)

    def test_game_scenario_loads_staggered(self):
        scenario = fig8_game_scenario(4, vms=20)
        rates = [c.arrival_rate for c in scenario]
        assert rates == sorted(rates)
        assert rates[0] == pytest.approx(0.55 * 20)
        assert rates[-1] == pytest.approx(0.90 * 20)

    def test_game_scenario_paper_scale(self):
        scenario = fig8_game_scenario(2, vms=100)
        assert all(c.vms == 100 for c in scenario)
