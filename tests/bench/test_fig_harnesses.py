"""Smoke tests for the figure harnesses (tiny grids, no simulation)."""

import pytest

from repro.bench import fig5, fig7, fig8

pytestmark = pytest.mark.slow


class TestFig5Harness:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig5.run_fig5(utilizations=(0.6, 0.9), with_simulation=False)

    def test_row_count(self, rows):
        assert len(rows) == 4 * 2  # four configs x two utilizations

    def test_shape_checks_pass(self, rows):
        assert fig5.check_shape(rows) == []

    def test_render_contains_all_configs(self, rows):
        text = fig5.render(rows)
        for label in ("N=10, Q=0.2", "N=100, Q=0.5"):
            assert label in text

    def test_relative_error_nan_handling(self, rows):
        # Without simulation the error is NaN-ish; accessing it must not
        # raise for near-zero simulated values.
        for row in rows:
            _ = row.utilization


class TestFig7Harness:
    @pytest.fixture(scope="class")
    def rows(self):
        # Two price points, coarse strategy grid: minutes -> seconds.
        return fig7.run_fig7(
            loads="spread", gamma=0.0, ratios=[0.3, 0.7], strategy_step=5
        )

    def test_rows_cover_ratios(self, rows):
        assert [r.price_ratio for r in rows] == [0.3, 0.7]

    def test_efficiency_bounded(self, rows):
        for row in rows:
            for value in row.efficiency.values():
                assert 0.0 <= value <= 1.0

    def test_all_alphas_present(self, rows):
        for row in rows:
            assert set(row.efficiency) == set(fig7.ALPHAS)

    def test_render(self, rows):
        text = fig7.render(rows)
        assert "utilitarian" in text and "max-min" in text


class TestFig8Harness:
    def test_fig8a_small(self):
        rows = fig8.run_fig8a(sizes=(2, 3))
        assert [r.n_clouds for r in rows] == [2, 3]
        assert all(r.seconds > 0 for r in rows)
        assert rows[0].states <= rows[1].states
        assert "Fig. 8a" in fig8.render_8a(rows)

    def test_fig8b_small(self):
        rows = fig8.run_fig8b(sizes=(2,), tabu_distances=(2,), vms=10)
        assert len(rows) == 1
        assert rows[0].converged
        assert "Fig. 8b" in fig8.render_8b(rows)
