"""Tests for the standalone benchmark runner CLI."""

import pytest

from repro.bench import runner

pytestmark = pytest.mark.slow


class TestRunnerCli:
    def test_figures_registered(self):
        assert set(runner.FIGURES) == {"fig5", "fig6", "fig7", "fig8"}

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            runner.main(["fig99"])

    def test_fig5_quick_runs(self, capsys):
        assert runner.main(["fig5", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 5" in out
        assert "SHAPE VIOLATIONS" not in out

    def test_fig8_quick_runs(self, capsys):
        assert runner.main(["fig8", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 8a" in out
        assert "Fig. 8b" in out
