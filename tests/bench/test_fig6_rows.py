"""Tests for Fig. 6 row error metrics (pure logic, no model runs)."""

import pytest

from repro.bench.fig6 import Fig6Row, _relative_error
from repro.perf.params import PerformanceParams


def params(lent, borrowed, forward=0.0, rho=0.5):
    return PerformanceParams(
        lent_mean=lent, borrowed_mean=borrowed, forward_rate=forward, utilization=rho
    )


def row(approx, exact):
    return Fig6Row(
        panel="test", target_share=1, target_rate=7.0, approx=approx, exact=exact
    )


class TestRelativeError:
    def test_plain_relative_error(self):
        assert _relative_error(1.1, 1.0) == pytest.approx(0.1)

    def test_floor_guards_small_truths(self):
        # Near-zero truths use the 0.05 floor instead of exploding.
        assert _relative_error(0.01, 0.001) == pytest.approx(0.009 / 0.05)

    def test_exact_match_is_zero(self):
        assert _relative_error(2.5, 2.5) == 0.0


class TestFig6Row:
    def test_error_properties(self):
        r = row(params(0.9, 2.1), params(1.0, 2.0))
        assert r.lent_error == pytest.approx(0.1)
        assert r.borrowed_error == pytest.approx(0.05)
        # net: approx 1.2, exact 1.0, normalized by traffic I+O = 3.0.
        assert r.net_error == pytest.approx(0.2 / 3.0)

    def test_net_error_uses_difference_not_components(self):
        # Biases in I and O can cancel in O - I (the paper's point about
        # the cost-relevant difference staying accurate).
        r = row(params(0.8, 1.8), params(1.0, 2.0))
        assert r.lent_error == pytest.approx(0.2)
        assert r.net_error == pytest.approx(0.0)
