"""The microbenchmark harness must run, report, and compare correctly."""

from __future__ import annotations

import json

from repro.bench import micro


class TestProbes:
    def test_assembly_probe_reports_identity(self):
        result = micro.bench_assembly(quick=True, reference=False)
        assert result["generators_identical"] is True
        assert result["vectorized_seconds"] > 0.0
        assert result["reference_seconds"] > 0.0
        assert result["seconds"] == result["vectorized_seconds"]

    def test_assembly_probe_reference_headline(self):
        result = micro.bench_assembly(quick=True, reference=True)
        assert result["seconds"] == result["reference_seconds"]

    def test_fig6_probe_quick(self):
        result = micro.bench_fig6(quick=True, reference=False)
        assert result["scenario"] == "fig6_2sc"
        assert result["evaluate_seconds"] > 0.0
        assert result["level_cache"]["misses"] > 0

    def test_sim_fifo_probe_quick(self):
        result = micro.bench_sim_fifo(quick=True, reference=False)
        assert result["scenario"] == "deep_backlog_2sc"
        assert result["sim_seconds"] > 0.0
        assert result["jobs_forwarded"] > 0  # the backlog actually forwards
        assert result["list_pop0_seconds"] > 0.0
        assert result["deque_popleft_seconds"] > 0.0
        # The replay isolates the O(n)-vs-O(1) mechanism; at depth 512+
        # the deque must not lose to list.pop(0).
        assert result["replay_speedup"] > 1.0
        assert result["seconds"] == result["sim_seconds"]

    def test_neighbor_vectors_distinct_and_sized(self):
        vectors = micro._neighbor_vectors((5, 5, 5), 20)
        assert len(vectors) == 20
        assert len(set(vectors)) == 20
        assert vectors[0] == (5, 5, 5)
        for vector in vectors:
            assert all(0 <= v <= 10 for v in vector)


class TestCli:
    def test_run_and_compare(self, tmp_path, capsys):
        baseline = {
            "schema": micro.SCHEMA_VERSION,
            "results": {"assembly": {"seconds": 1e9}},
        }
        baseline_path = tmp_path / "BENCH_baseline.json"
        baseline_path.write_text(json.dumps(baseline))
        code = micro.main(
            [
                "--quick",
                "--only",
                "assembly",
                "--output",
                str(tmp_path),
                "--compare",
                str(baseline_path),
            ]
        )
        assert code == 0
        report = json.loads((tmp_path / "BENCH_micro.json").read_text())
        assert report["quick"] is True
        assert "assembly" in report["results"]
        out = capsys.readouterr().out
        assert "faster" in out  # 1e9s baseline: anything looks faster

    def test_compare_is_non_blocking_on_missing_baseline(self, tmp_path):
        code = micro.main(
            ["--quick", "--only", "assembly", "--compare", str(tmp_path / "nope.json")]
        )
        assert code == 0

    def test_compare_handles_missing_entries(self):
        report = {"results": {"assembly": {"seconds": 1.0}}}
        lines = micro.compare(report, {"results": {}})
        assert lines == ["assembly: no baseline entry"]
