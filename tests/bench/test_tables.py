"""Tests for the benchmark table renderer."""

from repro.bench.tables import render_series, render_table


class TestRenderTable:
    def test_alignment_and_title(self):
        text = render_table(
            ["name", "value"],
            [("alpha", 1.23456), ("b", 7)],
            title="My Table",
        )
        lines = text.splitlines()
        assert lines[0] == "My Table"
        assert "name" in lines[1] and "value" in lines[1]
        assert "alpha" in lines[3]
        assert "1.2346" in lines[3]  # default float format
        assert "7" in lines[4]

    def test_no_title(self):
        text = render_table(["a"], [(1,)])
        assert text.splitlines()[0].startswith("a")

    def test_custom_float_format(self):
        text = render_table(["x"], [(0.123456,)], float_format="{:.1f}")
        assert "0.1" in text
        assert "0.12" not in text

    def test_empty_rows(self):
        text = render_table(["col"], [])
        assert "col" in text

    def test_column_widths_accommodate_long_cells(self):
        text = render_table(["h"], [("a-very-long-cell",)])
        header, divider, row = text.splitlines()
        assert len(divider) >= len("a-very-long-cell")


class TestRenderSeries:
    def test_merges_series_on_x(self):
        text = render_series(
            {"up": [(1.0, 10.0), (2.0, 20.0)], "down": [(1.0, 5.0)]},
            title="Series",
        )
        lines = text.splitlines()
        assert lines[0] == "Series"
        assert "up" in lines[1] and "down" in lines[1]
        # x=2.0 has no 'down' value -> NaN cell.
        assert "nan" in text

    def test_x_values_sorted(self):
        text = render_series({"s": [(3.0, 1.0), (1.0, 2.0)]}, title="t")
        rows = text.splitlines()[3:]
        assert rows[0].startswith("1.0")
        assert rows[1].startswith("3.0")
