"""A pathological model whose simultaneous best responses cycle.

Matching-pennies structure on two SCs with binary sharing levels: SC0
wants to match SC1's participation, SC1 wants to mismatch.  Simultaneous
best-response dynamics flip between two profiles forever; sequential
dynamics do not exhibit the two-profile flip-flop.  Shared by the game
tests.
"""

from __future__ import annotations

from repro.perf.base import PerformanceModel
from repro.perf.params import PerformanceParams


class CyclingModel(PerformanceModel):
    """See module docstring."""

    def evaluate(self, scenario):
        s0 = scenario[0].shared_vms
        s1 = scenario[1].shared_vms
        match = 1.0 if (s0 > 0) == (s1 > 0) else 0.0
        return [
            PerformanceParams(
                0.0, 0.0, forward_rate=0.5 - 0.4 * match, utilization=0.9
            ),
            PerformanceParams(
                0.0, 0.0, forward_rate=0.1 + 0.4 * match, utilization=0.9
            ),
        ]
