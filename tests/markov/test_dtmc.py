"""Tests for the DTMC container."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import ConfigurationError
from repro.markov.dtmc import DTMC
from repro.markov.state_space import StateSpace


def two_state_dtmc(p=0.3, q=0.6) -> DTMC:
    space = StateSpace(["a", "b"])
    matrix = sp.csr_matrix(np.array([[1 - p, p], [q, 1 - q]]))
    return DTMC(space, matrix)


class TestValidation:
    def test_valid_chain_accepted(self):
        chain = two_state_dtmc()
        assert chain.n_states == 2

    def test_rows_must_sum_to_one(self):
        space = StateSpace([0, 1])
        bad = sp.csr_matrix(np.array([[0.5, 0.4], [0.0, 1.0]]))
        with pytest.raises(ConfigurationError):
            DTMC(space, bad)

    def test_negative_probabilities_rejected(self):
        space = StateSpace([0, 1])
        bad = sp.csr_matrix(np.array([[1.5, -0.5], [0.5, 0.5]]))
        with pytest.raises(ConfigurationError):
            DTMC(space, bad)

    def test_shape_mismatch_rejected(self):
        space = StateSpace([0, 1, 2])
        with pytest.raises(ConfigurationError):
            DTMC(space, sp.eye(2, format="csr"))


class TestDynamics:
    def test_step(self):
        chain = two_state_dtmc(p=0.3, q=0.6)
        dist = chain.step(np.array([1.0, 0.0]))
        np.testing.assert_allclose(dist, [0.7, 0.3])

    def test_power_distribution(self):
        chain = two_state_dtmc()
        direct = chain.step(chain.step(np.array([1.0, 0.0])))
        powered = chain.power_distribution(np.array([1.0, 0.0]), 2)
        np.testing.assert_allclose(powered, direct)

    def test_zero_steps_is_identity(self):
        chain = two_state_dtmc()
        start = np.array([0.25, 0.75])
        np.testing.assert_allclose(chain.power_distribution(start, 0), start)

    def test_negative_steps_rejected(self):
        with pytest.raises(ConfigurationError):
            two_state_dtmc().power_distribution(np.array([1.0, 0.0]), -1)

    def test_stationary_matches_closed_form(self):
        p, q = 0.3, 0.6
        chain = two_state_dtmc(p=p, q=q)
        pi = chain.stationary()
        np.testing.assert_allclose(pi, [q / (p + q), p / (p + q)], atol=1e-10)
