"""Tests for the state-space bijection and reachability exploration."""

import pytest

from repro.exceptions import StateSpaceError
from repro.markov.state_space import StateSpace, explore


class TestStateSpace:
    def test_index_roundtrip(self):
        states = [(0, 0), (0, 1), (1, 0)]
        space = StateSpace(states)
        for i, state in enumerate(states):
            assert space.index(state) == i
            assert space[i] == state

    def test_iteration_order_matches_index_order(self):
        space = StateSpace(["c", "a", "b"])
        assert list(space) == ["c", "a", "b"]

    def test_contains(self):
        space = StateSpace([1, 2, 3])
        assert 2 in space
        assert 7 not in space

    def test_get_returns_none_for_missing(self):
        space = StateSpace([1])
        assert space.get(99) is None

    def test_duplicate_states_rejected(self):
        with pytest.raises(StateSpaceError):
            StateSpace([1, 1])

    def test_empty_rejected(self):
        with pytest.raises(StateSpaceError):
            StateSpace([])

    def test_missing_state_lookup_raises(self):
        space = StateSpace([1])
        with pytest.raises(StateSpaceError):
            space.index(42)

    def test_subset_indices(self):
        space = StateSpace(range(10))
        assert space.subset_indices(lambda s: s % 3 == 0) == [0, 3, 6, 9]


class TestExplore:
    def test_simple_chain_reachability(self):
        def successors(state):
            if state < 5:
                yield state + 1, 1.0

        space = explore([0], successors)
        assert len(space) == 6
        assert list(space) == [0, 1, 2, 3, 4, 5]

    def test_unreachable_states_excluded(self):
        def successors(state):
            if state == 0:
                yield 2, 1.0

        space = explore([0], successors)
        assert 1 not in space
        assert 2 in space

    def test_multiple_seeds(self):
        def successors(state):
            return []

        space = explore([("a",), ("b",)], successors)
        assert len(space) == 2

    def test_max_states_enforced(self):
        def successors(state):
            yield state + 1, 1.0

        with pytest.raises(StateSpaceError):
            explore([0], successors, max_states=100)

    def test_no_seeds_rejected(self):
        with pytest.raises(StateSpaceError):
            explore([], lambda s: [])

    def test_bfs_discovery_order(self):
        def successors(state):
            if state == 0:
                yield 1, 1.0
                yield 2, 1.0
            if state == 1:
                yield 3, 1.0

        space = explore([0], successors)
        assert list(space) == [0, 1, 2, 3]
