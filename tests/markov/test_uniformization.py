"""Tests for uniformization transient analysis against matrix exponentials."""

import numpy as np
import pytest
import scipy.linalg

from repro.exceptions import ConfigurationError
from repro.markov.birth_death import mmc_chain
from repro.markov.ctmc import CTMC
from repro.markov.state_space import StateSpace
from repro.markov.uniformization import (
    transient_distribution,
    transient_matrix,
    uniformize,
)


def small_ctmc() -> CTMC:
    space = StateSpace([0, 1, 2])
    return CTMC.from_transitions(
        space, [(0, 1, 1.0), (1, 2, 2.0), (2, 0, 0.5), (1, 0, 0.3)]
    )


class TestUniformize:
    def test_result_is_stochastic(self):
        dtmc, gamma = uniformize(small_ctmc())
        rows = np.asarray(dtmc.matrix.sum(axis=1)).ravel()
        np.testing.assert_allclose(rows, 1.0, atol=1e-12)
        assert gamma >= 2.3

    def test_explicit_gamma_respected(self):
        dtmc, gamma = uniformize(small_ctmc(), gamma=10.0)
        assert gamma == 10.0
        # Self-loop probability grows with gamma.
        assert dtmc.matrix[0, 0] == pytest.approx(1.0 - 1.0 / 10.0)

    def test_too_small_gamma_rejected(self):
        with pytest.raises(ConfigurationError):
            uniformize(small_ctmc(), gamma=0.1)


class TestTransientDistribution:
    @pytest.mark.parametrize("t", [0.01, 0.3, 1.0, 5.0])
    def test_matches_matrix_exponential(self, t):
        ctmc = small_ctmc()
        p0 = np.array([1.0, 0.0, 0.0])
        expected = p0 @ scipy.linalg.expm(ctmc.generator.toarray() * t)
        actual = transient_distribution(ctmc, p0, t, epsilon=1e-13)
        np.testing.assert_allclose(actual, expected, atol=1e-10)

    def test_time_zero_returns_initial(self):
        ctmc = small_ctmc()
        p0 = np.array([0.2, 0.5, 0.3])
        np.testing.assert_allclose(transient_distribution(ctmc, p0, 0.0), p0)

    def test_long_horizon_reaches_steady_state(self):
        chain = mmc_chain(3.0, 1.0, 5, 40)
        ctmc = chain.to_ctmc()
        p0 = np.zeros(41)
        p0[0] = 1.0
        result = transient_distribution(ctmc, p0, 500.0)
        np.testing.assert_allclose(result, chain.stationary(), atol=1e-8)

    def test_wrong_length_rejected(self):
        with pytest.raises(ConfigurationError):
            transient_distribution(small_ctmc(), np.array([1.0]), 1.0)

    def test_negative_mass_rejected(self):
        with pytest.raises(ConfigurationError):
            transient_distribution(small_ctmc(), np.array([1.0, -1.0, 1.0]), 1.0)

    def test_result_is_distribution(self):
        ctmc = small_ctmc()
        p0 = np.array([0.0, 1.0, 0.0])
        result = transient_distribution(ctmc, p0, 2.5)
        assert result.min() >= 0.0
        assert result.sum() == pytest.approx(1.0)


class TestTransientMatrix:
    @pytest.mark.parametrize("t", [0.1, 1.0, 3.0])
    def test_matches_expm(self, t):
        ctmc = small_ctmc()
        expected = scipy.linalg.expm(ctmc.generator.toarray() * t)
        actual = transient_matrix(ctmc, t, epsilon=1e-13)
        np.testing.assert_allclose(actual, expected, atol=1e-10)

    def test_time_zero_is_identity(self):
        ctmc = small_ctmc()
        np.testing.assert_allclose(transient_matrix(ctmc, 0.0), np.eye(3))
