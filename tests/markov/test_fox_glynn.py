"""Tests for Fox–Glynn Poisson truncation and the stable Poisson CDF."""

import math

import numpy as np
import pytest
import scipy.stats as st
from hypothesis import given, settings
from hypothesis import strategies as hyp

from repro.exceptions import TruncationError
from repro.markov.fox_glynn import FoxGlynnWeights, fox_glynn, poisson_cdf


class TestFoxGlynn:
    def test_zero_rate_is_point_mass(self):
        fg = fox_glynn(0.0)
        assert fg.left == 0
        assert fg.right == 0
        assert fg.weights[0] == 1.0

    @pytest.mark.parametrize("rate", [0.1, 1.0, 4.7, 25.0, 400.0, 12_345.6])
    def test_matches_scipy_pmf(self, rate):
        fg = fox_glynn(rate, epsilon=1e-12)
        ks = np.arange(fg.left, fg.right + 1)
        reference = st.poisson.pmf(ks, rate)
        np.testing.assert_allclose(fg.weights * fg.total, reference, atol=1e-13)

    @pytest.mark.parametrize("rate", [0.5, 10.0, 1000.0])
    def test_window_captures_requested_mass(self, rate):
        epsilon = 1e-10
        fg = fox_glynn(rate, epsilon=epsilon)
        captured = st.poisson.cdf(fg.right, rate) - st.poisson.cdf(fg.left - 1, rate)
        assert captured >= 1.0 - epsilon

    def test_weights_are_normalized(self):
        fg = fox_glynn(37.7)
        assert math.isclose(fg.weights.sum(), 1.0, rel_tol=1e-12)

    def test_window_contains_mode(self):
        rate = 123.4
        fg = fox_glynn(rate)
        assert fg.left <= int(rate) <= fg.right

    def test_invalid_epsilon_rejected(self):
        with pytest.raises(TruncationError):
            fox_glynn(5.0, epsilon=0.0)

    def test_negative_rate_rejected(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            fox_glynn(-1.0)

    def test_mismatched_window_rejected(self):
        with pytest.raises(TruncationError):
            FoxGlynnWeights(left=3, right=2, weights=np.array([]), total=1.0)

    @given(rate=hyp.floats(min_value=0.01, max_value=5_000.0))
    @settings(max_examples=60, deadline=None)
    def test_mass_property(self, rate):
        fg = fox_glynn(rate, epsilon=1e-9)
        assert fg.total >= 1.0 - 1e-8
        assert fg.total <= 1.0 + 1e-8
        assert (fg.weights >= 0.0).all()


class TestPoissonCdf:
    @pytest.mark.parametrize(
        "k,rate", [(0, 1.0), (3, 0.5), (10, 10.0), (25, 3.3), (100, 80.0)]
    )
    def test_matches_scipy(self, k, rate):
        assert math.isclose(
            poisson_cdf(k, rate), st.poisson.cdf(k, rate), rel_tol=1e-12
        )

    def test_negative_k_is_zero(self):
        assert poisson_cdf(-1, 2.0) == 0.0

    def test_zero_rate_is_one(self):
        assert poisson_cdf(0, 0.0) == 1.0
        assert poisson_cdf(5, 0.0) == 1.0

    @given(
        k=hyp.integers(min_value=0, max_value=60),
        rate=hyp.floats(min_value=0.0, max_value=100.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_monotone_in_k(self, k, rate):
        assert poisson_cdf(k, rate) <= poisson_cdf(k + 1, rate) + 1e-15
