"""Tests for analytic birth–death chains against closed forms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as hyp

from repro.exceptions import ConfigurationError
from repro.markov.birth_death import BirthDeathChain, mmc_chain
from repro.queueing.erlang import erlang_b


class TestBirthDeathChain:
    def test_mm1_geometric_solution(self):
        rho = 0.6
        chain = BirthDeathChain([rho] * 40, [1.0] * 40)
        pi = chain.stationary()
        expected = (1 - rho ** 41) and np.array([rho**k for k in range(41)])
        expected = expected / expected.sum()
        np.testing.assert_allclose(pi, expected, atol=1e-12)

    def test_erlang_b_blocking_from_chain(self):
        # M/M/c/c loss system: blocking probability is pi_c = Erlang-B.
        offered = 5.0
        servers = 7
        chain = mmc_chain(offered, 1.0, servers, servers)
        pi = chain.stationary()
        assert pi[-1] == pytest.approx(erlang_b(offered, servers), rel=1e-10)

    def test_zero_birth_rate_blocks_upper_levels(self):
        chain = BirthDeathChain([1.0, 0.0, 1.0], [1.0, 1.0, 1.0])
        pi = chain.stationary()
        assert pi[2] == 0.0
        assert pi[3] == 0.0
        assert pi[:2].sum() == pytest.approx(1.0)

    def test_mean_level_matches_distribution(self):
        chain = mmc_chain(3.0, 1.0, 4, 60)
        pi = chain.stationary()
        assert chain.mean_level() == pytest.approx(np.dot(np.arange(61), pi))

    def test_to_ctmc_agrees_with_analytic(self):
        chain = mmc_chain(6.5, 1.0, 8, 80)
        pi_analytic = chain.stationary()
        pi_numeric = chain.to_ctmc().steady_state()
        np.testing.assert_allclose(pi_numeric, pi_analytic, atol=1e-10)

    def test_extreme_rate_ratios_stay_finite(self):
        chain = BirthDeathChain([1e6] * 30, [1e-3] * 30)
        pi = chain.stationary()
        assert np.isfinite(pi).all()
        assert pi.sum() == pytest.approx(1.0)

    @given(
        rho=hyp.floats(min_value=0.05, max_value=0.95),
        levels=hyp.integers(min_value=2, max_value=60),
    )
    @settings(max_examples=40, deadline=None)
    def test_distribution_properties(self, rho, levels):
        chain = BirthDeathChain([rho] * levels, [1.0] * levels)
        pi = chain.stationary()
        assert pi.min() >= 0.0
        assert pi.sum() == pytest.approx(1.0)
        # Geometric decay for rho < 1.
        assert pi[0] == max(pi)


class TestValidation:
    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ConfigurationError):
            BirthDeathChain([1.0, 1.0], [1.0])

    def test_zero_death_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            BirthDeathChain([1.0], [0.0])

    def test_negative_birth_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            BirthDeathChain([-1.0], [1.0])

    def test_capacity_below_servers_rejected(self):
        with pytest.raises(ConfigurationError):
            mmc_chain(1.0, 1.0, 5, 3)

    def test_infinite_rates_rejected(self):
        with pytest.raises(ConfigurationError):
            BirthDeathChain([float("inf")], [1.0])
