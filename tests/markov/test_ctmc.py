"""Tests for the CTMC container and its validation."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import ConfigurationError, StateSpaceError
from repro.markov.ctmc import CTMC
from repro.markov.state_space import StateSpace


def two_state_ctmc(up_rate=2.0, down_rate=3.0) -> CTMC:
    space = StateSpace(["up", "down"])
    return CTMC.from_transitions(
        space, [("up", "down", down_rate), ("down", "up", up_rate)]
    )


class TestConstruction:
    def test_from_transitions_builds_valid_generator(self):
        ctmc = two_state_ctmc()
        q = ctmc.generator.toarray()
        np.testing.assert_allclose(q.sum(axis=1), [0.0, 0.0], atol=1e-12)
        assert q[0, 1] == 3.0
        assert q[1, 0] == 2.0

    def test_parallel_transitions_are_summed(self):
        space = StateSpace([0, 1])
        ctmc = CTMC.from_transitions(space, [(0, 1, 1.0), (0, 1, 2.0), (1, 0, 1.0)])
        assert ctmc.generator[0, 1] == 3.0

    def test_self_loops_dropped(self):
        space = StateSpace([0, 1])
        ctmc = CTMC.from_transitions(space, [(0, 0, 9.0), (0, 1, 1.0), (1, 0, 1.0)])
        assert ctmc.generator[0, 0] == -1.0

    def test_non_positive_rates_dropped(self):
        space = StateSpace([0, 1])
        ctmc = CTMC.from_transitions(
            space, [(0, 1, 1.0), (1, 0, 1.0), (1, 0, 0.0), (1, 0, -1.0)]
        )
        assert ctmc.generator[1, 0] == 1.0

    def test_from_successor_function(self):
        space = StateSpace([0, 1, 2])

        def successors(state):
            if state < 2:
                yield state + 1, 1.0
            if state > 0:
                yield state - 1, 2.0

        ctmc = CTMC.from_successor_function(space, successors)
        assert ctmc.generator[1, 2] == 1.0
        assert ctmc.generator[1, 0] == 2.0

    def test_shape_mismatch_rejected(self):
        space = StateSpace([0, 1])
        with pytest.raises(ConfigurationError):
            CTMC(space, sp.csr_matrix((3, 3)))

    def test_bad_row_sums_rejected(self):
        space = StateSpace([0, 1])
        q = sp.csr_matrix(np.array([[1.0, 1.0], [0.0, 0.0]]))
        with pytest.raises(ConfigurationError):
            CTMC(space, q)

    def test_negative_off_diagonal_rejected(self):
        space = StateSpace([0, 1])
        q = sp.csr_matrix(np.array([[1.0, -1.0], [1.0, -1.0]]))
        with pytest.raises(ConfigurationError):
            CTMC(space, q)


class TestAnalysis:
    def test_two_state_steady_state(self):
        ctmc = two_state_ctmc(up_rate=2.0, down_rate=3.0)
        pi = ctmc.steady_state()
        # pi_up * 3 = pi_down * 2  =>  pi_up = 2/5, pi_down = 3/5.
        np.testing.assert_allclose(pi, [0.4, 0.6], atol=1e-12)

    def test_exit_rates(self):
        ctmc = two_state_ctmc()
        np.testing.assert_allclose(ctmc.exit_rates(), [3.0, 2.0])

    def test_uniformization_rate_dominates(self):
        ctmc = two_state_ctmc()
        assert ctmc.uniformization_rate() >= 3.0

    def test_expected_value(self):
        ctmc = two_state_ctmc()
        pi = ctmc.steady_state()
        value = ctmc.expected(np.array([10.0, 0.0]), pi)
        assert value == pytest.approx(4.0)

    def test_expected_shape_mismatch(self):
        ctmc = two_state_ctmc()
        with pytest.raises(StateSpaceError):
            ctmc.expected(np.zeros(5), np.zeros(5))

    def test_n_states(self):
        assert two_state_ctmc().n_states == 2
