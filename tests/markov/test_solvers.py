"""Cross-validation of the three steady-state solvers.

Each solver must reproduce analytic birth–death stationary distributions
and agree with the others on random ergodic generators.
"""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as hyp

from repro.exceptions import SolverError
from repro.markov.birth_death import mmc_chain
from repro.markov.solvers import (
    _usable_warm_start,
    steady_state,
    steady_state_direct,
    steady_state_gmres,
    steady_state_power,
)

SOLVERS = [steady_state_direct, steady_state_gmres, steady_state_power]


def random_ergodic_generator(n: int, seed: int) -> sp.csr_matrix:
    rng = np.random.default_rng(seed)
    q = rng.uniform(0.1, 2.0, size=(n, n))
    np.fill_diagonal(q, 0.0)
    q -= np.diag(q.sum(axis=1))
    return sp.csr_matrix(q)


class TestAgainstAnalytic:
    @pytest.mark.parametrize("solver", SOLVERS)
    def test_mm1_queue(self, solver):
        # M/M/1/50 with rho = 0.5: pi_k ∝ 0.5^k.
        chain = mmc_chain(0.5, 1.0, 1, 50)
        pi = solver(chain.to_ctmc().generator)
        np.testing.assert_allclose(pi, chain.stationary(), atol=1e-9)

    @pytest.mark.parametrize("solver", SOLVERS)
    def test_mmc_queue(self, solver):
        chain = mmc_chain(8.0, 1.0, 10, 120)
        pi = solver(chain.to_ctmc().generator)
        np.testing.assert_allclose(pi, chain.stationary(), atol=1e-8)

    @pytest.mark.parametrize("solver", SOLVERS)
    def test_single_state(self, solver):
        q = sp.csr_matrix(np.array([[0.0]]))
        np.testing.assert_allclose(solver(q), [1.0])


class TestCrossAgreement:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_all_solvers_agree_on_random_chains(self, seed):
        q = random_ergodic_generator(25, seed)
        results = [solver(q) for solver in SOLVERS]
        for other in results[1:]:
            np.testing.assert_allclose(results[0], other, atol=1e-7)

    @given(seed=hyp.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_direct_solver_properties(self, seed):
        q = random_ergodic_generator(12, seed)
        pi = steady_state_direct(q)
        assert pi.min() >= 0.0
        assert pi.sum() == pytest.approx(1.0)
        assert np.abs(pi @ q).max() < 1e-9


class TestDispatch:
    def test_auto_uses_some_solver(self):
        q = random_ergodic_generator(10, 3)
        pi = steady_state(q, method="auto")
        assert pi.sum() == pytest.approx(1.0)

    def test_explicit_methods(self):
        q = random_ergodic_generator(10, 4)
        for method in ("direct", "gmres", "power"):
            pi = steady_state(q, method=method)
            assert pi.sum() == pytest.approx(1.0)

    def test_unknown_method_rejected(self):
        q = random_ergodic_generator(5, 5)
        with pytest.raises(SolverError):
            steady_state(q, method="magic")


class TestWarmStart:
    @pytest.mark.parametrize("method", ["gmres", "power"])
    def test_warm_start_converges_to_same_solution(self, method):
        q = random_ergodic_generator(25, 11)
        cold = steady_state(q, method=method)
        warm = steady_state(q, method=method, x0=cold)
        np.testing.assert_allclose(warm, cold, atol=1e-10)

    @pytest.mark.parametrize("method", ["gmres", "power"])
    def test_perturbed_neighbor_guess_is_safe(self, method):
        exact = steady_state_direct(random_ergodic_generator(20, 12))
        q = random_ergodic_generator(20, 13)  # a *different* chain
        warm = steady_state(q, method=method, x0=exact)
        np.testing.assert_allclose(warm, steady_state_direct(q), atol=1e-7)

    def test_direct_ignores_warm_start(self):
        q = random_ergodic_generator(15, 14)
        cold = steady_state(q, method="direct")
        warm = steady_state(q, method="direct", x0=np.ones(15))
        assert np.array_equal(cold, warm)

    @pytest.mark.parametrize(
        "bad",
        [
            np.ones(7),  # wrong length
            np.full(20, np.nan),  # non-finite
            -np.ones(20),  # negative mass
            np.zeros(20),  # zero mass
        ],
    )
    def test_malformed_guesses_discarded(self, bad):
        assert _usable_warm_start(bad, 20) is None
        # And the solvers still converge when handed one.
        q = random_ergodic_generator(20, 15)
        pi = steady_state(q, method="power", x0=bad)
        np.testing.assert_allclose(pi, steady_state_direct(q), atol=1e-7)

    def test_usable_guess_passes_through(self):
        guess = np.full(10, 0.1)
        out = _usable_warm_start(guess, 10)
        assert out is not None
        np.testing.assert_array_equal(out, guess)

    def test_gmres_rejects_zero_mass_pin(self):
        # A guess whose pinned entry carries no mass cannot be rescaled;
        # gmres must fall back to its default guess, not divide by zero.
        q = random_ergodic_generator(12, 16)
        guess = np.ones(12)
        guess[0] = 0.0
        pi = steady_state_gmres(q, x0=guess)
        np.testing.assert_allclose(pi, steady_state_direct(q), atol=1e-7)
