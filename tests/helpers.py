"""Shared test helpers.

:class:`StubModel` is an analytic toy performance model with the same
qualitative structure as the real ones (lending earns revenue,
over-lending squeezes own capacity and causes forwarding) but evaluated
in microseconds — game- and framework-level tests use it to exercise
dynamics without paying for chain solves.
"""

from __future__ import annotations

from repro.core.small_cloud import FederationScenario
from repro.perf.base import PerformanceModel
from repro.perf.params import PerformanceParams


class StubModel(PerformanceModel):
    """Analytic toy federation with conservation and an interior optimum.

    Per SC: external need is demand above 80% of capacity; supply is the
    shared allowance capped by idle capacity.  Need is matched to supply
    proportionally.  Lending shrinks the lender's own capacity, creating
    self-inflicted forwarding — so best responses are interior rather
    than "share everything".
    """

    def evaluate(self, scenario: FederationScenario) -> list[PerformanceParams]:
        k = len(scenario)
        need = [max(c.arrival_rate - 0.8 * c.vms, 0.0) for c in scenario]
        idle = [max(c.vms - c.arrival_rate, 0.0) for c in scenario]
        supply = [min(float(c.shared_vms), idle[i]) for i, c in enumerate(scenario)]
        borrowed = []
        for i in range(k):
            pool = sum(supply[j] for j in range(k) if j != i)
            borrowed.append(min(need[i], pool))
        total_borrowed = sum(borrowed)
        total_supply = sum(supply)
        results = []
        for i, cloud in enumerate(scenario):
            if total_supply > 0.0:
                lent = min(supply[i] * total_borrowed / total_supply, supply[i])
            else:
                lent = 0.0
            own_capacity = cloud.vms - lent
            self_inflicted = max(cloud.arrival_rate - own_capacity, 0.0)
            forward = max(need[i] - borrowed[i], 0.0) * 0.5 + self_inflicted * 0.4
            served = min(cloud.arrival_rate, own_capacity)
            rho = min((served + lent) / cloud.vms, 1.0)
            results.append(
                PerformanceParams(
                    lent_mean=lent,
                    borrowed_mean=borrowed[i],
                    forward_rate=forward,
                    utilization=rho,
                )
            )
        return results
