"""Tests for scenario/outcome serialization."""

import json

import pytest

from repro.core.serialization import (
    cloud_from_dict,
    cloud_to_dict,
    load_scenario,
    outcome_to_dict,
    save_scenario,
    scenario_from_dict,
    scenario_to_dict,
)
from repro.core.small_cloud import FederationScenario, SmallCloud
from repro.exceptions import ConfigurationError


def scenario():
    return FederationScenario((
        SmallCloud(name="a", vms=10, arrival_rate=7.0, shared_vms=3,
                   public_price=2.0, federation_price=1.0),
        SmallCloud(name="b", vms=8, arrival_rate=5.5, sla_bound=0.5),
    ))


class TestCloudRoundTrip:
    def test_roundtrip_preserves_everything(self):
        original = scenario()[0]
        assert cloud_from_dict(cloud_to_dict(original)) == original

    def test_unknown_fields_rejected(self):
        data = cloud_to_dict(scenario()[0])
        data["gpu_count"] = 4
        with pytest.raises(ConfigurationError):
            cloud_from_dict(data)

    def test_missing_required_fields_rejected(self):
        with pytest.raises(ConfigurationError):
            cloud_from_dict({"name": "x"})

    def test_invalid_values_still_validated(self):
        data = cloud_to_dict(scenario()[0])
        data["vms"] = -1
        with pytest.raises(ConfigurationError):
            cloud_from_dict(data)


class TestScenarioRoundTrip:
    def test_dict_roundtrip(self):
        original = scenario()
        assert scenario_from_dict(scenario_to_dict(original)) == original

    def test_file_roundtrip(self, tmp_path):
        original = scenario()
        path = tmp_path / "scenario.json"
        save_scenario(original, path)
        assert load_scenario(path) == original

    def test_file_is_valid_json(self, tmp_path):
        path = tmp_path / "scenario.json"
        save_scenario(scenario(), path)
        data = json.loads(path.read_text())
        assert len(data["clouds"]) == 2

    def test_missing_clouds_key_rejected(self):
        with pytest.raises(ConfigurationError):
            scenario_from_dict({"nodes": []})


class TestOutcomeSerialization:
    def test_outcome_to_dict(self):
        from repro.core.framework import SCShare
        from tests.helpers import StubModel

        runner = SCShare(scenario().with_price_ratio(0.5), model=StubModel())
        outcome = runner.run(alpha=0.0, optimum_method="ascent")
        data = outcome_to_dict(outcome)
        assert data["equilibrium"] == list(outcome.equilibrium)
        assert data["efficiency"] == outcome.efficiency
        assert len(data["details"]) == 2
        json.dumps(data)  # must be JSON-serializable end to end
