"""Tests for the SmallCloud / FederationScenario configuration types."""

import pytest

from repro.core.small_cloud import FederationScenario, SmallCloud
from repro.exceptions import ConfigurationError


def cloud(**overrides) -> SmallCloud:
    defaults = dict(name="sc", vms=10, arrival_rate=7.0)
    defaults.update(overrides)
    return SmallCloud(**defaults)


class TestSmallCloud:
    def test_derived_quantities(self):
        c = cloud(arrival_rate=8.0, service_rate=2.0)
        assert c.offered_load == 4.0
        assert c.nominal_utilization == 0.4

    def test_with_shared(self):
        c = cloud().with_shared(4)
        assert c.shared_vms == 4
        assert c.name == "sc"

    def test_with_prices(self):
        c = cloud().with_prices(public_price=2.0, federation_price=0.8)
        assert c.public_price == 2.0
        assert c.federation_price == 0.8

    def test_share_above_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            cloud(shared_vms=11)

    def test_federation_price_above_public_rejected(self):
        with pytest.raises(ConfigurationError):
            cloud(public_price=1.0, federation_price=1.5)

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError):
            cloud(name="")

    def test_invalid_rates_rejected(self):
        with pytest.raises(ConfigurationError):
            cloud(arrival_rate=0.0)
        with pytest.raises(ConfigurationError):
            cloud(service_rate=-1.0)
        with pytest.raises(ConfigurationError):
            cloud(vms=0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            cloud().vms = 20


class TestFederationScenario:
    def scenario(self):
        return FederationScenario((
            cloud(name="a", shared_vms=2),
            cloud(name="b", shared_vms=3),
            cloud(name="c", shared_vms=5),
        ))

    def test_sequence_protocol(self):
        s = self.scenario()
        assert len(s) == 3
        assert s[1].name == "b"
        assert [c.name for c in s] == ["a", "b", "c"]
        assert s.names == ("a", "b", "c")

    def test_index_of(self):
        assert self.scenario().index_of("c") == 2
        with pytest.raises(ConfigurationError):
            self.scenario().index_of("zzz")

    def test_sharing_accounting(self):
        s = self.scenario()
        assert s.sharing_vector() == (2, 3, 5)
        assert s.total_shared() == 10
        assert s.shared_by_others(0) == 8
        assert s.shared_by_others(2) == 5

    def test_with_sharing(self):
        s = self.scenario().with_sharing([1, 1, 1])
        assert s.sharing_vector() == (1, 1, 1)
        with pytest.raises(ConfigurationError):
            self.scenario().with_sharing([1, 1])

    def test_with_price_ratio(self):
        s = self.scenario().with_price_ratio(0.4)
        for c in s:
            assert c.federation_price == pytest.approx(0.4 * c.public_price)
        with pytest.raises(ConfigurationError):
            self.scenario().with_price_ratio(1.5)

    def test_rotated_to_target(self):
        s = self.scenario().rotated_to_target(0)
        assert s.names == ("b", "c", "a")
        # Rotating the last SC is the identity.
        assert self.scenario().rotated_to_target(2).names == ("a", "b", "c")

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError):
            FederationScenario((cloud(name="x"), cloud(name="x")))

    def test_empty_scenario_rejected(self):
        with pytest.raises(ConfigurationError):
            FederationScenario(())
