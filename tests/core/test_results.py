"""Tests for the result containers."""

import pytest

from repro.core.results import SharingDecisionResult


def result(**overrides):
    defaults = dict(
        name="sc",
        shared_vms=3,
        cost=0.4,
        baseline_cost=0.9,
        utility=0.25,
        utilization=0.8,
        baseline_utilization=0.7,
        lent_mean=1.2,
        borrowed_mean=0.8,
        forward_rate=0.1,
    )
    defaults.update(overrides)
    return SharingDecisionResult(**defaults)


class TestSharingDecisionResult:
    def test_cost_reduction(self):
        assert result().cost_reduction == pytest.approx(0.5)

    def test_negative_reduction_possible(self):
        # A bad sharing decision can cost more than isolation.
        assert result(cost=1.5).cost_reduction == pytest.approx(-0.6)

    def test_participates(self):
        assert result().participates
        assert not result(shared_vms=0).participates

    def test_frozen(self):
        with pytest.raises(AttributeError):
            result().cost = 0.0
