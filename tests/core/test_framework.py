"""Tests for the SCShare orchestrator (the Fig. 2 feedback loop).

These run against the fast analytic stub from tests/game/conftest.py so
they exercise the loop, not the numerics (integration tests cover the
real models).
"""

import pytest

from repro.core.framework import SCShare
from repro.core.small_cloud import FederationScenario, SmallCloud
from repro.game.equilibrium import is_nash_equilibrium
from tests.helpers import StubModel


def scenario():
    return FederationScenario((
        SmallCloud(name="lo", vms=10, arrival_rate=6.0, federation_price=0.5),
        SmallCloud(name="mid", vms=10, arrival_rate=8.5, federation_price=0.5),
        SmallCloud(name="hi", vms=10, arrival_rate=9.5, federation_price=0.5),
    ))


@pytest.fixture
def runner():
    return SCShare(scenario(), model=StubModel(), gamma=0.0)


class TestRun:
    def test_outcome_is_equilibrium(self, runner):
        outcome = runner.run(alpha=0.0)
        assert outcome.game.converged
        assert is_nash_equilibrium(
            runner.evaluator, outcome.equilibrium, runner.strategy_spaces
        )

    def test_details_cover_every_sc(self, runner):
        outcome = runner.run(alpha=0.0)
        assert [d.name for d in outcome.details] == ["lo", "mid", "hi"]
        for d, share in zip(outcome.details, outcome.equilibrium):
            assert d.shared_vms == share

    def test_efficiency_in_unit_interval(self, runner):
        outcome = runner.run(alpha=0.0)
        assert 0.0 <= outcome.efficiency <= 1.0

    def test_welfare_never_exceeds_optimum(self, runner):
        outcome = runner.run(alpha=0.0, optimum_method="brute")
        assert outcome.welfare <= outcome.optimum_welfare + 1e-9

    def test_restarts_keep_best_welfare(self, runner):
        plain = runner.run(alpha=0.0)
        restarted = runner.run(alpha=0.0, restarts=((5, 5, 5), (10, 10, 10)))
        assert restarted.welfare >= plain.welfare - 1e-9

    def test_details_expose_cost_reduction(self, runner):
        outcome = runner.run(alpha=0.0)
        for d in outcome.details:
            assert d.cost_reduction == pytest.approx(d.baseline_cost - d.cost)
            if d.shared_vms > 0:
                assert d.participates


class TestConfiguration:
    def test_strategy_step_coarsens_search(self):
        coarse = SCShare(scenario(), model=StubModel(), strategy_step=5)
        assert coarse.strategy_spaces[0] == [0, 5, 10]

    def test_tabu_mode(self):
        runner = SCShare(scenario(), model=StubModel(), best_response="tabu")
        outcome = runner.run(alpha=0.0)
        assert outcome.game.iterations >= 1

    def test_shared_params_cache(self):
        cache = {}
        SCShare(scenario(), model=StubModel(), params_cache=cache).run(alpha=0.0)
        populated = len(cache)
        assert populated > 0
        # A second runner at another price reuses every entry.
        repriced = scenario().with_price_ratio(0.9)
        runner2 = SCShare(repriced, model=StubModel(), params_cache=cache)
        runner2.run(alpha=0.0)
        assert runner2.evaluator.evaluations <= len(cache) - populated + 5

    def test_default_model_is_pooled(self):
        from repro.perf.pooled import PooledModel

        assert isinstance(SCShare(scenario()).model, PooledModel)
