"""Shared pytest configuration: hypothesis profiles.

Two profiles keep the property suites honest in both directions:

- ``dev`` (default): hypothesis picks fresh random examples every run —
  maximum bug-finding power on developer machines, where a surprising
  failure is cheap to investigate.
- ``ci``: derandomized, deadline-free, and reproducible — the
  ``sim-equivalence`` CI job selects it via ``HYPOTHESIS_PROFILE=ci`` so
  an engine-equivalence failure on a PR is always reproducible locally
  from the printed blob, never a flaky roll of the dice.
"""

import os

from hypothesis import HealthCheck, settings

settings.register_profile("dev", deadline=None)
settings.register_profile(
    "ci",
    derandomize=True,
    deadline=None,
    print_blob=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))
