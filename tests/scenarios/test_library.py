"""Library registry: paper figures, resolution, committed-manifest gate."""

import pytest

from repro.analysis.sanitize import InvariantViolation
from repro.scenarios.generator import DEFAULT_SEED, library_manifest
from repro.scenarios.library import (
    MANIFEST_PATH,
    check_manifest,
    committed_manifest,
    figure_scenarios,
    full_library,
    library_index,
    resolve,
    spec_from_federation,
)
from repro.scenarios.schema import save_spec

from tests.scenarios.helpers import tiny_spec


class TestFigureScenarios:
    def test_paper_family_and_known_names(self):
        specs = figure_scenarios()
        assert all(s.family == "paper" for s in specs)
        names = {s.name for s in specs}
        assert {
            "paper-fig6-2sc",
            "paper-fig6-10sc",
            "paper-fig6-100vm",
            "paper-fig7-high",
            "paper-fig7-medium",
            "paper-fig7-spread",
            "paper-fig8-perf-k4",
            "paper-fig8-game-k3",
        } <= names

    def test_fig6_2sc_matches_bench_constructor(self):
        from repro.bench.scenarios import fig6_2sc_scenario

        spec = next(s for s in figure_scenarios() if s.name == "paper-fig6-2sc")
        assert spec.clouds == tuple(fig6_2sc_scenario(target_share=3, target_rate=7.0))

    def test_spec_from_federation_caps_strategy_grid(self):
        from repro.bench.scenarios import fig6_100vm_scenario

        spec = spec_from_federation(
            "grid-cap", fig6_100vm_scenario(other_rate=70.0, target_rate=70.0)
        )
        # 100-VM SCs get a step of 20 -> six grid points per SC.
        assert spec.run.strategy_step == 20


class TestFullLibrary:
    def test_sorted_and_complete(self):
        specs = full_library()
        names = [s.name for s in specs]
        assert names == sorted(names)
        assert len(specs) >= 108  # 100+ generated plus the paper figures

    def test_index_round_trip(self):
        index = library_index()
        for name, spec in list(index.items())[:5]:
            assert spec.name == name


class TestResolve:
    def test_resolve_by_name(self):
        spec = resolve("paper-fig6-2sc")
        assert spec.name == "paper-fig6-2sc"

    def test_resolve_by_path(self, tmp_path):
        spec = tiny_spec()
        path = tmp_path / "tiny.json"
        save_spec(spec, path)
        assert resolve(str(path)) == spec

    def test_resolve_unknown_name(self):
        with pytest.raises(InvariantViolation) as excinfo:
            resolve("no-such-scenario")
        assert excinfo.value.invariant == "scenario-library"

    def test_resolve_missing_json_path(self, tmp_path):
        with pytest.raises(InvariantViolation):
            resolve(str(tmp_path / "missing.json"))


class TestManifestGate:
    def test_committed_manifest_matches_regenerated_library(self):
        # The reproducibility gate CI runs: regenerating the library from
        # the committed seed must reproduce the committed digest exactly.
        specs = full_library(DEFAULT_SEED)
        manifest = committed_manifest()
        assert manifest["seed"] == DEFAULT_SEED
        assert check_manifest(specs, manifest) == []

    def test_manifest_file_is_package_data(self):
        assert MANIFEST_PATH.exists()
        assert MANIFEST_PATH.name == "manifest.json"

    def test_check_manifest_detects_digest_drift(self):
        specs = full_library(DEFAULT_SEED)
        manifest = library_manifest(specs, seed=DEFAULT_SEED)
        manifest["digest"] = "0" * 64
        problems = check_manifest(specs, manifest)
        assert any("digest" in p for p in problems)

    def test_check_manifest_detects_missing_scenario(self):
        specs = full_library(DEFAULT_SEED)
        manifest = library_manifest(specs, seed=DEFAULT_SEED)
        dropped = manifest["scenarios"].pop()
        problems = check_manifest(specs, manifest)
        assert any(dropped["name"] in p for p in problems)

    def test_check_manifest_detects_hash_drift(self):
        specs = full_library(DEFAULT_SEED)
        manifest = library_manifest(specs, seed=DEFAULT_SEED)
        manifest["scenarios"][0]["hash"] = "f" * 64
        problems = check_manifest(specs, manifest)
        assert any("drifted" in p for p in problems)
