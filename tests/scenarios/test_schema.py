"""Schema round-trip stability and strict validation rejections."""

import json

import pytest

from repro.analysis.sanitize import InvariantViolation
from repro.scenarios.schema import (
    SCHEMA_VERSION,
    RunConfig,
    ScenarioSpec,
    load_spec,
    save_spec,
    spec_from_dict,
)
from repro.workload.profiles import ArrivalSpec, DemandProfile, ServiceSpec

from tests.scenarios.helpers import tiny_cloud, tiny_spec


class TestRoundTrip:
    def test_json_dataclass_json_is_byte_stable(self):
        spec = tiny_spec()
        first = spec.canonical_json()
        rebuilt = spec_from_dict(json.loads(first))
        assert rebuilt.canonical_json() == first
        assert rebuilt == spec

    def test_round_trip_preserves_content_hash(self):
        spec = tiny_spec()
        rebuilt = spec_from_dict(spec.to_dict())
        assert rebuilt.content_hash() == spec.content_hash()

    def test_round_trip_with_demand_profiles(self):
        clouds = (tiny_cloud("sc1"), tiny_cloud("sc2"))
        demand = (
            DemandProfile(
                arrival=ArrivalSpec(
                    kind="mmpp",
                    rates=(1.5, 4.5),
                    transitions=((-0.01, 0.01), (0.01, -0.01)),
                ),
                service=ServiceSpec(kind="erlang", stages=3),
            ),
            DemandProfile(service=ServiceSpec(kind="phase-fit", scv=4.0)),
        )
        spec = ScenarioSpec(name="mmpp-pair", clouds=clouds, demand=demand)
        rebuilt = spec_from_dict(json.loads(spec.canonical_json()))
        assert rebuilt == spec
        assert rebuilt.canonical_json() == spec.canonical_json()

    def test_save_load_file(self, tmp_path):
        spec = tiny_spec()
        path = tmp_path / "spec.json"
        save_spec(spec, path)
        assert load_spec(path) == spec
        # Canonical form plus exactly one trailing newline.
        assert path.read_text() == spec.canonical_json() + "\n"

    def test_default_demand_is_poisson_exponential(self):
        spec = tiny_spec()
        assert len(spec.demand) == len(spec.clouds)
        assert all(p == DemandProfile() for p in spec.demand)

    def test_content_hash_changes_with_content(self):
        base = tiny_spec()
        other = tiny_spec(seed=8)
        assert base.content_hash() != other.content_hash()


class TestRejections:
    def test_unknown_schema_version(self):
        data = tiny_spec().to_dict()
        data["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(InvariantViolation) as excinfo:
            spec_from_dict(data)
        assert excinfo.value.invariant == "scenario-schema-version"

    def test_unknown_top_level_field(self):
        data = tiny_spec().to_dict()
        data["extra"] = 1
        with pytest.raises(InvariantViolation) as excinfo:
            spec_from_dict(data)
        assert "extra" in str(excinfo.value)

    def test_missing_name(self):
        data = tiny_spec().to_dict()
        del data["name"]
        with pytest.raises(InvariantViolation):
            spec_from_dict(data)

    def test_bad_name_pattern(self):
        with pytest.raises(InvariantViolation):
            tiny_spec(name="Bad Name!")

    def test_bad_sla(self):
        data = tiny_spec().to_dict()
        data["clouds"][0]["sla_bound"] = -0.5
        with pytest.raises(InvariantViolation) as excinfo:
            spec_from_dict(data)
        assert excinfo.value.invariant == "scenario-schema"

    def test_negative_arrival_rate(self):
        data = tiny_spec().to_dict()
        data["clouds"][0]["arrival_rate"] = -3.0
        with pytest.raises(InvariantViolation):
            spec_from_dict(data)

    def test_unknown_cloud_field(self):
        data = tiny_spec().to_dict()
        data["clouds"][0]["gpu_count"] = 8
        with pytest.raises(InvariantViolation):
            spec_from_dict(data)

    def test_duplicate_cloud_names(self):
        with pytest.raises(InvariantViolation):
            ScenarioSpec(name="dup", clouds=(tiny_cloud("sc1"), tiny_cloud("sc1")))

    def test_empty_clouds(self):
        with pytest.raises(InvariantViolation):
            ScenarioSpec(name="empty", clouds=())

    def test_demand_length_mismatch(self):
        with pytest.raises(InvariantViolation) as excinfo:
            ScenarioSpec(
                name="mismatch",
                clouds=(tiny_cloud("sc1"), tiny_cloud("sc2")),
                demand=(DemandProfile(),),
            )
        assert excinfo.value.invariant == "scenario-schema"

    def test_demand_arrival_rate_inconsistency(self):
        # An MMPP whose stationary mean (3.0) disagrees with the SC's
        # arrival rate must be rejected, not silently accepted.
        mmpp = ArrivalSpec(
            kind="mmpp", rates=(2.0, 4.0), transitions=((-0.01, 0.01), (0.01, -0.01))
        )
        with pytest.raises(InvariantViolation) as excinfo:
            ScenarioSpec(
                name="inconsistent",
                clouds=(tiny_cloud("sc1", arrival_rate=5.0),),
                demand=(DemandProfile(arrival=mmpp),),
            )
        assert excinfo.value.invariant == "scenario-demand-consistency"

    def test_demand_service_mean_inconsistency(self):
        h2 = ServiceSpec(
            kind="hyperexponential", probabilities=(0.5, 0.5), rates=(1.0, 10.0)
        )
        with pytest.raises(InvariantViolation) as excinfo:
            ScenarioSpec(
                name="slow-service",
                clouds=(tiny_cloud("sc1"),),
                demand=(DemandProfile(service=h2),),
            )
        assert excinfo.value.invariant == "scenario-demand-consistency"

    def test_non_dict_input(self):
        with pytest.raises(InvariantViolation):
            spec_from_dict([1, 2, 3])

    def test_corrupt_json_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(InvariantViolation):
            load_spec(path)


class TestRunConfig:
    def test_defaults_round_trip(self):
        run = RunConfig()
        assert RunConfig.from_dict(run.to_dict()) == run

    @pytest.mark.parametrize(
        "overrides",
        [
            {"seed": -1},
            {"seed": 1.5},
            {"backend": "gpu"},
            {"workers": 0},
            {"model": "exact"},
            {"gamma": 1.5},
            {"alpha": -0.1},
            {"strategy_step": 0},
            {"horizon": 0.0},
        ],
    )
    def test_bad_values_rejected(self, overrides):
        with pytest.raises(InvariantViolation) as excinfo:
            RunConfig(**overrides)
        assert excinfo.value.invariant == "scenario-schema"

    def test_unknown_field_rejected(self):
        with pytest.raises(InvariantViolation):
            RunConfig.from_dict({"retries": 3})
