"""Shared fixtures for the scenario-subsystem tests."""

from __future__ import annotations

from repro.core.small_cloud import SmallCloud
from repro.scenarios.schema import RunConfig, ScenarioSpec


def tiny_cloud(name: str = "sc1", **overrides) -> SmallCloud:
    """A 5-VM SC at moderate load — cheap to solve exactly."""
    fields = {
        "name": name,
        "vms": 5,
        "arrival_rate": 3.0,
        "sla_bound": 0.5,
        "public_price": 10.0,
        "federation_price": 5.0,
        "shared_vms": 1,
    }
    fields.update(overrides)
    return SmallCloud(**fields)


def tiny_spec(name: str = "tiny-pair", **run_overrides) -> ScenarioSpec:
    """A two-SC scenario whose market solve finishes in milliseconds."""
    run_fields = {"seed": 7, "strategy_step": 2}
    run_fields.update(run_overrides)
    return ScenarioSpec(
        name=name,
        family="custom",
        description="test fixture: two small SCs",
        clouds=(tiny_cloud("sc1"), tiny_cloud("sc2", arrival_rate=4.0)),
        run=RunConfig(**run_fields),
    )
