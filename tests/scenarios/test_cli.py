"""End-to-end tests of ``python -m repro.scenarios``."""

import json

import pytest

from repro.scenarios.cli import main
from repro.scenarios.schema import save_spec

from tests.scenarios.helpers import tiny_spec


class TestList:
    def test_list_prints_all(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "paper-fig6-2sc" in out
        assert "scenarios" in out

    def test_list_family_filter_json(self, capsys):
        assert main(["list", "--family", "paper", "--json"]) == 0
        entries = json.loads(capsys.readouterr().out)
        assert entries
        assert all(e["family"] == "paper" for e in entries)


class TestValidate:
    def test_validate_all_checks_manifest(self, capsys):
        assert main(["validate", "--all"]) == 0
        out = capsys.readouterr().out
        assert "manifest digest ok" in out

    def test_validate_named_scenario(self, capsys):
        assert main(["validate", "paper-fig6-2sc"]) == 0
        assert "ok" in capsys.readouterr().out

    def test_validate_bad_file_fails(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"name": "bad", "clouds": []}))
        assert main(["validate", str(path)]) == 1
        assert "INVALID" in capsys.readouterr().err

    def test_validate_without_arguments_errors(self, capsys):
        assert main(["validate"]) == 2

    def test_validate_all_with_other_seed_fails_manifest(self, capsys):
        # A different seed regenerates a different library, so the
        # committed-manifest gate must trip.
        assert main(["--seed", "99", "validate", "--all"]) == 1
        assert "INVALID" in capsys.readouterr().err


class TestShowAndRun:
    def test_show_round_trips_through_file(self, tmp_path, capsys):
        spec = tiny_spec()
        path = tmp_path / "tiny.json"
        save_spec(spec, path)
        assert main(["show", str(path)]) == 0
        shown = json.loads(capsys.readouterr().out)
        assert shown == spec.to_dict()

    def test_run_solve_reports_digest(self, tmp_path, capsys):
        path = tmp_path / "tiny.json"
        save_spec(tiny_spec(), path)
        assert main(["run", str(path)]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["mode"] == "solve"
        assert len(report["digest"]) == 64

    def test_run_simulate(self, tmp_path, capsys):
        path = tmp_path / "tiny.json"
        save_spec(tiny_spec(horizon=200.0), path)
        assert main(["run", str(path), "--mode", "simulate"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert [m["name"] for m in report["metrics"]] == ["sc1", "sc2"]


class TestGenerate:
    def test_generate_check_manifest(self, capsys):
        assert main(["generate", "--check-manifest"]) == 0
        assert "manifest digest ok" in capsys.readouterr().out

    def test_generate_writes_library(self, tmp_path, capsys):
        assert main(["generate", "--output", str(tmp_path)]) == 0
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        files = {p.name for p in tmp_path.glob("*.json")}
        assert f"{manifest['scenarios'][0]['name']}.json" in files
        assert manifest["count"] == len(files) - 1  # minus the manifest itself


class TestSweep:
    def test_sweep_ids_serial_thread(self, tmp_path, capsys):
        spec_path = tmp_path / "tiny.json"
        save_spec(tiny_spec(), spec_path)
        assert (
            main(
                [
                    "sweep",
                    "--ids",
                    str(spec_path),
                    "--backends",
                    "serial,thread",
                    "--output",
                    str(tmp_path / "report"),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "True" in out
        report = json.loads((tmp_path / "report" / "sweep.json").read_text())
        assert report["all_identical"] is True


class TestModuleEntryPoints:
    def test_python_dash_m_repro_accepts_library_names(self, capsys):
        from repro.__main__ import main as repro_main

        assert repro_main(["solve", "paper-fig6-2sc"]) == 0
        outcome = json.loads(capsys.readouterr().out)
        assert "equilibrium" in outcome

    def test_python_dash_m_repro_simulate_uses_spec_demand(self, tmp_path, capsys):
        from repro.__main__ import main as repro_main

        path = tmp_path / "tiny.json"
        save_spec(tiny_spec(), path)
        assert repro_main(["simulate", str(path), "--horizon", "200"]) == 0
        metrics = json.loads(capsys.readouterr().out)
        assert [m["name"] for m in metrics] == ["sc1", "sc2"]

    def test_bench_runner_scenario_figure(self, tmp_path, capsys):
        from repro.bench.runner import main as bench_main

        path = tmp_path / "tiny.json"
        save_spec(tiny_spec(), path)
        assert bench_main(["scenario", "--scenario", str(path)]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["scenario"] == "tiny-pair"

    def test_bench_runner_scenario_requires_reference(self, capsys):
        from repro.bench.runner import main as bench_main

        with pytest.raises(SystemExit):
            bench_main(["scenario"])
