"""Scenario execution: solve/simulate, digests, cache namespacing."""

import pytest

from repro.scenarios.runner import (
    make_executor,
    make_model,
    make_params_cache,
    observables_digest,
    outcome_observables,
    run_spec,
    simulate_spec,
    solve_spec,
)
from repro.runtime.executor import SerialExecutor, ThreadExecutor

from tests.scenarios.helpers import tiny_spec


class TestFactories:
    def test_serial_backend_builds_serial_executor(self):
        assert isinstance(make_executor(tiny_spec()), SerialExecutor)

    def test_backend_override(self):
        executor = make_executor(tiny_spec(), workers=2, backend="thread")
        assert isinstance(executor, ThreadExecutor)

    def test_model_from_run_config(self):
        from repro.perf.approximate import ApproximateModel
        from repro.perf.pooled import PooledModel

        assert isinstance(make_model(tiny_spec()), PooledModel)
        assert isinstance(make_model(tiny_spec(model="approximate")), ApproximateModel)

    def test_cache_namespaced_by_content_hash(self, tmp_path):
        spec_a = tiny_spec()
        spec_b = tiny_spec(seed=8)
        model = make_model(spec_a)
        cache_a = make_params_cache(spec_a, model, str(tmp_path))
        cache_b = make_params_cache(spec_b, model, str(tmp_path))
        federation = spec_a.federation()
        params = model.evaluate(federation)
        key = tuple(c.shared_vms for c in federation)
        cache_a[key] = params
        # Same federation, same key, same directory — but a different
        # scenario hash must not see the entry.
        assert key in cache_a
        assert key not in cache_b

    def test_no_cache_dir_means_no_cache(self):
        spec = tiny_spec()
        assert make_params_cache(spec, make_model(spec), None) is None


class TestSolve:
    def test_solve_is_bitwise_stable_across_backends(self):
        spec = tiny_spec()
        serial = observables_digest(outcome_observables(solve_spec(spec)))
        threaded = observables_digest(
            outcome_observables(solve_spec(spec, workers=2, backend="thread"))
        )
        assert serial == threaded

    def test_run_spec_solve_report(self):
        spec = tiny_spec()
        report = run_spec(spec, mode="solve")
        assert report["scenario"] == spec.name
        assert report["hash"] == spec.content_hash()
        assert len(report["digest"]) == 64
        assert "outcome" in report

    def test_run_spec_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            run_spec(tiny_spec(), mode="train")


class TestSimulate:
    def test_simulate_default_demand(self):
        spec = tiny_spec(horizon=200.0)
        metrics = simulate_spec(spec)
        assert [m["name"] for m in metrics] == ["sc1", "sc2"]
        assert all(0.0 <= m["utilization"] <= 1.0 for m in metrics)

    def test_simulate_is_seed_deterministic(self):
        spec = tiny_spec(horizon=200.0)
        assert simulate_spec(spec) == simulate_spec(spec)

    def test_mmpp_demand_drives_the_simulator(self):
        # A library scenario with MMPP arrivals must run through the
        # arrival-process path (not plain Poisson) without error.
        from repro.scenarios.library import library_index

        spec = next(
            s for s in library_index().values() if s.family == "diurnal"
        )
        metrics = simulate_spec(spec, horizon=200.0)
        assert len(metrics) == len(spec.clouds)
