"""Cross-backend sweep: subset selection, bitwise identity, reports."""

import json

from repro.scenarios.sweep import (
    SweepRow,
    render,
    report_dict,
    smoke_subset,
    sweep_scenarios,
    write_report,
)

from tests.scenarios.helpers import tiny_spec


class TestSmokeSubset:
    def test_picks_cheapest_deterministically(self):
        specs = [
            tiny_spec("small-a"),
            tiny_spec("small-b"),
            tiny_spec("small-c"),
        ]
        subset = smoke_subset(specs, count=2)
        assert [s.name for s in subset] == ["small-a", "small-b"]

    def test_library_subset_is_stable(self):
        from repro.scenarios.library import full_library

        specs = full_library()
        assert smoke_subset(specs) == smoke_subset(list(reversed(specs)))


class TestSweep:
    def test_serial_and_thread_agree_bitwise(self, tmp_path):
        rows = sweep_scenarios(
            [tiny_spec()], backends=("serial", "thread"), workers=2
        )
        assert len(rows) == 1
        row = rows[0]
        assert row.identical
        assert set(row.digests) == {"serial", "thread"}
        assert row.k == 2

    def test_report_artifacts(self, tmp_path):
        rows = sweep_scenarios([tiny_spec()], backends=("serial",), workers=1)
        path = write_report(rows, ("serial",), 1, tmp_path)
        assert (tmp_path / "sweep.txt").exists()
        report = json.loads(path.read_text())
        assert report["all_identical"] is True
        assert report["rows"][0]["name"] == "tiny-pair"
        # Welfare ships as float.hex so the artifact itself is bitwise.
        assert report["rows"][0]["welfare"] == float(rows[0].welfare).hex()

    def test_render_flags_mismatch(self):
        row = SweepRow(
            name="x",
            family="custom",
            k=2,
            digests={"serial": "a" * 64, "thread": "b" * 64},
            welfare=1.0,
            equilibrium=(1, 1),
            iterations=3,
        )
        assert not row.identical
        table = render([row])
        assert "False" in table

    def test_report_dict_shape(self):
        rows = sweep_scenarios([tiny_spec()], backends=("serial",), workers=1)
        report = report_dict(rows, ("serial",), 1)
        assert report["backends"] == ["serial"]
        assert report["workers"] == 1
