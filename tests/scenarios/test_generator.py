"""Generator determinism and corpus-shape guarantees."""

from collections import Counter

from repro.scenarios.generator import (
    DEFAULT_SEED,
    FAMILIES,
    generate_library,
    library_digest,
    library_manifest,
)
from repro.scenarios.schema import SCHEMA_VERSION


class TestDeterminism:
    def test_same_seed_identical_digest(self):
        first = generate_library(DEFAULT_SEED)
        second = generate_library(DEFAULT_SEED)
        assert library_digest(first) == library_digest(second)
        assert [s.canonical_json() for s in first] == [
            s.canonical_json() for s in second
        ]

    def test_different_seeds_disjoint_hashes(self):
        a = {s.content_hash() for s in generate_library(1)}
        b = {s.content_hash() for s in generate_library(2)}
        assert not a & b

    def test_different_seeds_different_digest(self):
        assert library_digest(generate_library(1)) != library_digest(
            generate_library(2)
        )


class TestCorpusShape:
    def test_at_least_100_scenarios(self):
        specs = generate_library(DEFAULT_SEED)
        assert len(specs) >= 100
        assert len(specs) == sum(count for _, count in FAMILIES.values())

    def test_family_counts(self):
        counts = Counter(s.family for s in generate_library(DEFAULT_SEED))
        assert counts == {family: count for family, (_, count) in FAMILIES.items()}

    def test_names_unique(self):
        names = [s.name for s in generate_library(DEFAULT_SEED)]
        assert len(set(names)) == len(names)

    def test_mmpp_families_carry_mmpp_demand(self):
        specs = generate_library(DEFAULT_SEED)
        for spec in specs:
            if spec.family in ("diurnal", "bursty"):
                assert all(p.arrival.kind == "mmpp" for p in spec.demand)
            if spec.family == "heavytail":
                assert all(p.service.kind != "exponential" for p in spec.demand)

    def test_run_seeds_are_derived_per_scenario(self):
        specs = generate_library(DEFAULT_SEED)
        seeds = [s.run.seed for s in specs]
        assert len(set(seeds)) == len(seeds)


class TestManifest:
    def test_manifest_structure(self):
        specs = generate_library(DEFAULT_SEED)
        manifest = library_manifest(specs, seed=DEFAULT_SEED)
        assert manifest["schema_version"] == SCHEMA_VERSION
        assert manifest["seed"] == DEFAULT_SEED
        assert manifest["count"] == len(specs)
        assert manifest["digest"] == library_digest(specs)
        names = [entry["name"] for entry in manifest["scenarios"]]
        assert names == sorted(names)

    def test_digest_is_order_independent(self):
        specs = list(generate_library(DEFAULT_SEED))
        assert library_digest(specs) == library_digest(list(reversed(specs)))
