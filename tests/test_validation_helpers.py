"""Tests for the shared validation helpers and the exception hierarchy."""

import math

import pytest

from repro import _validation as v
from repro.exceptions import (
    ConfigurationError,
    ConvergenceError,
    GameError,
    SCShareError,
    SimulationError,
    SolverError,
    StateSpaceError,
    TruncationError,
)


class TestNumericChecks:
    def test_check_positive(self):
        assert v.check_positive(1.5, "x") == 1.5
        for bad in (0.0, -1.0, math.nan, math.inf):
            with pytest.raises(ConfigurationError):
                v.check_positive(bad, "x")

    def test_check_non_negative(self):
        assert v.check_non_negative(0.0, "x") == 0.0
        with pytest.raises(ConfigurationError):
            v.check_non_negative(-0.1, "x")

    def test_check_finite_coerces_to_float(self):
        assert v.check_finite(3, "x") == 3.0
        with pytest.raises(ConfigurationError):
            v.check_finite("abc", "x")
        with pytest.raises(ConfigurationError):
            v.check_finite(math.inf, "x")

    def test_check_probability(self):
        assert v.check_probability(0.5, "p") == 0.5
        for bad in (-0.01, 1.01):
            with pytest.raises(ConfigurationError):
                v.check_probability(bad, "p")

    def test_check_in_range(self):
        assert v.check_in_range(2.0, "x", 1.0, 3.0) == 2.0
        with pytest.raises(ConfigurationError):
            v.check_in_range(4.0, "x", 1.0, 3.0)


class TestIntegerChecks:
    def test_check_int_accepts_integral_floats_via_numpy(self):
        import numpy as np

        assert v.check_int(np.int64(4), "n") == 4

    def test_check_int_rejects_fractional(self):
        with pytest.raises(ConfigurationError):
            v.check_int(1.5, "n")

    def test_check_positive_int(self):
        assert v.check_positive_int(3, "n") == 3
        with pytest.raises(ConfigurationError):
            v.check_positive_int(0, "n")

    def test_check_non_negative_int(self):
        assert v.check_non_negative_int(0, "n") == 0
        with pytest.raises(ConfigurationError):
            v.check_non_negative_int(-1, "n")


class TestStructuralChecks:
    def test_require(self):
        v.require(True, "fine")
        with pytest.raises(ConfigurationError, match="broken"):
            v.require(False, "broken")

    def test_check_sequence_length(self):
        assert v.check_sequence_length([1, 2], "seq", 2) == [1, 2]
        with pytest.raises(ConfigurationError):
            v.check_sequence_length([1], "seq", 2)


class TestExceptionHierarchy:
    def test_all_derive_from_base(self):
        for exc in (
            ConfigurationError,
            ConvergenceError,
            GameError,
            SimulationError,
            SolverError,
            StateSpaceError,
            TruncationError,
        ):
            assert issubclass(exc, SCShareError)

    def test_configuration_error_is_value_error(self):
        # Callers using plain ValueError handling still catch config bugs.
        assert issubclass(ConfigurationError, ValueError)

    def test_convergence_is_solver_error(self):
        assert issubclass(ConvergenceError, SolverError)
