"""Tests for the caching utility evaluator."""

import pytest

from repro.core.small_cloud import FederationScenario, SmallCloud
from repro.market.evaluator import UtilityEvaluator
from repro.perf.base import PerformanceModel
from repro.perf.params import PerformanceParams


class CountingModel(PerformanceModel):
    """A trivial model that counts its evaluations."""

    def __init__(self):
        self.calls = 0

    def evaluate(self, scenario):
        self.calls += 1
        return [
            PerformanceParams(
                lent_mean=float(c.shared_vms) * 0.1,
                borrowed_mean=0.2,
                forward_rate=0.05,
                utilization=0.7,
            )
            for c in scenario
        ]


@pytest.fixture
def scenario():
    return FederationScenario((
        SmallCloud(name="a", vms=10, arrival_rate=7.0, federation_price=0.5),
        SmallCloud(name="b", vms=10, arrival_rate=8.0, federation_price=0.5),
    ))


class TestCaching:
    def test_same_vector_evaluated_once(self, scenario):
        model = CountingModel()
        evaluator = UtilityEvaluator(scenario, model)
        evaluator.params((3, 4))
        evaluator.params((3, 4))
        evaluator.params([3, 4])  # list form hits the same key
        assert model.calls == 1
        assert evaluator.cache_size() == 1

    def test_different_vectors_evaluated_separately(self, scenario):
        model = CountingModel()
        evaluator = UtilityEvaluator(scenario, model)
        evaluator.params((3, 4))
        evaluator.params((4, 3))
        assert model.calls == 2

    def test_shared_cache_across_price_points(self, scenario):
        model = CountingModel()
        cache = {}
        first = UtilityEvaluator(scenario, model, params_cache=cache)
        first.params((2, 2))
        repriced = scenario.with_price_ratio(0.9)
        second = UtilityEvaluator(repriced, model, params_cache=cache)
        second.params((2, 2))
        assert model.calls == 1  # performance is price-independent

    def test_evaluation_counter(self, scenario):
        evaluator = UtilityEvaluator(scenario, CountingModel())
        evaluator.params((0, 0))
        evaluator.params((1, 1))
        evaluator.params((0, 0))
        assert evaluator.evaluations == 2


class TestTargetPath:
    def test_target_solve_counts_separately(self, scenario):
        model = CountingModel()
        evaluator = UtilityEvaluator(scenario, model)
        evaluator.utility((2, 3), 0)
        assert evaluator.evaluations == 0
        assert evaluator.target_evaluations == 1
        assert model.calls == 1  # the base class delegates to evaluate()

    def test_full_cache_preferred_over_target_solve(self, scenario):
        model = CountingModel()
        evaluator = UtilityEvaluator(scenario, model)
        evaluator.params((2, 3))
        evaluator.utility((2, 3), 0)
        evaluator.cost((2, 3), 1)
        assert model.calls == 1
        assert evaluator.target_evaluations == 0

    def test_target_queries_cached_per_index(self, scenario):
        model = CountingModel()
        evaluator = UtilityEvaluator(scenario, model)
        evaluator.utility((2, 3), 0)
        evaluator.cost((2, 3), 0)
        assert model.calls == 1
        evaluator.utility((2, 3), 1)
        assert model.calls == 2

    def test_target_utility_matches_full_vector_utility(self, scenario):
        target_first = UtilityEvaluator(scenario, CountingModel())
        full_first = UtilityEvaluator(scenario, CountingModel())
        assert target_first.utility((2, 3), 1) == full_first.utilities((2, 3))[1]

    def test_utilities_populates_shared_full_cache(self, scenario):
        evaluator = UtilityEvaluator(scenario, CountingModel())
        evaluator.utilities((2, 3))
        assert evaluator.evaluations == 1
        assert evaluator.target_evaluations == 0
        assert evaluator.cache_size() == 1

    def test_cache_info_reports_both_tiers(self, scenario):
        evaluator = UtilityEvaluator(scenario, CountingModel())
        evaluator.utilities((2, 3))
        evaluator.utility((4, 1), 0)
        info = evaluator.cache_info()
        assert info["params_cache_size"] == 1
        assert info["target_cache_size"] == 1
        assert info["model_evaluations"] == 1
        assert info["target_evaluations"] == 1


class TestQuantities:
    def test_cost_uses_equation_one(self, scenario):
        evaluator = UtilityEvaluator(scenario, CountingModel())
        cost = evaluator.cost((3, 0), 0)
        # From CountingModel: P=0.05, O=0.2, I=0.3; prices C^P=1, C^G=0.5.
        assert cost == pytest.approx(0.05 * 1.0 + (0.2 - 0.3) * 0.5)

    def test_zero_share_has_zero_utility(self, scenario):
        evaluator = UtilityEvaluator(scenario, CountingModel())
        assert evaluator.utility((0, 5), 0) == 0.0

    def test_utilities_vector(self, scenario):
        evaluator = UtilityEvaluator(scenario, CountingModel())
        values = evaluator.utilities((2, 3))
        assert values == [evaluator.utility((2, 3), 0), evaluator.utility((2, 3), 1)]

    def test_welfare_consistent_with_fairness_module(self, scenario):
        from repro.market.fairness import welfare

        evaluator = UtilityEvaluator(scenario, CountingModel())
        sharing = (2, 3)
        assert evaluator.welfare(sharing, 0.0) == pytest.approx(
            welfare(0.0, sharing, evaluator.utilities(sharing))
        )

    def test_baseline_exposed(self, scenario):
        evaluator = UtilityEvaluator(scenario, CountingModel())
        base = evaluator.baseline(0)
        assert base.cost > 0
        assert 0 < base.utilization < 1

    def test_gamma_validated(self, scenario):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            UtilityEvaluator(scenario, CountingModel(), gamma=2.0)


class TestSeedTarget:
    def test_seed_then_query_skips_model(self, scenario):
        model = CountingModel()
        evaluator = UtilityEvaluator(scenario, model)
        params = PerformanceParams(
            lent_mean=0.1, borrowed_mean=0.2, forward_rate=0.05, utilization=0.7
        )
        assert evaluator.seed_target([1, 0], 0, params) is True
        assert evaluator.params_target([1, 0], 0) == params
        assert model.calls == 0
        assert evaluator.target_evaluations == 1

    def test_duplicate_seed_is_ignored(self, scenario):
        evaluator = UtilityEvaluator(scenario, CountingModel())
        params = PerformanceParams(
            lent_mean=0.1, borrowed_mean=0.2, forward_rate=0.05, utilization=0.7
        )
        assert evaluator.seed_target([1, 0], 0, params) is True
        assert evaluator.seed_target([1, 0], 0, params) is False
        assert evaluator.target_evaluations == 1

    def test_seed_after_evaluation_is_ignored(self, scenario):
        evaluator = UtilityEvaluator(scenario, CountingModel())
        first = evaluator.params_target([1, 0], 0)
        replacement = PerformanceParams(
            lent_mean=9.9, borrowed_mean=9.9, forward_rate=9.9, utilization=0.9
        )
        assert evaluator.seed_target([1, 0], 0, replacement) is False
        # First writer wins: the evaluated result stays authoritative.
        assert evaluator.params_target([1, 0], 0) == first
