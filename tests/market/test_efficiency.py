"""Tests for the social optimum search and federation efficiency."""

import math

import pytest

from repro.core.small_cloud import FederationScenario, SmallCloud
from repro.exceptions import GameError
from repro.market.efficiency import federation_efficiency, social_optimum
from repro.market.evaluator import UtilityEvaluator
from repro.perf.base import PerformanceModel
from repro.perf.params import PerformanceParams


class PeakModel(PerformanceModel):
    """Utilities peak when every SC shares exactly half its VMs."""

    def evaluate(self, scenario):
        results = []
        for cloud in scenario:
            target = cloud.vms // 2
            closeness = 1.0 / (1.0 + abs(cloud.shared_vms - target))
            results.append(
                PerformanceParams(
                    lent_mean=closeness,
                    borrowed_mean=0.0,
                    forward_rate=0.0,
                    utilization=min(0.5 + 0.04 * cloud.shared_vms, 1.0),
                )
            )
        return results


@pytest.fixture
def evaluator():
    scenario = FederationScenario((
        SmallCloud(name="a", vms=10, arrival_rate=7.0, federation_price=0.5),
        SmallCloud(name="b", vms=10, arrival_rate=8.0, federation_price=0.5),
    ))
    return UtilityEvaluator(scenario, PeakModel())


class TestSocialOptimum:
    def test_brute_force_finds_peak(self, evaluator):
        spaces = [list(range(11)), list(range(11))]
        profile, value = social_optimum(evaluator, 0.0, spaces, method="brute")
        assert profile == (5, 5)
        assert value > 0

    def test_ascent_matches_brute_force(self, evaluator):
        spaces = [list(range(11)), list(range(11))]
        brute = social_optimum(evaluator, 0.0, spaces, method="brute")
        ascent = social_optimum(evaluator, 0.0, spaces, method="ascent")
        assert ascent[1] == pytest.approx(brute[1])

    def test_auto_dispatches_by_size(self, evaluator):
        small = [list(range(3)), list(range(3))]
        profile, _ = social_optimum(evaluator, 0.0, small, method="auto")
        assert len(profile) == 2
        big = [list(range(11)), list(range(11))]
        profile, _ = social_optimum(
            evaluator, 0.0, big, method="auto", brute_force_limit=10
        )
        assert len(profile) == 2  # went through ascent without error

    def test_empty_space_rejected(self, evaluator):
        with pytest.raises(GameError):
            social_optimum(evaluator, 0.0, [[], [1]])

    def test_unknown_method_rejected(self, evaluator):
        with pytest.raises(GameError):
            social_optimum(evaluator, 0.0, [[0], [0]], method="sorcery")

    def test_works_for_max_min_alpha(self, evaluator):
        # Under the participants-only convention, max-min may legitimately
        # exclude the weakest SC (set its share to 0) to raise the minimum;
        # the optimum therefore dominates the everyone-at-peak profile.
        spaces = [list(range(11)), list(range(11))]
        profile, value = social_optimum(evaluator, math.inf, spaces, method="brute")
        assert value >= evaluator.welfare((5, 5), math.inf) - 1e-12
        assert value == pytest.approx(
            evaluator.welfare(profile, math.inf)
        )


class TestFederationEfficiency:
    def test_ratio(self):
        assert federation_efficiency(3.0, 4.0) == pytest.approx(0.75)

    def test_perfect_efficiency(self):
        assert federation_efficiency(4.0, 4.0) == 1.0

    def test_no_participation_is_zero(self):
        assert federation_efficiency(0.0, 4.0) == 0.0

    def test_minus_infinity_welfare_is_zero(self):
        assert federation_efficiency(-math.inf, 4.0) == 0.0

    def test_degenerate_optimum_is_zero(self):
        assert federation_efficiency(1.0, 0.0) == 0.0
        assert federation_efficiency(1.0, -2.0) == 0.0

    def test_clamped_at_one(self):
        # An inexact (heuristic) optimum can be beaten; report 100%.
        assert federation_efficiency(5.0, 4.0) == 1.0
