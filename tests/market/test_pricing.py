"""Tests for price-ratio grids."""

import pytest

from repro.exceptions import ConfigurationError
from repro.market.pricing import price_ratio_grid


class TestPriceRatioGrid:
    def test_default_grid(self):
        grid = price_ratio_grid()
        assert grid[0] == pytest.approx(0.1)
        assert grid[-1] == 1.0
        assert len(grid) == 10  # 11 points minus the excluded zero

    def test_zero_included_on_request(self):
        grid = price_ratio_grid(points=11, include_zero=True)
        assert grid[0] == 0.0
        assert len(grid) == 11

    def test_custom_bounds(self):
        grid = price_ratio_grid(points=3, low=0.4, high=0.8)
        assert grid == pytest.approx([0.4, 0.6, 0.8])

    def test_monotone(self):
        grid = price_ratio_grid(points=20)
        assert grid == sorted(grid)

    def test_too_few_points_rejected(self):
        with pytest.raises(ConfigurationError):
            price_ratio_grid(points=1)

    def test_bad_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            price_ratio_grid(low=0.9, high=0.3)
        with pytest.raises(ConfigurationError):
            price_ratio_grid(high=1.5)
