"""Tests for the Sect. VII cost-function extensions."""

import pytest

from repro.core.small_cloud import FederationScenario, SmallCloud
from repro.market.cost import operating_cost
from repro.market.extensions import (
    ExtendedUtilityEvaluator,
    PowerAwareCost,
    TransferAwareCost,
)
from repro.perf.params import PerformanceParams
from tests.helpers import StubModel


def cloud(**overrides):
    defaults = dict(name="sc", vms=10, arrival_rate=7.0, federation_price=0.5)
    defaults.update(overrides)
    return SmallCloud(**defaults)


def params(lent=1.0, borrowed=0.5, forward=0.2, rho=0.7):
    return PerformanceParams(
        lent_mean=lent, borrowed_mean=borrowed, forward_rate=forward, utilization=rho
    )


class TestPowerAwareCost:
    def test_adds_energy_for_busy_vms(self):
        cost_fn = PowerAwareCost(energy_price=0.1)
        c = cloud()
        p = params(rho=0.7)
        expected = operating_cost(c, p) + 0.1 * 0.7 * 10
        assert cost_fn(c, p) == pytest.approx(expected)

    def test_zero_energy_price_is_base_cost(self):
        cost_fn = PowerAwareCost(energy_price=0.0)
        c, p = cloud(), params()
        assert cost_fn(c, p) == pytest.approx(operating_cost(c, p))

    def test_negative_price_rejected(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            PowerAwareCost(energy_price=-1.0)


class TestTransferAwareCost:
    def test_remote_work_is_taxed(self):
        cost_fn = TransferAwareCost(transfer_price=0.2)
        c = cloud()
        p = params(borrowed=2.0, forward=0.5)
        expected = operating_cost(c, p) + 0.2 * (2.0 + 0.5 / c.service_rate)
        assert cost_fn(c, p) == pytest.approx(expected)

    def test_local_work_untaxed(self):
        cost_fn = TransferAwareCost(transfer_price=5.0)
        c = cloud()
        p = params(lent=3.0, borrowed=0.0, forward=0.0)
        assert cost_fn(c, p) == pytest.approx(operating_cost(c, p))


class TestExtendedEvaluator:
    def scenario(self):
        return FederationScenario((
            cloud(name="lo", arrival_rate=6.0),
            cloud(name="hi", arrival_rate=9.5),
        ))

    def test_plain_extension_matches_base_when_neutral(self):
        from repro.market.evaluator import UtilityEvaluator

        scenario = self.scenario()
        base = UtilityEvaluator(scenario, StubModel(), gamma=0.0)
        extended = ExtendedUtilityEvaluator(
            scenario, StubModel(), cost_function=PowerAwareCost(0.0), gamma=0.0
        )
        sharing = (3, 2)
        for i in range(2):
            assert extended.cost(sharing, i) == pytest.approx(base.cost(sharing, i))
            assert extended.utility(sharing, i) == pytest.approx(
                base.utility(sharing, i)
            )

    def test_transfer_tax_discourages_borrowing(self):
        scenario = self.scenario()
        cheap = ExtendedUtilityEvaluator(
            scenario, StubModel(), cost_function=TransferAwareCost(0.0), gamma=0.0
        )
        taxed = ExtendedUtilityEvaluator(
            scenario, StubModel(), cost_function=TransferAwareCost(2.0), gamma=0.0
        )
        # The high-load SC borrows; taxing transfers raises its cost.
        sharing = (4, 2)
        assert taxed.cost(sharing, 1) > cheap.cost(sharing, 1)

    def test_game_runs_with_extension(self):
        from repro.game.best_response import BestResponder
        from repro.game.repeated_game import RepeatedGame
        from repro.game.strategy import full_strategy_spaces

        scenario = self.scenario()
        evaluator = ExtendedUtilityEvaluator(
            scenario, StubModel(), cost_function=PowerAwareCost(0.05), gamma=0.0
        )
        spaces = full_strategy_spaces(scenario)
        result = RepeatedGame(BestResponder(evaluator, spaces)).run()
        assert result.converged

    def test_zero_share_utility_remains_zero(self):
        evaluator = ExtendedUtilityEvaluator(
            self.scenario(), StubModel(), cost_function=PowerAwareCost(0.1), gamma=0.0
        )
        assert evaluator.utility((0, 3), 0) == 0.0
