"""Tests for the Eq. (3) alpha-fairness welfare."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as hyp

from repro.exceptions import ConfigurationError
from repro.market.fairness import (
    ALPHA_MAX_MIN,
    ALPHA_PROPORTIONAL,
    ALPHA_UTILITARIAN,
    welfare,
)


class TestUtilitarian:
    def test_weighted_sum(self):
        # alpha=0: sum S_i U_i (the 1/(1-alpha) factor is 1).
        value = welfare(ALPHA_UTILITARIAN, [2, 3], [1.0, 4.0])
        assert value == pytest.approx(2 * 1.0 + 3 * 4.0)

    def test_zero_share_contributes_nothing(self):
        assert welfare(0.0, [0, 3], [100.0, 2.0]) == pytest.approx(6.0)

    def test_nobody_participates_is_zero(self):
        assert welfare(0.0, [0, 0], [5.0, 5.0]) == 0.0

    def test_zero_utility_participant_contributes_zero(self):
        assert welfare(0.0, [1, 1], [0.0, 2.0]) == pytest.approx(2.0)


class TestProportional:
    def test_weighted_log_sum(self):
        value = welfare(ALPHA_PROPORTIONAL, [2, 1], [math.e, math.e**2])
        assert value == pytest.approx(2 * 1.0 + 1 * 2.0)

    def test_starved_participant_is_minus_infinity(self):
        assert welfare(1.0, [1, 1], [0.0, 5.0]) == -math.inf

    def test_zero_share_zero_utility_is_fine(self):
        # 0 * log 0 := 0 by the weight-zero convention.
        assert welfare(1.0, [0, 2], [0.0, 1.0]) == pytest.approx(0.0)


class TestMaxMin:
    def test_minimum_over_participants(self):
        assert welfare(ALPHA_MAX_MIN, [1, 2, 3], [4.0, 1.5, 8.0]) == 1.5

    def test_non_participants_excluded_from_min(self):
        assert welfare(ALPHA_MAX_MIN, [0, 2], [0.0, 3.0]) == 3.0

    def test_empty_federation(self):
        assert welfare(ALPHA_MAX_MIN, [0, 0], [1.0, 1.0]) == 0.0


class TestGeneralAlpha:
    def test_formula_for_alpha_two(self):
        # alpha=2: sum S U^{-1} / (-1) = -sum S / U.
        value = welfare(2.0, [1, 1], [2.0, 4.0])
        assert value == pytest.approx(-(1 / 2.0 + 1 / 4.0))

    def test_alpha_half(self):
        value = welfare(0.5, [1], [4.0])
        assert value == pytest.approx(4.0**0.5 / 0.5)

    def test_zero_utility_blows_up_only_above_one(self):
        assert welfare(0.5, [1], [0.0]) == 0.0
        assert welfare(2.0, [1], [0.0]) == -math.inf

    def test_negative_alpha_rejected(self):
        with pytest.raises(ConfigurationError):
            welfare(-1.0, [1], [1.0])

    def test_negative_utility_rejected(self):
        with pytest.raises(ConfigurationError):
            welfare(0.0, [1], [-1.0])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            welfare(0.0, [1, 2], [1.0])

    @given(
        shares=hyp.lists(hyp.integers(min_value=0, max_value=10), min_size=1, max_size=5),
        scale=hyp.floats(min_value=1.1, max_value=5.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_scaling_utilities_up_never_hurts(self, shares, scale):
        utilities = [float(s + 1) for s in shares]
        scaled = [u * scale for u in utilities]
        for alpha in (0.0, 0.5, 1.0, 2.0, ALPHA_MAX_MIN):
            assert welfare(alpha, shares, scaled) >= welfare(alpha, shares, utilities) - 1e-12
