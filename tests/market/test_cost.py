"""Tests for the Eq. (1) cost function and the no-sharing baseline."""

import pytest

from repro.core.small_cloud import SmallCloud
from repro.market.cost import baseline_cost, baseline_metrics, operating_cost
from repro.perf.params import PerformanceParams


def cloud(**overrides) -> SmallCloud:
    defaults = dict(
        name="sc",
        vms=10,
        arrival_rate=7.0,
        public_price=2.0,
        federation_price=1.0,
    )
    defaults.update(overrides)
    return SmallCloud(**defaults)


def params(lent=0.0, borrowed=0.0, forward=0.0, rho=0.5) -> PerformanceParams:
    return PerformanceParams(
        lent_mean=lent,
        borrowed_mean=borrowed,
        forward_rate=forward,
        utilization=rho,
    )


class TestOperatingCost:
    def test_equation_one(self):
        # C = Pbar C^P + (Obar - Ibar) C^G.
        value = operating_cost(cloud(), params(lent=1.0, borrowed=2.5, forward=0.4))
        assert value == pytest.approx(0.4 * 2.0 + (2.5 - 1.0) * 1.0)

    def test_net_lender_earns_revenue(self):
        value = operating_cost(cloud(), params(lent=3.0, borrowed=0.5, forward=0.0))
        assert value == pytest.approx(-2.5)  # negative cost = profit

    def test_isolated_sc_pays_only_forwarding(self):
        value = operating_cost(cloud(), params(forward=0.7))
        assert value == pytest.approx(1.4)

    def test_cost_monotone_in_public_price(self):
        p = params(forward=0.5, borrowed=1.0)
        cheap = operating_cost(cloud(public_price=1.0, federation_price=0.5), p)
        pricey = operating_cost(cloud(public_price=3.0, federation_price=0.5), p)
        assert pricey > cheap

    def test_borrower_cost_monotone_in_federation_price(self):
        p = params(borrowed=2.0, forward=0.1)
        cheap = operating_cost(cloud(federation_price=0.2), p)
        pricey = operating_cost(cloud(federation_price=1.8), p)
        assert pricey > cheap


class TestBaseline:
    def test_baseline_cost_is_forward_rate_times_price(self):
        c = cloud()
        metrics = baseline_metrics(c)
        assert metrics.cost == pytest.approx(metrics.forward_rate * c.public_price)
        assert baseline_cost(c) == pytest.approx(metrics.cost)

    def test_baseline_matches_no_sharing_model(self):
        from repro.queueing.forwarding import NoSharingModel

        c = cloud()
        model = NoSharingModel(c.vms, c.arrival_rate, c.service_rate, c.sla_bound)
        metrics = baseline_metrics(c)
        assert metrics.forward_rate == pytest.approx(model.forward_rate)
        assert metrics.utilization == pytest.approx(model.utilization)

    def test_baseline_grows_with_load(self):
        low = baseline_cost(cloud(arrival_rate=5.0))
        high = baseline_cost(cloud(arrival_rate=9.0))
        assert high > low

    def test_baseline_independent_of_federation_price(self):
        a = baseline_cost(cloud(federation_price=0.1))
        b = baseline_cost(cloud(federation_price=1.9))
        assert a == b
