"""Tests for the Eq. (2) utility function."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as hyp

from repro.exceptions import ConfigurationError
from repro.market.utility import UF0, UF1, utility


class TestUF0:
    def test_squared_cost_reduction(self):
        value = utility(
            baseline_cost=1.0, cost=0.4, baseline_utilization=0.5,
            utilization=0.6, gamma=UF0,
        )
        assert value == pytest.approx(0.36)

    def test_no_reduction_gives_zero(self):
        assert utility(1.0, 1.0, 0.5, 0.6, gamma=UF0) == 0.0

    def test_cost_increase_clamped_to_zero(self):
        assert utility(1.0, 1.5, 0.5, 0.6, gamma=UF0) == 0.0

    def test_utilization_irrelevant(self):
        a = utility(1.0, 0.5, 0.5, 0.51, gamma=UF0)
        b = utility(1.0, 0.5, 0.5, 0.99, gamma=UF0)
        assert a == b


class TestUF1:
    def test_divides_by_utilization_gain(self):
        value = utility(1.0, 0.4, 0.5, 0.7, gamma=UF1)
        assert value == pytest.approx(0.36 / 0.2)

    def test_zero_gain_gives_zero(self):
        assert utility(1.0, 0.4, 0.5, 0.5, gamma=UF1) == 0.0

    def test_negative_gain_gives_zero(self):
        assert utility(1.0, 0.4, 0.6, 0.5, gamma=UF1) == 0.0

    def test_small_gain_amplifies_utility(self):
        # gamma=1 gives the highest weight to utilization (paper: since
        # 0 < delta rho <= 1, dividing amplifies).
        tight = utility(1.0, 0.4, 0.5, 0.55, gamma=UF1)
        loose = utility(1.0, 0.4, 0.5, 0.9, gamma=UF1)
        assert tight > loose


class TestGeneralGamma:
    def test_interpolates_between_uf0_and_uf1(self):
        args = dict(baseline_cost=1.0, cost=0.4, baseline_utilization=0.5, utilization=0.7)
        low = utility(**args, gamma=0.0)
        mid = utility(**args, gamma=0.5)
        high = utility(**args, gamma=1.0)
        assert low < mid < high  # gain < 1, so dividing by gain^gamma grows

    def test_gamma_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            utility(1.0, 0.4, 0.5, 0.7, gamma=1.5)
        with pytest.raises(ConfigurationError):
            utility(1.0, 0.4, 0.5, 0.7, gamma=-0.1)

    @given(
        baseline=hyp.floats(min_value=0.0, max_value=10.0),
        cost=hyp.floats(min_value=0.0, max_value=10.0),
        rho0=hyp.floats(min_value=0.0, max_value=1.0),
        rho=hyp.floats(min_value=0.0, max_value=1.0),
        gamma=hyp.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=120, deadline=None)
    def test_utility_never_negative(self, baseline, cost, rho0, rho, gamma):
        assert utility(baseline, cost, rho0, rho, gamma) >= 0.0

    @given(
        reduction=hyp.floats(min_value=0.01, max_value=5.0),
        gamma=hyp.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_cost_reduction(self, reduction, gamma):
        small = utility(1.0 + reduction, 1.0, 0.5, 0.8, gamma)
        big = utility(1.0 + 2 * reduction, 1.0, 0.5, 0.8, gamma)
        assert big > small
