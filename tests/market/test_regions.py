"""Tests for the price-region analysis."""

import pytest

from repro.bench.fig7 import Fig7Row
from repro.exceptions import ConfigurationError
from repro.market.regions import analyze_regions


def row(ratio, utilitarian, proportional, maxmin, equilibrium=(1, 1, 1)):
    return Fig7Row(
        loads="spread",
        gamma=0.0,
        price_ratio=ratio,
        equilibrium=equilibrium,
        iterations=3,
        efficiency={
            "utilitarian": utilitarian,
            "proportional": proportional,
            "max-min": maxmin,
        },
        welfare={"utilitarian": 1.0, "proportional": 1.0, "max-min": 1.0},
    )


@pytest.fixture
def paper_shaped_rows():
    """A synthetic sweep with the paper's three-regions structure."""
    return [
        row(0.1, 0.3, 0.95, 0.5),
        row(0.3, 0.5, 0.90, 0.7),
        row(0.5, 0.7, 0.60, 0.95),
        row(0.7, 0.9, 0.40, 0.80),
        row(0.9, 0.95, 0.20, 0.50),
        row(1.0, 0.0, 0.0, 0.0, equilibrium=(0, 0, 0)),
    ]


class TestAnalyzeRegions:
    def test_three_regions_recovered(self, paper_shaped_rows):
        report = analyze_regions(paper_shaped_rows, tolerance=0.1)
        assert report.region("proportional").best_ratio == 0.1
        assert report.region("max-min").best_ratio == 0.5
        assert report.region("utilitarian").best_ratio == 0.9

    def test_region_ranges_use_tolerance(self, paper_shaped_rows):
        report = analyze_regions(paper_shaped_rows, tolerance=0.1)
        proportional = report.region("proportional")
        assert proportional.low == 0.1
        assert proportional.high == 0.3  # 0.90 is within 0.1 of 0.95

    def test_collapse_ratio_reported(self, paper_shaped_rows):
        report = analyze_regions(paper_shaped_rows)
        assert report.collapse_ratios == (1.0,)

    def test_unknown_objective_rejected(self, paper_shaped_rows):
        report = analyze_regions(paper_shaped_rows)
        with pytest.raises(ConfigurationError):
            report.region("egalitarian")

    def test_empty_rows_rejected(self):
        with pytest.raises(ConfigurationError):
            analyze_regions([])
