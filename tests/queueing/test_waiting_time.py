"""Tests for the waiting-time analysis of the SLA-gated queue."""

import pytest

from repro.core.small_cloud import FederationScenario, SmallCloud
from repro.queueing.forwarding import NoSharingModel
from repro.queueing.waiting_time import (
    WaitingTimeAnalysis,
    wait_cdf_at_admission,
)
from repro.sim.federation import FederationSimulator

pytestmark = pytest.mark.slow


class TestWaitCdf:
    def test_erlang_one_is_exponential(self):
        import math

        # Behind nobody with c=1: wait ~ Exp(mu).
        t, mu = 0.7, 1.3
        assert wait_cdf_at_admission(0, 1, mu, t) == pytest.approx(
            1.0 - math.exp(-mu * t)
        )

    def test_monotone_in_t(self):
        values = [wait_cdf_at_admission(3, 5, 1.0, t) for t in (0.1, 0.5, 1.0, 3.0)]
        assert values == sorted(values)

    def test_more_waiting_ahead_waits_longer(self):
        near = wait_cdf_at_admission(1, 5, 1.0, 0.5)
        far = wait_cdf_at_admission(6, 5, 1.0, 0.5)
        assert far < near

    def test_edge_cases(self):
        assert wait_cdf_at_admission(-1, 5, 1.0, 0.5) == 1.0
        assert wait_cdf_at_admission(2, 0, 1.0, 0.5) == 0.0
        assert wait_cdf_at_admission(2, 5, 1.0, 0.0) == 0.0


class TestWaitingTimeAnalysis:
    @pytest.fixture(scope="class")
    def model(self):
        return NoSharingModel(servers=10, arrival_rate=8.5, service_rate=1.0, sla_bound=0.2)

    @pytest.fixture(scope="class")
    def analysis(self, model):
        return WaitingTimeAnalysis(model)

    def test_survival_decreasing(self, analysis):
        values = [analysis.survival(t) for t in (0.0, 0.1, 0.2, 0.5, 1.0)]
        assert values == sorted(values, reverse=True)

    def test_survival_at_zero_is_delay_probability(self, analysis):
        summary = analysis.summary()
        assert analysis.survival(0.0) == pytest.approx(summary.delay_probability)

    def test_residual_violation_is_small(self, analysis, model):
        # The admission gate only accepts requests likely to start within
        # Q, so the leaked violation mass is a minority of served requests.
        summary = analysis.summary()
        assert 0.0 <= summary.residual_violation < 0.5
        assert summary.residual_violation == pytest.approx(
            analysis.survival(model.sla_bound)
        )

    def test_mean_wait_consistency(self, analysis):
        summary = analysis.summary()
        assert summary.mean_wait <= summary.mean_wait_delayed
        if summary.delay_probability > 0:
            assert summary.mean_wait == pytest.approx(
                summary.mean_wait_delayed * summary.delay_probability
            )

    def test_matches_simulator_violation_rate(self, model):
        """The analytic leakage matches the simulator's sla_violations."""
        scenario = FederationScenario((
            SmallCloud(
                name="solo",
                vms=model.servers,
                arrival_rate=model.arrival_rate,
                sla_bound=model.sla_bound,
            ),
        ))
        sim = FederationSimulator(scenario, seed=21)
        metrics = sim.run(horizon=150_000.0, warmup=5_000.0)[0]
        served = metrics.served_locally + metrics.served_borrowed
        # Analytic residual is per served request.
        analytic = WaitingTimeAnalysis(model).summary().residual_violation
        empirical = metrics.sla_violations / served
        assert empirical == pytest.approx(analytic, abs=0.01)

    def test_mean_wait_matches_simulator(self, model):
        scenario = FederationScenario((
            SmallCloud(
                name="solo",
                vms=model.servers,
                arrival_rate=model.arrival_rate,
                sla_bound=model.sla_bound,
            ),
        ))
        sim = FederationSimulator(scenario, seed=22)
        metrics = sim.run(horizon=150_000.0, warmup=5_000.0)[0]
        analysis = WaitingTimeAnalysis(model).summary()
        # Simulator's mean_wait is over *queued* requests only.
        assert metrics.mean_wait == pytest.approx(
            analysis.mean_wait_delayed, rel=0.1
        )
