"""Tests for the SLA no-forward probability P^NF."""

import math

import pytest
import scipy.stats as st
from hypothesis import given, settings
from hypothesis import strategies as hyp

from repro.exceptions import ConfigurationError
from repro.queueing.sla import prob_forward, prob_no_forward, prob_no_forward_total


class TestProbNoForward:
    def test_free_server_always_queues(self):
        assert prob_no_forward(-1, 5, 1.0, 0.2) == 1.0

    def test_matches_poisson_tail(self):
        # P^NF = P[Poisson(c mu Q) >= w + 1].
        w, c, mu, q = 3, 10, 1.0, 0.2
        expected = 1.0 - st.poisson.cdf(w, c * mu * q)
        assert prob_no_forward(w, c, mu, q) == pytest.approx(expected, rel=1e-12)

    def test_paper_formula_example(self):
        # Explicit sum from the paper for w=1, rate 2.0.
        rate = 2.0
        expected = 1.0 - math.exp(-rate) * (1.0 + rate)
        assert prob_no_forward(1, 10, 1.0, 0.2) == pytest.approx(expected)

    def test_no_busy_servers_never_queues(self):
        assert prob_no_forward(3, 0, 1.0, 0.2) == 0.0

    def test_zero_sla_never_queues_when_waiting(self):
        assert prob_no_forward(0, 10, 1.0, 0.0) == 0.0

    def test_complement(self):
        value = prob_no_forward(2, 8, 1.0, 0.5)
        assert prob_forward(2, 8, 1.0, 0.5) == pytest.approx(1.0 - value)

    @given(
        w=hyp.integers(min_value=0, max_value=40),
        c=hyp.integers(min_value=1, max_value=120),
        q=hyp.floats(min_value=0.01, max_value=5.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_bounds_and_monotonicity(self, w, c, q):
        value = prob_no_forward(w, c, 1.0, q)
        assert 0.0 <= value <= 1.0
        # More waiting ahead makes queueing less likely.
        assert prob_no_forward(w + 1, c, 1.0, q) <= value + 1e-12
        # More busy servers (faster departures) makes queueing more likely.
        assert prob_no_forward(w, c + 1, 1.0, q) >= value - 1e-12

    def test_monotone_in_sla_bound(self):
        values = [prob_no_forward(2, 10, 1.0, q) for q in (0.1, 0.2, 0.5, 1.0)]
        assert values == sorted(values)

    def test_invalid_service_rate(self):
        with pytest.raises(ConfigurationError):
            prob_no_forward(0, 1, 0.0, 0.2)

    def test_negative_sla_rejected(self):
        with pytest.raises(ConfigurationError):
            prob_no_forward(0, 1, 1.0, -0.1)


class TestPaperNotationWrapper:
    def test_below_capacity_is_one(self):
        assert prob_no_forward_total(4, 10, 1.0, 0.2) == 1.0

    def test_at_capacity_matches_w_zero(self):
        assert prob_no_forward_total(10, 10, 1.0, 0.2) == pytest.approx(
            prob_no_forward(0, 10, 1.0, 0.2)
        )

    def test_above_capacity_matches_waiting_count(self):
        assert prob_no_forward_total(14, 10, 1.0, 0.2) == pytest.approx(
            prob_no_forward(4, 10, 1.0, 0.2)
        )
