"""Tests for the Sect. III-A no-sharing model.

The key external validation — agreement with the discrete-event
simulator — lives in tests/integration/test_models_agree.py; these tests
cover the model's internal structure and limiting behaviour.
"""

import pytest

from repro.exceptions import ConfigurationError
from repro.queueing.forwarding import NoSharingModel, queue_truncation_level
from repro.queueing.mmc import MMCQueue


class TestTruncationLevel:
    def test_zero_sla_truncates_immediately(self):
        assert queue_truncation_level(10, 1.0, 0.0) == 11

    def test_larger_sla_needs_longer_queue(self):
        small = queue_truncation_level(10, 1.0, 0.1)
        large = queue_truncation_level(10, 1.0, 1.0)
        assert large > small

    def test_truncation_point_has_negligible_tail(self):
        from repro.queueing.sla import prob_no_forward

        servers = 10
        level = queue_truncation_level(servers, 1.0, 0.2, epsilon=1e-12)
        waiting = level - servers
        assert prob_no_forward(waiting, servers, 1.0, 0.2) < 1e-12


class TestNoSharingModel:
    def test_zero_sla_is_loss_system(self):
        # Q=0: every blocked request is forwarded -> Erlang-B blocking.
        from repro.queueing.erlang import erlang_b

        model = NoSharingModel(servers=10, arrival_rate=7.0, service_rate=1.0, sla_bound=0.0)
        assert model.forward_probability == pytest.approx(
            erlang_b(7.0, 10), rel=1e-9
        )

    def test_huge_sla_forwards_nothing(self):
        # A very lax SLA turns the system into plain M/M/c (no forwarding).
        model = NoSharingModel(servers=10, arrival_rate=7.0, service_rate=1.0, sla_bound=50.0)
        assert model.forward_probability < 1e-6
        mmc = MMCQueue(arrival_rate=7.0, service_rate=1.0, servers=10)
        assert model.utilization == pytest.approx(mmc.utilization, rel=1e-3)

    def test_forward_rate_is_lambda_times_probability(self):
        model = NoSharingModel(servers=10, arrival_rate=7.0, service_rate=1.0, sla_bound=0.2)
        assert model.forward_rate == pytest.approx(
            7.0 * model.forward_probability
        )

    def test_utilization_accounts_for_forwarding(self):
        # Served load = lambda (1 - Pf), so rho = lambda (1 - Pf) / (N mu).
        model = NoSharingModel(servers=10, arrival_rate=8.0, service_rate=1.0, sla_bound=0.2)
        expected = 8.0 * (1.0 - model.forward_probability) / 10.0
        assert model.utilization == pytest.approx(expected, rel=1e-9)

    def test_forwarding_increases_with_load(self):
        probs = [
            NoSharingModel(10, lam, 1.0, 0.2).forward_probability
            for lam in (5.0, 7.0, 9.0, 9.9)
        ]
        assert probs == sorted(probs)

    def test_forwarding_decreases_with_sla(self):
        probs = [
            NoSharingModel(10, 8.0, 1.0, q).forward_probability
            for q in (0.05, 0.2, 0.5, 1.0)
        ]
        assert probs == sorted(probs, reverse=True)

    def test_smaller_cloud_forwards_more_at_equal_utilization(self):
        # The paper's Fig. 5 observation.
        small = NoSharingModel(10, 8.0, 1.0, 0.2)
        big = NoSharingModel(100, 80.0, 1.0, 0.2)
        assert small.forward_probability > big.forward_probability

    def test_distribution_is_proper(self):
        model = NoSharingModel(10, 7.0, 1.0, 0.2)
        pi = model.result.distribution
        assert pi.min() >= 0.0
        assert pi.sum() == pytest.approx(1.0)
        assert len(pi) == model.q_max + 1

    def test_overloaded_system_solves(self):
        # lambda > N mu is fine: the SLA sheds the excess to the cloud.
        model = NoSharingModel(10, 15.0, 1.0, 0.2)
        assert model.forward_probability > 0.3
        assert model.utilization <= 1.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            NoSharingModel(0, 1.0, 1.0, 0.2)
        with pytest.raises(ConfigurationError):
            NoSharingModel(10, -1.0, 1.0, 0.2)
        with pytest.raises(ConfigurationError):
            NoSharingModel(10, 1.0, 1.0, -0.2)
