"""Tests for M/M/c analytic metrics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as hyp

from repro.exceptions import ConfigurationError
from repro.queueing.mmc import MMCQueue


class TestMMCQueue:
    def test_mm1_closed_forms(self):
        # M/M/1: L = rho/(1-rho), Wq = rho/(mu-lambda).
        q = MMCQueue(arrival_rate=0.5, service_rate=1.0, servers=1)
        rho = 0.5
        assert q.mean_in_system() == pytest.approx(rho / (1 - rho))
        assert q.mean_wait() == pytest.approx(rho / (1.0 - 0.5))
        assert q.wait_probability() == pytest.approx(rho)

    def test_littles_law_consistency(self):
        q = MMCQueue(arrival_rate=7.0, service_rate=1.0, servers=10)
        assert q.mean_queue_length() == pytest.approx(
            q.arrival_rate * q.mean_wait()
        )
        assert q.mean_in_system() == pytest.approx(
            q.mean_queue_length() + q.offered_load
        )

    def test_wait_tail_at_zero_is_delay_probability(self):
        q = MMCQueue(arrival_rate=4.0, service_rate=1.0, servers=6)
        assert q.wait_exceeds(0.0) == pytest.approx(q.wait_probability())

    def test_wait_tail_decays(self):
        q = MMCQueue(arrival_rate=4.0, service_rate=1.0, servers=6)
        assert q.wait_exceeds(1.0) < q.wait_exceeds(0.5) < q.wait_exceeds(0.1)

    def test_unstable_rejected(self):
        with pytest.raises(ConfigurationError):
            MMCQueue(arrival_rate=10.0, service_rate=1.0, servers=10)

    def test_negative_threshold_rejected(self):
        q = MMCQueue(arrival_rate=1.0, service_rate=1.0, servers=2)
        with pytest.raises(ConfigurationError):
            q.wait_exceeds(-1.0)

    @given(
        servers=hyp.integers(min_value=1, max_value=50),
        utilization=hyp.floats(min_value=0.05, max_value=0.9),
    )
    @settings(max_examples=50, deadline=None)
    def test_utilization_definition(self, servers, utilization):
        q = MMCQueue(
            arrival_rate=utilization * servers, service_rate=1.0, servers=servers
        )
        assert q.utilization == pytest.approx(utilization)
        assert q.mean_wait() >= 0.0
