"""Tests for Erlang-B/C against closed forms and known anchors."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as hyp

from repro.exceptions import ConfigurationError
from repro.queueing.erlang import erlang_b, erlang_c


def erlang_b_direct(a: float, c: int) -> float:
    """Textbook ratio formula (unstable for large c; fine as oracle here)."""
    numerator = a**c / math.factorial(c)
    denominator = sum(a**k / math.factorial(k) for k in range(c + 1))
    return numerator / denominator


class TestErlangB:
    @pytest.mark.parametrize(
        "a,c", [(1.0, 1), (2.0, 3), (5.0, 5), (10.0, 12), (20.0, 30)]
    )
    def test_matches_direct_formula(self, a, c):
        assert erlang_b(a, c) == pytest.approx(erlang_b_direct(a, c), rel=1e-12)

    def test_one_server(self):
        # B(a, 1) = a / (1 + a).
        assert erlang_b(3.0, 1) == pytest.approx(0.75)

    def test_large_system_stable(self):
        # The recurrence must not overflow where factorials would.
        value = erlang_b(480.0, 500)
        assert 0.0 < value < 1.0

    @given(
        a=hyp.floats(min_value=0.1, max_value=50.0),
        c=hyp.integers(min_value=1, max_value=60),
    )
    @settings(max_examples=60, deadline=None)
    def test_monotone_decreasing_in_servers(self, a, c):
        assert erlang_b(a, c + 1) <= erlang_b(a, c) + 1e-15

    def test_invalid_load_rejected(self):
        with pytest.raises(ConfigurationError):
            erlang_b(0.0, 3)

    def test_invalid_servers_rejected(self):
        with pytest.raises(ConfigurationError):
            erlang_b(1.0, 0)


class TestErlangC:
    def test_known_anchor(self):
        # Classic value: a=2, c=3 -> C = B*c/(c-a(1-B)); B = 4/19.
        b = erlang_b_direct(2.0, 3)
        expected = 3 * b / (3 - 2 * (1 - b))
        assert erlang_c(2.0, 3) == pytest.approx(expected, rel=1e-12)

    def test_wait_probability_exceeds_blocking(self):
        # Queueing makes waiting more likely than losing in the loss system.
        assert erlang_c(5.0, 8) > erlang_b(5.0, 8)

    def test_unstable_load_rejected(self):
        with pytest.raises(ConfigurationError):
            erlang_c(5.0, 5)

    @given(
        c=hyp.integers(min_value=2, max_value=40),
        utilization=hyp.floats(min_value=0.05, max_value=0.95),
    )
    @settings(max_examples=60, deadline=None)
    def test_bounds(self, c, utilization):
        a = utilization * c
        value = erlang_c(a, c)
        assert 0.0 < value < 1.0
