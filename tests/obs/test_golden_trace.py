"""Golden-trace regression: the span tree of the quick scenario is pinned.

The committed golden (``tests/obs/goldens/quick_game.json``) records the
duration-free *shape* of the span tree the differential checker's quick
scenario produces — span names, nesting, and counts.  A refactor that
changes how many solves or rounds the game performs fails here with a
structural diff instead of silently shifting a benchmark.

Regenerate after an intentional structural change::

    python -m repro.obs.goldens --update
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro import obs
from repro.obs import goldens

GOLDEN_PATH = Path(__file__).parent / "goldens" / "quick_game.json"


class TestShapeHelpers:
    def test_span_shape_aggregates_identical_children(self):
        with obs.capture(metrics=False) as cap:
            with obs.span("root"):
                for _ in range(3):
                    with obs.span("same"):
                        pass
                with obs.span("different"):
                    with obs.span("leaf"):
                        pass
        (root,) = cap.tracer.roots
        shape = goldens.span_shape(root)
        assert shape["name"] == "root"
        assert shape["children"] == [
            {"name": "same", "count": 3, "children": []},
            {
                "name": "different",
                "count": 1,
                "children": [{"name": "leaf", "count": 1, "children": []}],
            },
        ]

    def test_shape_ignores_attributes_and_durations(self):
        def tree(attr):
            with obs.capture(metrics=False) as cap:
                with obs.span("root", attr=attr):
                    pass
            return goldens.tracer_shape(cap.tracer)

        assert tree(1) == tree(2)


@pytest.mark.slow
class TestGoldenTrace:
    def test_quick_scenario_matches_committed_golden(self):
        golden = json.loads(GOLDEN_PATH.read_text())
        current = goldens.tracer_shape(goldens.trace_quick_scenario())
        assert current == golden, (
            "span-tree shape drifted from the committed golden; if the "
            "structural change is intentional, regenerate with "
            "`python -m repro.obs.goldens --update`"
        )

    def test_check_cli_passes_against_committed_golden(self, capsys):
        assert goldens.main(["--path", str(GOLDEN_PATH)]) == 0
        assert "matches" in capsys.readouterr().out

    def test_check_cli_fails_on_mismatch(self, tmp_path, capsys):
        stale = tmp_path / "stale.json"
        stale.write_text(json.dumps({"format": "repro.obs.golden", "span_count": 0}))
        assert goldens.main(["--path", str(stale)]) == 1
        assert "MISMATCH" in capsys.readouterr().out

    def test_update_writes_the_current_shape(self, tmp_path):
        target = tmp_path / "fresh.json"
        assert goldens.main(["--update", "--path", str(target)]) == 0
        written = json.loads(target.read_text())
        assert written == json.loads(GOLDEN_PATH.read_text())
