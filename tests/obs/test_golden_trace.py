"""Golden-trace regression: the span tree of the quick scenario is pinned.

The committed golden (``tests/obs/goldens/quick_game.json``) records the
duration-free *shape* of the span tree the differential checker's quick
scenario produces — span names, nesting, and counts.  A refactor that
changes how many solves or rounds the game performs fails here with a
structural diff instead of silently shifting a benchmark.

Regenerate after an intentional structural change::

    python -m repro.obs.goldens --update
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro import obs
from repro.obs import goldens

GOLDEN_PATH = Path(__file__).parent / "goldens" / "quick_game.json"
FAILURE_GOLDEN_PATH = Path(__file__).parent / "goldens" / "failure_outage.json"


class TestShapeHelpers:
    def test_span_shape_aggregates_identical_children(self):
        with obs.capture(metrics=False) as cap:
            with obs.span("root"):
                for _ in range(3):
                    with obs.span("same"):
                        pass
                with obs.span("different"):
                    with obs.span("leaf"):
                        pass
        (root,) = cap.tracer.roots
        shape = goldens.span_shape(root)
        assert shape["name"] == "root"
        assert shape["children"] == [
            {"name": "same", "count": 3, "children": []},
            {
                "name": "different",
                "count": 1,
                "children": [{"name": "leaf", "count": 1, "children": []}],
            },
        ]

    def test_shape_ignores_attributes_and_durations(self):
        def tree(attr):
            with obs.capture(metrics=False) as cap:
                with obs.span("root", attr=attr):
                    pass
            return goldens.tracer_shape(cap.tracer)

        assert tree(1) == tree(2)

    def test_shape_counts_span_events_per_kind(self):
        with obs.capture(tracing=True, metrics=False) as cap:
            with obs.span("root"):
                obs.add_event("arrive", 1.0)
                obs.add_event("arrive", 2.0, sc=1)
                obs.add_event("depart", 3.0)
        (root,) = cap.tracer.roots
        shape = goldens.span_shape(root)
        assert shape["events"] == {"arrive": 2, "depart": 1}

    def test_event_free_spans_keep_the_historical_shape(self):
        """No ``events`` key unless a span actually carries events."""
        with obs.capture(metrics=False) as cap:
            with obs.span("root"):
                pass
        (root,) = cap.tracer.roots
        assert "events" not in goldens.span_shape(root)


@pytest.mark.slow
class TestGoldenTrace:
    def test_quick_scenario_matches_committed_golden(self):
        golden = json.loads(GOLDEN_PATH.read_text())
        current = goldens.tracer_shape(goldens.trace_quick_scenario())
        assert current == golden, (
            "span-tree shape drifted from the committed golden; if the "
            "structural change is intentional, regenerate with "
            "`python -m repro.obs.goldens --update`"
        )

    def test_check_cli_passes_against_committed_golden(self, capsys):
        assert goldens.main(["--path", str(GOLDEN_PATH)]) == 0
        assert "matches" in capsys.readouterr().out

    def test_check_cli_fails_on_mismatch(self, tmp_path, capsys):
        stale = tmp_path / "stale.json"
        stale.write_text(json.dumps({"format": "repro.obs.golden", "span_count": 0}))
        assert goldens.main(["--path", str(stale)]) == 1
        assert "MISMATCH" in capsys.readouterr().out

    def test_update_writes_the_current_shape(self, tmp_path):
        target = tmp_path / "fresh.json"
        assert goldens.main(["--update", "--path", str(target)]) == 0
        written = json.loads(target.read_text())
        assert written == json.loads(GOLDEN_PATH.read_text())


@pytest.mark.slow
class TestFailureOutageGolden:
    def test_registered_alongside_quick_game(self):
        assert set(goldens.GOLDENS) == {"quick_game", "failure_outage"}

    def test_failure_run_matches_committed_golden(self):
        golden = json.loads(FAILURE_GOLDEN_PATH.read_text())
        current = goldens.tracer_shape(goldens.trace_failure_outage())
        assert current == golden, (
            "failure-injection trace shape drifted from the committed "
            "golden; if the semantic change is intentional, regenerate "
            "with `python -m repro.obs.goldens --golden failure_outage "
            "--update`"
        )

    def test_golden_pins_every_failure_event_kind(self):
        """The committed shape covers the full failure event vocabulary."""
        golden = json.loads(FAILURE_GOLDEN_PATH.read_text())
        (root,) = golden["roots"]
        assert root["name"] == "sim.run"
        for kind in ("failure_start", "outage_flush", "outage_forward", "failure_end"):
            assert golden and root["events"][kind] >= 1

    def test_check_cli_covers_both_goldens(self, capsys):
        assert goldens.main([]) == 0
        out = capsys.readouterr().out
        assert "quick_game" in out and "failure_outage" in out

    def test_single_golden_selection(self, capsys):
        assert goldens.main(["--golden", "failure_outage"]) == 0
        out = capsys.readouterr().out
        assert "failure_outage" in out and "quick_game" not in out

    def test_path_override_selects_named_golden(self, tmp_path):
        target = tmp_path / "failure.json"
        assert (
            goldens.main(
                ["--golden", "failure_outage", "--update", "--path", str(target)]
            )
            == 0
        )
        assert json.loads(target.read_text()) == json.loads(
            FAILURE_GOLDEN_PATH.read_text()
        )
