"""Overhead guard: disabled instrumentation must stay under 2%.

The ``obs_overhead`` microbenchmark prices one disabled hook call and
counts the hook crossings a real solve performs; their product relative
to the solve's wall-clock is the *disabled overhead fraction* this test
pins below 2% — the hooks are free to exist everywhere on the hot path
only while that holds.  The enabled-tracing ratio is reported (printed
by the bench harness and CI) but deliberately not asserted: tracing is
an opt-in debugging mode, not a hot-path configuration.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.bench import micro

#: The contract from the design doc: < 2% when instrumentation is off.
MAX_DISABLED_OVERHEAD = 0.02


@pytest.mark.slow
class TestDisabledOverhead:
    def test_disabled_overhead_fraction_under_two_percent(self):
        entry = micro.bench_obs_overhead(quick=True, reference=False)
        assert entry["solve_crossings"] > 0  # the solve is instrumented
        assert entry["per_hook_seconds"] < 5e-6  # sanity: no-op, not work
        assert entry["disabled_overhead_fraction"] < MAX_DISABLED_OVERHEAD, (
            "disabled obs hooks cost "
            f"{entry['disabled_overhead_fraction']:.2%} of the quick solve "
            f"(limit {MAX_DISABLED_OVERHEAD:.0%}); the no-op path regressed"
        )

    def test_probe_runs_outside_any_capture(self):
        # The probe manages its own captures; it must leave global
        # instrumentation exactly as it found it.
        assert not obs.tracing_active()
        micro.bench_obs_overhead(quick=True, reference=False)
        assert not obs.tracing_active()
        assert not obs.metrics_active()


class TestHookCost:
    def test_disabled_span_allocates_nothing(self):
        first = obs.span("x")
        second = obs.span("y")
        assert first is second
