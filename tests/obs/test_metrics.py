"""Tests for the metrics registry, snapshots, and the worker merge."""

from __future__ import annotations

import pickle

import pytest

from repro import obs
from repro.exceptions import ConfigurationError
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    MetricsSnapshot,
    MetricsTask,
)
from repro.runtime.executor import ProcessExecutor, SerialExecutor, ThreadExecutor
from repro.sim.replications import replicate


class TestRegistry:
    def test_counters_accumulate(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.inc("a", 4)
        snapshot = registry.snapshot()
        assert dict(snapshot.counters) == {"a": 5}

    def test_gauges_keep_maximum(self):
        registry = MetricsRegistry()
        registry.gauge("depth", 3.0)
        registry.gauge("depth", 1.0)
        assert dict(registry.snapshot().gauges) == {"depth": 3.0}

    def test_histogram_buckets_and_totals(self):
        registry = MetricsRegistry()
        for value in (0.00005, 0.5, 100.0):
            registry.observe("lat", value)
        ((name, hist),) = registry.snapshot().histograms
        assert name == "lat"
        assert hist.total == 3
        assert hist.minimum == 0.00005
        assert hist.maximum == 100.0
        assert sum(hist.counts) == 3
        assert hist.counts[-1] == 1  # overflow bucket

    def test_snapshot_is_deterministic_and_picklable(self):
        registry = MetricsRegistry()
        registry.inc("b")
        registry.inc("a")
        registry.observe("h", 0.2)
        snapshot = registry.snapshot()
        assert [name for name, _ in snapshot.counters] == ["a", "b"]
        clone = pickle.loads(pickle.dumps(snapshot))
        assert clone == snapshot

    def test_registry_pickles_empty(self):
        registry = MetricsRegistry()
        registry.inc("a")
        clone = pickle.loads(pickle.dumps(registry))
        assert clone.snapshot() == MetricsSnapshot.empty()

    def test_merge_requires_matching_boundaries(self):
        left = MetricsRegistry()
        right = MetricsRegistry()
        left.observe("h", 0.1)
        right.observe("h", 0.1, boundaries=(1.0, 2.0))
        with pytest.raises(ConfigurationError):
            left.snapshot().merge(right.snapshot())

    def test_counter_view_includes_histogram_counts(self):
        registry = MetricsRegistry()
        registry.inc("n", 2)
        registry.observe("lat", 0.5)
        registry.observe("lat", 0.7)
        assert dict(registry.snapshot().counter_view()) == {
            "n": 2,
            "lat.count": 2,
        }

    def test_recordings_counts_hook_crossings(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.gauge("g", 1.0)
        registry.observe("h", 0.5)
        assert registry.recordings() == 3

    def test_to_dict_round_trips_the_content(self):
        registry = MetricsRegistry()
        registry.inc("a", 2)
        registry.gauge("g", 4.0)
        registry.observe("h", 0.3)
        payload = registry.snapshot().to_dict()
        assert payload["counters"] == {"a": 2}
        assert payload["gauges"] == {"g": 4.0}
        assert payload["histograms"]["h"]["total"] == 1
        assert payload["histograms"]["h"]["boundaries"] == list(DEFAULT_BUCKETS)


class TestHooks:
    def test_hooks_record_into_ambient_registry(self):
        with obs.capture(tracing=False) as cap:
            obs.inc("calls")
            obs.gauge("depth", 2.0)
            obs.observe("lat", 0.25)
        snapshot = cap.snapshot()
        assert dict(snapshot.counters) == {"calls": 1}
        assert dict(snapshot.gauges) == {"depth": 2.0}

    def test_metrics_task_returns_result_and_snapshot(self):
        task = MetricsTask(lambda x: x * 2)
        with obs.capture(tracing=False):
            result, snapshot = task(21)
        assert result == 42
        assert isinstance(snapshot, MetricsSnapshot)


class TestMapWithMetrics:
    """The worker merge protocol: totals are backend-independent."""

    @staticmethod
    def _counts(executor) -> dict[str, int]:
        from repro.analysis.differential import SCENARIOS

        scenario = SCENARIOS["quick"].scenario
        with obs.capture(tracing=False) as cap:
            replicate(
                scenario,
                replications=3,
                horizon=200.0,
                warmup=20.0,
                executor=executor,
            )
        return dict(cap.snapshot().counter_view())

    def test_metrics_off_is_plain_map(self):
        calls = []
        executor = SerialExecutor()
        assert obs.map_with_metrics(executor, lambda x: calls.append(x) or x, [1, 2]) == [1, 2]
        assert calls == [1, 2]

    @pytest.mark.slow
    def test_thread_and_process_merge_equal_serial(self):
        serial = self._counts(SerialExecutor())
        assert serial["sim.replications"] == 3
        threaded = self._counts(ThreadExecutor(workers=2))
        process = self._counts(ProcessExecutor(workers=2))
        assert threaded == serial
        assert process == serial

    def test_results_stay_in_input_order(self):
        executor = ThreadExecutor(workers=4)
        with obs.capture(tracing=False):
            results = obs.map_with_metrics(executor, lambda x: x * x, list(range(10)))
        assert results == [x * x for x in range(10)]
