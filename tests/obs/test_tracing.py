"""Tests for the span tracer: nesting, attributes, events, exports."""

from __future__ import annotations

import pickle
import threading

import pytest

from repro import obs
from repro.exceptions import ConfigurationError
from repro.obs import export
from repro.obs.tracing import NoopSpan, Tracer


class TestDisabledPath:
    def test_span_is_shared_noop(self):
        first = obs.span("a")
        second = obs.span("b", attr=1)
        assert isinstance(first, NoopSpan)
        assert first is second  # one shared stateless instance

    def test_noop_span_supports_full_protocol(self):
        with obs.span("anything", x=1) as sp:
            sp.set(y=2)
            sp.event("kind", 0.0)
        obs.add_event("kind", 1.0, detail="ignored")

    def test_hooks_are_noops(self):
        obs.inc("c")
        obs.gauge("g", 1.0)
        obs.observe("h", 0.5)
        assert not obs.tracing_active()
        assert not obs.metrics_active()


class TestSpans:
    def test_nesting_builds_a_tree(self):
        with obs.capture(metrics=False) as cap:
            with obs.span("root"):
                with obs.span("child"):
                    with obs.span("leaf"):
                        pass
                with obs.span("child2"):
                    pass
        (root,) = cap.tracer.roots
        assert root.name == "root"
        assert [c.name for c in root.children] == ["child", "child2"]
        assert [c.name for c in root.children[0].children] == ["leaf"]
        assert cap.tracer.span_count == 4

    def test_attributes_and_set(self):
        with obs.capture(metrics=False) as cap:
            with obs.span("solve", sc=3) as sp:
                sp.set(iterations=17)
        (root,) = cap.tracer.roots
        assert root.attrs == {"sc": 3, "iterations": 17}

    def test_durations_recorded(self):
        with obs.capture(metrics=False) as cap:
            with obs.span("timed"):
                pass
        (root,) = cap.tracer.roots
        assert root.duration >= 0.0
        assert root.cpu_seconds >= 0.0

    def test_error_annotated_and_propagated(self):
        with obs.capture(metrics=False) as cap:
            with pytest.raises(ValueError):
                with obs.span("failing"):
                    raise ValueError("boom")
        (root,) = cap.tracer.roots
        assert root.attrs["error"] == "ValueError"

    def test_events_attach_to_innermost_span(self):
        with obs.capture(metrics=False) as cap:
            with obs.span("outer"):
                with obs.span("inner"):
                    obs.add_event("arrival", 1.5, sc=0)
        (root,) = cap.tracer.roots
        assert root.events == []
        (event,) = root.children[0].events
        assert event == ("arrival", 1.5, (("sc", 0),))

    def test_event_cap_counts_drops(self):
        with obs.capture(metrics=False, max_span_events=2) as cap:
            with obs.span("bounded"):
                for i in range(5):
                    obs.add_event("tick", float(i))
        (root,) = cap.tracer.roots
        assert len(root.events) == 2
        assert root.dropped_events == 3

    def test_spans_from_other_threads_become_roots(self):
        def run():
            with obs.span("side"):
                pass

        with obs.capture(metrics=False) as cap:
            with obs.span("main"):
                thread = threading.Thread(target=run)
                thread.start()
                thread.join()
        names = sorted(root.name for root in cap.tracer.roots)
        assert names == ["main", "side"]

    def test_capture_restores_previous_state(self):
        assert not obs.tracing_active()
        with obs.capture(metrics=False):
            assert obs.tracing_active()
            with obs.capture(metrics=False) as inner:
                with obs.span("nested"):
                    pass
            assert inner.tracer.span_count == 1
            assert obs.tracing_active()
        assert not obs.tracing_active()

    def test_suspended_disables_and_restores(self):
        with obs.capture(metrics=False) as cap:
            with obs.suspended():
                with obs.span("invisible"):
                    pass
            with obs.span("visible"):
                pass
        assert [r.name for r in cap.tracer.roots] == ["visible"]

    def test_tracer_validates_event_cap(self):
        with pytest.raises(ConfigurationError):
            Tracer(max_span_events=0)

    def test_tracer_pickles_config_only(self):
        with obs.capture(metrics=False, max_span_events=7) as cap:
            with obs.span("work"):
                pass
            clone = pickle.loads(pickle.dumps(cap.tracer))
        assert clone.max_span_events == 7
        assert clone.roots == []
        assert clone.span_count == 0


class TestExports:
    def _traced(self):
        with obs.capture(metrics=False) as cap:
            with obs.span("root", k=2):
                with obs.span("child"):
                    obs.add_event("tick", 0.5, sc=1)
        return cap.tracer

    def test_json_tree(self):
        tree = export.tracer_to_dict(self._traced())
        assert tree["format"] == "repro.obs.trace"
        assert tree["span_count"] == 2
        (root,) = tree["spans"]
        assert root["name"] == "root"
        assert root["attrs"] == {"k": 2}
        (child,) = root["children"]
        assert child["events"] == [{"kind": "tick", "time": 0.5, "sc": 1}]

    def test_chrome_trace(self):
        chrome = export.chrome_trace(self._traced())
        names = [event["name"] for event in chrome["traceEvents"]]
        assert names == ["root", "child"]
        for event in chrome["traceEvents"]:
            assert event["ph"] == "X"
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0

    def test_folded_stacks(self):
        lines = export.folded(self._traced())
        stacks = [line.rsplit(" ", 1)[0] for line in lines]
        assert stacks == ["root", "root;child"]

    def test_write_trace_dispatches_on_extension(self, tmp_path):
        tracer = self._traced()
        tree = export.write_trace(tracer, tmp_path / "t.json")
        chrome = export.write_trace(tracer, tmp_path / "t.chrome.json")
        folded = export.write_trace(tracer, tmp_path / "t.folded")
        assert '"repro.obs.trace"' in tree.read_text()
        assert '"traceEvents"' in chrome.read_text()
        assert folded.read_text().startswith("root ")
