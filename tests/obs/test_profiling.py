"""Tests for per-span cProfile opt-in and the block profiler."""

from __future__ import annotations

import io

import pytest

from repro import obs
from repro.exceptions import ConfigurationError
from repro.obs import profiling


@pytest.fixture(autouse=True)
def _disarm():
    yield
    profiling.profile_disable()


def _busy() -> int:
    return sum(i * i for i in range(10_000))


class TestSpanProfiling:
    def test_armed_span_gets_profile_rows(self):
        profiling.profile_enable({"hot"}, top_n=5)
        with obs.capture(metrics=False) as cap:
            with obs.span("hot"):
                _busy()
        (root,) = cap.tracer.roots
        rows = root.attrs["profile"]
        assert 0 < len(rows) <= 5
        for row in rows:
            assert set(row) == {
                "function",
                "ncalls",
                "primitive_calls",
                "tottime",
                "cumtime",
            }
        # Sorted by cumulative time, descending.
        cumtimes = [row["cumtime"] for row in rows]
        assert cumtimes == sorted(cumtimes, reverse=True)

    def test_unarmed_span_has_no_profile(self):
        profiling.profile_enable({"hot"})
        with obs.capture(metrics=False) as cap:
            with obs.span("cold"):
                _busy()
        (root,) = cap.tracer.roots
        assert "profile" not in root.attrs

    def test_no_nested_profilers_outermost_wins(self):
        profiling.profile_enable({"outer", "inner"})
        with obs.capture(metrics=False) as cap:
            with obs.span("outer"):
                with obs.span("inner"):
                    _busy()
        (root,) = cap.tracer.roots
        assert "profile" in root.attrs
        assert "profile" not in root.children[0].attrs

    def test_disarm_stops_profiling(self):
        profiling.profile_enable({"hot"})
        profiling.profile_disable()
        assert profiling.profiling_names() is None
        with obs.capture(metrics=False) as cap:
            with obs.span("hot"):
                pass
        (root,) = cap.tracer.roots
        assert "profile" not in root.attrs

    def test_top_n_validated(self):
        with pytest.raises(ConfigurationError):
            profiling.profile_enable({"hot"}, top_n=0)


class TestBlockProfiler:
    def test_profiled_prints_report(self):
        stream = io.StringIO()
        with profiling.profiled(stream, top_n=10):
            _busy()
        report = stream.getvalue()
        assert "top 10 by cumulative time" in report
        assert "function calls" in report

    def test_profiled_reports_even_on_error(self):
        stream = io.StringIO()
        with pytest.raises(RuntimeError):
            with profiling.profiled(stream):
                raise RuntimeError("boom")
        assert "cumulative" in stream.getvalue()
