"""Property-based tests: Markov-chain invariants over random models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as hyp

from repro.markov.birth_death import BirthDeathChain
from repro.markov.ctmc import CTMC
from repro.markov.state_space import StateSpace
from repro.markov.uniformization import transient_distribution
from repro.queueing.forwarding import NoSharingModel


@given(
    seed=hyp.integers(min_value=0, max_value=10_000),
    n=hyp.integers(min_value=2, max_value=20),
)
@settings(max_examples=40, deadline=None)
def test_random_ctmc_steady_state_is_stationary(seed, n):
    rng = np.random.default_rng(seed)
    dense = rng.uniform(0.0, 1.0, size=(n, n))
    np.fill_diagonal(dense, 0.0)
    dense += 0.01  # ensure irreducibility
    np.fill_diagonal(dense, 0.0)
    dense -= np.diag(dense.sum(axis=1))
    ctmc = CTMC(StateSpace(range(n)), __import__("scipy.sparse", fromlist=["csr_matrix"]).csr_matrix(dense))
    pi = ctmc.steady_state()
    assert pi.sum() == pytest.approx(1.0)
    assert np.abs(pi @ ctmc.generator).max() < 1e-8
    # Stationarity under the transient solver too.
    later = transient_distribution(ctmc, pi, 3.7)
    np.testing.assert_allclose(later, pi, atol=1e-8)


@given(
    levels=hyp.integers(min_value=1, max_value=40),
    birth=hyp.floats(min_value=0.05, max_value=5.0),
    death=hyp.floats(min_value=0.05, max_value=5.0),
)
@settings(max_examples=40, deadline=None)
def test_birth_death_detailed_balance(levels, birth, death):
    """Birth-death chains satisfy detailed balance at stationarity."""
    chain = BirthDeathChain([birth] * levels, [death] * levels)
    pi = chain.stationary()
    for k in range(levels):
        flow_up = pi[k] * birth
        flow_down = pi[k + 1] * death
        assert flow_up == pytest.approx(flow_down, rel=1e-9, abs=1e-12)


@given(
    servers=hyp.integers(min_value=1, max_value=30),
    utilization=hyp.floats(min_value=0.1, max_value=1.4),
    sla=hyp.floats(min_value=0.01, max_value=2.0),
)
@settings(max_examples=40, deadline=None)
def test_no_sharing_model_flow_balance(servers, utilization, sla):
    """Accepted flow equals served flow: lambda (1 - Pf) = rho N mu."""
    arrival = utilization * servers
    model = NoSharingModel(servers, arrival, 1.0, sla)
    accepted = arrival * (1.0 - model.forward_probability)
    served = model.utilization * servers * 1.0
    assert accepted == pytest.approx(served, rel=1e-8)
