"""Property-based tests: simulator invariants over random federations."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as hyp

from repro.core.small_cloud import FederationScenario, SmallCloud
from repro.sim.federation import FederationSimulator

pytestmark = pytest.mark.slow

cloud_strategy = hyp.builds(
    lambda vms, load, share_fraction: (vms, load, share_fraction),
    vms=hyp.integers(min_value=2, max_value=12),
    load=hyp.floats(min_value=0.3, max_value=1.1),
    share_fraction=hyp.floats(min_value=0.0, max_value=1.0),
)


def build_scenario(specs) -> FederationScenario:
    clouds = []
    for i, (vms, load, share_fraction) in enumerate(specs):
        clouds.append(
            SmallCloud(
                name=f"sc{i}",
                vms=vms,
                arrival_rate=max(load * vms, 0.1),
                shared_vms=int(share_fraction * vms),
            )
        )
    return FederationScenario(tuple(clouds))


@given(
    specs=hyp.lists(cloud_strategy, min_size=1, max_size=4),
    seed=hyp.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=25, deadline=None)
def test_conservation_and_bounds(specs, seed):
    """Every random federation satisfies the global conservation laws."""
    scenario = build_scenario(specs)
    simulator = FederationSimulator(scenario, seed=seed)
    metrics = simulator.run(horizon=400.0, warmup=50.0)

    total_lent = sum(m.lent_mean for m in metrics)
    total_borrowed = sum(m.borrowed_mean for m in metrics)
    assert total_lent == pytest.approx(total_borrowed, abs=1e-9)

    for m, cloud in zip(metrics, scenario):
        assert 0.0 <= m.utilization <= 1.0 + 1e-9
        assert m.lent_mean <= cloud.shared_vms + 1e-9
        assert m.borrowed_mean <= scenario.shared_by_others(
            scenario.index_of(cloud.name)
        ) + 1e-9
        assert m.forwarded <= m.arrivals
        assert m.mean_queue_length >= 0.0


@given(seed=hyp.integers(min_value=0, max_value=2**31))
@settings(max_examples=10, deadline=None)
def test_internal_consistency_checks_pass(seed):
    """The simulator's own conservation assertions never fire."""
    scenario = build_scenario([(8, 0.9, 0.5), (8, 0.6, 0.5), (8, 1.05, 0.25)])
    simulator = FederationSimulator(scenario, seed=seed)
    simulator.run(horizon=300.0)  # raises SimulationError on violation


@given(
    seed=hyp.integers(min_value=0, max_value=2**31),
    share=hyp.integers(min_value=0, max_value=8),
)
@settings(max_examples=10, deadline=None)
def test_monotone_sharing_never_increases_total_forwarding_much(seed, share):
    """More sharing capacity cannot make the federation much worse.

    (Statistical, not exact: a tolerance absorbs sample noise.)
    """
    closed = build_scenario([(8, 0.95, 0.0), (8, 0.6, 0.0)])
    opened = closed.with_sharing((share, share))
    closed_fwd = sum(
        m.forward_rate
        for m in FederationSimulator(closed, seed=seed).run(horizon=2_000.0, warmup=100.0)
    )
    opened_fwd = sum(
        m.forward_rate
        for m in FederationSimulator(opened, seed=seed).run(horizon=2_000.0, warmup=100.0)
    )
    assert opened_fwd <= closed_fwd + 0.15
