"""Property-based tests: market-layer invariants over random inputs."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as hyp

from repro.core.small_cloud import FederationScenario, SmallCloud
from repro.market.cost import operating_cost
from repro.market.fairness import welfare
from repro.market.utility import utility
from repro.perf.params import PerformanceParams

finite_nonneg = hyp.floats(min_value=0.0, max_value=100.0)


@given(
    forward=finite_nonneg,
    lent=hyp.floats(min_value=0.0, max_value=10.0),
    borrowed=hyp.floats(min_value=0.0, max_value=10.0),
    public_price=hyp.floats(min_value=0.1, max_value=10.0),
    ratio=hyp.floats(min_value=0.0, max_value=1.0),
)
@settings(max_examples=100, deadline=None)
def test_cost_linear_in_prices(forward, lent, borrowed, public_price, ratio):
    """Eq. (1) is linear: doubling both prices doubles the cost."""
    params = PerformanceParams(
        lent_mean=lent, borrowed_mean=borrowed, forward_rate=forward, utilization=0.5
    )
    cloud = SmallCloud(
        name="x",
        vms=10,
        arrival_rate=1.0,
        public_price=public_price,
        federation_price=ratio * public_price,
    )
    doubled = cloud.with_prices(2 * public_price, 2 * ratio * public_price)
    assert operating_cost(doubled, params) == pytest.approx(
        2 * operating_cost(cloud, params), rel=1e-12, abs=1e-12
    )


@given(
    baseline=hyp.floats(min_value=0.0, max_value=10.0),
    cost=hyp.floats(min_value=0.0, max_value=10.0),
    rho0=hyp.floats(min_value=0.0, max_value=0.99),
    gain=hyp.floats(min_value=0.001, max_value=0.5),
    gamma=hyp.floats(min_value=0.0, max_value=1.0),
)
@settings(max_examples=100, deadline=None)
def test_utility_scaling_is_quadratic(baseline, cost, rho0, gain, gamma):
    """Eq. (2)'s numerator is squared: scaling the cost gap by c scales
    utility by c^2 (when the gap is positive)."""
    if baseline <= cost:
        return
    rho = rho0 + gain
    if rho > 1.0:
        return
    base_value = utility(baseline, cost, rho0, rho, gamma)
    scaled = utility(2 * baseline - cost, cost, rho0, rho, gamma)
    # gap doubles => utility quadruples
    assert scaled == pytest.approx(4 * base_value, rel=1e-9)


@given(
    shares=hyp.lists(hyp.integers(min_value=0, max_value=10), min_size=1, max_size=6),
    utilities=hyp.lists(
        hyp.floats(min_value=0.001, max_value=50.0), min_size=1, max_size=6
    ),
    alpha=hyp.sampled_from([0.0, 0.5, 1.0, 2.0, math.inf]),
)
@settings(max_examples=120, deadline=None)
def test_welfare_permutation_invariance(shares, utilities, alpha):
    """Welfare only depends on the (share, utility) multiset."""
    n = min(len(shares), len(utilities))
    shares, utilities = shares[:n], utilities[:n]
    forward = welfare(alpha, shares, utilities)
    reversed_ = welfare(alpha, shares[::-1], utilities[::-1])
    assert forward == pytest.approx(reversed_, rel=1e-12)


@given(
    shares=hyp.lists(hyp.integers(min_value=1, max_value=10), min_size=2, max_size=5),
    utilities=hyp.lists(
        hyp.floats(min_value=0.01, max_value=50.0), min_size=2, max_size=5
    ),
)
@settings(max_examples=80, deadline=None)
def test_max_min_bounded_by_any_participant(shares, utilities):
    n = min(len(shares), len(utilities))
    shares, utilities = shares[:n], utilities[:n]
    value = welfare(math.inf, shares, utilities)
    assert all(value <= u + 1e-12 for u in utilities)
    assert value in utilities


@given(ratio=hyp.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=40, deadline=None)
def test_price_ratio_roundtrip(ratio):
    scenario = FederationScenario((
        SmallCloud(name="a", vms=5, arrival_rate=2.0, public_price=3.0),
    )).with_price_ratio(ratio)
    assert scenario[0].federation_price == pytest.approx(3.0 * ratio)
