"""Property-based tests: game-dynamics invariants under the stub model."""

from hypothesis import given, settings
from hypothesis import strategies as hyp

from repro.core.small_cloud import FederationScenario, SmallCloud
from repro.game.best_response import BestResponder
from repro.game.dynamics import SequentialGame
from repro.game.equilibrium import is_nash_equilibrium
from repro.game.repeated_game import RepeatedGame
from repro.game.strategy import full_strategy_spaces
from repro.market.evaluator import UtilityEvaluator
from tests.helpers import StubModel


def make_scenario(loads):
    return FederationScenario(
        tuple(
            SmallCloud(
                name=f"sc{i}",
                vms=10,
                arrival_rate=max(load * 10.0, 0.1),
                federation_price=0.5,
            )
            for i, load in enumerate(loads)
        )
    )


loads_strategy = hyp.lists(
    hyp.floats(min_value=0.4, max_value=1.1), min_size=2, max_size=4
)


@given(loads=loads_strategy)
@settings(max_examples=20, deadline=None)
def test_converged_profiles_are_nash(loads):
    scenario = make_scenario(loads)
    evaluator = UtilityEvaluator(scenario, StubModel(), gamma=0.0)
    spaces = full_strategy_spaces(scenario)
    result = RepeatedGame(BestResponder(evaluator, spaces)).run()
    if result.converged:
        assert is_nash_equilibrium(evaluator, result.equilibrium, spaces)


@given(loads=loads_strategy, start=hyp.integers(min_value=0, max_value=10))
@settings(max_examples=20, deadline=None)
def test_sequential_profiles_are_nash_from_any_start(loads, start):
    scenario = make_scenario(loads)
    evaluator = UtilityEvaluator(scenario, StubModel(), gamma=0.0)
    spaces = full_strategy_spaces(scenario)
    initial = [start] * len(scenario)
    result = SequentialGame(BestResponder(evaluator, spaces)).run(initial)
    if result.converged:
        assert is_nash_equilibrium(evaluator, result.equilibrium, spaces)


@given(loads=loads_strategy)
@settings(max_examples=15, deadline=None)
def test_equilibrium_utilities_nonnegative(loads):
    scenario = make_scenario(loads)
    evaluator = UtilityEvaluator(scenario, StubModel(), gamma=0.0)
    spaces = full_strategy_spaces(scenario)
    result = RepeatedGame(BestResponder(evaluator, spaces)).run()
    assert all(u >= 0.0 for u in result.utilities)
