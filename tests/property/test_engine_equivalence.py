"""Property-based tests: the three stepping modes are bit-identical.

Random raw-engine schedules and random federation workloads (healthy and
failure-injected) must produce identical event logs, final statistics,
and trace-event sequences under ``event``, ``batched``, and
``three_phase`` stepping — and replication experiments must reduce to
identical confidence intervals on every executor backend.  This is the
engine-equivalence guarantee :mod:`repro.sim.engine` documents.

Generated workloads honor the three-phase ordering contract: handlers
never schedule into their own timestamp (follow-up delays are strictly
positive).
"""

from dataclasses import asdict

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as hyp

from repro.core.small_cloud import FederationScenario, SmallCloud
from repro.runtime.executor import ProcessExecutor, SerialExecutor, ThreadExecutor
from repro.sim.engine import STEP_MODES, SimulationEngine
from repro.sim.failures import FailureWindow
from repro.sim.federation import FederationSimulator
from repro.sim.replications import replicate
from repro.sim.trace import TraceRecorder

pytestmark = pytest.mark.slow

# --------------------------------------------------------------------- #
# raw-engine schedules
# --------------------------------------------------------------------- #

# One root event: (delay, priority, follow-up delays).  Follow-ups are
# strictly positive so the workload honors the three-phase contract.
root_event = hyp.tuples(
    hyp.floats(min_value=0.0, max_value=8.0),
    hyp.integers(min_value=-2, max_value=2),
    hyp.lists(
        hyp.floats(min_value=1e-3, max_value=4.0),
        min_size=0,
        max_size=3,
    ),
)

block_channel = hyp.lists(
    hyp.floats(min_value=0.0, max_value=8.0), min_size=0, max_size=12
).map(sorted)


def run_schedule(mode, roots, block_offsets, vectorized):
    """Run one generated schedule; return (log, events_executed, now)."""
    engine = SimulationEngine(step_mode=mode)
    log = []

    def make_handler(tag, children):
        def handler():
            log.append(("cb", tag, engine.now))
            for child_index, delay in enumerate(children):
                engine.schedule(delay, make_handler((tag, child_index), ()))

        return handler

    for tag, (delay, priority, children) in enumerate(roots):
        engine.schedule(delay, make_handler(tag, children), priority=priority)
    if vectorized:
        engine.schedule_block(
            block_offsets,
            lambda times: log.append(("vec", tuple(times.tolist()))),
            vectorized=True,
        )
    else:
        engine.schedule_block(block_offsets, lambda t: log.append(("blk", t)))
    engine.run_until(16.0)
    return log, engine.events_executed, engine.now


@given(
    roots=hyp.lists(root_event, min_size=0, max_size=8),
    block_offsets=block_channel,
)
@settings(max_examples=50, deadline=None)
def test_random_schedules_identical_across_modes(roots, block_offsets):
    """Callback + block schedules log identically in every mode."""
    reference = run_schedule("event", roots, block_offsets, vectorized=False)
    for mode in ("batched", "three_phase"):
        assert run_schedule(mode, roots, block_offsets, vectorized=False) == reference


@given(
    roots=hyp.lists(root_event, min_size=0, max_size=6),
    block_offsets=block_channel,
)
@settings(max_examples=25, deadline=None)
def test_vectorized_blocks_cover_the_same_events(roots, block_offsets):
    """A vectorized handler sees exactly the per-event times, in order.

    The slicing differs by construction (batched mode hands over whole
    runs), so the comparison flattens each mode's vector calls back to
    the per-event sequence.
    """

    def flatten(log):
        flat = []
        for entry in log:
            if entry[0] == "vec":
                flat.extend(("blk", t) for t in entry[1])
            else:
                flat.append(entry)
        return flat

    results = {}
    for mode in STEP_MODES:
        log, executed, now = run_schedule(mode, roots, block_offsets, vectorized=True)
        results[mode] = (flatten(log), executed, now)
    assert results["batched"] == results["event"]
    assert results["three_phase"] == results["event"]


# --------------------------------------------------------------------- #
# federation workloads
# --------------------------------------------------------------------- #

cloud_strategy = hyp.tuples(
    hyp.integers(min_value=2, max_value=10),
    hyp.floats(min_value=0.3, max_value=1.1),
    hyp.floats(min_value=0.0, max_value=1.0),
)


def build_scenario(specs) -> FederationScenario:
    clouds = []
    for i, (vms, load, share_fraction) in enumerate(specs):
        clouds.append(
            SmallCloud(
                name=f"sc{i}",
                vms=vms,
                arrival_rate=max(load * vms, 0.1),
                shared_vms=int(share_fraction * vms),
            )
        )
    return FederationScenario(tuple(clouds))


def simulate(scenario, seed, mode, failures=None, horizon=250.0):
    trace = TraceRecorder()
    simulator = FederationSimulator(
        scenario, seed=seed, trace=trace, step_mode=mode, failures=failures
    )
    metrics = simulator.run(horizon=horizon, warmup=25.0)
    return [asdict(m) for m in metrics], trace.events


@given(
    specs=hyp.lists(cloud_strategy, min_size=1, max_size=4),
    seed=hyp.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=25, deadline=None)
def test_federation_metrics_and_traces_identical(specs, seed):
    """Random federations: metrics and trace sequences match bit-for-bit."""
    scenario = build_scenario(specs)
    reference = simulate(scenario, seed, "event")
    for mode in ("batched", "three_phase"):
        assert simulate(scenario, seed, mode) == reference


window_strategy = hyp.tuples(
    hyp.sampled_from(("outage", "limplock", "flash_crowd")),
    hyp.floats(min_value=10.0, max_value=100.0),
    hyp.floats(min_value=10.0, max_value=120.0),
    hyp.floats(min_value=1.5, max_value=5.0),
)


@given(
    specs=hyp.lists(cloud_strategy, min_size=2, max_size=3),
    seed=hyp.integers(min_value=0, max_value=2**31),
    windows=hyp.lists(window_strategy, min_size=1, max_size=3),
)
@settings(max_examples=25, deadline=None)
def test_failure_injection_identical_across_modes(specs, seed, windows):
    """Failure-injected federations stay mode-equivalent too."""
    scenario = build_scenario(specs)
    failures = tuple(
        FailureWindow(
            kind=kind,
            sc=i % len(specs),
            # Same (sc, kind) windows must not overlap: stack each
            # window's span after every earlier generated window.
            start=start + 250.0 * i,
            end=start + 250.0 * i + duration,
            factor=1.0 if kind == "outage" else factor,
        )
        for i, (kind, start, duration, factor) in enumerate(windows)
    )
    horizon = 250.0 * len(windows) + 50.0
    reference = simulate(scenario, seed, "event", failures, horizon)
    assert sum(len(m) for m in reference[0]) > 0
    for mode in ("batched", "three_phase"):
        assert simulate(scenario, seed, mode, failures, horizon) == reference


# --------------------------------------------------------------------- #
# executor backends
# --------------------------------------------------------------------- #


@given(seed=hyp.integers(min_value=0, max_value=2**31))
@settings(max_examples=5, deadline=None)
def test_replications_identical_across_modes_and_backends(seed):
    """replicate() reduces to identical intervals on every backend/mode.

    Seeds are fixed up front and each replication is a pure function of
    its task tuple, so serial, thread, and process execution of any
    stepping mode must reproduce the serial/event reference exactly.
    """
    scenario = build_scenario([(6, 0.9, 0.5), (6, 0.6, 0.35)])
    failures = (FailureWindow(kind="outage", sc=0, start=40.0, end=80.0),)

    def run(mode, executor):
        return replicate(
            scenario,
            replications=2,
            horizon=200.0,
            warmup=20.0,
            base_seed=seed,
            executor=executor,
            step_mode=mode,
            failures=failures,
        )

    reference = run("event", SerialExecutor())
    backends = [
        SerialExecutor(),
        ThreadExecutor(workers=2),
        ProcessExecutor(workers=2),
    ]
    for mode in STEP_MODES:
        for executor in backends:
            assert run(mode, executor) == reference


def test_modes_constant_matches_engine():
    assert STEP_MODES == ("event", "batched", "three_phase")
    assert np.asarray([1.0]).dtype == float  # numpy available for blocks
