"""Property-based tests: metrics-snapshot merge algebra.

The worker merge protocol (``obs.map_with_metrics``) is only correct if
snapshot merging is associative and commutative — the merged totals must
not depend on how the executor happened to batch the work.  Observations
are integer-valued in these tests: counter and bucket *counts* are the
backend-independent contract; histogram float sums are not
bitwise-associative and are compared through bucket counts only.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as hyp

from repro.obs.metrics import DEFAULT_BUCKETS, MetricsRegistry, MetricsSnapshot

counter_events = hyp.lists(
    hyp.tuples(hyp.sampled_from(["a", "b", "c"]), hyp.integers(1, 100)),
    max_size=30,
)
observation_events = hyp.lists(
    hyp.tuples(
        hyp.sampled_from(["h1", "h2"]),
        hyp.integers(0, 100),  # integer-valued: sums stay exact
    ),
    max_size=30,
)
gauge_events = hyp.lists(
    hyp.tuples(hyp.sampled_from(["g1", "g2"]), hyp.integers(-50, 50)),
    max_size=10,
)


def snapshot_of(counters, observations, gauges) -> MetricsSnapshot:
    registry = MetricsRegistry()
    for name, value in counters:
        registry.inc(name, value)
    for name, value in observations:
        registry.observe(name, float(value))
    for name, value in gauges:
        registry.gauge(name, float(value))
    return registry.snapshot()


events = hyp.tuples(counter_events, observation_events, gauge_events)


@settings(max_examples=60, deadline=None)
@given(events, events)
def test_merge_is_commutative(left_events, right_events):
    left = snapshot_of(*left_events)
    right = snapshot_of(*right_events)
    assert left.merge(right) == right.merge(left)


@settings(max_examples=60, deadline=None)
@given(events, events, events)
def test_merge_is_associative(a_events, b_events, c_events):
    a = snapshot_of(*a_events)
    b = snapshot_of(*b_events)
    c = snapshot_of(*c_events)
    assert a.merge(b).merge(c) == a.merge(b.merge(c))


@settings(max_examples=60, deadline=None)
@given(events)
def test_empty_is_the_identity(all_events):
    snapshot = snapshot_of(*all_events)
    empty = MetricsSnapshot.empty()
    assert snapshot.merge(empty) == snapshot
    assert empty.merge(snapshot) == snapshot


@settings(max_examples=60, deadline=None)
@given(
    observation_events,
    hyp.lists(hyp.integers(0, 1), min_size=0, max_size=30),
)
def test_histogram_counts_conserved_under_arbitrary_splits(observations, cuts):
    """Splitting one observation stream across workers loses nothing."""
    serial = snapshot_of([], observations, [])

    # Partition the stream at arbitrary points into per-"worker" chunks.
    chunks: list[list] = [[]]
    for i, event in enumerate(observations):
        if i < len(cuts) and cuts[i]:
            chunks.append([])
        chunks[-1].append(event)
    merged = MetricsSnapshot.merge_all(
        [snapshot_of([], chunk, []) for chunk in chunks]
    )

    assert merged == serial
    for name, hist in merged.histograms:
        expected = [value for metric, value in observations if metric == name]
        assert hist.total == len(expected)
        assert sum(hist.counts) == len(expected)
        assert len(hist.counts) == len(DEFAULT_BUCKETS) + 1
        if expected:
            assert hist.minimum == float(min(expected))
            assert hist.maximum == float(max(expected))


@settings(max_examples=60, deadline=None)
@given(
    counter_events,
    hyp.lists(hyp.integers(0, 1), min_size=0, max_size=30),
)
def test_counter_totals_equal_serial_under_splits(counters, cuts):
    serial = snapshot_of(counters, [], [])

    chunks: list[list] = [[]]
    for i, event in enumerate(counters):
        if i < len(cuts) and cuts[i]:
            chunks.append([])
        chunks[-1].append(event)
    merged = MetricsSnapshot.merge_all(
        [snapshot_of(chunk, [], []) for chunk in chunks]
    )

    assert merged.counter_view() == serial.counter_view()
    totals: dict[str, int] = {}
    for name, value in counters:
        totals[name] = totals.get(name, 0) + value
    assert dict(merged.counters) == totals
