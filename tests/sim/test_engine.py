"""Tests for the generic discrete-event engine."""

import pytest

from repro.exceptions import SimulationError
from repro.sim.engine import SimulationEngine


class TestScheduling:
    def test_events_run_in_time_order(self):
        engine = SimulationEngine()
        log = []
        engine.schedule(2.0, lambda: log.append("b"))
        engine.schedule(1.0, lambda: log.append("a"))
        engine.schedule(3.0, lambda: log.append("c"))
        engine.run_until(10.0)
        assert log == ["a", "b", "c"]

    def test_ties_broken_by_priority_then_insertion(self):
        engine = SimulationEngine()
        log = []
        engine.schedule(1.0, lambda: log.append("later"), priority=1)
        engine.schedule(1.0, lambda: log.append("first"), priority=0)
        engine.schedule(1.0, lambda: log.append("second"), priority=0)
        engine.run_until(2.0)
        assert log == ["first", "second", "later"]

    def test_clock_advances_to_event_times(self):
        engine = SimulationEngine()
        times = []
        engine.schedule(1.5, lambda: times.append(engine.now))
        engine.schedule(4.0, lambda: times.append(engine.now))
        engine.run_until(10.0)
        assert times == [1.5, 4.0]
        assert engine.now == 10.0

    def test_negative_delay_rejected(self):
        engine = SimulationEngine()
        with pytest.raises(SimulationError):
            engine.schedule(-0.1, lambda: None)

    def test_schedule_at_absolute_time(self):
        engine = SimulationEngine()
        hits = []
        engine.schedule_at(5.0, lambda: hits.append(engine.now))
        engine.run_until(6.0)
        assert hits == [5.0]

    def test_events_scheduled_during_events(self):
        engine = SimulationEngine()
        log = []

        def chain():
            log.append(engine.now)
            if engine.now < 3.0:
                engine.schedule(1.0, chain)

        engine.schedule(1.0, chain)
        engine.run_until(10.0)
        assert log == [1.0, 2.0, 3.0]


class TestCancellation:
    def test_cancelled_events_are_skipped(self):
        engine = SimulationEngine()
        log = []
        event = engine.schedule(1.0, lambda: log.append("no"))
        engine.schedule(2.0, lambda: log.append("yes"))
        event.cancel()
        engine.run_until(3.0)
        assert log == ["yes"]

    def test_peek_skips_cancelled(self):
        engine = SimulationEngine()
        event = engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        event.cancel()
        assert engine.peek_time() == 2.0


class TestHorizon:
    def test_events_at_horizon_not_executed(self):
        engine = SimulationEngine()
        log = []
        engine.schedule(5.0, lambda: log.append("at"))
        engine.run_until(5.0)
        assert log == []
        # A later run executes it.
        engine.run_until(5.1)
        assert log == ["at"]

    def test_past_horizon_rejected(self):
        engine = SimulationEngine()
        engine.run_until(5.0)
        with pytest.raises(SimulationError):
            engine.run_until(1.0)

    def test_max_events_bound(self):
        engine = SimulationEngine()
        count = []

        def tick():
            count.append(1)
            engine.schedule(0.1, tick)

        engine.schedule(0.1, tick)
        engine.run_until(1000.0, max_events=7)
        assert len(count) == 7

    def test_events_executed_counter(self):
        engine = SimulationEngine()
        for i in range(4):
            engine.schedule(float(i + 1), lambda: None)
        engine.run_until(10.0)
        assert engine.events_executed == 4
