"""Tests for reproducible random streams."""

import pytest

from repro.exceptions import ConfigurationError
from repro.sim.rng import RandomStreams


class TestRandomStreams:
    def test_same_seed_same_draws(self):
        a = RandomStreams(7).stream("arrivals")
        b = RandomStreams(7).stream("arrivals")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_streams_are_memoized(self):
        streams = RandomStreams(1)
        assert streams.stream("x") is streams.stream("x")

    def test_different_names_independent(self):
        streams = RandomStreams(3)
        first = streams.stream("a").random()
        second = streams.stream("b").random()
        assert first != second

    def test_creation_order_determines_identity(self):
        # The contract: stream identity depends on first-request order.
        one = RandomStreams(5)
        one.stream("first")
        value_one = one.stream("second").random()
        two = RandomStreams(5)
        two.stream("first")
        value_two = two.stream("second").random()
        assert value_one == value_two

    def test_names_in_creation_order(self):
        streams = RandomStreams(0)
        streams.stream("z")
        streams.stream("a")
        assert streams.names() == ["z", "a"]

    def test_negative_seed_rejected(self):
        with pytest.raises(ConfigurationError):
            RandomStreams(-1)
