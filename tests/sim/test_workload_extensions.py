"""Tests for the Sect. VII workload extensions inside the simulator."""

import numpy as np
import pytest

from repro.core.small_cloud import FederationScenario, SmallCloud
from repro.exceptions import SimulationError
from repro.sim.federation import FederationSimulator
from repro.workload.arrivals import MMPPProcess, PoissonProcess
from repro.workload.phase_type import fit_two_moment

pytestmark = pytest.mark.slow


def scenario():
    return FederationScenario((
        SmallCloud(name="a", vms=10, arrival_rate=7.0, shared_vms=3),
        SmallCloud(name="b", vms=10, arrival_rate=8.0, shared_vms=3),
    ))


def mmpp(rate_factor, mean_rate, seed):
    """A two-phase MMPP with the given mean rate and burstiness factor."""
    low = mean_rate / rate_factor
    high = mean_rate * (2.0 - 1.0 / rate_factor)
    return MMPPProcess(
        rates=[low, high],
        generator=[[-0.05, 0.05], [0.05, -0.05]],
        rng=np.random.default_rng(seed),
    )


class TestMMPPArrivals:
    def test_simulator_accepts_mmpp(self):
        processes = [mmpp(3.0, 7.0, 1), mmpp(3.0, 8.0, 2)]
        sim = FederationSimulator(scenario(), seed=0, arrival_processes=processes)
        metrics = sim.run(horizon=3_000.0, warmup=200.0)
        assert all(m.arrivals > 0 for m in metrics)

    def test_wrong_process_count_rejected(self):
        with pytest.raises(SimulationError):
            FederationSimulator(
                scenario(), arrival_processes=[mmpp(2.0, 7.0, 1)]
            )

    def test_poisson_process_object_matches_default(self):
        # Feeding explicit PoissonProcess objects must give statistics
        # close to the built-in exponential path (not identical draws —
        # different streams — but the same law).
        rngs = [np.random.default_rng(10), np.random.default_rng(11)]
        processes = [PoissonProcess(7.0, rngs[0]), PoissonProcess(8.0, rngs[1])]
        explicit = FederationSimulator(
            scenario(), seed=5, arrival_processes=processes
        ).run(horizon=20_000.0, warmup=1_000.0)
        default = FederationSimulator(scenario(), seed=5).run(
            horizon=20_000.0, warmup=1_000.0
        )
        for e, d in zip(explicit, default):
            assert e.utilization == pytest.approx(d.utilization, abs=0.03)

    def test_burstiness_increases_forwarding(self):
        """The extension's point: bursty demand stresses SLAs harder."""
        smooth = FederationSimulator(scenario(), seed=2).run(
            horizon=30_000.0, warmup=1_000.0
        )
        bursty_processes = [mmpp(5.0, 7.0, 3), mmpp(5.0, 8.0, 4)]
        bursty = FederationSimulator(
            scenario(), seed=2, arrival_processes=bursty_processes
        ).run(horizon=30_000.0, warmup=1_000.0)
        assert sum(m.forward_rate for m in bursty) > sum(
            m.forward_rate for m in smooth
        )


class TestPhaseTypeService:
    def test_high_variance_service_increases_queueing(self):
        exponential = FederationSimulator(scenario(), seed=6).run(
            horizon=30_000.0, warmup=1_000.0
        )
        heavy = fit_two_moment(mean=1.0, scv=8.0)
        bursty = FederationSimulator(
            scenario(), seed=6, service_distributions=[heavy, heavy]
        ).run(horizon=30_000.0, warmup=1_000.0)
        assert sum(m.mean_queue_length for m in bursty) > sum(
            m.mean_queue_length for m in exponential
        )

    def test_low_variance_service_reduces_waits(self):
        exponential = FederationSimulator(scenario(), seed=7).run(
            horizon=30_000.0, warmup=1_000.0
        )
        smooth = fit_two_moment(mean=1.0, scv=0.25)
        erlang = FederationSimulator(
            scenario(), seed=7, service_distributions=[smooth, smooth]
        ).run(horizon=30_000.0, warmup=1_000.0)
        assert sum(m.mean_wait for m in erlang) <= sum(
            m.mean_wait for m in exponential
        ) + 0.01
