"""Tests for multi-replication experiments."""

import pytest

from repro.core.small_cloud import FederationScenario, SmallCloud
from repro.sim.replications import replicate

pytestmark = pytest.mark.slow


def scenario():
    return FederationScenario((
        SmallCloud(name="a", vms=5, arrival_rate=3.5, shared_vms=2),
        SmallCloud(name="b", vms=5, arrival_rate=4.2, shared_vms=2),
    ))


class TestReplicate:
    @pytest.fixture(scope="class")
    def results(self):
        return replicate(
            scenario(), replications=6, horizon=3_000.0, warmup=200.0, base_seed=3
        )

    def test_one_result_per_sc(self, results):
        assert len(results) == 2

    def test_intervals_are_sane(self, results):
        for r in results:
            assert r.utilization.low <= r.utilization.mean <= r.utilization.high
            assert 0.0 <= r.utilization.mean <= 1.0
            assert r.forward_rate.half_width >= 0.0

    def test_interval_covers_exact_value(self, results):
        from repro.perf.detailed import DetailedModel

        exact = DetailedModel().evaluate(scenario())
        for r, e in zip(results, exact):
            # 95% CI from 6 replications: wide, must cover the exact
            # stationary value (up to a small allowance for short runs).
            assert (
                r.lent_mean.low - 0.05 <= e.lent_mean <= r.lent_mean.high + 0.05
            )

    def test_more_replications_tighten_intervals(self):
        few = replicate(scenario(), replications=3, horizon=1_500.0, base_seed=0)
        many = replicate(scenario(), replications=12, horizon=1_500.0, base_seed=0)
        assert (
            many[0].utilization.half_width <= few[0].utilization.half_width + 1e-6
        )

    def test_deterministic_given_base_seed(self):
        a = replicate(scenario(), replications=3, horizon=800.0, warmup=100.0, base_seed=9)
        b = replicate(scenario(), replications=3, horizon=800.0, warmup=100.0, base_seed=9)
        assert a == b
