"""Tests for the federation simulator's semantics and conservation laws."""

import pytest

from repro.core.small_cloud import FederationScenario, SmallCloud
from repro.exceptions import SimulationError
from repro.sim.federation import FederationSimulator
from repro.sim.trace import TraceRecorder
from repro.workload.service import ErlangService

pytestmark = pytest.mark.slow


def scenario_2sc(share_a=5, share_b=3, rate_a=7.0, rate_b=8.0):
    return FederationScenario((
        SmallCloud(name="a", vms=10, arrival_rate=rate_a, shared_vms=share_a),
        SmallCloud(name="b", vms=10, arrival_rate=rate_b, shared_vms=share_b),
    ))


class TestConservation:
    def test_arrivals_accounted_for(self):
        sim = FederationSimulator(scenario_2sc(), seed=1)
        metrics = sim.run(horizon=5_000.0, warmup=500.0)
        for m in metrics:
            accounted = m.forwarded + m.served_locally + m.served_borrowed
            # In-flight work (queued or in service at the horizon, or
            # carried over from warmup) explains any gap.
            assert abs(m.arrivals - accounted) <= 60

    def test_lent_equals_borrowed_globally(self):
        sim = FederationSimulator(scenario_2sc(), seed=2)
        metrics = sim.run(horizon=5_000.0)
        total_lent = sum(m.lent_mean for m in metrics)
        total_borrowed = sum(m.borrowed_mean for m in metrics)
        assert total_lent == pytest.approx(total_borrowed, rel=1e-9)

    def test_two_sc_mirror_symmetry(self):
        # With two SCs, everything a lends is borrowed by b and vice versa.
        sim = FederationSimulator(scenario_2sc(), seed=3)
        a, b = sim.run(horizon=5_000.0)
        assert a.lent_mean == pytest.approx(b.borrowed_mean, rel=1e-9)
        assert b.lent_mean == pytest.approx(a.borrowed_mean, rel=1e-9)

    def test_utilization_bounded(self):
        sim = FederationSimulator(scenario_2sc(rate_b=15.0), seed=4)
        for m in sim.run(horizon=3_000.0):
            assert 0.0 <= m.utilization <= 1.0


class TestSharingLimits:
    def test_no_sharing_means_no_lending(self):
        sim = FederationSimulator(scenario_2sc(share_a=0, share_b=0), seed=5)
        for m in sim.run(horizon=3_000.0):
            assert m.lent_mean == 0.0
            assert m.borrowed_mean == 0.0

    def test_one_sided_sharing(self):
        # Only SC a shares: b can borrow, a cannot.
        sim = FederationSimulator(scenario_2sc(share_a=5, share_b=0), seed=6)
        a, b = sim.run(horizon=5_000.0)
        assert a.borrowed_mean == 0.0
        assert b.lent_mean == 0.0
        assert a.lent_mean > 0.0
        assert b.borrowed_mean == pytest.approx(a.lent_mean, rel=1e-9)

    def test_sharing_reduces_forwarding(self):
        lonely = FederationSimulator(scenario_2sc(share_a=0, share_b=0), seed=7)
        friendly = FederationSimulator(scenario_2sc(share_a=5, share_b=5), seed=7)
        lonely_fwd = sum(m.forward_rate for m in lonely.run(horizon=20_000.0, warmup=500.0))
        friendly_fwd = sum(m.forward_rate for m in friendly.run(horizon=20_000.0, warmup=500.0))
        assert friendly_fwd < lonely_fwd


class TestDeterminism:
    def test_same_seed_same_results(self):
        m1 = FederationSimulator(scenario_2sc(), seed=11).run(horizon=2_000.0)
        m2 = FederationSimulator(scenario_2sc(), seed=11).run(horizon=2_000.0)
        assert m1 == m2

    def test_different_seeds_differ(self):
        m1 = FederationSimulator(scenario_2sc(), seed=11).run(horizon=2_000.0)
        m2 = FederationSimulator(scenario_2sc(), seed=12).run(horizon=2_000.0)
        assert m1 != m2


class TestTrace:
    def test_trace_records_sharing_events(self):
        trace = TraceRecorder(max_events=50_000)
        sim = FederationSimulator(scenario_2sc(), seed=8, trace=trace)
        sim.run(horizon=500.0)
        counts = trace.counts()
        assert counts.get("serve_local", 0) > 0
        assert counts.get("complete", 0) > 0
        assert "serve_borrowed" in counts or "lend_freed" in counts

    def test_trace_cap_respected(self):
        trace = TraceRecorder(max_events=100)
        sim = FederationSimulator(scenario_2sc(), seed=9, trace=trace)
        sim.run(horizon=500.0)
        assert len(trace) == 100
        assert trace.truncated


class TestServiceDistributions:
    def test_phase_type_service_accepted(self):
        scenario = scenario_2sc()
        sim = FederationSimulator(
            scenario,
            seed=10,
            service_distributions=[
                ErlangService(stages=2, stage_rate=2.0),
                ErlangService(stages=2, stage_rate=2.0),
            ],
        )
        metrics = sim.run(horizon=3_000.0)
        assert all(m.utilization > 0 for m in metrics)

    def test_wrong_distribution_count_rejected(self):
        with pytest.raises(SimulationError):
            FederationSimulator(
                scenario_2sc(),
                service_distributions=[ErlangService(stages=2, stage_rate=2.0)],
            )


class TestRunValidation:
    def test_warmup_must_precede_horizon(self):
        sim = FederationSimulator(scenario_2sc(), seed=0)
        with pytest.raises(SimulationError):
            sim.run(horizon=100.0, warmup=100.0)

    def test_sla_violations_are_rare_by_design(self):
        # The SLA gate only admits requests likely to start within Q, so
        # realized violations among served requests stay a small minority.
        sim = FederationSimulator(scenario_2sc(), seed=13)
        metrics = sim.run(horizon=20_000.0, warmup=1_000.0)
        for m in metrics:
            served_after_wait = m.served_locally + m.served_borrowed
            if served_after_wait:
                assert m.sla_violations / served_after_wait < 0.5
