"""Failure-injection tests: schema, semantics, and welfare sweep.

Covers the :mod:`repro.sim.failures` window schema (round-trips, loud
rejection), the simulator-side semantics of each failure class (outage
conservation, limplock degradation, flash-crowd surge and drain), and
the welfare-under-failure sweep machinery.
"""

from dataclasses import replace

import pytest

from repro.core.small_cloud import FederationScenario, SmallCloud
from repro.analysis.sanitize import InvariantViolation
from repro.exceptions import ConfigurationError, SimulationError
from repro.scenarios.schema import RunConfig, ScenarioSpec, spec_from_dict
from repro.sim.failures import (
    FAILURE_KINDS,
    FailureWindow,
    failure_impact,
    main,
    sweep,
    validate_schedule,
    window_from_dict,
)
from repro.sim.federation import FederationSimulator
from repro.sim.trace import TraceRecorder


def federation(*clouds):
    return FederationScenario(tuple(clouds))


def loaded_pair(sla_bound=0.5):
    """A busy SC next to a lightly loaded lender."""
    return federation(
        SmallCloud(name="busy", vms=6, arrival_rate=5.4, shared_vms=3, sla_bound=sla_bound),
        SmallCloud(name="calm", vms=6, arrival_rate=2.4, shared_vms=3, sla_bound=sla_bound),
    )


# --------------------------------------------------------------------- #
# window schema
# --------------------------------------------------------------------- #


class TestFailureWindow:
    def test_kinds_constant(self):
        assert FAILURE_KINDS == ("outage", "limplock", "flash_crowd")

    def test_round_trip(self):
        for kind in FAILURE_KINDS:
            factor = 1.0 if kind == "outage" else 2.5
            window = FailureWindow(kind=kind, sc=1, start=10.0, end=20.0, factor=factor)
            assert window_from_dict(window.to_dict()) == window

    def test_to_dict_has_all_five_keys_in_order(self):
        window = FailureWindow(kind="limplock", sc=0, start=1.0, end=2.0, factor=3.0)
        assert list(window.to_dict()) == ["kind", "sc", "start", "end", "factor"]

    def test_factor_defaults_to_one(self):
        assert window_from_dict(
            {"kind": "outage", "sc": 0, "start": 0.0, "end": 1.0}
        ).factor == 1.0

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown failure kind"):
            FailureWindow(kind="meteor", sc=0, start=0.0, end=1.0)

    def test_end_must_exceed_start(self):
        with pytest.raises(ConfigurationError, match="end > start"):
            FailureWindow(kind="outage", sc=0, start=5.0, end=5.0)

    def test_outage_takes_no_factor(self):
        with pytest.raises(ConfigurationError, match="no factor"):
            FailureWindow(kind="outage", sc=0, start=0.0, end=1.0, factor=2.0)

    def test_degradation_factor_below_one_rejected(self):
        for kind in ("limplock", "flash_crowd"):
            with pytest.raises(ConfigurationError, match="factor must be >= 1"):
                FailureWindow(kind=kind, sc=0, start=0.0, end=1.0, factor=0.5)

    def test_unknown_payload_keys_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown failure-window fields"):
            window_from_dict(
                {"kind": "outage", "sc": 0, "start": 0.0, "end": 1.0, "blast": 9}
            )

    def test_missing_payload_keys_rejected(self):
        with pytest.raises(ConfigurationError, match="missing fields"):
            window_from_dict({"kind": "outage", "sc": 0})


class TestValidateSchedule:
    def test_sc_out_of_range(self):
        window = FailureWindow(kind="outage", sc=3, start=0.0, end=1.0)
        with pytest.raises(ConfigurationError, match="3-SC federation"):
            validate_schedule([window], 3)

    def test_same_kind_overlap_rejected(self):
        windows = [
            FailureWindow(kind="limplock", sc=0, start=0.0, end=10.0, factor=2.0),
            FailureWindow(kind="limplock", sc=0, start=5.0, end=15.0, factor=2.0),
        ]
        with pytest.raises(ConfigurationError, match="overlapping limplock windows"):
            validate_schedule(windows, 2)

    def test_adjacent_windows_allowed(self):
        validate_schedule(
            [
                FailureWindow(kind="outage", sc=0, start=0.0, end=10.0),
                FailureWindow(kind="outage", sc=0, start=10.0, end=20.0),
            ],
            1,
        )

    def test_different_kinds_may_overlap(self):
        validate_schedule(
            [
                FailureWindow(kind="limplock", sc=0, start=0.0, end=10.0, factor=2.0),
                FailureWindow(kind="flash_crowd", sc=0, start=5.0, end=15.0, factor=2.0),
            ],
            1,
        )


class TestScenarioSpecFailures:
    def spec(self, failures=()):
        return ScenarioSpec(
            name="failure-case",
            clouds=(
                SmallCloud(name="a", vms=4, arrival_rate=3.0, shared_vms=2),
                SmallCloud(name="b", vms=4, arrival_rate=2.0, shared_vms=2),
            ),
            run=RunConfig(horizon=500.0),
            failures=failures,
        )

    def test_round_trip_preserves_failures(self):
        spec = self.spec(
            (FailureWindow(kind="flash_crowd", sc=1, start=50.0, end=150.0, factor=2.0),)
        )
        restored = spec_from_dict(spec.to_dict())
        assert restored == spec
        assert restored.content_hash() == spec.content_hash()

    def test_empty_failures_not_serialized(self):
        """Hash stability: failure-free specs keep their historical form."""
        data = self.spec().to_dict()
        assert "failures" not in data
        assert spec_from_dict(data).failures == ()

    def test_adding_failures_changes_the_hash(self):
        healthy = self.spec()
        failed = replace(
            healthy,
            failures=(FailureWindow(kind="outage", sc=0, start=10.0, end=20.0),),
        )
        assert failed.content_hash() != healthy.content_hash()

    def test_window_past_horizon_rejected(self):
        with pytest.raises(InvariantViolation, match="past the"):
            self.spec((FailureWindow(kind="outage", sc=0, start=10.0, end=900.0),))

    def test_window_on_missing_sc_rejected(self):
        with pytest.raises(InvariantViolation, match="2-SC federation"):
            self.spec((FailureWindow(kind="outage", sc=5, start=10.0, end=20.0),))


# --------------------------------------------------------------------- #
# simulator semantics
# --------------------------------------------------------------------- #


def run_traced(scenario, failures, seed=7, horizon=400.0):
    trace = TraceRecorder()
    simulator = FederationSimulator(
        scenario, seed=seed, trace=trace, failures=failures or None
    )
    metrics = simulator.run(horizon=horizon)  # warmup 0: counters are exact
    return simulator, metrics, trace


class TestOutage:
    failures = (FailureWindow(kind="outage", sc=0, start=100.0, end=250.0),)

    def test_conservation_no_request_lost_or_double_counted(self):
        """arrivals = forwarded + served + still-in-system, per SC."""
        simulator, metrics, _ = run_traced(loaded_pair(), self.failures)
        for state, m in zip(simulator.clouds, metrics):
            in_system = state.own_running + state.borrowed_count + state.backlog
            assert m.arrivals == m.forwarded + m.served_locally + m.served_borrowed + in_system

    def test_trace_accounts_for_every_forward(self):
        """Flushed + per-arrival outage forwards + SLA forwards = forwarded."""
        _, metrics, trace = run_traced(loaded_pair(), self.failures)
        flushed = sum(e.as_dict()["flushed"] for e in trace.of_kind("outage_flush"))
        outage_forwards = len(trace.of_kind("outage_forward"))
        sla_forwards = len(
            [e for e in trace.of_kind("forward") if e.as_dict()["sc"] == 0]
        )
        assert metrics[0].forwarded == flushed + outage_forwards + sla_forwards

    def test_outage_strictly_increases_forwarding(self):
        _, healthy, _ = run_traced(loaded_pair(), ())
        _, failed, _ = run_traced(loaded_pair(), self.failures)
        assert failed[0].forwarded > healthy[0].forwarded

    def test_dead_sc_lends_nothing_during_the_window(self):
        _, _, trace = run_traced(loaded_pair(), self.failures)
        for event in trace.of_kind("serve_borrowed"):
            data = event.as_dict()
            if 100.0 <= data["time"] < 250.0:
                assert data["host"] != 0
        for event in trace.of_kind("lend_freed"):
            data = event.as_dict()
            if 100.0 <= data["time"] < 250.0:
                assert data["host"] != 0

    def test_recovery_restores_local_service(self):
        _, _, trace = run_traced(loaded_pair(), self.failures)
        assert any(
            e.time >= 250.0 and e.as_dict()["sc"] == 0
            for e in trace.of_kind("serve_local")
        )


class TestLimplock:
    failures = (
        FailureWindow(kind="limplock", sc=0, start=50.0, end=350.0, factor=4.0),
    )

    def test_degraded_sc_utility_never_improves(self):
        """Under common random numbers, limping cannot beat healthy."""
        spec = ScenarioSpec(
            name="limplock-case",
            clouds=(
                SmallCloud(name="a", vms=6, arrival_rate=5.4, shared_vms=3, sla_bound=0.5),
                SmallCloud(name="b", vms=6, arrival_rate=2.4, shared_vms=3, sla_bound=0.5),
            ),
            run=RunConfig(horizon=400.0, seed=7),
            failures=self.failures,
        )
        report = failure_impact(spec)
        degraded = report["per_sc"][0]
        assert degraded["utility_failed"] <= degraded["utility_healthy"]
        assert degraded["utility_shift"] <= 0.0

    def test_service_slowdown_raises_utilization(self):
        _, healthy, _ = run_traced(loaded_pair(), ())
        _, failed, _ = run_traced(loaded_pair(), self.failures)
        assert failed[0].utilization > healthy[0].utilization


class TestFlashCrowd:
    failures = (
        FailureWindow(kind="flash_crowd", sc=0, start=100.0, end=200.0, factor=3.0),
    )

    def test_surge_increases_arrivals(self):
        _, healthy, _ = run_traced(loaded_pair(), ())
        _, failed, _ = run_traced(loaded_pair(), self.failures)
        assert failed[0].arrivals > healthy[0].arrivals
        assert failed[1].arrivals == healthy[1].arrivals  # CRN: bystander untouched

    def test_backlog_drains_after_the_window(self):
        """The surge backlog clears once the arrival rate recovers."""
        simulator, _, trace = run_traced(
            loaded_pair(), self.failures, horizon=800.0
        )
        peak = max(
            (e.as_dict()["backlog"] for e in trace.of_kind("queue") if e.time < 200.0),
            default=0,
        )
        assert peak >= 1  # the surge actually queued work
        assert simulator.clouds[0].backlog <= peak

    def test_rate_restored_after_window(self):
        simulator, _, _ = run_traced(loaded_pair(), self.failures)
        assert simulator._arrival_factor[0] == 1.0

    def test_requires_poisson_arrivals(self):
        class _Custom:
            def next_interarrival(self):
                return 1.0

        scenario = loaded_pair()
        with pytest.raises(SimulationError, match="flash_crowd"):
            FederationSimulator(
                scenario,
                arrival_processes=[_Custom(), _Custom()],
                failures=self.failures,
            )


# --------------------------------------------------------------------- #
# welfare sweep
# --------------------------------------------------------------------- #


def small_failure_spec(name="sweep-case"):
    return ScenarioSpec(
        name=name,
        clouds=(
            SmallCloud(name="a", vms=4, arrival_rate=3.2, shared_vms=2, sla_bound=0.5),
            SmallCloud(name="b", vms=4, arrival_rate=2.0, shared_vms=2, sla_bound=0.5),
        ),
        run=RunConfig(horizon=300.0, seed=3),
        failures=(FailureWindow(kind="outage", sc=0, start=80.0, end=160.0),),
    )


class TestSweep:
    def test_failure_impact_report_shape(self):
        report = failure_impact(small_failure_spec())
        assert report["welfare_baseline"] == 0.0
        assert report["kinds"] == ["outage"]
        assert report["step_mode"] == "batched"
        assert len(report["per_sc"]) == 2
        entry = report["per_sc"][0]
        assert entry["utility_shift"] == pytest.approx(
            entry["utility_failed"] - entry["utility_healthy"]
        )

    def test_failure_impact_mode_independent(self):
        """Welfare reports are bit-identical across stepping modes."""
        spec = small_failure_spec()
        reports = {
            mode: failure_impact(spec, step_mode=mode)
            for mode in ("event", "batched", "three_phase")
        }
        for report in reports.values():
            report.pop("step_mode")
        assert reports["batched"] == reports["event"]
        assert reports["three_phase"] == reports["event"]

    def test_sweep_over_explicit_specs(self):
        report = sweep([small_failure_spec()], horizon=200.0)
        assert report["format_version"] == 1
        assert [s["scenario"] for s in report["scenarios"]] == ["sweep-case"]
        assert report["scenarios"][0]["horizon"] == 200.0

    def test_cli_writes_report(self, tmp_path, capsys):
        out = tmp_path / "failures.json"
        code = main(
            ["--scenario", "failure-000", "--horizon", "120", "--output", str(out)]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "failure-000" in captured
        assert out.exists()

    def test_cli_rejects_failure_free_scenarios(self):
        with pytest.raises(SystemExit, match="no failure schedule"):
            main(["--scenario", "bursty-000", "--horizon", "50"])
