"""Tests for the trace recorder."""

import pytest

from repro.exceptions import ConfigurationError
from repro.sim.trace import TraceEvent, TraceRecorder


class TestTraceRecorder:
    def test_records_events_in_order(self):
        trace = TraceRecorder()
        trace.record(1.0, "arrive", sc=0)
        trace.record(2.0, "depart", sc=1)
        assert len(trace) == 2
        assert trace.events[0].kind == "arrive"
        assert trace.events[1].time == 2.0

    def test_fields_preserved(self):
        trace = TraceRecorder()
        trace.record(0.5, "lend", host=1, borrower=2)
        event = trace.events[0]
        assert event.as_dict() == {
            "time": 0.5,
            "kind": "lend",
            "borrower": 2,
            "host": 1,
        }

    def test_cap_and_truncation_flag(self):
        trace = TraceRecorder(max_events=3)
        for i in range(5):
            trace.record(float(i), "tick")
        assert len(trace) == 3
        assert trace.truncated

    def test_not_truncated_below_cap(self):
        trace = TraceRecorder(max_events=10)
        trace.record(0.0, "tick")
        assert not trace.truncated

    def test_of_kind_filters(self):
        trace = TraceRecorder()
        trace.record(0.0, "a")
        trace.record(1.0, "b")
        trace.record(2.0, "a")
        assert [e.time for e in trace.of_kind("a")] == [0.0, 2.0]

    def test_counts(self):
        trace = TraceRecorder()
        for kind in ("x", "y", "x", "x"):
            trace.record(0.0, kind)
        assert trace.counts() == {"x": 3, "y": 1}

    def test_invalid_cap_rejected(self):
        with pytest.raises(ConfigurationError):
            TraceRecorder(max_events=0)

    def test_events_are_frozen(self):
        event = TraceEvent(time=0.0, kind="k", fields=())
        with pytest.raises(AttributeError):
            event.kind = "other"


class TestObsIntegration:
    """Recorded sim events are forwarded to the active obs span."""

    def test_record_forwards_to_open_span(self):
        from repro import obs

        with obs.capture(metrics=False) as cap:
            with obs.span("sim.run"):
                trace = TraceRecorder()
                trace.record(1.5, "arrive", sc=0)
        (root,) = cap.tracer.roots
        assert root.events == [("arrive", 1.5, (("sc", 0),))]
        # The recorder's own contents are unchanged by forwarding.
        assert trace.events[0].as_dict() == {"time": 1.5, "kind": "arrive", "sc": 0}

    def test_record_without_tracing_is_silent(self):
        trace = TraceRecorder()
        trace.record(0.0, "arrive")
        assert len(trace) == 1

    def test_replication_events_appear_under_replication_span(self):
        from repro import obs
        from repro.bench.scenarios import fig8_game_scenario
        from repro.sim.replications import replicate

        scenario = fig8_game_scenario(2, vms=4)
        with obs.capture(metrics=False) as cap:
            replicate(scenario, replications=2, horizon=120.0, warmup=20.0)

        (replicate_span,) = cap.tracer.roots
        assert replicate_span.name == "sim.replicate"
        replication_spans = [
            child
            for child in replicate_span.children
            if child.name == "sim.replication"
        ]
        assert len(replication_spans) == 2
        for span in replication_spans:
            (run_span,) = span.children
            assert run_span.name == "sim.run"
            # The simulator auto-attached a TraceRecorder because tracing
            # was active, so its events surface inside the span tree.
            kinds = {kind for kind, _, _ in run_span.events}
            assert "serve_local" in kinds or "queue" in kinds
