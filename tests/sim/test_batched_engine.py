"""Unit tests for the batched stepping machinery.

Covers the list-heap engine surface (typed events, block channels,
validation, counters), the pre-drawn RNG blocks' bit-identity with the
scalar draws they replace, and the Welford merge used by the throughput
benchmark to reduce per-repeat accumulators.
"""

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.sim.engine import SimulationEngine
from repro.sim.rng import DEFAULT_BLOCK, ExponentialBlock, UniformBlock
from repro.sim.stats import WelfordAccumulator


class TestTypedEvents:
    def test_schedule_typed_requires_batched_mode(self):
        engine = SimulationEngine(step_mode="event")
        with pytest.raises(SimulationError, match="batched step_mode"):
            engine.schedule_typed(1.0, 0)

    def test_typed_event_without_dispatch_fails_loudly(self):
        engine = SimulationEngine(step_mode="batched")
        engine.schedule_typed(1.0, 0)
        with pytest.raises(SimulationError, match="typed_dispatch"):
            engine.run_until(10.0)

    def test_typed_dispatch_receives_code_and_payload(self):
        engine = SimulationEngine(step_mode="batched")
        seen = []
        engine.typed_dispatch = lambda code, a, b: seen.append((code, a, b))
        engine.schedule_typed(1.0, 7, 3, 9)
        engine.schedule_typed_at(0.5, 2)
        engine.run_until(10.0)
        assert seen == [(2, 0, 0), (7, 3, 9)]

    def test_negative_delay_rejected(self):
        engine = SimulationEngine(step_mode="batched")
        with pytest.raises(SimulationError, match="past"):
            engine.schedule_typed(-1.0, 0)

    def test_typed_and_callback_events_share_the_total_order(self):
        engine = SimulationEngine(step_mode="batched")
        log = []
        engine.typed_dispatch = lambda code, a, b: log.append(("typed", code))
        engine.schedule(1.0, lambda: log.append(("cb", 0)), priority=1)
        engine.schedule_typed(1.0, 5, priority=0)  # same time, lower priority
        engine.run_until(2.0)
        assert log == [("typed", 5), ("cb", 0)]


class TestScheduleBlock:
    def test_offsets_must_be_one_dimensional(self):
        engine = SimulationEngine(step_mode="batched")
        with pytest.raises(SimulationError, match="one-dimensional"):
            engine.schedule_block(np.zeros((2, 2)), lambda t: None)

    def test_offsets_must_be_sorted_and_non_negative(self):
        engine = SimulationEngine(step_mode="batched")
        with pytest.raises(SimulationError, match="non-decreasing"):
            engine.schedule_block([2.0, 1.0], lambda t: None)
        with pytest.raises(SimulationError, match="non-decreasing"):
            engine.schedule_block([-1.0, 1.0], lambda t: None)

    def test_empty_block_is_a_no_op(self):
        engine = SimulationEngine(step_mode="batched")
        assert engine.schedule_block([], lambda t: None) == 0
        assert engine.pending == 0

    def test_pending_counts_block_remainders(self):
        engine = SimulationEngine(step_mode="batched")
        engine.schedule_block([1.0, 2.0, 3.0], lambda t: None)
        engine.schedule(0.5, lambda: None)
        assert engine.pending == 4
        engine.run_until(2.5)
        assert engine.pending == 1

    def test_event_mode_fallback_matches_batched(self):
        def run(mode):
            engine = SimulationEngine(step_mode=mode)
            log = []
            engine.schedule_block([0.5, 1.5, 2.5], log.append)
            engine.run_until(10.0)
            return log, engine.events_executed

        assert run("event") == run("batched")

    def test_vectorized_handler_gets_the_whole_run(self):
        engine = SimulationEngine(step_mode="batched")
        calls = []
        engine.schedule_block(
            [1.0, 2.0, 3.0], lambda times: calls.append(times.tolist()), vectorized=True
        )
        engine.run_until(10.0)
        assert calls == [[1.0, 2.0, 3.0]]
        assert engine.events_executed == 3
        assert engine.batches_executed == 1

    def test_heap_event_splits_a_vectorized_run(self):
        engine = SimulationEngine(step_mode="batched")
        log = []
        engine.schedule_block(
            [1.0, 2.0, 3.0], lambda times: log.append(tuple(times.tolist())), vectorized=True
        )
        engine.schedule(2.5, lambda: log.append("cb"))
        engine.run_until(10.0)
        assert log == [(1.0, 2.0), "cb", (3.0,)]

    def test_handler_scheduling_work_invalidates_the_run(self):
        """A per-event handler that schedules new work re-enters the merge."""
        engine = SimulationEngine(step_mode="batched")
        log = []

        def handler(t):
            log.append(("blk", t))
            if t == 1.0:
                engine.schedule(0.5, lambda: log.append(("cb", engine.now)))

        engine.schedule_block([1.0, 2.0, 3.0], handler)
        engine.run_until(10.0)
        assert log == [("blk", 1.0), ("cb", 1.5), ("blk", 2.0), ("blk", 3.0)]

    def test_max_events_budget_respected(self):
        engine = SimulationEngine(step_mode="batched")
        count = [0]
        engine.schedule_block(
            [0.5, 1.0, 1.5, 2.0], lambda t: count.__setitem__(0, count[0] + 1)
        )
        engine.run_until(10.0, max_events=2)
        assert count[0] == 2
        assert engine.pending == 2


class TestMergedStepping:
    def test_step_works_in_batched_mode(self):
        engine = SimulationEngine(step_mode="batched")
        log = []
        engine.schedule(1.0, lambda: log.append("a"))
        engine.schedule_block([0.5], lambda t: log.append("blk"))
        assert engine.step() and engine.step()
        assert not engine.step()
        assert log == ["blk", "a"]

    def test_peek_time_merges_sources(self):
        engine = SimulationEngine(step_mode="batched")
        engine.schedule(2.0, lambda: None)
        engine.schedule_block([1.0], lambda t: None)
        assert engine.peek_time() == 1.0

    def test_cancelled_events_are_skipped(self):
        engine = SimulationEngine(step_mode="batched")
        log = []
        doomed = engine.schedule(1.0, lambda: log.append("doomed"))
        engine.schedule(2.0, lambda: log.append("kept"))
        doomed.cancel()
        engine.run_until(10.0)
        assert log == ["kept"]
        assert engine.events_executed == 1

    def test_three_phase_batch_hook_fires_once_per_timestamp(self):
        engine = SimulationEngine(step_mode="three_phase")
        hooks = []
        engine.batch_hook = hooks.append
        for _ in range(3):
            engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        engine.run_until(10.0)
        assert hooks == [1.0, 2.0]
        assert engine.batches_executed == 2
        assert engine.events_executed == 4


class TestRngBlocks:
    def test_exponential_block_matches_scalar_draws(self):
        """next(scale) == generator.exponential(scale), same bits."""
        block = ExponentialBlock(np.random.Generator(np.random.PCG64(5)), block=8)
        scalar = np.random.Generator(np.random.PCG64(5))
        for i in range(30):  # crosses three refills
            scale = 0.25 + 0.1 * i
            assert block.next(scale) == scalar.exponential(scale)
        assert block.refills == 4

    def test_uniform_block_matches_scalar_draws(self):
        block = UniformBlock(np.random.Generator(np.random.PCG64(9)), block=8)
        scalar = np.random.Generator(np.random.PCG64(9))
        for _ in range(30):
            assert block.next() == scalar.random()
        assert block.refills == 4

    def test_default_block_size(self):
        block = ExponentialBlock(np.random.Generator(np.random.PCG64(1)))
        assert block._block == DEFAULT_BLOCK


class TestWelfordMerge:
    def test_merge_equals_serial_stream(self):
        values = [0.5, 1.5, -2.0, 3.25, 0.0, 7.5, -1.25]
        serial = WelfordAccumulator()
        for v in values:
            serial.add(v)
        left, right = WelfordAccumulator(), WelfordAccumulator()
        for v in values[:3]:
            left.add(v)
        for v in values[3:]:
            right.add(v)
        left.merge(right)
        assert left.count == serial.count
        assert left.mean() == pytest.approx(serial.mean(), rel=1e-12)
        assert left.variance() == pytest.approx(serial.variance(), rel=1e-12)

    def test_merge_with_empty_sides(self):
        acc = WelfordAccumulator()
        acc.add(2.0)
        acc.merge(WelfordAccumulator())  # empty other: unchanged
        assert acc.count == 1 and acc.mean() == 2.0
        fresh = WelfordAccumulator()
        fresh.merge(acc)  # empty self: copies other
        assert fresh.count == 1 and fresh.mean() == 2.0
