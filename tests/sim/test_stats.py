"""Tests for the streaming statistics accumulators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as hyp

from repro.exceptions import SimulationError
from repro.sim.stats import BatchMeans, TimeWeightedAverage, WelfordAccumulator


class TestTimeWeightedAverage:
    def test_piecewise_constant_mean(self):
        avg = TimeWeightedAverage(initial_value=1.0)
        avg.update(2.0, 3.0)  # value 1 for 2 time units
        avg.update(4.0, 0.0)  # value 3 for 2 time units
        # mean over [0, 6]: (1*2 + 3*2 + 0*2)/6 = 8/6
        assert avg.mean(6.0) == pytest.approx(8.0 / 6.0)

    def test_reset_discards_history(self):
        avg = TimeWeightedAverage(initial_value=10.0)
        avg.update(5.0, 2.0)
        avg.reset(5.0)
        assert avg.mean(7.0) == pytest.approx(2.0)

    def test_mean_at_start_returns_current(self):
        avg = TimeWeightedAverage(initial_value=4.0, start_time=1.0)
        assert avg.mean(1.0) == 4.0

    def test_time_cannot_go_backwards(self):
        avg = TimeWeightedAverage()
        avg.update(2.0, 1.0)
        with pytest.raises(SimulationError):
            avg.update(1.0, 1.0)

    @given(
        values=hyp.lists(
            hyp.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=20
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_mean_within_value_range(self, values):
        avg = TimeWeightedAverage(initial_value=values[0])
        t = 0.0
        for v in values[1:]:
            t += 1.0
            avg.update(t, v)
        mean = avg.mean(t + 1.0)
        assert min(values) - 1e-9 <= mean <= max(values) + 1e-9


class TestWelford:
    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        data = rng.normal(5.0, 2.0, size=1000)
        acc = WelfordAccumulator()
        for x in data:
            acc.add(float(x))
        assert acc.mean() == pytest.approx(data.mean())
        assert acc.variance() == pytest.approx(data.var(ddof=1))
        assert acc.std() == pytest.approx(data.std(ddof=1))

    def test_empty_accumulator(self):
        acc = WelfordAccumulator()
        assert acc.mean() == 0.0
        assert acc.variance() == 0.0

    def test_single_observation_has_zero_variance(self):
        acc = WelfordAccumulator()
        acc.add(3.0)
        assert acc.variance() == 0.0

    def test_catastrophic_cancellation_resistance(self):
        # Large offset + small variance: the naive sum-of-squares fails here.
        acc = WelfordAccumulator()
        offset = 1e9
        for x in (offset + 1.0, offset + 2.0, offset + 3.0):
            acc.add(x)
        assert acc.variance() == pytest.approx(1.0)


class TestBatchMeans:
    def test_interval_covers_true_mean(self):
        # Seed chosen so the 95% interval covers (7% of seeds legitimately
        # miss; this is a coverage sanity check, not a statistical test).
        rng = np.random.default_rng(0)
        bm = BatchMeans(min_batches=10)
        for _ in range(30):
            bm.add_batch(float(rng.normal(10.0, 1.0)))
        interval = bm.interval()
        assert interval.contains(10.0)
        assert interval.low < interval.mean < interval.high

    def test_too_few_batches_raises(self):
        bm = BatchMeans(min_batches=10)
        for _ in range(5):
            bm.add_batch(1.0)
        with pytest.raises(SimulationError):
            bm.interval()

    def test_half_width_shrinks_with_batches(self):
        rng = np.random.default_rng(8)
        values = rng.normal(0.0, 1.0, size=400)
        few = BatchMeans()
        for v in values[:20]:
            few.add_batch(float(v))
        many = BatchMeans()
        for v in values:
            many.add_batch(float(v))
        assert many.interval().half_width < few.interval().half_width

    def test_batch_counter(self):
        bm = BatchMeans()
        bm.add_batch(1.0)
        bm.add_batch(2.0)
        assert bm.n_batches == 2
