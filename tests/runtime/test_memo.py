"""Tests for the in-memory LRU memoization tier."""

from __future__ import annotations

import pickle
import threading

import pytest

from repro.exceptions import ConfigurationError
from repro.runtime.memo import LRUCache


class TestBasics:
    def test_miss_then_hit(self):
        cache: LRUCache[str, int] = LRUCache(maxsize=4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.stats() == {
            "size": 1,
            "maxsize": 4,
            "hits": 1,
            "misses": 1,
            "duplicate_builds": 0,
        }

    def test_contains_and_len(self):
        cache: LRUCache[int, int] = LRUCache(maxsize=4)
        cache.put(1, 10)
        assert 1 in cache
        assert 2 not in cache
        assert len(cache) == 1

    def test_get_or_create_builds_once_cached_after(self):
        cache: LRUCache[str, int] = LRUCache(maxsize=4)
        calls = []

        def factory():
            calls.append(1)
            return 42

        assert cache.get_or_create("k", factory) == 42
        assert cache.get_or_create("k", factory) == 42
        assert len(calls) == 1

    def test_clear_keeps_stats(self):
        cache: LRUCache[str, int] = LRUCache(maxsize=4)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["hits"] == 1

    def test_pop_removes_without_counting(self):
        cache: LRUCache[str, int] = LRUCache(maxsize=4)
        cache.put("a", 1)
        assert cache.pop("a") == 1
        assert cache.pop("a") is None
        assert cache.stats()["hits"] == 0
        assert cache.stats()["misses"] == 0

    def test_keys_snapshot_lru_order(self):
        cache: LRUCache[str, int] = LRUCache(maxsize=4)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh "a": now "b" is least recent
        assert cache.keys() == ["b", "a"]


class TestEviction:
    def test_evicts_least_recently_used(self):
        cache: LRUCache[int, int] = LRUCache(maxsize=2)
        cache.put(1, 1)
        cache.put(2, 2)
        cache.get(1)  # 2 becomes LRU
        cache.put(3, 3)
        assert 1 in cache and 3 in cache
        assert 2 not in cache

    def test_unbounded_never_evicts(self):
        cache: LRUCache[int, int] = LRUCache(maxsize=None)
        for i in range(1000):
            cache.put(i, i)
        assert len(cache) == 1000

    def test_rejects_non_positive_maxsize(self):
        with pytest.raises(ConfigurationError):
            LRUCache(maxsize=0)


class TestPickling:
    def test_pickle_ships_configuration_only(self):
        cache: LRUCache[str, int] = LRUCache(maxsize=7)
        cache.put("a", 1)
        cache.get("a")
        clone = pickle.loads(pickle.dumps(cache))
        assert clone.maxsize == 7
        assert len(clone) == 0
        assert clone.stats()["hits"] == 0
        # The clone is fully functional (fresh lock included).
        clone.put("b", 2)
        assert clone.get("b") == 2


class TestThreadSafety:
    def test_concurrent_mixed_operations(self):
        cache: LRUCache[int, int] = LRUCache(maxsize=32)
        errors: list[BaseException] = []

        def worker(seed: int) -> None:
            try:
                for i in range(500):
                    key = (seed * 31 + i) % 64
                    cache.put(key, key)
                    got = cache.get(key)
                    assert got is None or got == key
                    cache.get_or_create(key, lambda k=key: k)
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(s,)) for s in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(cache) <= 32


class TestEnsureCapacity:
    def test_grows_capacity(self):
        cache = LRUCache(maxsize=2)
        cache.ensure_capacity(10)
        for i in range(10):
            cache.put(i, i)
        assert len(cache) == 10

    def test_never_shrinks(self):
        cache = LRUCache(maxsize=16)
        cache.ensure_capacity(4)
        assert cache.maxsize == 16

    def test_unbounded_stays_unbounded(self):
        cache = LRUCache(maxsize=None)
        cache.ensure_capacity(1000)
        assert cache.maxsize is None

    def test_keeps_existing_entries(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.ensure_capacity(8)
        assert cache.get("a") == 1
        assert cache.get("b") == 2

    def test_rejects_non_positive_minsize(self):
        cache = LRUCache(maxsize=2)
        with pytest.raises(ConfigurationError):
            cache.ensure_capacity(0)
