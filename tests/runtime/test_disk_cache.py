"""Tests for the persistent model-solution cache."""

import dataclasses
import json

import pytest

from repro.core.small_cloud import FederationScenario, SmallCloud
from repro.perf.params import PerformanceParams
from repro.perf.pooled import PooledModel
from repro.analysis.sanitize import InvariantViolation, sanitized
from repro.runtime.cache import (
    CACHE_FORMAT_VERSION,
    CachedModel,
    DiskCache,
    DiskParamsCache,
    model_fingerprint,
    payload_digest,
    scenario_fingerprint,
)


def _scenario(shares=(2, 1), rates=(4.0, 3.0)):
    clouds = [
        SmallCloud(
            name=f"sc{i}",
            vms=6,
            arrival_rate=rate,
            service_rate=2.0,
            shared_vms=share,
        )
        for i, (rate, share) in enumerate(zip(rates, shares))
    ]
    return FederationScenario(clouds)


class TestFingerprints:
    def test_scenario_fingerprint_ignores_names_and_prices(self):
        base = _scenario()
        renamed = FederationScenario(
            [dataclasses.replace(c, name=f"other{i}") for i, c in enumerate(base)]
        )
        assert scenario_fingerprint(base) == scenario_fingerprint(renamed)

    def test_scenario_fingerprint_sees_rates(self):
        assert scenario_fingerprint(_scenario(rates=(4.0, 3.0))) != scenario_fingerprint(
            _scenario(rates=(4.5, 3.0))
        )

    def test_sharing_included_by_default(self):
        a = scenario_fingerprint(_scenario(shares=(2, 1)))
        b = scenario_fingerprint(_scenario(shares=(1, 2)))
        assert a != b

    def test_base_fingerprint_ignores_sharing(self):
        a = scenario_fingerprint(_scenario(shares=(2, 1)), include_sharing=False)
        b = scenario_fingerprint(_scenario(shares=(1, 2)), include_sharing=False)
        assert a == b

    def test_model_fingerprint_distinguishes_types(self):
        from repro.perf.approximate import ApproximateModel

        assert model_fingerprint(PooledModel()) != model_fingerprint(ApproximateModel())

    def test_model_fingerprint_ignores_runtime_plumbing(self):
        from repro.perf.approximate import ApproximateModel
        from repro.runtime.executor import ThreadExecutor

        assert model_fingerprint(ApproximateModel()) == model_fingerprint(
            ApproximateModel(executor=ThreadExecutor(4))
        )


class TestDiskCache:
    def test_roundtrip(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.store("abc", {"x": 1})
        payload = cache.load("abc")
        assert payload is not None
        assert payload["version"] == CACHE_FORMAT_VERSION
        assert payload["x"] == 1
        assert payload["digest"] == payload_digest(payload)

    def test_missing_is_none(self, tmp_path):
        assert DiskCache(tmp_path).load("nope") is None

    def test_corrupt_file_discarded(self, tmp_path):
        cache = DiskCache(tmp_path)
        (tmp_path / "bad.json").write_text("{not json")
        assert cache.load("bad") is None
        assert not (tmp_path / "bad.json").exists()

    def test_version_mismatch_discarded(self, tmp_path):
        cache = DiskCache(tmp_path)
        (tmp_path / "old.json").write_text(json.dumps({"version": 0, "x": 1}))
        assert cache.load("old") is None
        assert not (tmp_path / "old.json").exists()

    def test_discard_and_keys(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.store("k1", {})
        cache.store("k2", {})
        assert cache.keys() == ["k1", "k2"]
        assert cache.discard("k1") is True
        assert cache.discard("k1") is False
        assert cache.keys() == ["k2"]

    def test_survives_reopening(self, tmp_path):
        DiskCache(tmp_path).store("persist", {"y": 2})
        assert DiskCache(tmp_path).load("persist")["y"] == 2


class TestDiskParamsCache:
    def _params(self, n=2):
        return [
            PerformanceParams(
                lent_mean=0.5 + i,
                borrowed_mean=0.25,
                forward_rate=0.1,
                utilization=0.6,
            )
            for i in range(n)
        ]

    def test_miss_raises_keyerror(self, tmp_path):
        cache = DiskParamsCache(tmp_path, _scenario(), PooledModel())
        with pytest.raises(KeyError):
            cache[(2, 1)]

    def test_set_get_roundtrip(self, tmp_path):
        cache = DiskParamsCache(tmp_path, _scenario(), PooledModel())
        params = self._params()
        cache[(2, 1)] = params
        assert cache[(2, 1)] == params

    def test_persists_across_instances(self, tmp_path):
        first = DiskParamsCache(tmp_path, _scenario(), PooledModel())
        first[(2, 1)] = self._params()
        second = DiskParamsCache(tmp_path, _scenario(), PooledModel())
        restored = second[(2, 1)]
        assert [p.lent_mean for p in restored] == [0.5, 1.5]

    def test_namespaced_by_model(self, tmp_path):
        from repro.perf.approximate import ApproximateModel

        pooled_view = DiskParamsCache(tmp_path, _scenario(), PooledModel())
        pooled_view[(2, 1)] = self._params()
        approx_view = DiskParamsCache(tmp_path, _scenario(), ApproximateModel())
        with pytest.raises(KeyError):
            approx_view[(2, 1)]

    def test_mapping_protocol(self, tmp_path):
        cache = DiskParamsCache(tmp_path, _scenario(), PooledModel())
        cache[(2, 1)] = self._params()
        cache[(0, 0)] = self._params()
        assert len(cache) == 2
        assert set(cache) == {(2, 1), (0, 0)}
        assert (2, 1) in cache
        del cache[(2, 1)]
        assert (2, 1) not in cache
        assert len(DiskParamsCache(tmp_path, _scenario(), PooledModel())) == 1

    def test_corrupt_entry_recovers(self, tmp_path):
        cache = DiskParamsCache(tmp_path, _scenario(), PooledModel())
        cache[(2, 1)] = self._params()
        for path in tmp_path.glob("*.json"):
            path.write_text("garbage")
        fresh = DiskParamsCache(tmp_path, _scenario(), PooledModel())
        with pytest.raises(KeyError):
            fresh[(2, 1)]
        # The corrupt file is gone; a re-store works normally.
        fresh[(2, 1)] = self._params()
        assert fresh[(2, 1)] == self._params()


class TestCachedModel:
    def test_hit_miss_accounting_and_identical_values(self, tmp_path):
        scenario = _scenario()
        cached = CachedModel(PooledModel(), tmp_path)
        direct = PooledModel().evaluate(scenario)
        first = cached.evaluate(scenario)
        second = cached.evaluate(scenario)
        assert (cached.misses, cached.hits) == (1, 1)
        assert first == direct
        assert second == direct

    def test_cache_shared_across_instances(self, tmp_path):
        scenario = _scenario()
        CachedModel(PooledModel(), tmp_path).evaluate(scenario)
        warm = CachedModel(PooledModel(), tmp_path)
        warm.evaluate(scenario)
        assert (warm.misses, warm.hits) == (0, 1)

    def test_evaluate_target(self, tmp_path):
        scenario = _scenario()
        cached = CachedModel(PooledModel(), tmp_path)
        direct = PooledModel().evaluate_target(scenario, 0)
        assert cached.evaluate_target(scenario, 0) == direct
        assert cached.evaluate_target(scenario, 0) == direct
        assert (cached.misses, cached.hits) == (1, 1)

    def test_target_none_means_last(self, tmp_path):
        scenario = _scenario()
        cached = CachedModel(PooledModel(), tmp_path)
        cached.evaluate_target(scenario)
        assert cached.evaluate_target(scenario, len(scenario) - 1) == PooledModel(
        ).evaluate_target(scenario, len(scenario) - 1)
        assert cached.hits == 1

    def test_corrupt_entry_resolved_by_resolve(self, tmp_path):
        scenario = _scenario()
        cached = CachedModel(PooledModel(), tmp_path)
        cached.evaluate(scenario)
        for path in tmp_path.glob("*.json"):
            path.write_text("garbage")
        again = cached.evaluate(scenario)
        assert again == PooledModel().evaluate(scenario)
        assert cached.misses == 2


class TestCacheIntegrity:
    """Digest, schema-version, and namespace rejection (sanitizer-aware)."""

    def _params(self, n=2):
        return [
            PerformanceParams(
                lent_mean=0.5, borrowed_mean=0.25, forward_rate=0.1, utilization=0.6
            )
            for _ in range(n)
        ]

    def _tamper(self, root, mutate):
        paths = list(root.glob("*.json"))
        assert paths, "expected a stored cache entry"
        for path in paths:
            payload = json.loads(path.read_text())
            mutate(payload)
            path.write_text(json.dumps(payload))
        return paths

    def test_tampered_payload_is_a_miss(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.store("entry", {"x": 1})

        def bump(payload):
            payload["x"] = 999  # digest now stale

        self._tamper(tmp_path, bump)
        with sanitized(False):
            assert cache.load("entry") is None
        assert not (tmp_path / "entry.json").exists()

    def test_tampered_payload_raises_under_sanitizer(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.store("entry", {"x": 1})
        self._tamper(tmp_path, lambda payload: payload.update(x=999))
        with sanitized(True):
            with pytest.raises(InvariantViolation) as exc:
                cache.load("entry")
        assert exc.value.invariant == "cache-digest"

    def test_missing_digest_is_a_miss(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.store("entry", {"x": 1})
        self._tamper(tmp_path, lambda payload: payload.pop("digest"))
        with sanitized(False):
            assert cache.load("entry") is None

    def test_params_cache_rejects_tampered_values(self, tmp_path):
        cache = DiskParamsCache(tmp_path, _scenario(), PooledModel())
        cache[(2, 1)] = self._params()

        def corrupt(payload):
            payload["params"][0]["lent_mean"] = 99.0

        for path in tmp_path.glob("*.json"):
            payload = json.loads(path.read_text())
            corrupt(payload)
            path.write_text(json.dumps(payload))
        fresh = DiskParamsCache(tmp_path, _scenario(), PooledModel())
        with sanitized(False):
            with pytest.raises(KeyError):
                fresh[(2, 1)]

    def test_params_cache_rejects_stale_schema_version(self, tmp_path):
        cache = DiskParamsCache(tmp_path, _scenario(), PooledModel())
        cache[(2, 1)] = self._params()
        for path in tmp_path.glob("*.json"):
            payload = json.loads(path.read_text())
            payload["version"] = CACHE_FORMAT_VERSION - 1
            payload["digest"] = payload_digest(payload)
            path.write_text(json.dumps(payload))
        fresh = DiskParamsCache(tmp_path, _scenario(), PooledModel())
        with pytest.raises(KeyError):
            fresh[(2, 1)]

    def test_params_cache_rejects_foreign_namespace(self, tmp_path):
        # A cache file copied under another key (or a renamed directory)
        # carries a valid digest but describes different inputs.
        cache = DiskParamsCache(tmp_path, _scenario(), PooledModel())
        cache[(2, 1)] = self._params()
        src = next(iter(tmp_path.glob("*.json")))
        foreign_key = cache._hash((0, 0))
        src.rename(tmp_path / f"{foreign_key}.json")
        fresh = DiskParamsCache(tmp_path, _scenario(), PooledModel())
        with sanitized(False):
            with pytest.raises(KeyError):
                fresh[(0, 0)]

    def test_params_cache_foreign_namespace_raises_under_sanitizer(self, tmp_path):
        cache = DiskParamsCache(tmp_path, _scenario(), PooledModel())
        cache[(2, 1)] = self._params()
        src = next(iter(tmp_path.glob("*.json")))
        foreign_key = cache._hash((0, 0))
        src.rename(tmp_path / f"{foreign_key}.json")
        fresh = DiskParamsCache(tmp_path, _scenario(), PooledModel())
        with sanitized(True):
            with pytest.raises(InvariantViolation) as exc:
                fresh[(0, 0)]
        assert exc.value.invariant == "cache-namespace"

    def test_params_cache_checks_loaded_params_under_sanitizer(self, tmp_path):
        cache = DiskParamsCache(tmp_path, _scenario(), PooledModel())
        cache[(2, 1)] = self._params()
        for path in tmp_path.glob("*.json"):
            payload = json.loads(path.read_text())
            payload["params"][0]["lent_mean"] = float("nan")
            payload["digest"] = payload_digest(payload)
            path.write_text(json.dumps(payload))
        fresh = DiskParamsCache(tmp_path, _scenario(), PooledModel())
        with sanitized(True):
            with pytest.raises(InvariantViolation) as exc:
                fresh[(2, 1)]
        assert exc.value.invariant == "params-finite"
