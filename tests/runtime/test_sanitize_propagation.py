"""Regression tests: sanitizer state reaches process-pool workers.

The sanitizer switch is module-level state.  A worker spawned after a
programmatic ``sanitize_enable()`` (the ``--sanitize`` CLI path) used to
start with it *off* and silently skip every invariant check; the
executor's worker bootstrap now replays the parent's switch.  These
tests pin that behavior, plus the pickle path that carries a worker's
:class:`InvariantViolation` back to the parent intact.
"""

import os
import pickle

import pytest

from repro.analysis import sanitize
from repro.analysis.sanitize import InvariantViolation
from repro.runtime.executor import ProcessExecutor, _worker_bootstrap


def _sanitize_probe(_):
    """Module-level task: report the worker's sanitizer switch."""
    return sanitize.sanitize_enabled()


def _violating_task(_):
    """Module-level task: trip an invariant when the sanitizer is on."""
    sanitize.check_finite([1.0, float("nan")], label="worker-task")
    return "unchecked"


class TestWorkerBootstrap:
    def test_bootstrap_enables_sanitizer_and_env(self, monkeypatch):
        monkeypatch.delenv(sanitize.SANITIZE_ENV_VAR, raising=False)
        with sanitize.sanitized(False):
            _worker_bootstrap(True)
            assert sanitize.sanitize_enabled()
            assert os.environ.get(sanitize.SANITIZE_ENV_VAR) == "1"
        monkeypatch.delenv(sanitize.SANITIZE_ENV_VAR, raising=False)

    def test_bootstrap_inactive_leaves_state_alone(self, monkeypatch):
        monkeypatch.delenv(sanitize.SANITIZE_ENV_VAR, raising=False)
        with sanitize.sanitized(False):
            _worker_bootstrap(False)
            assert not sanitize.sanitize_enabled()
            assert sanitize.SANITIZE_ENV_VAR not in os.environ

    def test_workers_observe_parent_enable(self):
        with sanitize.sanitized(True):
            executor = ProcessExecutor(workers=2)
            results = executor.map(_sanitize_probe, [0, 1, 2, 3])
        assert results == [True, True, True, True]

    def test_worker_violation_surfaces_in_parent(self):
        with sanitize.sanitized(True):
            executor = ProcessExecutor(workers=2)
            with pytest.raises(InvariantViolation) as excinfo:
                executor.map(_violating_task, [0, 1])
        # The violation crossed the process boundary with its diagnostic
        # fields intact, not as a generic pickling TypeError.
        assert excinfo.value.invariant == "non-finite"
        assert "worker-task" in str(excinfo.value)

    def test_disabled_sanitizer_skips_worker_checks(self):
        with sanitize.sanitized(False):
            executor = ProcessExecutor(workers=2)
            assert executor.map(_violating_task, [0, 1]) == [
                "unchecked",
                "unchecked",
            ]


class TestViolationPickling:
    def test_roundtrip_preserves_fields(self):
        original = InvariantViolation(
            "params-range",
            "utilization out of range",
            {"label": "p[0]", "value": 1.5},
        )
        clone = pickle.loads(pickle.dumps(original))
        assert isinstance(clone, InvariantViolation)
        assert clone.invariant == original.invariant
        assert clone.message == original.message
        assert clone.context == original.context
        assert str(clone) == str(original)
