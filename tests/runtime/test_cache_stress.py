"""Thread-stress tests for the memoization tiers.

Many threads hammer overlapping keys on :class:`LRUCache` and the
:class:`DiskParamsCache` memory tier; afterwards the counters must add
up exactly and every observed payload must be the one the single-flight
owner published — no lost updates, no duplicate builds, no torn values.
"""

import threading
import time

from repro.core.small_cloud import FederationScenario, SmallCloud
from repro.runtime.cache import DiskParamsCache
from repro.runtime.memo import LRUCache
from tests.helpers import StubModel


def _run_threads(count, worker):
    barrier = threading.Barrier(count + 1)

    def wrapped(tid):
        barrier.wait()
        worker(tid)

    threads = [
        threading.Thread(target=wrapped, args=(tid,), daemon=True)
        for tid in range(count)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    for thread in threads:
        thread.join(timeout=60)
    assert not any(thread.is_alive() for thread in threads), "stress deadlocked"


class TestLRUCacheStress:
    def test_get_or_create_single_flight_under_contention(self):
        cache = LRUCache(maxsize=None)
        n_threads, n_keys, rounds = 8, 5, 4
        builds = {}
        builds_lock = threading.Lock()
        seen = {tid: [] for tid in range(n_threads)}

        def factory_for(key):
            def factory():
                time.sleep(0.001)
                with builds_lock:
                    builds[key] = builds.get(key, 0) + 1
                return (key, object())

            return factory

        def worker(tid):
            for round_number in range(rounds):
                for i in range(n_keys):
                    # Offset the key order per thread so collisions vary.
                    key = f"k{(i + tid) % n_keys}"
                    value = cache.get_or_create(key, factory_for(key))
                    seen[tid].append((key, id(value)))

        _run_threads(n_threads, worker)

        stats = cache.stats()
        assert stats["duplicate_builds"] == 0
        assert stats["misses"] == n_keys
        assert stats["hits"] + stats["misses"] == n_threads * n_keys * rounds
        assert all(count == 1 for count in builds.values())
        # Every thread observed the same payload object per key.
        identity = {}
        for observations in seen.values():
            for key, ident in observations:
                identity.setdefault(key, set()).add(ident)
        assert all(len(idents) == 1 for idents in identity.values())

    def test_put_get_pop_counters_add_up(self):
        cache = LRUCache(maxsize=8)
        n_threads, ops = 6, 200
        gets = [0] * n_threads

        def worker(tid):
            for i in range(ops):
                key = f"k{(i * (tid + 1)) % 12}"
                if i % 3 == 0:
                    cache.put(key, (tid, i))
                elif i % 7 == 0:
                    cache.pop(key)
                else:
                    cache.get(key)
                    gets[tid] += 1

        _run_threads(n_threads, worker)

        stats = cache.stats()
        # pop() never counts; every get() counts exactly once.
        assert stats["hits"] + stats["misses"] == sum(gets)
        assert stats["size"] <= 8
        assert len(cache) == stats["size"]

    def test_eviction_bound_holds_under_contention(self):
        cache = LRUCache(maxsize=4)

        def worker(tid):
            for i in range(300):
                cache.put((tid, i), i)

        _run_threads(8, worker)
        assert len(cache) <= 4


class TestDiskParamsCacheMemoryTierStress:
    def test_concurrent_reads_return_stored_payloads(self, tmp_path):
        scenario = FederationScenario(
            clouds=(
                SmallCloud(name="a", vms=4, arrival_rate=2.0),
                SmallCloud(name="b", vms=5, arrival_rate=3.0),
            )
        )
        model = StubModel()
        cache = DiskParamsCache(tmp_path, scenario, model, memory_size=2)
        vectors = [(0, 0), (1, 2), (2, 0), (3, 4), (4, 1)]
        expected = {}
        for vector in vectors:
            params = model.evaluate(scenario.with_sharing(vector))
            cache[vector] = params
            expected[vector] = [
                (p.lent_mean, p.borrowed_mean, p.forward_rate, p.utilization)
                for p in params
            ]

        n_threads, reads_per_thread = 6, 40
        failures = []
        failures_lock = threading.Lock()
        read_count = [0]
        count_lock = threading.Lock()

        def worker(tid):
            for i in range(reads_per_thread):
                vector = vectors[(i + tid) % len(vectors)]
                got = cache[vector]
                with count_lock:
                    read_count[0] += 1
                flat = [
                    (p.lent_mean, p.borrowed_mean, p.forward_rate, p.utilization)
                    for p in got
                ]
                if flat != expected[vector]:
                    with failures_lock:
                        failures.append((tid, vector))

        _run_threads(n_threads, worker)

        assert failures == []
        # The tiny memory tier forces constant disk reloads, yet its
        # counters must account for every single lookup.
        memory_stats = cache._memory.stats()
        assert memory_stats["hits"] + memory_stats["misses"] == read_count[0]
        assert memory_stats["size"] <= 2
        assert len(cache) == len(vectors)

    def test_concurrent_writers_land_every_vector(self, tmp_path):
        scenario = FederationScenario(
            clouds=(
                SmallCloud(name="a", vms=4, arrival_rate=2.0),
                SmallCloud(name="b", vms=5, arrival_rate=3.0),
            )
        )
        model = StubModel()
        cache = DiskParamsCache(tmp_path, scenario, model, memory_size=3)
        vectors = [(i % 5, j % 6) for i in range(4) for j in range(4)]
        payloads = {
            vector: model.evaluate(scenario.with_sharing(vector))
            for vector in set(vectors)
        }

        def worker(tid):
            for vector in vectors:
                cache[vector] = payloads[vector]

        _run_threads(5, worker)

        assert len(cache) == len(set(vectors))
        for vector, params in payloads.items():
            got = cache[vector]
            assert [
                (p.lent_mean, p.borrowed_mean, p.forward_rate, p.utilization)
                for p in got
            ] == [
                (p.lent_mean, p.borrowed_mean, p.forward_rate, p.utilization)
                for p in params
            ]
