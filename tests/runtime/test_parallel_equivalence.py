"""Parallel execution must be bit-identical to serial execution.

These are the load-bearing guarantees behind ``--workers N``: the
approximate model's target rotation, the Tabu/best-response game loop,
and simulation replications all produce the exact same floats whatever
executor drives them.
"""

import pytest

from repro.core.framework import SCShare
from repro.core.small_cloud import FederationScenario, SmallCloud
from repro.perf.approximate import ApproximateModel
from repro.runtime.executor import ProcessExecutor, SerialExecutor, ThreadExecutor
from repro.sim.replications import replicate

pytestmark = pytest.mark.slow


def _scenario(k=3):
    rates = [3.0, 4.0, 5.0][:k]
    clouds = [
        SmallCloud(
            name=f"sc{i}",
            vms=5,
            arrival_rate=rate,
            service_rate=2.0,
            shared_vms=2,
        )
        for i, rate in enumerate(rates)
    ]
    return FederationScenario(clouds)


class TestApproximateModelEquivalence:
    def test_evaluate_identical_across_executors(self):
        scenario = _scenario()
        serial = ApproximateModel().evaluate(scenario)
        threaded = ApproximateModel(executor=ThreadExecutor(2)).evaluate(scenario)
        processed = ApproximateModel(executor=ProcessExecutor(2)).evaluate(scenario)
        assert threaded == serial
        assert processed == serial


class TestGameEquivalence:
    @pytest.mark.parametrize("best_response", ["exhaustive", "tabu"])
    def test_equilibrium_identical_across_executors(self, best_response):
        scenario = _scenario(k=2)
        outcomes = []
        for executor in (SerialExecutor(), ThreadExecutor(2), ProcessExecutor(2)):
            runner = SCShare(
                scenario,
                strategy_step=1,
                best_response=best_response,
                executor=executor,
            )
            outcomes.append(runner.run(alpha=0.0))
        serial, threaded, processed = outcomes
        for other in (threaded, processed):
            assert other.equilibrium == serial.equilibrium
            assert other.welfare == serial.welfare
            assert other.efficiency == serial.efficiency
            # The once-semantics in UtilityEvaluator.params keeps the solve
            # count deterministic even under thread parallelism.
            assert other.game.model_evaluations == serial.game.model_evaluations


class TestReplicationEquivalence:
    def test_replicate_identical_across_executors(self):
        scenario = _scenario(k=2)
        serial = replicate(scenario, replications=3, horizon=300.0, warmup=30.0, base_seed=7)
        parallel = replicate(
            scenario,
            replications=3,
            horizon=300.0,
            warmup=30.0,
            base_seed=7,
            executor=ProcessExecutor(2),
        )
        assert parallel == serial
