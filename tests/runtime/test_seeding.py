"""Tests for deterministic per-task seed derivation."""

import pytest

from repro.exceptions import ConfigurationError
from repro.runtime.seeding import (
    derive_seed,
    derive_seeds,
    derive_streams,
    replication_seeds,
)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, 3) == derive_seed(42, 3)
        assert derive_seed(42, "panel-a") == derive_seed(42, "panel-a")

    def test_distinct_tasks_distinct_seeds(self):
        seeds = {derive_seed(0, i) for i in range(200)}
        assert len(seeds) == 200

    def test_distinct_masters_distinct_seeds(self):
        assert derive_seed(0, 5) != derive_seed(1, 5)

    def test_string_and_int_tokens_independent(self):
        # "3" must not collide with 3.
        assert derive_seed(7, 3) != derive_seed(7, "3")

    def test_range(self):
        for i in range(50):
            seed = derive_seed(123, i)
            assert 0 <= seed < 2**63

    def test_rejects_bad_tokens(self):
        with pytest.raises(ConfigurationError):
            derive_seed(0, 1.5)
        with pytest.raises(ConfigurationError):
            derive_seed(0, True)
        with pytest.raises(Exception):
            derive_seed(0, -1)

    def test_derive_seeds_matches_elementwise(self):
        assert derive_seeds(9, 4) == [derive_seed(9, i) for i in range(4)]


class TestDeriveStreams:
    def test_streams_are_independent(self):
        streams = derive_streams(11, 3)
        draws = [s.stream("arrival").random() for s in streams]
        assert len(set(draws)) == 3

    def test_streams_reproducible(self):
        first = derive_streams(11, 2)
        second = derive_streams(11, 2)
        for a, b in zip(first, second):
            assert a.stream("arrival").random() == b.stream("arrival").random()


class TestReplicationSeeds:
    def test_offset_matches_historical_convention(self):
        assert replication_seeds(100, 5) == [100, 101, 102, 103, 104]

    def test_spawn_scheme_derives(self):
        spawned = replication_seeds(100, 5, scheme="spawn")
        assert spawned == derive_seeds(100, 5)
        assert len(set(spawned)) == 5

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ConfigurationError):
            replication_seeds(0, 2, scheme="sequential")
