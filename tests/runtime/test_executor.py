"""Tests for the executor abstraction."""

import pytest

from repro.exceptions import ConfigurationError
from repro.runtime.executor import (
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    make_executor,
)


def _square(x):
    return x * x


ALL_EXECUTORS = [SerialExecutor(), ThreadExecutor(2), ProcessExecutor(2)]


class TestMapContract:
    @pytest.mark.parametrize("executor", ALL_EXECUTORS, ids=lambda e: type(e).__name__)
    def test_map_preserves_input_order(self, executor):
        items = list(range(20))
        assert executor.map(_square, items) == [x * x for x in items]

    @pytest.mark.parametrize("executor", ALL_EXECUTORS, ids=lambda e: type(e).__name__)
    def test_map_empty(self, executor):
        assert executor.map(_square, []) == []

    @pytest.mark.parametrize("executor", ALL_EXECUTORS, ids=lambda e: type(e).__name__)
    def test_map_unordered_covers_every_index(self, executor):
        items = [3, 1, 4, 1, 5]
        pairs = sorted(executor.map_unordered(_square, items))
        assert pairs == [(i, x * x) for i, x in enumerate(items)]

    def test_executors_agree(self):
        items = list(range(7))
        serial = SerialExecutor().map(_square, items)
        assert ThreadExecutor(3).map(_square, items) == serial
        assert ProcessExecutor(3).map(_square, items) == serial


class TestFallbacks:
    def test_process_executor_falls_back_on_closures(self):
        captured = []

        def closure(x):
            captured.append(x)
            return -x

        result = ProcessExecutor(2).map(closure, [1, 2, 3])
        assert result == [-1, -2, -3]
        # Serial in-parent fallback: the closure's side effects are visible.
        assert captured == [1, 2, 3]

    def test_process_executor_falls_back_on_unpicklable_items(self):
        lock_like = [lambda: None]
        result = ProcessExecutor(2).map(lambda f: 1, lock_like)
        assert result == [1]

    def test_single_item_runs_inline(self):
        assert ProcessExecutor(4).map(_square, [7]) == [49]
        assert ThreadExecutor(4).map(_square, [7]) == [49]


class TestMakeExecutor:
    def test_one_worker_is_serial(self):
        assert isinstance(make_executor(1), SerialExecutor)
        assert isinstance(make_executor(0), SerialExecutor)
        assert isinstance(make_executor(None), SerialExecutor)

    def test_kinds(self):
        assert isinstance(make_executor(4, "thread"), ThreadExecutor)
        assert isinstance(make_executor(4, "process"), ProcessExecutor)
        assert isinstance(make_executor(4, "auto"), ProcessExecutor)
        assert isinstance(make_executor(4, "serial"), SerialExecutor)

    def test_workers_recorded(self):
        assert make_executor(4, "thread").workers == 4
        assert make_executor(None, "thread").workers >= 1

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            make_executor(4, "fiber")

    def test_chunksize_positive(self):
        executor = ThreadExecutor(4)
        assert executor.chunksize(0) == 1
        assert executor.chunksize(1) == 1
        assert executor.chunksize(1000) >= 1
