"""Tests for the performance-parameter container."""

import pytest

from repro.exceptions import ConfigurationError
from repro.perf.params import PerformanceParams


class TestPerformanceParams:
    def test_net_borrowed(self):
        params = PerformanceParams(
            lent_mean=1.5, borrowed_mean=2.0, forward_rate=0.1, utilization=0.7
        )
        assert params.net_borrowed == pytest.approx(0.5)

    def test_negative_values_rejected(self):
        with pytest.raises(ConfigurationError):
            PerformanceParams(-1.0, 0.0, 0.0, 0.5)
        with pytest.raises(ConfigurationError):
            PerformanceParams(0.0, -1.0, 0.0, 0.5)
        with pytest.raises(ConfigurationError):
            PerformanceParams(0.0, 0.0, -1.0, 0.5)

    def test_utilization_above_one_rejected(self):
        with pytest.raises(ConfigurationError):
            PerformanceParams(0.0, 0.0, 0.0, 1.5)

    def test_tiny_negative_tolerated(self):
        # Numerical solvers can produce -1e-15; the container accepts it.
        params = PerformanceParams(-1e-12, 0.0, 0.0, 0.5)
        assert params.lent_mean == pytest.approx(0.0, abs=1e-11)

    def test_frozen(self):
        params = PerformanceParams(0.0, 0.0, 0.0, 0.5)
        with pytest.raises(AttributeError):
            params.lent_mean = 1.0
