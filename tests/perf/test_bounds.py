"""Tests for the analytic forwarding bounds."""

import pytest

from repro.core.small_cloud import FederationScenario, SmallCloud
from repro.perf.bounds import forwarding_bounds, pooling_gain_captured
from repro.perf.detailed import DetailedModel


def scenario(share=2):
    return FederationScenario((
        SmallCloud(name="a", vms=5, arrival_rate=3.5, shared_vms=share),
        SmallCloud(name="b", vms=5, arrival_rate=4.2, shared_vms=share),
    ))


class TestForwardingBounds:
    def test_pooling_beats_isolation(self):
        bounds = forwarding_bounds(scenario())
        assert bounds.lower < bounds.upper
        assert bounds.width > 0.0

    def test_exact_model_lands_inside_bracket(self):
        scn = scenario()
        params = DetailedModel().evaluate(scn)
        total = sum(p.forward_rate for p in params)
        bounds = forwarding_bounds(scn)
        assert bounds.contains(total), (
            f"exact total {total} outside [{bounds.lower}, {bounds.upper}]"
        )

    def test_no_sharing_hits_the_upper_bound(self):
        scn = scenario(share=0)
        params = DetailedModel().evaluate(scn)
        total = sum(p.forward_rate for p in params)
        bounds = forwarding_bounds(scn)
        assert total == pytest.approx(bounds.upper, rel=1e-4)

    def test_bounds_independent_of_sharing_vector(self):
        # The bracket depends only on sizes/loads, not on S.
        a = forwarding_bounds(scenario(share=0))
        b = forwarding_bounds(scenario(share=5))
        assert a == b


class TestPoolingGain:
    def test_isolation_captures_nothing(self):
        scn = scenario()
        bounds = forwarding_bounds(scn)
        assert pooling_gain_captured(scn, bounds.upper) == 0.0

    def test_perfect_pooling_captures_everything(self):
        scn = scenario()
        bounds = forwarding_bounds(scn)
        assert pooling_gain_captured(scn, bounds.lower) == 1.0

    def test_sharing_captures_part_of_the_gain(self):
        scn = scenario(share=3)
        params = DetailedModel().evaluate(scn)
        total = sum(p.forward_rate for p in params)
        captured = pooling_gain_captured(scn, total)
        assert 0.0 < captured <= 1.0

    def test_clipping(self):
        scn = scenario()
        assert pooling_gain_captured(scn, 1e9) == 0.0
        assert pooling_gain_captured(scn, 0.0) == 1.0
