"""Bitwise equivalence of the sharded hierarchical evaluation path.

The sharded mode reschedules per-level builds across an executor,
generation by generation; it must never reschedule *semantics*.  Every
test here compares against the serial monolithic path with ``float.hex``
— no tolerance — because a level build is a pure function of the model
configuration, the spec prefix, and the pool, so identical inputs must
produce identical bits regardless of which worker built them.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.bench.scenarios import kscale_scenario
from repro.perf.approximate import ApproximateModel
from repro.runtime.executor import ProcessExecutor, SerialExecutor, ThreadExecutor


def hex_params(params):
    return [
        (
            float(p.lent_mean).hex(),
            float(p.borrowed_mean).hex(),
            float(p.forward_rate).hex(),
            float(p.utilization).hex(),
        )
        for p in params
    ]


@pytest.fixture(scope="module")
def scenario():
    return kscale_scenario(6, sharers=3, vms=3)


@pytest.fixture(scope="module")
def reference(scenario):
    return hex_params(ApproximateModel(mode="monolithic").evaluate(scenario))


class TestShardedBitIdentity:
    def test_thread_executor_matches_monolithic(self, scenario, reference):
        model = ApproximateModel(executor=ThreadExecutor(workers=3), mode="sharded")
        assert hex_params(model.evaluate(scenario)) == reference

    @pytest.mark.slow
    def test_process_executor_matches_monolithic(self, scenario, reference):
        model = ApproximateModel(executor=ProcessExecutor(workers=2), mode="sharded")
        assert hex_params(model.evaluate(scenario)) == reference

    def test_serial_executor_falls_back_and_matches(self, scenario, reference):
        # With a single worker the sharded dispatch degrades to the
        # inline loop — same bits, no executor round-trips.
        model = ApproximateModel(executor=SerialExecutor(), mode="sharded")
        assert hex_params(model.evaluate(scenario)) == reference

    def test_no_executor_matches(self, scenario, reference):
        model = ApproximateModel(mode="sharded")
        assert hex_params(model.evaluate(scenario)) == reference

    def test_repeated_evaluate_is_stable(self, scenario, reference):
        model = ApproximateModel(executor=ThreadExecutor(workers=3), mode="sharded")
        assert hex_params(model.evaluate(scenario)) == reference
        # The second pass answers from the level cache — still identical.
        assert hex_params(model.evaluate(scenario)) == reference


class TestShardedScheduling:
    def test_generation_counters_are_emitted(self, scenario):
        model = ApproximateModel(executor=ThreadExecutor(workers=3), mode="sharded")
        with obs.capture(tracing=False, metrics=True) as cap:
            model.evaluate(scenario)
        counters = dict(cap.snapshot().counter_view())
        assert counters.get("perf.sharded.level_built", 0) > 0

    def test_dedup_builds_each_distinct_level_once(self, scenario):
        k = len(scenario)
        model = ApproximateModel(executor=ThreadExecutor(workers=3), mode="sharded")
        with obs.capture(tracing=False, metrics=True) as cap:
            model.evaluate(scenario)
        counters = dict(cap.snapshot().counter_view())
        built = counters.get("perf.sharded.level_built", 0)
        # K rotations x K levels = K^2 naive builds; each rotation's
        # chain is the identity ordering with at most one SC skipped, so
        # there are only K(K+1)/2 + K - 1 distinct level keys to build.
        assert 0 < built <= k * (k + 1) // 2 + k - 1
        assert built < k * k

    def test_mode_is_validated(self):
        with pytest.raises(Exception):
            ApproximateModel(mode="distributed")
