"""Level-prefix memoization and warm-start semantics of the approximate model.

The cache key of a level is ``(model config, ordered prefix of SC specs,
pool size)`` — complete by construction, so hits can only return what a
cold build would have produced.  These tests pin that: memoized results
equal cold results bitwise, rotations actually share prefixes, and any
change to a prefix (or the model configuration) invalidates reuse.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core.small_cloud import FederationScenario, SmallCloud
from repro.exceptions import ConfigurationError
from repro.perf.approximate import ApproximateModel


def scenario_3sc(rates=(3.0, 3.5, 2.5)) -> FederationScenario:
    return FederationScenario(
        tuple(
            SmallCloud(
                name=f"sc{i}", vms=4, arrival_rate=rate, shared_vms=1 + i % 2
            )
            for i, rate in enumerate(rates)
        )
    )


class TestMemoizedEquality:
    def test_memoized_evaluate_equals_cold(self):
        scenario = scenario_3sc()
        cold = ApproximateModel(level_cache_size=0)
        memo = ApproximateModel(level_cache_size=64)
        assert memo.evaluate(scenario) == cold.evaluate(scenario)

    def test_repeated_evaluate_target_hits_cache(self):
        scenario = scenario_3sc()
        model = ApproximateModel(level_cache_size=64)
        first = model.evaluate_target(scenario)
        misses_after_first = model.level_cache_stats()["misses"]
        second = model.evaluate_target(scenario)
        stats = model.level_cache_stats()
        assert second == first
        # The second run rebuilt nothing: only hits moved.
        assert stats["misses"] == misses_after_first
        assert stats["hits"] >= len(scenario)

    def test_rotations_share_prefixes(self):
        scenario = scenario_3sc()
        model = ApproximateModel(level_cache_size=64)
        model.evaluate(scenario)
        stats = model.level_cache_stats()
        # K rotations of K levels would be K^2 cold builds; shared
        # prefixes must make at least one rotation reuse work.
        k = len(scenario)
        assert stats["misses"] < k * k
        assert stats["hits"] > 0

    def test_disabled_cache_never_counts(self):
        scenario = scenario_3sc()
        model = ApproximateModel(level_cache_size=0)
        model.evaluate_target(scenario)
        assert model.level_cache_stats() == {
            "size": 0,
            "maxsize": 0,
            "hits": 0,
            "misses": 0,
            "duplicate_builds": 0,
        }


class TestInvalidation:
    def test_changed_spec_misses(self):
        model = ApproximateModel(level_cache_size=64)
        base = scenario_3sc()
        model.evaluate_target(base)
        misses = model.level_cache_stats()["misses"]
        # Change the *first* SC's arrival rate: every prefix differs, so
        # the second chain must rebuild all levels.
        changed = scenario_3sc(rates=(3.1, 3.5, 2.5))
        model.evaluate_target(changed)
        assert model.level_cache_stats()["misses"] == misses + len(base)

    def test_shared_prefix_reused_when_only_tail_changes(self):
        model = ApproximateModel(level_cache_size=64)
        model.evaluate_target(scenario_3sc(rates=(3.0, 3.5, 2.5)))
        misses = model.level_cache_stats()["misses"]
        # Only the last SC's rate changes; sharing is untouched, so every
        # pool size is unchanged and the first K-1 levels are reused.
        model.evaluate_target(scenario_3sc(rates=(3.0, 3.5, 2.8)))
        assert model.level_cache_stats()["misses"] == misses + 1

    def test_different_config_never_shares(self):
        scenario = scenario_3sc()
        strict = ApproximateModel(level_cache_size=64, outcome_threshold=1e-9)
        loose = ApproximateModel(level_cache_size=64, outcome_threshold=1e-5)
        # Different tolerance enters the key; both instances start cold.
        strict.evaluate_target(scenario)
        loose.evaluate_target(scenario)
        assert strict._config_key() != loose._config_key()

    def test_rejects_negative_cache_size(self):
        with pytest.raises(ConfigurationError):
            ApproximateModel(level_cache_size=-1)


class TestWarmStart:
    def test_warm_started_equals_cold_on_small_chains(self):
        # Small chains use the direct solver, which ignores the hint —
        # warm-started results are exactly the cold ones.
        scenario = scenario_3sc()
        cold = ApproximateModel(level_cache_size=0)
        warm = ApproximateModel(level_cache_size=64, warm_start=True)
        assert warm.evaluate(scenario) == cold.evaluate(scenario)

    def test_warm_start_enters_fingerprint(self):
        from repro.runtime.cache import model_fingerprint

        plain = ApproximateModel()
        warm = ApproximateModel(warm_start=True)
        assert model_fingerprint(plain) != model_fingerprint(warm)

    def test_assembly_choice_does_not_enter_fingerprint(self):
        from repro.runtime.cache import model_fingerprint

        vec = ApproximateModel()
        ref = ApproximateModel(assembly="reference")
        # Both assemblers are bit-identical, so they share a disk-cache
        # namespace by design.
        assert model_fingerprint(vec) == model_fingerprint(ref)


class TestProcessPoolFriendliness:
    def test_model_pickles_with_cold_caches(self):
        scenario = scenario_3sc()
        model = ApproximateModel(level_cache_size=64)
        model.evaluate_target(scenario)
        clone = pickle.loads(pickle.dumps(model))
        assert clone.level_cache_stats()["size"] == 0
        # The clone still produces the same parameters.
        assert clone.evaluate_target(scenario) == model.evaluate_target(scenario)
