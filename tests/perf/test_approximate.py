"""Tests for the hierarchical approximate model (Sect. III-C).

Accuracy against the exact chain is asserted here at the coarse level the
paper claims (tens of percent on Ibar/Obar, better on the difference);
the fine-grained validation sweep lives in the Fig. 6 benchmark.
"""

import pytest

from repro.core.small_cloud import FederationScenario, SmallCloud
from repro.perf.approximate import ApproximateModel
from repro.perf.detailed import DetailedModel
from repro.queueing.forwarding import NoSharingModel


def scenario_2sc(share_a=2, share_b=2, rate_a=4.0, rate_b=5.0, vms=5):
    return FederationScenario((
        SmallCloud(name="a", vms=vms, arrival_rate=rate_a, shared_vms=share_a),
        SmallCloud(name="b", vms=vms, arrival_rate=rate_b, shared_vms=share_b),
    ))


class TestDegenerateCases:
    def test_single_sc_matches_no_sharing_model(self):
        scenario = FederationScenario((
            SmallCloud(name="solo", vms=6, arrival_rate=4.0),
        ))
        params = ApproximateModel().evaluate_target(scenario)
        reference = NoSharingModel(6, 4.0, 1.0, 0.2)
        assert params.forward_rate == pytest.approx(reference.forward_rate, rel=1e-6)
        assert params.utilization == pytest.approx(reference.utilization, rel=1e-6)

    def test_zero_shares_match_no_sharing_model(self):
        scenario = scenario_2sc(share_a=0, share_b=0)
        params = ApproximateModel().evaluate_target(scenario)
        target = scenario[-1]
        reference = NoSharingModel(
            target.vms, target.arrival_rate, target.service_rate, target.sla_bound
        )
        assert params.lent_mean == pytest.approx(0.0, abs=1e-9)
        assert params.borrowed_mean == pytest.approx(0.0, abs=1e-9)
        assert params.forward_rate == pytest.approx(reference.forward_rate, rel=1e-4)


class TestBounds:
    def test_lent_bounded_by_own_share(self):
        scenario = scenario_2sc(share_a=2, share_b=1)
        params = ApproximateModel().evaluate_target(scenario)
        assert params.lent_mean <= scenario[-1].shared_vms + 1e-9

    def test_borrowed_bounded_by_pool(self):
        scenario = scenario_2sc(share_a=2, share_b=1)
        params = ApproximateModel().evaluate_target(scenario)
        assert params.borrowed_mean <= scenario.shared_by_others(1) + 1e-9

    def test_utilization_in_unit_interval(self):
        for rate in (2.0, 4.0, 6.0):
            params = ApproximateModel().evaluate_target(scenario_2sc(rate_b=rate))
            assert 0.0 <= params.utilization <= 1.0


class TestAccuracyVsExact:
    @pytest.mark.parametrize("rate_b", [3.5, 4.5])
    def test_within_paper_error_band(self, rate_b):
        scenario = scenario_2sc(rate_b=rate_b)
        approx = ApproximateModel().evaluate_target(scenario)
        exact = DetailedModel().evaluate(scenario)[-1]
        # The paper reports <= 10-20% error on Ibar/Obar in moderate load;
        # allow 35% at this tiny scale where absolute values are small.
        for attr in ("lent_mean", "borrowed_mean"):
            a = getattr(approx, attr)
            e = getattr(exact, attr)
            assert a == pytest.approx(e, abs=max(0.35 * e, 0.12))

    def test_utilization_tracks_exact(self):
        scenario = scenario_2sc()
        approx = ApproximateModel().evaluate_target(scenario)
        exact = DetailedModel().evaluate(scenario)[-1]
        assert approx.utilization == pytest.approx(exact.utilization, abs=0.05)


class TestRotation:
    def test_evaluate_covers_all_targets(self):
        scenario = scenario_2sc()
        params = ApproximateModel().evaluate(scenario)
        assert len(params) == 2
        # Each rotation's own-share bound applies to the matching SC.
        for p, cloud in zip(params, scenario):
            assert p.lent_mean <= cloud.shared_vms + 1e-9

    def test_explicit_target_matches_rotated_scenario(self):
        scenario = scenario_2sc()
        model = ApproximateModel()
        direct = model.evaluate_target(scenario, target=0)
        rotated = model.evaluate_target(scenario.rotated_to_target(0))
        assert direct == rotated


class TestSharingEffects:
    def test_sharing_reduces_target_forwarding(self):
        closed = ApproximateModel().evaluate_target(scenario_2sc(share_a=0, share_b=0))
        open_ = ApproximateModel().evaluate_target(scenario_2sc(share_a=2, share_b=2))
        assert open_.forward_rate < closed.forward_rate

    def test_hot_target_is_net_borrower(self):
        params = ApproximateModel().evaluate_target(
            scenario_2sc(rate_a=2.0, rate_b=4.8)
        )
        assert params.net_borrowed > 0.0
