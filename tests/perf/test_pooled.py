"""Tests for the pooled fixed-point model."""

import pytest

from repro.core.small_cloud import FederationScenario, SmallCloud
from repro.perf.pooled import PooledModel, _fractional_prob_no_forward
from repro.queueing.forwarding import NoSharingModel
from repro.queueing.sla import prob_no_forward


def scenario_3sc(shares=(3, 3, 3), rates=(5.8, 7.3, 8.4)):
    return FederationScenario(
        tuple(
            SmallCloud(name=f"sc{i}", vms=10, arrival_rate=r, shared_vms=s)
            for i, (r, s) in enumerate(zip(rates, shares))
        )
    )


class TestFractionalPnf:
    def test_matches_integer_arguments(self):
        assert _fractional_prob_no_forward(3.0, 8.0, 1.0, 0.2) == pytest.approx(
            prob_no_forward(3, 8, 1.0, 0.2)
        )

    def test_interpolates_busy(self):
        lo = prob_no_forward(2, 5, 1.0, 0.2)
        hi = prob_no_forward(2, 6, 1.0, 0.2)
        mid = _fractional_prob_no_forward(2.0, 5.5, 1.0, 0.2)
        assert lo <= mid <= hi

    def test_interpolates_waiting(self):
        lo = prob_no_forward(3, 8, 1.0, 0.2)
        hi = prob_no_forward(2, 8, 1.0, 0.2)
        mid = _fractional_prob_no_forward(2.5, 8.0, 1.0, 0.2)
        assert lo <= mid <= hi

    def test_continuity_near_integers(self):
        eps = 1e-6
        below = _fractional_prob_no_forward(2.0, 8.0 - eps, 1.0, 0.2)
        above = _fractional_prob_no_forward(2.0, 8.0 + eps, 1.0, 0.2)
        assert below == pytest.approx(above, abs=1e-4)

    def test_edge_cases(self):
        assert _fractional_prob_no_forward(-0.5, 5.0, 1.0, 0.2) == 1.0
        assert _fractional_prob_no_forward(1.0, 0.0, 1.0, 0.2) == 0.0


class TestDegenerateCases:
    def test_no_sharing_matches_analytic(self):
        scenario = scenario_3sc(shares=(0, 0, 0))
        params = PooledModel().evaluate(scenario)
        for p, cloud in zip(params, scenario):
            reference = NoSharingModel(
                cloud.vms, cloud.arrival_rate, cloud.service_rate, cloud.sla_bound
            )
            assert p.lent_mean == 0.0
            assert p.borrowed_mean == 0.0
            assert p.forward_rate == pytest.approx(reference.forward_rate, rel=1e-6)

    def test_single_sc(self):
        scenario = FederationScenario((
            SmallCloud(name="solo", vms=10, arrival_rate=7.0, shared_vms=5),
        ))
        params = PooledModel().evaluate(scenario)[0]
        assert params.lent_mean == 0.0
        assert params.borrowed_mean == 0.0


class TestFixedPoint:
    def test_flow_conservation(self):
        params = PooledModel().evaluate(scenario_3sc())
        total_lent = sum(p.lent_mean for p in params)
        total_borrowed = sum(p.borrowed_mean for p in params)
        assert total_lent == pytest.approx(total_borrowed, rel=0.02)

    def test_share_limits_respected(self):
        scenario = scenario_3sc(shares=(1, 2, 3))
        for p, cloud in zip(PooledModel().evaluate(scenario), scenario):
            assert p.lent_mean <= cloud.shared_vms + 1e-6

    def test_cool_sc_lends_hot_sc_borrows(self):
        params = PooledModel().evaluate(scenario_3sc())
        assert params[0].net_borrowed < params[2].net_borrowed
        assert params[2].net_borrowed > 0.0

    def test_known_cycling_vector_converges(self):
        # (0, 3, 0)-style asymmetric vectors used to cycle; must converge.
        scenario = scenario_3sc(shares=(0, 3, 0))
        params = PooledModel().evaluate(scenario)
        assert params[1].lent_mean > 0.0
        assert params[1].borrowed_mean == pytest.approx(0.0, abs=1e-6)

    def test_sharing_reduces_forwarding(self):
        closed = PooledModel().evaluate(scenario_3sc(shares=(0, 0, 0)))
        open_ = PooledModel().evaluate(scenario_3sc(shares=(5, 5, 5)))
        assert sum(p.forward_rate for p in open_) < sum(
            p.forward_rate for p in closed
        )

    def test_utilization_bounds(self):
        for p in PooledModel().evaluate(scenario_3sc(shares=(10, 10, 10))):
            assert 0.0 <= p.utilization <= 1.0
