"""Tests for the simulation-backed performance model adapter."""

import pytest

from repro.core.small_cloud import FederationScenario, SmallCloud
from repro.exceptions import ConfigurationError
from repro.perf.simulation import SimulationModel

pytestmark = pytest.mark.slow


def scenario():
    return FederationScenario((
        SmallCloud(name="a", vms=10, arrival_rate=7.0, shared_vms=3),
        SmallCloud(name="b", vms=10, arrival_rate=8.0, shared_vms=3),
    ))


class TestSimulationModel:
    def test_deterministic_for_fixed_seed(self):
        model = SimulationModel(horizon=2_000.0, warmup=100.0, seed=5)
        first = model.evaluate(scenario())
        second = model.evaluate(scenario())
        assert first == second

    def test_params_well_formed(self):
        model = SimulationModel(horizon=2_000.0, warmup=100.0, seed=5)
        for p in model.evaluate(scenario()):
            assert p.lent_mean >= 0.0
            assert p.borrowed_mean >= 0.0
            assert p.forward_rate >= 0.0
            assert 0.0 <= p.utilization <= 1.0

    def test_longer_horizon_converges_toward_exact(self):
        from repro.perf.detailed import DetailedModel

        exact = DetailedModel().evaluate(scenario())
        short = SimulationModel(horizon=1_000.0, warmup=100.0, seed=5).evaluate(scenario())
        long = SimulationModel(horizon=50_000.0, warmup=1_000.0, seed=5).evaluate(scenario())
        err_short = abs(short[0].lent_mean - exact[0].lent_mean)
        err_long = abs(long[0].lent_mean - exact[0].lent_mean)
        assert err_long <= err_short + 0.02

    def test_warmup_must_precede_horizon(self):
        with pytest.raises(ConfigurationError):
            SimulationModel(horizon=100.0, warmup=200.0)
