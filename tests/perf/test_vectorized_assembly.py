"""Equivalence of the vectorized and reference transition assemblers.

The vectorized assembler must be *bit-identical* to the retained
per-state reference loop: same CSR structure, same data floats, same
forwarding vector, hence the same steady state and parameters.  These
tests sweep randomized small federations so the equality holds across
pool shapes, truncation levels, and outcome fan-outs, not just one
hand-picked case.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.small_cloud import FederationScenario, SmallCloud
from repro.exceptions import ConfigurationError
from repro.perf.approximate import ApproximateModel, _state_arrays, _StateIndexer


def random_scenario(rng: random.Random, k: int) -> FederationScenario:
    """A small random federation that keeps chains test-sized."""
    clouds = []
    for i in range(k):
        vms = rng.randint(2, 5)
        clouds.append(
            SmallCloud(
                name=f"sc{i}",
                vms=vms,
                arrival_rate=rng.uniform(0.5, 0.95) * vms,
                service_rate=rng.choice([0.8, 1.0, 1.2]),
                sla_bound=rng.choice([0.2, 0.4, 0.6]),
                shared_vms=rng.randint(0, vms),
            )
        )
    return FederationScenario(tuple(clouds))


def build_levels(model: ApproximateModel, scenario: FederationScenario) -> list:
    """All levels of the chain, in order (bypasses the level cache)."""
    levels = [model._build_first(scenario)]
    for i in range(1, len(scenario)):
        levels.append(model._build_level(scenario, i, levels[-1]))
    return levels


def assert_levels_identical(ref, vec) -> None:
    ref_gen, vec_gen = ref.ctmc.generator, vec.ctmc.generator
    assert ref_gen.shape == vec_gen.shape
    assert np.array_equal(ref_gen.indptr, vec_gen.indptr)
    assert np.array_equal(ref_gen.indices, vec_gen.indices)
    # Bitwise, not approximate: the vectorized assembler replicates the
    # reference's float expressions and summation order exactly.
    assert np.array_equal(ref_gen.data, vec_gen.data)
    assert np.array_equal(ref.forward_flow, vec.forward_flow)
    assert np.array_equal(ref.steady, vec.steady)


class TestAssemblerEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_randomized_small_federations(self, seed):
        rng = random.Random(1000 + seed)
        scenario = random_scenario(rng, k=rng.randint(2, 4))
        ref = ApproximateModel(assembly="reference", level_cache_size=0)
        vec = ApproximateModel(assembly="vectorized", level_cache_size=0)
        for ref_level, vec_level in zip(
            build_levels(ref, scenario), build_levels(vec, scenario)
        ):
            assert_levels_identical(ref_level, vec_level)

    def test_zero_share_target(self):
        # A target sharing nothing exercises the shares == 0 state layout.
        clouds = (
            SmallCloud(name="a", vms=4, arrival_rate=3.0, shared_vms=2),
            SmallCloud(name="b", vms=4, arrival_rate=3.2, shared_vms=0),
        )
        scenario = FederationScenario(clouds)
        ref = ApproximateModel(assembly="reference", level_cache_size=0)
        vec = ApproximateModel(assembly="vectorized", level_cache_size=0)
        for ref_level, vec_level in zip(
            build_levels(ref, scenario), build_levels(vec, scenario)
        ):
            assert_levels_identical(ref_level, vec_level)

    def test_params_identical_end_to_end(self):
        rng = random.Random(7)
        scenario = random_scenario(rng, k=3)
        ref = ApproximateModel(assembly="reference", level_cache_size=0)
        vec = ApproximateModel(assembly="vectorized", level_cache_size=0)
        for target in range(len(scenario)):
            assert ref.evaluate_target(scenario, target) == vec.evaluate_target(
                scenario, target
            )

    def test_rejects_unknown_assembly(self):
        with pytest.raises(ConfigurationError):
            ApproximateModel(assembly="fancy")


class TestStateArrays:
    @pytest.mark.parametrize(
        "q_max,shares,pool", [(3, 2, 4), (5, 0, 3), (2, 4, 0), (4, 1, 1)]
    )
    def test_matches_enumeration_order(self, q_max, shares, pool):
        states = [
            (q, s, o, a)
            for q in range(q_max + 1)
            for s in range(shares + 1)
            for o in range(pool + 1)
            for a in range(pool - o + 1)
        ]
        q_arr, s_arr, o_arr, a_arr = _state_arrays(q_max, shares, pool)
        assert list(zip(q_arr, s_arr, o_arr, a_arr)) == states

    @pytest.mark.parametrize("q_max,shares,pool", [(3, 2, 4), (2, 1, 3)])
    def test_index_arrays_matches_scalar_indexer(self, q_max, shares, pool):
        indexer = _StateIndexer(q_max, shares, pool)
        q_arr, s_arr, o_arr, a_arr = _state_arrays(q_max, shares, pool)
        vec = indexer.index_arrays(q_arr, s_arr, o_arr, a_arr)
        scalar = [
            indexer(q, s, o, a) for q, s, o, a in zip(q_arr, s_arr, o_arr, a_arr)
        ]
        assert vec.tolist() == scalar == list(range(len(scalar)))
