"""Incremental re-solve semantics of the approximate model.

Two contracts:

- **bitwise equivalence** — incremental mode reuses previously built
  level objects, and a reused level is *the same object* a cold build
  would have produced (level builds are pure functions of config, spec
  prefix, and pool), so every observable stays ``float.hex``-identical
  to a cold monolithic solve;
- **suffix-only rebuilds** — a single-SC deviation that preserves the
  federation's shared total (an arrival-rate or SLA drift) never
  rebuilds a level *before* the deviating chain position: exactly the
  prefix is reused, exactly the suffix is rebuilt.

Sharing deviations move ``sum(S)`` and therefore re-key every level's
pool; the honest scope of prefix reuse is pinned by
``test_sharing_deviation_rebuilds_from_the_front``.
"""

from __future__ import annotations

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as hyp

from repro.bench.scenarios import kscale_scenario
from repro.core.small_cloud import FederationScenario
from repro.perf.approximate import ApproximateModel


def hex_params(params):
    if not isinstance(params, list):
        params = [params]
    return [
        (
            float(p.lent_mean).hex(),
            float(p.borrowed_mean).hex(),
            float(p.forward_rate).hex(),
            float(p.utilization).hex(),
        )
        for p in params
    ]


def drifted(scenario: FederationScenario, position: int, rate_step: float = 0.001):
    clouds = list(scenario.clouds)
    clouds[position] = replace(
        clouds[position], arrival_rate=clouds[position].arrival_rate + rate_step
    )
    return FederationScenario(tuple(clouds))


class TestIncrementalBitIdentity:
    def test_evaluate_matches_monolithic(self):
        scenario = kscale_scenario(6, sharers=3, vms=3)
        cold = ApproximateModel(level_cache_size=0, mode="monolithic")
        incremental = ApproximateModel(mode="incremental")
        assert hex_params(incremental.evaluate(scenario)) == hex_params(
            cold.evaluate(scenario)
        )

    def test_warm_resolve_matches_cold(self):
        base = kscale_scenario(6, sharers=3, vms=3)
        moved = drifted(base, 3)
        incremental = ApproximateModel(level_cache_size=0, mode="incremental")
        incremental.evaluate_target(base)
        warm = incremental.evaluate_target(moved, deviation=3)
        cold = ApproximateModel(level_cache_size=0).evaluate_target(moved)
        assert hex_params(warm) == hex_params(cold)

    def test_deviation_hint_never_changes_results(self):
        base = kscale_scenario(5, sharers=3, vms=3)
        moved = drifted(base, 2)
        hinted = ApproximateModel(level_cache_size=0, mode="incremental")
        hinted.evaluate_target(base)
        unhinted = ApproximateModel(level_cache_size=0, mode="incremental")
        unhinted.evaluate_target(base)
        assert hex_params(hinted.evaluate_target(moved, deviation=2)) == hex_params(
            unhinted.evaluate_target(moved)
        )


class TestSuffixOnlyRebuild:
    @given(position=hyp.integers(min_value=1, max_value=4))
    @settings(max_examples=8, deadline=None)
    def test_rate_drift_never_rebuilds_prefix(self, position):
        """A total-preserving deviation at position p reuses exactly the
        p-level prefix and rebuilds exactly the K - p suffix."""
        k = 6
        base = kscale_scenario(k, sharers=3, vms=2)
        model = ApproximateModel(level_cache_size=0, mode="incremental")
        model.evaluate_target(base)
        before = model.incremental_stats()
        model.evaluate_target(drifted(base, position), deviation=position)
        after = model.incremental_stats()
        assert after["levels_reused"] - before["levels_reused"] == position
        assert after["chain_prefix_hits"] - before["chain_prefix_hits"] == position
        assert after["levels_rebuilt"] - before["levels_rebuilt"] == k - position

    def test_prefix_levels_are_reused_verbatim(self):
        # Object identity, not just value equality: the retained chain's
        # leading levels are handed to the new chain untouched.
        k, position = 6, 4
        base = kscale_scenario(k, sharers=3, vms=2)
        model = ApproximateModel(level_cache_size=0, mode="incremental")
        model.evaluate_target(base)
        first_levels = model._chains[0][1]
        model.evaluate_target(drifted(base, position), deviation=position)
        second_levels = model._chains[0][1]
        for i in range(position):
            assert second_levels[i] is first_levels[i]
        for i in range(position, k):
            assert second_levels[i] is not first_levels[i]

    def test_sla_drift_is_total_preserving_too(self):
        k, position = 5, 3
        base = kscale_scenario(k, sharers=3, vms=2)
        clouds = list(base.clouds)
        clouds[position] = replace(
            clouds[position], sla_bound=clouds[position].sla_bound + 0.5
        )
        moved = FederationScenario(tuple(clouds))
        model = ApproximateModel(level_cache_size=0, mode="incremental")
        model.evaluate_target(base)
        before = model.incremental_stats()
        model.evaluate_target(moved, deviation=position)
        after = model.incremental_stats()
        assert after["chain_prefix_hits"] - before["chain_prefix_hits"] == position

    def test_sharing_deviation_rebuilds_from_the_front(self):
        # Moving sum(S) re-keys every level's pool: no prefix survives.
        # This is the documented boundary of incremental reuse, not a bug.
        k, position = 5, 3
        base = kscale_scenario(k, sharers=3, vms=2)
        clouds = list(base.clouds)
        clouds[position] = replace(clouds[position], shared_vms=1)
        moved = FederationScenario(tuple(clouds))
        model = ApproximateModel(level_cache_size=0, mode="incremental")
        model.evaluate_target(base)
        before = model.incremental_stats()
        model.evaluate_target(moved, deviation=position)
        after = model.incremental_stats()
        assert after["chain_prefix_hits"] == before["chain_prefix_hits"]
        assert after["levels_rebuilt"] - before["levels_rebuilt"] == k


class TestChainStateHousekeeping:
    def test_chain_state_depth_is_bounded(self):
        from repro.perf.approximate import _CHAIN_STATE_DEPTH

        base = kscale_scenario(4, sharers=2, vms=2)
        model = ApproximateModel(level_cache_size=0, mode="incremental")
        for step in range(_CHAIN_STATE_DEPTH + 3):
            model.evaluate_target(drifted(base, 1, rate_step=0.001 * (step + 1)))
        assert len(model._chains) <= _CHAIN_STATE_DEPTH

    def test_pickle_resets_chain_state(self):
        import pickle

        base = kscale_scenario(4, sharers=2, vms=2)
        model = ApproximateModel(mode="incremental")
        model.evaluate_target(base)
        clone = pickle.loads(pickle.dumps(model))
        assert clone.mode == "incremental"
        assert clone._chains == []
        assert clone.incremental_stats()["levels_rebuilt"] == 0

    def test_monolithic_mode_keeps_no_chain_state(self):
        base = kscale_scenario(4, sharers=2, vms=2)
        model = ApproximateModel(mode="monolithic")
        model.evaluate_target(base)
        assert model._chains == []
        stats = model.incremental_stats()
        assert stats["levels_reused"] == 0
        assert stats["chain_prefix_hits"] == 0


@pytest.mark.slow
class TestIncrementalUnderLoad:
    def test_many_drifts_stay_bitwise_identical(self):
        base = kscale_scenario(8, sharers=3, vms=2)
        incremental = ApproximateModel(mode="incremental")
        incremental.evaluate_target(base)
        for step in range(6):
            moved = drifted(base, 2 + step % 4, rate_step=0.002 * (step + 1))
            warm = incremental.evaluate_target(moved)
            cold = ApproximateModel(level_cache_size=0).evaluate_target(moved)
            assert hex_params(warm) == hex_params(cold)
