"""Tests for the approximate model's interaction machinery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as hyp

from repro.exceptions import SolverError
from repro.markov.ctmc import CTMC
from repro.markov.state_space import StateSpace
from repro.perf.interaction import (
    conditional_initials,
    hypergeometric_pmf,
    reduction_matrix,
    transient_outcomes,
)


class TestHypergeometricPmf:
    def test_matches_scipy(self):
        import scipy.stats as st

        for draws, cap_loc, cap_rem in [(3, 5, 7), (6, 4, 8), (10, 10, 10)]:
            pmf = hypergeometric_pmf(draws, cap_loc, cap_rem)
            ks = np.arange(len(pmf))
            reference = st.hypergeom.pmf(ks, cap_loc + cap_rem, cap_loc, draws)
            np.testing.assert_allclose(pmf, reference, atol=1e-12)

    def test_zero_draws(self):
        pmf = hypergeometric_pmf(0, 5, 5)
        assert pmf[0] == 1.0

    def test_zero_local_pool(self):
        pmf = hypergeometric_pmf(4, 0, 6)
        np.testing.assert_allclose(pmf, [1.0])

    def test_overfull_draws_rejected(self):
        with pytest.raises(SolverError):
            hypergeometric_pmf(20, 5, 5)

    @given(
        cap_loc=hyp.integers(min_value=0, max_value=15),
        cap_rem=hyp.integers(min_value=0, max_value=15),
        draws=hyp.integers(min_value=0, max_value=30),
    )
    @settings(max_examples=80, deadline=None)
    def test_is_distribution(self, cap_loc, cap_rem, draws):
        if draws > cap_loc + cap_rem:
            return
        pmf = hypergeometric_pmf(draws, cap_loc, cap_rem)
        assert pmf.min() >= 0.0
        assert pmf.sum() == pytest.approx(1.0)


class TestReductionMatrix:
    def test_rows_are_distributions(self):
        usage = np.array([0, 2, 4])
        own_lent = np.array([0, 1, 0])
        backlog = np.array([0, 0, 3])
        matrix, table = reduction_matrix(usage, own_lent, backlog, cap_loc=3, cap_rem=4)
        rows = np.asarray(matrix.sum(axis=1)).ravel()
        np.testing.assert_allclose(rows, 1.0, atol=1e-12)
        assert len(table) == matrix.shape[1]

    def test_own_lent_feeds_a_rem(self):
        # One state: usage 0, own_lent 2 -> outcome must be (0, 2, flag).
        matrix, table = reduction_matrix(
            np.array([0]), np.array([2]), np.array([0]), cap_loc=3, cap_rem=4
        )
        outcome = table.outcomes[int(matrix.toarray()[0].argmax())]
        assert outcome == (0, 2, False)

    def test_backlog_flag_carried(self):
        matrix, table = reduction_matrix(
            np.array([1]), np.array([0]), np.array([5]), cap_loc=1, cap_rem=1
        )
        flags = {o[2] for o in table.outcomes}
        assert flags == {True}


class TestConditionalInitials:
    def test_conditions_on_exact_level(self):
        steady = np.array([0.4, 0.3, 0.2, 0.1])
        totals = np.array([0, 1, 1, 2])
        initials = conditional_initials(steady, totals, range(3))
        np.testing.assert_allclose(initials[0], [1.0, 0, 0, 0])
        np.testing.assert_allclose(initials[1], [0, 0.6, 0.4, 0])
        np.testing.assert_allclose(initials[2], [0, 0, 0, 1.0])

    def test_missing_level_falls_back_to_nearest(self):
        steady = np.array([0.5, 0.5])
        totals = np.array([0, 4])
        initials = conditional_initials(steady, totals, range(6))
        # Level 1 has no states: nearest populated is 0.
        np.testing.assert_allclose(initials[1], [1.0, 0.0])
        # Level 3 is equidistant-ish; argmin picks the first nearest (4
        # is distance 1, 0 is distance 3 -> level 4 wins).
        np.testing.assert_allclose(initials[3], [0.0, 1.0])

    def test_rows_are_distributions(self):
        rng = np.random.default_rng(0)
        steady = rng.dirichlet(np.ones(12))
        totals = rng.integers(0, 4, size=12)
        initials = conditional_initials(steady, totals, range(5))
        np.testing.assert_allclose(initials.sum(axis=1), 1.0, atol=1e-12)


class TestTransientOutcomes:
    def test_outcome_rows_are_distributions(self):
        space = StateSpace([0, 1, 2])
        ctmc = CTMC.from_transitions(
            space, [(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)]
        )
        usage = np.array([0, 1, 2])
        matrix, _table = reduction_matrix(
            usage, np.zeros(3, dtype=int), np.zeros(3, dtype=int), cap_loc=2, cap_rem=2
        )
        initials = np.eye(3)
        results = transient_outcomes(ctmc, initials, matrix, horizons=[0.5, 2.0])
        assert len(results) == 2
        for dist in results:
            np.testing.assert_allclose(dist.sum(axis=1), 1.0, atol=1e-9)

    def test_long_horizon_forgets_initial_condition(self):
        space = StateSpace([0, 1])
        ctmc = CTMC.from_transitions(space, [(0, 1, 1.0), (1, 0, 1.0)])
        usage = np.array([0, 1])
        matrix, _table = reduction_matrix(
            usage, np.zeros(2, dtype=int), np.zeros(2, dtype=int), cap_loc=1, cap_rem=1
        )
        initials = np.eye(2)
        (result,) = transient_outcomes(ctmc, initials, matrix, horizons=[50.0])
        np.testing.assert_allclose(result[0], result[1], atol=1e-8)
