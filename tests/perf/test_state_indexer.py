"""Tests for the approximate model's closed-form state indexer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as hyp

from repro.perf.approximate import _StateIndexer


def enumerate_states(q_max, shares, pool):
    """The reference enumeration used by _build_level."""
    return [
        (q, s, o, a)
        for q in range(q_max + 1)
        for s in range(shares + 1)
        for o in range(pool + 1)
        for a in range(pool - o + 1)
    ]


class TestStateIndexer:
    @pytest.mark.parametrize(
        "q_max,shares,pool", [(3, 2, 2), (5, 0, 4), (2, 3, 0), (7, 1, 5)]
    )
    def test_matches_enumeration_order(self, q_max, shares, pool):
        indexer = _StateIndexer(q_max, shares, pool)
        for expected, state in enumerate(enumerate_states(q_max, shares, pool)):
            assert indexer(*state) == expected

    @given(
        q_max=hyp.integers(min_value=0, max_value=10),
        shares=hyp.integers(min_value=0, max_value=6),
        pool=hyp.integers(min_value=0, max_value=6),
    )
    @settings(max_examples=40, deadline=None)
    def test_bijective_over_the_whole_space(self, q_max, shares, pool):
        indexer = _StateIndexer(q_max, shares, pool)
        states = enumerate_states(q_max, shares, pool)
        indices = [indexer(*s) for s in states]
        assert indices == list(range(len(states)))
