"""Tests for the exact detailed CTMC (Sect. III-B)."""

import pytest

from repro.core.small_cloud import FederationScenario, SmallCloud
from repro.perf.detailed import DetailedModel
from repro.queueing.forwarding import NoSharingModel


def make_scenario(*clouds):
    return FederationScenario(tuple(clouds))


def small_2sc(share_a=2, share_b=2, rate_a=4.0, rate_b=5.0, vms=5):
    # Deliberately small: these chains are solved exactly in-test.
    return make_scenario(
        SmallCloud(name="a", vms=vms, arrival_rate=rate_a, shared_vms=share_a),
        SmallCloud(name="b", vms=vms, arrival_rate=rate_b, shared_vms=share_b),
    )


class TestDegenerateCases:
    def test_single_sc_matches_no_sharing_model(self):
        scenario = make_scenario(
            SmallCloud(name="solo", vms=6, arrival_rate=4.0)
        )
        params = DetailedModel().evaluate(scenario)[0]
        reference = NoSharingModel(6, 4.0, 1.0, 0.2)
        assert params.forward_rate == pytest.approx(reference.forward_rate, rel=1e-6)
        assert params.utilization == pytest.approx(reference.utilization, rel=1e-6)
        assert params.lent_mean == 0.0
        assert params.borrowed_mean == 0.0

    def test_zero_shares_decouple_the_federation(self):
        scenario = small_2sc(share_a=0, share_b=0)
        params = DetailedModel().evaluate(scenario)
        for i, cloud in enumerate(scenario):
            reference = NoSharingModel(
                cloud.vms, cloud.arrival_rate, cloud.service_rate, cloud.sla_bound
            )
            assert params[i].lent_mean == 0.0
            assert params[i].borrowed_mean == 0.0
            assert params[i].forward_rate == pytest.approx(
                reference.forward_rate, rel=1e-6
            )


class TestConservation:
    def test_total_lent_equals_total_borrowed(self):
        params = DetailedModel().evaluate(small_2sc())
        total_lent = sum(p.lent_mean for p in params)
        total_borrowed = sum(p.borrowed_mean for p in params)
        assert total_lent == pytest.approx(total_borrowed, rel=1e-9)

    def test_two_sc_mirror(self):
        a, b = DetailedModel().evaluate(small_2sc())
        assert a.lent_mean == pytest.approx(b.borrowed_mean, rel=1e-9)
        assert b.lent_mean == pytest.approx(a.borrowed_mean, rel=1e-9)

    def test_share_limits_respected(self):
        scenario = small_2sc(share_a=1, share_b=1)
        for p, cloud in zip(DetailedModel().evaluate(scenario), scenario):
            assert p.lent_mean <= cloud.shared_vms + 1e-9

    def test_three_sc_federation_solves(self):
        # Tight SLA + loose tail tolerance keep the 3-SC joint chain at a
        # few thousand states; the full-precision version is a Fig. 6
        # benchmark concern, not a unit-test one.
        scenario = make_scenario(
            SmallCloud(name="a", vms=2, arrival_rate=1.0, shared_vms=1, sla_bound=0.1),
            SmallCloud(name="b", vms=2, arrival_rate=1.4, shared_vms=1, sla_bound=0.1),
            SmallCloud(name="c", vms=2, arrival_rate=1.7, shared_vms=1, sla_bound=0.1),
        )
        params = DetailedModel(tail_epsilon=1e-6).evaluate(scenario)
        assert sum(p.lent_mean for p in params) == pytest.approx(
            sum(p.borrowed_mean for p in params), rel=1e-9
        )
        assert all(0.0 <= p.utilization <= 1.0 for p in params)


class TestSharingEffects:
    def test_sharing_reduces_total_forwarding(self):
        without = DetailedModel().evaluate(small_2sc(share_a=0, share_b=0))
        with_sharing = DetailedModel().evaluate(small_2sc(share_a=2, share_b=2))
        assert sum(p.forward_rate for p in with_sharing) < sum(
            p.forward_rate for p in without
        )

    def test_hot_sc_is_net_borrower(self):
        # rate_b > rate_a: SC b should borrow more than it lends.
        a, b = DetailedModel().evaluate(small_2sc(rate_a=2.0, rate_b=4.8))
        assert b.net_borrowed > 0.0
        assert a.net_borrowed < 0.0

    def test_utilization_rises_for_the_lender(self):
        lonely = DetailedModel().evaluate(small_2sc(share_a=0, share_b=0))
        sharing = DetailedModel().evaluate(small_2sc(share_a=2, share_b=2))
        # The cooler SC (a) picks up guests, raising its busy fraction.
        assert sharing[0].utilization > lonely[0].utilization


class TestStateSpace:
    def test_reachable_space_smaller_than_product(self):
        model = DetailedModel()
        scenario = small_2sc()
        space, _ = model.build(scenario)
        q_max_a = model._q_max(scenario, 0)
        q_max_b = model._q_max(scenario, 1)
        product = (q_max_a + 1) * (q_max_b + 1) * 3 * 3
        assert len(space) <= product

    def test_max_states_guard(self):
        from repro.exceptions import StateSpaceError

        with pytest.raises(StateSpaceError):
            DetailedModel(max_states=10).evaluate(small_2sc())
