"""Budget-driven tier selection (`repro.perf.auto`).

Selection must be a pure function of (scenario content, budget): the
same query always lands on the same tier, and dispatch returns exactly
what the chosen tier would return — the auto front adds routing, never
arithmetic.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core.small_cloud import FederationScenario, SmallCloud
from repro.perf.approximate import ApproximateModel
from repro.perf.auto import (
    APPROXIMATE_ACCURACY_FLOOR,
    AutoModel,
    ErrorBudget,
)
from repro.perf.bounds import forwarding_bounds
from repro.perf.detailed import DetailedModel
from repro.perf.pooled import PooledModel
from repro.runtime.cache import model_fingerprint


def two_sc_scenario():
    return FederationScenario(
        clouds=(
            SmallCloud(name="sc1", vms=4, arrival_rate=2.8, shared_vms=1),
            SmallCloud(name="sc2", vms=4, arrival_rate=3.0, shared_vms=1),
        )
    )


def single_sc_scenario():
    # K=1: the merged full-pooling system IS the lone SC, so the bracket
    # has zero width and no estimator can be off by anything.
    return FederationScenario(
        clouds=(SmallCloud(name="solo", vms=4, arrival_rate=2.8, shared_vms=1),)
    )


def light_load_scenario():
    # Forwarding is astronomically small at 2-3% utilization: the
    # bracket's upper end sits below the negligible-forwarding floor.
    return FederationScenario(
        clouds=(
            SmallCloud(name="sc1", vms=10, arrival_rate=0.2, shared_vms=1),
            SmallCloud(name="sc2", vms=10, arrival_rate=0.3, shared_vms=1),
        )
    )


def wide_scenario(k=6):
    return FederationScenario(
        clouds=tuple(
            SmallCloud(
                name=f"sc{i}", vms=3, arrival_rate=1.5 + 0.01 * i, shared_vms=1
            )
            for i in range(k)
        )
    )


class TestSelection:
    def test_tight_budget_small_federation_selects_detailed(self):
        model = AutoModel(budget=ErrorBudget(relative_error=0.005))
        assert model.select(two_sc_scenario()) == "detailed"

    def test_default_budget_selects_approximate(self):
        scenario = two_sc_scenario()
        bounds = forwarding_bounds(scenario)
        assert bounds.width / bounds.upper > ErrorBudget().relative_error
        assert AutoModel().select(scenario) == "approximate"

    def test_zero_width_bracket_selects_pooled(self):
        assert AutoModel().select(single_sc_scenario()) == "pooled"

    def test_negligible_forwarding_selects_pooled(self):
        assert AutoModel().select(light_load_scenario()) == "pooled"

    def test_tight_budget_large_federation_stays_approximate(self):
        model = AutoModel(budget=ErrorBudget(relative_error=0.005, detailed_max_k=3))
        assert model.select(wide_scenario()) == "approximate"

    def test_selection_is_deterministic(self):
        model = AutoModel()
        scenario = two_sc_scenario()
        assert model.select(scenario) == model.select(scenario)

    def test_accuracy_floor_gates_detailed(self):
        at_floor = AutoModel(
            budget=ErrorBudget(relative_error=APPROXIMATE_ACCURACY_FLOOR)
        )
        assert at_floor.select(two_sc_scenario()) == "approximate"


class TestDispatch:
    def test_approximate_dispatch_is_bitwise(self):
        scenario = two_sc_scenario()
        auto = AutoModel()
        direct = ApproximateModel()
        assert [float(p.forward_rate).hex() for p in auto.evaluate(scenario)] == [
            float(p.forward_rate).hex() for p in direct.evaluate(scenario)
        ]

    def test_detailed_dispatch_is_bitwise(self):
        scenario = two_sc_scenario()
        auto = AutoModel(budget=ErrorBudget(relative_error=0.005))
        direct = DetailedModel()
        assert [float(p.forward_rate).hex() for p in auto.evaluate(scenario)] == [
            float(p.forward_rate).hex() for p in direct.evaluate(scenario)
        ]

    def test_pooled_dispatch_is_bitwise(self):
        scenario = light_load_scenario()
        auto = AutoModel()
        direct = PooledModel()
        assert [float(p.utilization).hex() for p in auto.evaluate(scenario)] == [
            float(p.utilization).hex() for p in direct.evaluate(scenario)
        ]

    def test_evaluate_target_routes_like_evaluate(self):
        scenario = two_sc_scenario()
        auto = AutoModel()
        direct = ApproximateModel()
        assert (
            float(auto.evaluate_target(scenario, 0).forward_rate).hex()
            == float(direct.evaluate_target(scenario, 0).forward_rate).hex()
        )

    def test_selection_counts_record_dispatches(self):
        auto = AutoModel()
        auto.evaluate(two_sc_scenario())
        auto.evaluate(light_load_scenario())
        counts = auto.selection_counts()
        assert counts["approximate"] == 1
        assert counts["pooled"] == 1
        assert counts["detailed"] == 0


class TestConfiguration:
    def test_budget_terms_are_fingerprinted(self):
        fingerprint = model_fingerprint(AutoModel(budget=ErrorBudget(0.03, 4, 8)))
        assert "relative_error" in str(fingerprint)

    def test_budget_validation(self):
        with pytest.raises(Exception):
            ErrorBudget(relative_error=0.0)
        with pytest.raises(Exception):
            ErrorBudget(detailed_max_k=0)

    def test_mode_validation(self):
        with pytest.raises(Exception):
            AutoModel(mode="turbo")

    def test_pickle_resets_counts(self):
        auto = AutoModel()
        auto.evaluate(light_load_scenario())
        clone = pickle.loads(pickle.dumps(auto))
        assert clone.selection_counts() == {
            "pooled": 0,
            "approximate": 0,
            "detailed": 0,
        }
        assert clone.budget == auto.budget
