"""Fixture suites for the determinism taint rules (RPR302/303/305).

Every rule gets code that must be flagged, code that must pass, and a
flagged line rescued by `# repro: noqa[CODE]`.
"""

import textwrap

from repro.analysis.dataflow import analyze_sources


def codes(source, path="src/repro/mod.py", select=None, noqa=True):
    sources = {path: textwrap.dedent(source)}
    return [v.code for v in analyze_sources(sources, select=select, noqa=noqa)]


class TestRPR302UnorderedAccumulation:
    def test_flags_sum_over_set(self):
        src = """
            def total(values):
                return sum(set(values))
        """
        assert "RPR302" in codes(src, select=["RPR302"])

    def test_flags_augmented_loop_over_set(self):
        src = """
            def total(values):
                acc = 0.0
                for v in set(values):
                    acc += v
                return acc
        """
        assert "RPR302" in codes(src, select=["RPR302"])

    def test_flags_unordered_reaching_digest(self):
        src = """
            import hashlib
            def content_hash(values):
                return hashlib.sha256(str({v for v in values}).encode()).hexdigest()
        """
        assert "RPR302" in codes(src, select=["RPR302"])

    def test_passes_sum_over_sorted_set(self):
        src = """
            def total(values):
                return sum(sorted(set(values)))
        """
        assert codes(src, select=["RPR302"]) == []

    def test_passes_order_insensitive_reductions(self):
        src = """
            def stats(values):
                unique = set(values)
                return (len(unique), min(unique), max(unique))
        """
        assert codes(src, select=["RPR302"]) == []

    def test_noqa_suppresses(self):
        src = """
            def total(values):
                return sum(set(values))  # repro: noqa[RPR302] - integer weights, order-free
        """
        assert codes(src, select=["RPR302"]) == []


class TestRPR303EnvironmentTaint:
    def test_flags_environ_in_fingerprint(self):
        src = """
            import os
            def make_key(data):
                return f"{data}:{os.environ['HOST']}"
        """
        assert "RPR303" in codes(src, select=["RPR303"])

    def test_flags_wall_clock_in_fingerprint(self):
        src = """
            import time
            def make_key(data):
                return f"{data}:{time.time()}"
        """
        assert "RPR303" in codes(src, select=["RPR303"])

    def test_flags_builtin_hash_in_fingerprint(self):
        src = """
            def make_key(data):
                return str(hash(data))
        """
        assert "RPR303" in codes(src, select=["RPR303"])

    def test_flags_taint_introduced_in_callee(self):
        src = """
            import time
            def stamp():
                return time.time()
            def make_key(data):
                return f"{data}:{stamp()}"
        """
        assert "RPR303" in codes(src, select=["RPR303"])

    def test_flags_tainted_argument_to_digesting_callee(self):
        src = """
            import hashlib
            import time
            def digest_of(blob):
                return hashlib.sha256(blob).hexdigest()
            def bad():
                return digest_of(str(time.time()).encode())
        """
        assert "RPR303" in codes(src, select=["RPR303"])

    def test_passes_pure_fingerprint(self):
        src = """
            import hashlib
            def content_hash(data):
                return hashlib.sha256(data.encode()).hexdigest()
        """
        assert codes(src, select=["RPR303"]) == []

    def test_passes_clock_outside_fingerprints(self):
        src = """
            import time
            def elapsed(start):
                return time.perf_counter() - start
        """
        assert codes(src, select=["RPR303"]) == []

    def test_noqa_suppresses(self):
        src = """
            import os
            def make_key(data):  # repro: noqa[RPR303] - host partitioning is deliberate here
                return f"{data}:{os.environ['HOST']}"
        """
        assert codes(src, select=["RPR303"]) == []


class TestRPR305BackendStateInObservables:
    def test_flags_thread_id_in_observables(self):
        src = """
            import threading
            def outcome_observables(result):
                return {"worker": threading.get_ident(), "value": result}
        """
        assert "RPR305" in codes(src, select=["RPR305"])

    def test_flags_pid_reaching_digest(self):
        src = """
            import hashlib
            import os
            def observables_digest(observables):
                blob = f"{observables}:{os.getpid()}"
                return hashlib.sha256(blob.encode()).hexdigest()
        """
        assert "RPR305" in codes(src, select=["RPR305"])

    def test_passes_content_only_observables(self):
        src = """
            def outcome_observables(result):
                return {"value": float(result).hex()}
        """
        assert codes(src, select=["RPR305"]) == []

    def test_noqa_suppresses(self):
        src = """
            import threading
            def outcome_observables(result):  # repro: noqa[RPR305] - debug overlay, never digested
                return {"worker": threading.get_ident(), "value": result}
        """
        assert codes(src, select=["RPR305"]) == []
