"""Fixture suites for the fingerprint-soundness rules (RPR301/304/306).

Every rule gets code that must be flagged, code that must pass, and a
flagged line rescued by `# repro: noqa[CODE]`.
"""

import textwrap

from repro.analysis.dataflow import analyze_sources


def codes(source, path="src/repro/mod.py", select=None, noqa=True):
    sources = {path: textwrap.dedent(source)}
    return [v.code for v in analyze_sources(sources, select=select, noqa=noqa)]


class TestRPR301CacheKeyOmission:
    def test_flags_dropped_parameter(self):
        src = """
            def make_key(scenario, tolerance):
                return f"key:{scenario}"
        """
        assert codes(src) == ["RPR301"]

    def test_passes_when_every_parameter_flows(self):
        src = """
            def make_key(scenario, tolerance):
                return f"key:{scenario}:{tolerance}"
        """
        assert codes(src) == []

    def test_passes_parameter_flowing_through_local(self):
        src = """
            def make_key(scenario, tolerance):
                parts = [str(scenario)]
                parts.append(str(tolerance))
                return ":".join(parts)
        """
        assert codes(src) == []

    def test_passes_guard_only_parameter(self):
        src = """
            def make_key(payload, include_extra=True):
                data = {"p": str(payload)}
                if include_extra:
                    data["extra"] = 1
                return str(data)
        """
        assert codes(src) == []

    def test_flags_declared_attribute_not_flowing(self):
        src = """
            class C:
                def __init__(self, a, b):
                    self.a = a  # fingerprint-input: _hash
                    self.b = b  # fingerprint-input: _hash
                def _hash(self):
                    return str(self.a)
        """
        assert codes(src) == ["RPR301"]

    def test_passes_declared_attributes_flowing(self):
        src = """
            class C:
                def __init__(self, a, b):
                    self.a = a  # fingerprint-input: _hash
                    self.b = b  # fingerprint-input: _hash
                def _hash(self):
                    return f"{self.a}:{self.b}"
        """
        assert codes(src) == []

    def test_annotation_targeting_other_function_not_enforced_here(self):
        src = """
            class C:
                def __init__(self, a):
                    self.a = a  # fingerprint-input: other_key
                def _hash(self):
                    return "fixed"
        """
        assert codes(src) == []

    def test_ignores_non_fingerprint_function(self):
        src = """
            def evaluate(scenario, tolerance):
                return f"key:{scenario}"
        """
        assert codes(src) == []

    def test_ignores_fingerprint_named_function_without_return(self):
        src = """
            def check_cache_key(node, rule):
                print(node, rule)
        """
        assert codes(src) == []

    def test_noqa_suppresses(self):
        src = """
            def make_key(scenario, tolerance):  # repro: noqa[RPR301] - tolerance intentionally excluded
                return f"key:{scenario}"
        """
        assert codes(src) == []

    def test_noqa_disabled_for_self_test(self):
        src = """
            def make_key(scenario, tolerance):  # repro: noqa[RPR301]
                return f"key:{scenario}"
        """
        assert codes(src, noqa=False) == ["RPR301"]


class TestRPR304AliasedFingerprintInput:
    def test_flags_subscript_mutation_after_capture(self):
        src = """
            def build(config, cache_key):
                key = cache_key(config)
                config["x"] = 1
                return key
        """
        assert "RPR304" in codes(src, select=["RPR304"])

    def test_flags_mutator_method_after_capture(self):
        src = """
            def build(config, make_key):
                key = make_key(config)
                config.update(x=1)
                return key
        """
        assert "RPR304" in codes(src, select=["RPR304"])

    def test_passes_mutation_before_capture(self):
        src = """
            def build(config, make_key):
                config["x"] = 1
                key = make_key(config)
                return key
        """
        assert codes(src, select=["RPR304"]) == []

    def test_passes_rebind_after_capture(self):
        src = """
            def build(config, make_key):
                key = make_key(config)
                config = {"fresh": True}
                config["x"] = 1
                return key
        """
        assert codes(src, select=["RPR304"]) == []

    def test_noqa_suppresses(self):
        src = """
            def build(config, make_key):
                key = make_key(config)
                config["x"] = 1  # repro: noqa[RPR304] - key captured the pre-update state on purpose
                return key
        """
        assert codes(src, select=["RPR304"]) == []


class TestRPR306UnversionedPayload:
    def test_flags_json_dump_without_version(self):
        src = """
            import json
            def save(payload, path):
                with open(path, "w") as fh:
                    json.dump(payload, fh)
        """
        assert codes(src, select=["RPR306"]) == ["RPR306"]

    def test_flags_write_text_json_dumps_without_version(self):
        src = """
            import json
            def save(report, path):
                path.write_text(json.dumps(report))
        """
        assert codes(src, select=["RPR306"]) == ["RPR306"]

    def test_passes_version_key_in_payload(self):
        src = """
            import json
            def save(payload, path):
                payload = {"format_version": 2, **payload}
                with open(path, "w") as fh:
                    json.dump(payload, fh)
        """
        assert codes(src, select=["RPR306"]) == []

    def test_passes_version_added_by_subscript(self):
        src = """
            import json
            def save(payload, path):
                payload["format_version"] = 2
                with open(path, "w") as fh:
                    json.dump(payload, fh)
        """
        assert codes(src, select=["RPR306"]) == []

    def test_passes_version_added_by_callee(self):
        src = """
            import json
            def stamp(payload):
                return {"schema_version": 1, **payload}
            def save(payload, path):
                with open(path, "w") as fh:
                    json.dump(stamp(payload), fh)
        """
        assert codes(src, select=["RPR306"]) == []

    def test_plain_text_write_is_not_a_payload(self):
        src = """
            def save(lines, path):
                path.write_text("\\n".join(lines))
        """
        assert codes(src, select=["RPR306"]) == []

    def test_noqa_suppresses(self):
        src = """
            import json
            def save(payload, path):
                with open(path, "w") as fh:
                    json.dump(payload, fh)  # repro: noqa[RPR306] - externally-specified format
        """
        assert codes(src, select=["RPR306"]) == []
