"""The umbrella `python -m repro.analysis check` CLI and cross-family
`--select` routing, plus the per-family CLIs' shared JSON format and
cross-referencing unknown-code hints.
"""

import json
import textwrap

from repro.analysis import dataflow, lint, perf_lint
from repro.analysis.__main__ import _split_select, check, main
from repro.analysis.lintbase import Violation, render_json

CLEAN = """
def helper(x):
    return x + 1
"""

# One violation per family: RPR101 (unseeded randomness), RPR306
# (unversioned persisted payload), RPR401 (densify in a hot function).
MULTI_FAMILY = """
import json
import numpy as np


def sample():
    return np.random.random()


def persist(path, payload):
    path.write_text(json.dumps({"data": payload}))


# hot-path
def solve(q):
    return q.toarray()
"""


def write(tmp_path, source, name="mod.py"):
    target = tmp_path / "repro"
    target.mkdir(exist_ok=True)
    path = target / name
    path.write_text(textwrap.dedent(source))
    return path


class TestSelectRouting:
    def test_no_select_runs_every_family(self):
        routed = _split_select(None)
        assert routed == {"lint": None, "dataflow": None, "perf_lint": None}

    def test_codes_route_to_owning_family(self):
        routed = _split_select("RPR101,RPR301,RPR401,RPR405")
        assert routed == {
            "lint": ["RPR101"],
            "dataflow": ["RPR301"],
            "perf_lint": ["RPR401", "RPR405"],
        }

    def test_family_without_selected_codes_is_skipped(self):
        routed = _split_select("RPR404")
        assert routed == {"perf_lint": ["RPR404"]}

    def test_unknown_code_raises_with_known_list(self):
        try:
            _split_select("RPR999")
        except ValueError as exc:
            assert "RPR999" in str(exc) and "RPR101" in str(exc)
        else:
            raise AssertionError("expected ValueError")


class TestCheck:
    def test_clean_tree_is_clean(self, tmp_path):
        write(tmp_path, CLEAN)
        assert check([tmp_path]) == []

    def test_families_merge_sorted(self, tmp_path):
        write(tmp_path, MULTI_FAMILY)
        violations = check([tmp_path])
        codes = [v.code for v in violations]
        assert "RPR101" in codes and "RPR306" in codes and "RPR401" in codes
        assert [(v.path, v.line, v.col, v.code) for v in violations] == sorted(
            (v.path, v.line, v.col, v.code) for v in violations
        )

    def test_select_limits_to_one_family(self, tmp_path):
        write(tmp_path, MULTI_FAMILY)
        assert [v.code for v in check([tmp_path], select="RPR401")] == ["RPR401"]


class TestUmbrellaCLI:
    def test_list_rules_covers_all_families(self, capsys):
        assert main(["check", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in (*lint.LINT_RULES, *dataflow.DATAFLOW_RULES, *perf_lint.PERF_RULES):
            assert rule.code in out

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        write(tmp_path, CLEAN)
        assert main(["check", str(tmp_path)]) == 0

    def test_violations_exit_one(self, tmp_path, capsys):
        write(tmp_path, MULTI_FAMILY)
        assert main(["check", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "RPR101" in out and "RPR401" in out

    def test_unknown_code_exits_two(self, tmp_path, capsys):
        write(tmp_path, CLEAN)
        assert main(["check", "--select", "RPR999", str(tmp_path)]) == 2
        assert "unknown rule code" in capsys.readouterr().err

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main(["check", str(tmp_path / "nope")]) == 2

    def test_json_format_is_shared_report(self, tmp_path, capsys):
        write(tmp_path, MULTI_FAMILY)
        assert main(["check", "--format", "json", str(tmp_path)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["format"] == "repro.analysis.lint-report"
        assert payload["format_version"] == 1
        assert payload["count"] == len(payload["violations"]) > 0


class TestFamilyCLIsShareConventions:
    def test_lint_hints_perf_family(self, capsys):
        assert lint.main(["--select", "RPR401", "src"]) == 2
        assert "perf_lint" in capsys.readouterr().err

    def test_dataflow_hints_perf_family(self, capsys):
        assert dataflow.main(["--select", "RPR404", "src"]) == 2
        assert "perf_lint" in capsys.readouterr().err

    def test_perf_lint_hints_other_families(self, capsys):
        assert perf_lint.main(["--select", "RPR101", "src"]) == 2
        err = capsys.readouterr().err
        assert "repro.analysis.lint" in err and "dataflow" in err

    def test_json_format_agrees_across_clis(self, tmp_path, capsys):
        write(tmp_path, CLEAN)
        for cli in (lint.main, dataflow.main, perf_lint.main):
            assert cli(["--format", "json", str(tmp_path)]) == 0
            payload = json.loads(capsys.readouterr().out)
            assert payload["format"] == "repro.analysis.lint-report"
            assert payload["count"] == 0

    def test_render_json_roundtrip(self):
        violation = Violation(
            path="src/repro/mod.py", line=3, col=1, code="RPR401", message="m"
        )
        payload = json.loads(render_json([violation]))
        assert payload["violations"][0]["code"] == "RPR401"
        assert payload["violations"][0]["line"] == 3
