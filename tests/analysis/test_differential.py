"""Tests for the cross-backend differential checker
(`repro.analysis.differential`).

The full nine-cell matrix on the quick scenario runs in CI as its own
job; here we keep a fast structural test plus a slow-marked end-to-end
run of the matrix through the CLI.
"""

import json

import pytest

from repro.analysis.differential import SCENARIOS, _run_cell, main


class TestRegistry:
    def test_known_scenarios(self):
        assert "quick" in SCENARIOS
        assert "fig6" in SCENARIOS

    def test_strategy_spaces_cover_full_range(self):
        spec = SCENARIOS["quick"]
        spaces = spec.strategy_spaces()
        assert len(spaces) == len(spec.scenario)
        for cloud, space in zip(spec.scenario, spaces):
            assert space[0] == 0
            assert max(space) <= cloud.vms


class TestCells:
    def test_serial_base_cell_is_reproducible(self):
        spec = SCENARIOS["quick"]
        first = _run_cell(spec, "serial", "base")
        second = _run_cell(spec, "serial", "base")
        assert first["digest"] == second["digest"]
        assert first["observables"]["equilibrium"] == (
            second["observables"]["equilibrium"]
        )

    def test_thread_and_variant_cells_match_reference(self):
        # A 3-cell slice of the matrix: enough to catch a backend or
        # caching divergence quickly; the full matrix runs in CI.
        spec = SCENARIOS["quick"]
        reference = _run_cell(spec, "serial", "base")
        assert _run_cell(spec, "thread", "base")["digest"] == reference["digest"]
        assert _run_cell(spec, "serial", "nomemo")["digest"] == reference["digest"]
        assert _run_cell(spec, "serial", "warm")["digest"] == reference["digest"]

    def test_observables_use_hex_floats(self):
        cell = _run_cell(SCENARIOS["quick"], "serial", "base")
        for value in cell["observables"]["utilities"]:
            float.fromhex(value)  # raises if not a hex float string


@pytest.mark.slow
class TestFullMatrix:
    def test_cli_quick_matrix_is_bitwise_identical(self, tmp_path, capsys):
        out = tmp_path / "differential.json"
        exit_code = main(["--scenario", "quick", "--output", str(out)])
        assert exit_code == 0
        report = json.loads(out.read_text())
        assert report["ok"] is True
        assert report["mismatches"] == []
        # 3x3 backend/variant matrix plus the traced cell (obs on).
        assert len(report["cells"]) == 10
        assert any(cell.get("variant") == "traced" for cell in report["cells"])
        digests = {cell["digest"] for cell in report["cells"]}
        assert len(digests) == 1
        assert report["metrics_merge"]["ok"] is True
        out_text = capsys.readouterr().out
        assert "bit-identical" in out_text
        assert "metrics-merge" in out_text

    def test_report_carries_reference_observables(self, tmp_path):
        out = tmp_path / "differential.json"
        assert main(["--scenario", "quick", "--output", str(out)]) == 0
        report = json.loads(out.read_text())
        observables = report["observables"]
        assert len(observables["params"]) == 2
        assert observables["history"][0] == [0, 0]


class TestKsweepRegistry:
    def test_ksweep_scenarios_registered(self):
        for name, k in (("ksweep10", 10), ("ksweep20", 20)):
            spec = SCENARIOS[name]
            assert spec.matrix == "modes"
            assert len(spec.scenario) == k

    def test_ksweep_pools_stay_bounded(self):
        # The K-sweep exists to scale chain length, not state space:
        # whatever the strategy spaces allow, no level's pool exceeds
        # the active-sharer count.
        for name in ("ksweep10", "ksweep20"):
            spec = SCENARIOS[name]
            max_total = sum(max(space) for space in spec.strategy_spaces())
            assert max_total <= 3

    def test_ksweep_spaces_pin_inactive_scs(self):
        spec = SCENARIOS["ksweep10"]
        spaces = spec.strategy_spaces()
        active = [space for space in spaces if len(space) > 1]
        assert len(active) == 3
        assert all(space == [0] for space in spaces[3:])

    def test_matrix_field_is_validated(self):
        import dataclasses

        spec = SCENARIOS["quick"]
        with pytest.raises(ValueError):
            dataclasses.replace(spec, matrix="nonsense")

    def test_spaces_length_is_validated(self):
        import dataclasses

        spec = SCENARIOS["quick"]
        with pytest.raises(ValueError):
            dataclasses.replace(spec, spaces=((0, 1),))


@pytest.mark.slow
class TestKsweepCells:
    def test_mode_cells_match_reference(self):
        # A 4-cell slice of the ksweep10 matrix: serial/monolithic as
        # reference against each other mode and a threaded cell.  The
        # full 9-cell matrix (including process backends) runs in the
        # kscale-smoke CI job.
        spec = SCENARIOS["ksweep10"]
        reference = _run_cell(spec, "serial", "monolithic")
        assert (
            _run_cell(spec, "serial", "sharded")["digest"] == reference["digest"]
        )
        assert (
            _run_cell(spec, "serial", "incremental")["digest"]
            == reference["digest"]
        )
        assert (
            _run_cell(spec, "thread", "sharded")["digest"] == reference["digest"]
        )
