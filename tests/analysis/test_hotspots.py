"""The hotspots report: ranking, the agreement gate, and collection."""

import io
import json
import textwrap

from repro.analysis import hotspots
from repro.analysis.hotness import ProfileEvidence
from repro.analysis.hotspots import (
    build_index,
    check_agreement,
    collect_profile,
    main,
    render_report,
)

SRC = """
# hot-path
def root(x):
    return helper(x)


def helper(x):
    return x


def cold(x):
    return x
"""


def project_file(tmp_path):
    target = tmp_path / "repro"
    target.mkdir()
    path = target / "mod.py"
    path.write_text(textwrap.dedent(SRC))
    return path


def profile_payload(entries, total=10.0):
    return {
        "format": "repro.analysis.profile",
        "format_version": 1,
        "workload": "test",
        "total_seconds": total,
        "entries": entries,
    }


def entry(function, line, cumtime, path="repro/mod.py"):
    return {
        "path": path,
        "line": line,
        "function": function,
        "ncalls": 1,
        "tottime": cumtime,
        "cumtime": cumtime,
    }


def write_profile(tmp_path, entries):
    path = tmp_path / "profile.json"
    path.write_text(json.dumps(profile_payload(entries)))
    return path


class TestAgreement:
    def test_hot_top_entries_agree(self, tmp_path):
        src = project_file(tmp_path)
        profile = ProfileEvidence.from_payload(
            profile_payload([entry("root", 2, 5.0), entry("helper", 7, 4.0)])
        )
        index = build_index([src], profile)
        assert check_agreement(index) == []

    def test_statically_cold_top_entry_is_a_problem(self, tmp_path):
        src = project_file(tmp_path)
        profile = ProfileEvidence.from_payload(
            profile_payload([entry("cold", 11, 9.0)])
        )
        index = build_index([src], profile)
        problems = check_agreement(index)
        assert len(problems) == 1 and "statically cold" in problems[0]

    def test_unmatched_top_entry_is_a_problem(self, tmp_path):
        src = project_file(tmp_path)
        profile = ProfileEvidence.from_payload(
            profile_payload([entry("ghost", 1, 9.0, path="repro/other.py")])
        )
        index = build_index([src], profile)
        problems = check_agreement(index)
        assert len(problems) == 1 and "matches no project function" in problems[0]


class TestReport:
    def test_text_report_sections(self, tmp_path):
        src = project_file(tmp_path)
        profile = ProfileEvidence.from_payload(
            profile_payload([entry("root", 2, 5.0)])
        )
        index = build_index([src], profile)
        stream = io.StringIO()
        render_report(index, top=10, stream=stream)
        out = stream.getvalue()
        assert "hotness roots (1 annotated # hot-path)" in out
        assert "agreement check OK" in out
        assert "blind spots" in out and "helper" in out

    def test_text_report_without_profile(self, tmp_path):
        src = project_file(tmp_path)
        index = build_index([src], None)
        stream = io.StringIO()
        render_report(index, top=10, stream=stream)
        assert "no profile evidence loaded" in stream.getvalue()


class TestCli:
    def test_check_exits_zero_on_agreement(self, tmp_path, capsys):
        src = project_file(tmp_path)
        prof = write_profile(tmp_path, [entry("root", 2, 5.0)])
        assert main([str(src), "--profile", str(prof), "--check"]) == 0
        assert "agreement OK" in capsys.readouterr().out

    def test_check_exits_one_on_mismatch(self, tmp_path, capsys):
        src = project_file(tmp_path)
        prof = write_profile(tmp_path, [entry("cold", 11, 9.0)])
        assert main([str(src), "--profile", str(prof), "--check"]) == 1
        assert "statically cold" in capsys.readouterr().err

    def test_check_without_profile_exits_two(self, tmp_path, capsys):
        src = project_file(tmp_path)
        missing = tmp_path / "nope.json"
        assert main([str(src), "--profile", str(missing), "--check"]) == 2

    def test_malformed_profile_exits_two(self, tmp_path, capsys):
        src = project_file(tmp_path)
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"format": "wrong"}))
        assert main([str(src), "--profile", str(bad)]) == 2

    def test_json_report_payload(self, tmp_path, capsys):
        src = project_file(tmp_path)
        prof = write_profile(tmp_path, [entry("root", 2, 5.0)])
        assert main([str(src), "--profile", str(prof), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["format"] == "repro.analysis.hotspots-report"
        assert payload["roots"] == ["root"]
        assert payload["agreement_problems"] == []
        assert [r["qualname"] for r in payload["blind_spots"]] == ["helper"]


class TestCollect:
    def test_collect_writes_versioned_payload(self, tmp_path, monkeypatch, capsys):
        # The real workload takes seconds; collection mechanics are what
        # this test pins (filtering, format, sort order).
        monkeypatch.setattr(hotspots, "_profile_workload", lambda: sum(range(100)))
        payload = collect_profile(workload="noop")
        assert payload["format"] == "repro.analysis.profile"
        assert payload["format_version"] == 1
        assert payload["workload"] == "noop"
        assert payload["total_seconds"] >= 0.0
        # A no-op workload touches no repro/ code objects.
        assert payload["entries"] == []

    def test_collect_cli_writes_output(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setattr(hotspots, "_profile_workload", lambda: None)
        out = tmp_path / "PROFILE.json"
        assert main(["--collect", "--output", str(out)]) == 0
        written = json.loads(out.read_text())
        assert written["format"] == "repro.analysis.profile"
        assert "collected" in capsys.readouterr().out
