"""The mutation self-test: RPR301 recall is measured, not assumed.

`run_self_test` severs every flowing fingerprint input in the real
tree (one mutant per input, comments preserved) and demands RPR301
fires for each.  These tests wire it into pytest and cover the
mutation machinery itself.
"""

import io
import textwrap
from pathlib import Path

from repro.analysis.dataflow import _sever_input, run_self_test
from repro.analysis.dataflow_fingerprint import check_fingerprints
from repro.analysis.summaries import Project

REPO_SRC = Path(__file__).resolve().parents[2] / "src"


def single_module(source, path="src/repro/mod.py"):
    return Project({path: textwrap.dedent(source)})


class TestSeverInput:
    def test_severs_every_read_and_keeps_comments(self):
        proj = single_module(
            """
            def make_key(scenario, tolerance):  # repro: noqa[RPR999]
                blob = f"{scenario}:{tolerance}"
                return blob + str(tolerance)
            """
        )
        path = next(iter(proj.modules))
        fn = proj.fingerprint_functions()[0]
        mutated = _sever_input(proj.modules[path], fn, "parameter", "tolerance")
        assert mutated is not None
        assert "tolerance" in mutated.splitlines()[1]  # signature untouched
        assert "{None}" in mutated and "str(None)" in mutated
        assert "# repro: noqa[RPR999]" in mutated  # comments survive

    def test_severed_attribute_mutant_is_caught(self):
        proj = single_module(
            """
            class C:
                def __init__(self, a):
                    self.a = a  # fingerprint-input: _hash
                def _hash(self):
                    return str(self.a)
            """
        )
        path = next(iter(proj.modules))
        fn = next(f for f in proj.fingerprint_functions() if f.name == "_hash")
        mutated = _sever_input(proj.modules[path], fn, "attribute", "a")
        assert mutated is not None
        mutant = Project({path: mutated})
        findings = check_fingerprints(mutant)
        assert any(v.code == "RPR301" and "'a'" in v.message for v in findings)

    def test_returns_none_when_no_read_exists(self):
        proj = single_module(
            """
            def make_key(scenario):
                return "fixed"
            """
        )
        path = next(iter(proj.modules))
        fn = proj.fingerprint_functions()[0]
        assert _sever_input(proj.modules[path], fn, "parameter", "scenario") is None


class TestRunSelfTest:
    def test_repository_mutants_all_caught(self):
        stream = io.StringIO()
        assert run_self_test([REPO_SRC], stream=stream) == 0
        output = stream.getvalue()
        assert "(100%)" in output
        assert "MISSED" not in output
        # The three cache tiers must all contribute mutants.
        assert "DiskParamsCache._hash" in output
        assert "CachedModel._hash" in output
        assert "ApproximateModel._config_key" in output

    def test_empty_tree_fails(self, tmp_path):
        (tmp_path / "empty.py").write_text("def evaluate(x):\n    return x\n")
        stream = io.StringIO()
        assert run_self_test([tmp_path], stream=stream) == 1
        assert "no fingerprint functions" in stream.getvalue()

    def test_cli_flag_runs_self_test(self, capsys):
        from repro.analysis.dataflow import main

        assert main(["--self-test", str(REPO_SRC / "repro" / "runtime")]) == 0
        out = capsys.readouterr().out
        assert "caught by RPR301 (100%)" in out
