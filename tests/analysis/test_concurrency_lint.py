"""Tests for the concurrency lint rules (`repro.analysis.concurrency`).

Every RPR2xx rule gets flag/pass/noqa fixtures, exercised through the
unified `lint_source` entry point so the integration with the RPR1xx
framework (rule registry, `--select`, noqa semantics) is covered too.
"""

import textwrap

from repro.analysis.concurrency import CONCURRENCY_RULES
from repro.analysis.lint import LINT_RULES, lint_source, main


def codes(source, path="module.py", select=None):
    return [
        v.code
        for v in lint_source(textwrap.dedent(source), path=path, select=select)
    ]


class TestRegistry:
    def test_concurrency_rules_are_registered(self):
        registered = {rule.code for rule in LINT_RULES}
        for rule in CONCURRENCY_RULES:
            assert rule.code in registered

    def test_list_rules_cli_shows_concurrency_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in CONCURRENCY_RULES:
            assert rule.code in out

    def test_select_restricts_to_concurrency_family(self):
        src = """
            import numpy as np

            class Box:
                def __init__(self):
                    self.items = []  # guarded-by: _lock
                    self._lock = object()

                def add(self, item):
                    x = np.random.rand()
                    self.items.append(item)
        """
        only_concurrency = codes(src, select={"RPR201"})
        assert only_concurrency == ["RPR201"]


class TestRPR201GuardedWrites:
    def test_flags_unguarded_rebind(self):
        src = """
            import threading

            class Counter:
                def __init__(self):
                    self.value = 0  # guarded-by: _lock
                    self._lock = threading.Lock()

                def bump(self):
                    self.value += 1

                def __getstate__(self):
                    return {}
        """
        assert codes(src) == ["RPR201"]

    def test_flags_unguarded_mutator_call(self):
        src = """
            import threading

            class Box:
                def __init__(self):
                    self.items = []  # guarded-by: _lock
                    self._lock = threading.Lock()

                def add(self, item):
                    self.items.append(item)

                def __getstate__(self):
                    return {}
        """
        assert codes(src) == ["RPR201"]

    def test_flags_unguarded_subscript_store(self):
        src = """
            import threading

            class Table:
                def __init__(self):
                    self.rows = {}  # guarded-by: _lock
                    self._lock = threading.Lock()

                def set(self, key, value):
                    self.rows[key] = value

                def __getstate__(self):
                    return {}
        """
        assert codes(src) == ["RPR201"]

    def test_passes_write_under_lock(self):
        src = """
            import threading

            class Counter:
                def __init__(self):
                    self.value = 0  # guarded-by: _lock
                    self._lock = threading.Lock()

                def bump(self):
                    with self._lock:
                        self.value += 1

                def __getstate__(self):
                    return {}
        """
        assert codes(src) == []

    def test_constructor_and_setstate_are_exempt(self):
        src = """
            import threading

            class Counter:
                def __init__(self):
                    self.value = 0  # guarded-by: _lock
                    self._lock = threading.Lock()

                def __setstate__(self, state):
                    self.value = 0
                    self._lock = threading.Lock()

                def __getstate__(self):
                    return {}
        """
        assert codes(src) == []

    def test_locked_helper_body_exempt_but_bare_call_flagged(self):
        src = """
            import threading

            class Box:
                def __init__(self):
                    self.items = {}  # guarded-by: _lock
                    self._lock = threading.Lock()

                def _insert_locked(self, key, value):
                    self.items[key] = value

                def outside(self, key, value):
                    self._insert_locked(key, value)

                def inside(self, key, value):
                    with self._lock:
                        self._insert_locked(key, value)

                def __getstate__(self):
                    return {}
        """
        assert codes(src) == ["RPR201"]

    def test_nested_function_does_not_inherit_lock(self):
        # A closure created under the lock may run after it is released.
        src = """
            import threading

            class Box:
                def __init__(self):
                    self.items = []  # guarded-by: _lock
                    self._lock = threading.Lock()

                def deferred(self):
                    with self._lock:
                        def later():
                            self.items.append(1)
                        return later

                def __getstate__(self):
                    return {}
        """
        assert codes(src) == ["RPR201"]

    def test_noqa_suppresses(self):
        src = """
            import threading

            class Counter:
                def __init__(self):
                    self.value = 0  # guarded-by: _lock
                    self._lock = threading.Lock()

                def bump(self):
                    self.value += 1  # repro: noqa[RPR201]

                def __getstate__(self):
                    return {}
        """
        assert codes(src) == []


class TestRPR202CheckThenAct:
    def test_flags_unlocked_read_in_writing_method(self):
        src = """
            import threading

            class Table:
                def __init__(self):
                    self.rows = {}  # guarded-by: _lock
                    self._lock = threading.Lock()

                def ensure(self, key):
                    if key in self.rows:
                        return
                    with self._lock:
                        self.rows[key] = []

                def __getstate__(self):
                    return {}
        """
        assert codes(src) == ["RPR202"]

    def test_passes_check_and_act_both_locked(self):
        src = """
            import threading

            class Table:
                def __init__(self):
                    self.rows = {}  # guarded-by: _lock
                    self._lock = threading.Lock()

                def ensure(self, key):
                    with self._lock:
                        if key not in self.rows:
                            self.rows[key] = []

                def __getstate__(self):
                    return {}
        """
        assert codes(src) == []

    def test_read_only_method_not_flagged(self):
        # Reading without writing is the caller's consistency trade-off,
        # not a check-then-act race inside this method.
        src = """
            import threading

            class Table:
                def __init__(self):
                    self.rows = {}  # guarded-by: _lock
                    self._lock = threading.Lock()

                def peek(self, key):
                    return self.rows.get(key)

                def __getstate__(self):
                    return {}
        """
        assert codes(src) == []


class TestRPR203LockOrder:
    def test_flags_nested_reacquisition(self):
        src = """
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()

                def broken(self):
                    with self._lock:
                        with self._lock:
                            pass

                def __getstate__(self):
                    return {}
        """
        assert codes(src) == ["RPR203"]

    def test_flags_order_inversion(self):
        src = """
            import threading

            class Pair:
                def __init__(self):
                    self._a_lock = threading.Lock()
                    self._b_lock = threading.Lock()

                def forward(self):
                    with self._a_lock:
                        with self._b_lock:
                            pass

                def backward(self):
                    with self._b_lock:
                        with self._a_lock:
                            pass

                def __getstate__(self):
                    return {}
        """
        result = codes(src)
        assert result == ["RPR203", "RPR203"]

    def test_passes_consistent_order(self):
        src = """
            import threading

            class Pair:
                def __init__(self):
                    self._a_lock = threading.Lock()
                    self._b_lock = threading.Lock()

                def one(self):
                    with self._a_lock:
                        with self._b_lock:
                            pass

                def two(self):
                    with self._a_lock:
                        with self._b_lock:
                            pass

                def __getstate__(self):
                    return {}
        """
        assert codes(src) == []

    def test_sequential_acquisitions_pass(self):
        src = """
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()

                def fine(self):
                    with self._lock:
                        pass
                    with self._lock:
                        pass

                def __getstate__(self):
                    return {}
        """
        assert codes(src) == []


class TestRPR204ProcessUnsafeState:
    def test_flags_lock_without_pickle_hooks(self):
        src = """
            import threading

            class Holder:
                def __init__(self):
                    self._lock = threading.Lock()
        """
        assert codes(src) == ["RPR204"]

    def test_flags_open_handle_without_pickle_hooks(self):
        # select RPR204 so the fixture's bare constructor does not also
        # trip the RPR104 validation rule.
        src = """
            class Writer:
                def __init__(self, path):
                    self.handle = open(path, "w")
        """
        assert codes(src, select={"RPR204"}) == ["RPR204"]

    def test_passes_with_getstate(self):
        src = """
            import threading

            class Holder:
                def __init__(self):
                    self._lock = threading.Lock()

                def __getstate__(self):
                    return {}
        """
        assert codes(src) == []

    def test_passes_with_reduce(self):
        src = """
            import threading

            class Holder:
                def __init__(self):
                    self._lock = threading.Lock()

                def __reduce__(self):
                    return (Holder, ())
        """
        assert codes(src) == []

    def test_local_lock_not_flagged(self):
        src = """
            import threading

            class Holder:
                def work(self):
                    lock = threading.Lock()
                    with lock:
                        pass
        """
        assert codes(src) == []


class TestRPR205ModuleState:
    def test_flags_global_rebind(self):
        src = """
            _enabled = False

            def enable():
                global _enabled
                _enabled = True
        """
        assert codes(src) == ["RPR205"]

    def test_flags_module_container_mutation(self):
        src = """
            _registry = {}

            def register(name, value):
                _registry[name] = value
        """
        assert codes(src) == ["RPR205"]

    def test_flags_module_container_mutator_call(self):
        src = """
            _seen = []

            def mark(item):
                _seen.append(item)
        """
        assert codes(src) == ["RPR205"]

    def test_passes_read_only_module_constant(self):
        src = """
            _TABLE = {"a": 1}

            def lookup(name):
                return _TABLE[name]
        """
        assert codes(src) == []

    def test_passes_local_shadowing(self):
        src = """
            _default = {}

            def fresh():
                _default = {}
                _default["x"] = 1
                return _default
        """
        assert codes(src) == []

    def test_noqa_suppresses(self):
        src = """
            _enabled = False

            def enable():
                global _enabled  # repro: noqa[RPR205]
                _enabled = True
        """
        assert codes(src) == []


class TestRepositoryIsClean:
    def test_src_tree_passes_concurrency_rules(self):
        # The acceptance bar for the rules themselves: the repository's
        # own runtime must come out clean under them.
        exit_code = main(
            ["--select", "RPR201,RPR202,RPR203,RPR204,RPR205", "src"]
        )
        assert exit_code == 0
