"""The perf-lint mutation self-test: RPR401-406 recall is measured.

`run_self_test` injects each anti-pattern snippet into every
`# hot-path`-annotated function of the analyzed tree and demands every
injection is detected.  These tests wire it into pytest, pin the 100%
bar on the real repository tree, and cover the injection machinery.
"""

import io
import textwrap
from pathlib import Path

from repro.analysis.perf_lint import _SNIPPETS, _inject, run_self_test
from repro.analysis.summaries import Project

REPO_SRC = Path(__file__).resolve().parents[2] / "src"

FULLY_EQUIPPED = """
import numpy as np

from repro import obs


# hot-path
def kernel(x):
    y = x + 1
    return y
"""


def write_module(tmp_path, source, name="mod.py"):
    target = tmp_path / "repro"
    target.mkdir(exist_ok=True)
    path = target / name
    path.write_text(textwrap.dedent(source))
    return path


class TestInjection:
    def test_snippet_spliced_before_first_statement(self):
        proj = Project({"src/repro/mod.py": textwrap.dedent(FULLY_EQUIPPED)})
        module = proj.modules["src/repro/mod.py"]
        fn = next(f for f in proj.functions if f.name == "kernel")
        mutated = _inject(module, fn, _SNIPPETS["RPR401"][1])
        assert mutated is not None
        lines = mutated.splitlines()
        body_start = fn.node.body[0].lineno - 1
        assert lines[body_start].strip() == "___dense = ___matrix.toarray()"
        assert "# hot-path" in mutated  # annotation survives the splice

    def test_numpy_alias_substitution(self):
        src = """
        import numpy as xp

        # hot-path
        def kernel(x):
            return x
        """
        proj = Project({"src/repro/mod.py": textwrap.dedent(src)})
        module = proj.modules["src/repro/mod.py"]
        fn = next(f for f in proj.functions if f.name == "kernel")
        mutated = _inject(module, fn, _SNIPPETS["RPR402"][1])
        assert mutated is not None
        assert "xp.zeros(16)" in mutated

    def test_one_line_def_has_nowhere_to_splice(self):
        src = """
        # hot-path
        def kernel(x): return x
        """
        proj = Project({"src/repro/mod.py": textwrap.dedent(src)})
        module = proj.modules["src/repro/mod.py"]
        fn = next(f for f in proj.functions if f.name == "kernel")
        assert _inject(module, fn, _SNIPPETS["RPR401"][1]) is None


class TestRunSelfTest:
    def test_all_six_rules_detected_on_equipped_module(self, tmp_path):
        write_module(tmp_path, FULLY_EQUIPPED)
        stream = io.StringIO()
        assert run_self_test([tmp_path], stream=stream) == 0
        output = stream.getvalue()
        assert "6/6" in output and "(100%)" in output
        assert "MISSED" not in output

    def test_missing_imports_skip_gated_rules(self, tmp_path):
        write_module(
            tmp_path,
            """
            # hot-path
            def kernel(x):
                y = x + 1
                return y
            """,
        )
        stream = io.StringIO()
        assert run_self_test([tmp_path], stream=stream) == 0
        output = stream.getvalue()
        # RPR402 needs a numpy alias, RPR405 an obs import.
        assert "4/4" in output
        assert output.count("missing import") == 2

    def test_tree_without_hot_functions_fails(self, tmp_path):
        write_module(
            tmp_path,
            """
            def helper(x):
                return x
            """,
        )
        stream = io.StringIO()
        assert run_self_test([tmp_path], stream=stream) == 1
        assert "no # hot-path annotated functions" in stream.getvalue()

    def test_noqa_cannot_mask_a_miss(self, tmp_path):
        # Suppressions are disabled during the self-test: a function-wide
        # noqa blanket would otherwise hide a real recall gap.
        write_module(
            tmp_path,
            """
            # hot-path
            def kernel(q):
                return q.toarray()  # repro: noqa[RPR401]
            """,
        )
        stream = io.StringIO()
        assert run_self_test([tmp_path], stream=stream) == 0
        assert "MISSED" not in stream.getvalue()

    def test_repository_mutants_all_caught(self):
        stream = io.StringIO()
        assert run_self_test([REPO_SRC], stream=stream) == 0
        output = stream.getvalue()
        assert "(100%)" in output
        assert "MISSED" not in output
        # The annotated kernels must all contribute mutants.
        assert "SimulationEngine.step" in output
        assert "stationary_power" in output
        assert "_CloudState.record" in output

    def test_cli_flag_runs_self_test(self, capsys):
        from repro.analysis.perf_lint import main

        assert main(["--self-test", str(REPO_SRC / "repro" / "sim")]) == 0
        out = capsys.readouterr().out
        assert "(100%)" in out
