"""Unit tests for the static hotness index.

Covers the annotation contract, the two-direction may-call closure
(spine/kernel), the unresolved-call fan-out cap, profile fusion, and
blind-spot reporting.
"""

import textwrap

import pytest

from repro.analysis.hotness import (
    FANOUT_CAP,
    HotnessIndex,
    ProfileEvidence,
    _norm_path,
)
from repro.analysis.summaries import Project


def index_of(source, path="src/repro/mod.py", profile=None, extra_roots=()):
    project = Project({path: textwrap.dedent(source)})
    return HotnessIndex(project, profile, extra_roots=tuple(extra_roots))


def kinds(index):
    return {r.fn.qualname: r.kind for r in index.records()}


def payload(entries, total=10.0):
    return {
        "format": "repro.analysis.profile",
        "format_version": 1,
        "workload": "test",
        "total_seconds": total,
        "entries": entries,
    }


class TestAnnotationContract:
    def test_comment_line_above_def(self):
        idx = index_of(
            """
            # hot-path
            def kernel(x):
                return x
            """
        )
        assert kinds(idx)["kernel"] == "root"

    def test_comment_on_def_line(self):
        idx = index_of(
            """
            def kernel(x):  # hot-path
                return x
            """
        )
        assert kinds(idx)["kernel"] == "root"

    def test_comment_on_decorator_line(self):
        idx = index_of(
            """
            import functools

            @functools.lru_cache  # hot-path
            def kernel(x):
                return x
            """
        )
        assert kinds(idx)["kernel"] == "root"

    def test_leading_body_comment_counts(self):
        # The scan runs to the first body statement (multi-line
        # signatures), so a leading body comment is a valid position.
        idx = index_of(
            """
            def kernel(x):
                # hot-path
                return x
            """
        )
        assert kinds(idx)["kernel"] == "root"

    def test_comment_after_first_statement_is_not_a_marker(self):
        idx = index_of(
            """
            def kernel(x):
                y = x + 1
                # hot-path mentioned too late to be a header marker
                return y
            """
        )
        assert kinds(idx)["kernel"] is None

    def test_hyphenless_words_do_not_match(self):
        idx = index_of(
            """
            # the hot pathway is elsewhere
            def kernel(x):
                return x
            """
        )
        assert kinds(idx)["kernel"] is None


class TestClosure:
    SRC = """
        # hot-path
        def root(x):
            return helper(x)

        def helper(x):
            return leaf(x)

        def leaf(x):
            return x + 1

        def driver(x):
            return root(x)

        def outer(x):
            return driver(x)

        def unrelated(x):
            return x
    """

    def test_spine_and_kernel_classification(self):
        got = kinds(index_of(self.SRC))
        assert got["root"] == "root"
        assert got["driver"] == "spine"
        assert got["outer"] == "spine"
        assert got["helper"] == "kernel"
        assert got["leaf"] == "kernel"
        assert got["unrelated"] is None

    def test_depths_count_bfs_hops(self):
        idx = index_of(self.SRC)
        by_name = {r.fn.qualname: r for r in idx.records()}
        assert by_name["root"].depth == 0
        assert by_name["driver"].depth == 1
        assert by_name["outer"].depth == 2
        assert by_name["helper"].depth == 1
        assert by_name["leaf"].depth == 2

    def test_hot_ranking_is_deterministic_and_root_first(self):
        idx = index_of(self.SRC)
        hot = idx.hot()
        assert hot[0].fn.qualname == "root"
        assert [r.fn.qualname for r in hot] == [
            r.fn.qualname for r in index_of(self.SRC).hot()
        ]

    def test_extra_roots_by_bare_name(self):
        idx = index_of(self.SRC, extra_roots=("unrelated",))
        assert kinds(idx)["unrelated"] == "root"


class TestCallTargets:
    def test_unresolved_method_fans_out_to_defining_classes(self):
        idx = index_of(
            """
            class A:
                def solve(self):
                    return 1

            class B:
                def solve(self):
                    return 2

            # hot-path
            def run(model):
                return model.solve()
            """
        )
        got = kinds(idx)
        assert got["A.solve"] == "kernel"
        assert got["B.solve"] == "kernel"

    def test_fanout_cap_drops_too_generic_names(self):
        classes = "\n".join(
            f"class C{i}:\n    def solve(self):\n        return {i}\n"
            for i in range(FANOUT_CAP + 1)
        )
        idx = index_of(
            classes
            + """
# hot-path
def run(model):
    return model.solve()
"""
        )
        got = kinds(idx)
        assert all(got[f"C{i}.solve"] is None for i in range(FANOUT_CAP + 1))

    def test_bare_class_call_targets_init(self):
        idx = index_of(
            """
            class Model:
                def __init__(self):
                    self.state = 0

            # hot-path
            def run():
                return Model()
            """
        )
        assert kinds(idx)["Model.__init__"] == "kernel"


class TestProfileFusion:
    SRC = """
        # hot-path
        def root(x):
            return helper(x)

        def helper(x):
            return x

        def elsewhere(x):
            return x
    """

    def test_matched_entry_sets_fraction(self):
        profile = ProfileEvidence.from_payload(
            payload(
                [
                    {
                        "path": "repro/mod.py",
                        "line": 2,
                        "function": "root",
                        "ncalls": 3,
                        "tottime": 1.0,
                        "cumtime": 5.0,
                    }
                ]
            )
        )
        idx = index_of(self.SRC, profile=profile)
        record = next(r for r in idx.records() if r.fn.qualname == "root")
        assert record.profile is not None
        assert record.profile_fraction == pytest.approx(0.5)

    def test_profile_alone_makes_cold_function_hot(self):
        profile = ProfileEvidence.from_payload(
            payload(
                [
                    {
                        "path": "repro/mod.py",
                        "line": 8,
                        "function": "elsewhere",
                        "ncalls": 1,
                        "tottime": 2.0,
                        "cumtime": 2.0,
                    }
                ]
            )
        )
        idx = index_of(self.SRC, profile=profile)
        record = next(r for r in idx.records() if r.fn.qualname == "elsewhere")
        assert record.kind is None
        assert record.profile_hot
        assert record.is_hot

    def test_below_threshold_profile_does_not_make_hot(self):
        profile = ProfileEvidence.from_payload(
            payload(
                [
                    {
                        "path": "repro/mod.py",
                        "line": 8,
                        "function": "elsewhere",
                        "ncalls": 1,
                        "tottime": 0.01,
                        "cumtime": 0.01,
                    }
                ]
            )
        )
        idx = index_of(self.SRC, profile=profile)
        record = next(r for r in idx.records() if r.fn.qualname == "elsewhere")
        assert not record.is_hot

    def test_blind_spots_are_unprofiled_root_closure(self):
        profile = ProfileEvidence.from_payload(
            payload(
                [
                    {
                        "path": "repro/mod.py",
                        "line": 2,
                        "function": "root",
                        "ncalls": 3,
                        "tottime": 1.0,
                        "cumtime": 5.0,
                    }
                ]
            )
        )
        idx = index_of(self.SRC, profile=profile)
        assert [r.fn.qualname for r in idx.blind_spots()] == ["helper"]

    def test_no_profile_means_no_blind_spots(self):
        assert index_of(self.SRC).blind_spots() == []

    def test_profile_ranked_pairs_entries_with_records(self):
        profile = ProfileEvidence.from_payload(
            payload(
                [
                    {
                        "path": "repro/mod.py",
                        "line": 2,
                        "function": "root",
                        "ncalls": 3,
                        "tottime": 1.0,
                        "cumtime": 5.0,
                    },
                    {
                        "path": "repro/other.py",
                        "line": 1,
                        "function": "ghost",
                        "ncalls": 1,
                        "tottime": 9.0,
                        "cumtime": 9.0,
                    },
                ]
            )
        )
        idx = index_of(self.SRC, profile=profile)
        ranked = idx.profile_ranked()
        assert [e.function for e, _ in ranked] == ["ghost", "root"]
        assert ranked[0][1] is None  # no matching project function
        assert ranked[1][1].fn.qualname == "root"


class TestProfilePayloadValidation:
    def test_rejects_wrong_format(self):
        with pytest.raises(ValueError, match="format"):
            ProfileEvidence.from_payload({"format": "something-else"})

    def test_rejects_wrong_version(self):
        with pytest.raises(ValueError, match="format_version"):
            ProfileEvidence.from_payload(
                {"format": "repro.analysis.profile", "format_version": 99}
            )

    def test_rejects_non_object(self):
        with pytest.raises(ValueError, match="JSON object"):
            ProfileEvidence.from_payload([1, 2, 3])


class TestPathNormalization:
    def test_suffix_from_src_prefix(self):
        assert _norm_path("src/repro/sim/engine.py") == "repro/sim/engine.py"

    def test_suffix_from_absolute_path(self):
        assert (
            _norm_path("/opt/x/site-packages/repro/sim/engine.py")
            == "repro/sim/engine.py"
        )

    def test_windows_separators(self):
        assert _norm_path("src\\repro\\mod.py") == "repro/mod.py"
