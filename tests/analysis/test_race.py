"""Tests for the dynamic race harness (`repro.analysis.race`).

Two directions: the harness must pass on the repository's real
shared-state classes, and it must *fail* on a deliberately racy cache —
a detector that cannot detect is worse than none.
"""

import json
import threading
import time

import pytest

from repro.analysis.race import (
    AccessLog,
    InstrumentedLRUCache,
    ScheduleFuzzer,
    check_disk_cache_memory_tier,
    check_evaluator_pending,
    check_lru_serialized,
    check_lru_single_flight,
    main,
    run_harness,
)
from repro.runtime.memo import LRUCache


class TestAccessLog:
    def test_generations_are_globally_ordered(self):
        log = AccessLog()
        for i in range(5):
            log.record(thread=i % 2, op="get", key=f"k{i}")
        generations = [event.generation for event in log.events()]
        assert generations == [0, 1, 2, 3, 4]

    def test_count_by_op(self):
        log = AccessLog()
        log.record(0, "get", "a")
        log.record(0, "put", "a")
        log.record(1, "get", "b")
        assert log.count("get") == 2
        assert log.count("put") == 1


class TestScheduleFuzzer:
    def test_interleaving_preserves_program_order_and_is_seeded(self):
        fuzzer = ScheduleFuzzer(7)
        order = fuzzer.interleaving([3, 2])
        assert sorted(order) == [0, 0, 0, 1, 1]
        assert ScheduleFuzzer(7).interleaving([3, 2]) == order
        assert ScheduleFuzzer(8).interleaving([3, 2]) != order or True

    def test_serialized_runs_every_op_exactly_once(self):
        counts = [0, 0]
        lock = threading.Lock()

        def op(tid):
            def run():
                with lock:
                    counts[tid] += 1

            return run

        fuzzer = ScheduleFuzzer(3)
        order, errors = fuzzer.run_serialized(
            [[op(0)] * 4, [op(1)] * 6]
        )
        assert errors == []
        assert counts == [4, 6]
        assert sorted(order) == [0] * 4 + [1] * 6

    def test_serialized_surfaces_worker_exceptions(self):
        def boom():
            raise ValueError("expected failure")

        _, errors = ScheduleFuzzer(1).run_serialized([[boom], [lambda: None]])
        assert any("expected failure" in error for error in errors)

    def test_storm_runs_all_programs(self):
        hits = []
        lock = threading.Lock()

        def op():
            with lock:
                hits.append(1)

        errors = ScheduleFuzzer(2).run_storm([[op] * 3, [op] * 3, [op] * 3])
        assert errors == []
        assert len(hits) == 9


class TestChecksPassOnRealClasses:
    def test_lru_serialized_replay(self):
        check = check_lru_serialized(seed=11, threads=3)
        assert check.ok, check.details

    def test_lru_single_flight(self):
        check = check_lru_single_flight(seed=11, threads=4, keys=4, rounds=2)
        assert check.ok, check.details

    def test_disk_cache_memory_tier(self):
        check = check_disk_cache_memory_tier(seed=11, threads=3)
        assert check.ok, check.details

    def test_evaluator_pending(self):
        check = check_evaluator_pending(seed=11, threads=3)
        assert check.ok, check.details


class _RacyCache(LRUCache):
    """A cache with the single-flight discipline removed.

    ``get_or_create`` degrades to an unserialized check-then-act with a
    widened race window: every concurrent caller of a missing key runs
    the factory.  The harness must notice.
    """

    def get_or_create(self, key, factory):
        value = self.get(key)
        if value is not None:
            return value
        time.sleep(0.005)  # widen the miss-to-publish window
        value = factory()
        with self._lock:
            if key in self._data:
                self.duplicate_builds += 1
            self._put_locked(key, value)
        return value


class TestHarnessDetectsRaces:
    def test_racy_cache_produces_duplicate_builds(self):
        cache = _RacyCache(maxsize=None)
        builds = []
        lock = threading.Lock()

        def factory():
            with lock:
                builds.append(object())
            return builds[-1]

        def op():
            cache.get_or_create("hot", factory)

        # Four barrier-aligned threads all miss the same key; without
        # single-flight every one of them builds.
        errors = ScheduleFuzzer(5).run_storm([[op]] * 4)
        assert errors == []
        assert len(builds) > 1
        assert cache.stats()["duplicate_builds"] > 0

    def test_real_cache_same_schedule_is_clean(self):
        cache = InstrumentedLRUCache(AccessLog(), maxsize=None)
        builds = []
        lock = threading.Lock()

        def factory():
            time.sleep(0.005)
            with lock:
                builds.append(object())
            return builds[-1]

        def op():
            cache.get_or_create("hot", factory)

        errors = ScheduleFuzzer(5).run_storm([[op]] * 4)
        assert errors == []
        assert len(builds) == 1
        assert cache.stats()["duplicate_builds"] == 0


class TestHarnessDriver:
    def test_run_harness_report_shape(self):
        report = run_harness(seeds=[21], threads=2)
        assert report["ok"] is True
        assert report["failed"] == 0
        assert len(report["checks"]) == 4
        names = {check["name"] for check in report["checks"]}
        assert names == {
            "lru-serialized-replay",
            "lru-single-flight",
            "disk-cache-memory-tier",
            "evaluator-pending-tables",
        }

    def test_cli_quick_writes_report(self, tmp_path, capsys):
        out = tmp_path / "race.json"
        exit_code = main(["--quick", "--threads", "2", "--output", str(out)])
        assert exit_code == 0
        report = json.loads(out.read_text())
        assert report["ok"] is True
        assert "passed" in capsys.readouterr().out

    def test_cli_rejects_bad_threads(self):
        with pytest.raises(Exception):
            main(["--quick", "--threads", "0"])
