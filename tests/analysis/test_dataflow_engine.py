"""Tests for the dataflow engine core (`repro.analysis.summaries`).

Covers the project index (call-graph resolution across modules),
backward slices (parameters, attributes, guards, comprehensions,
f-strings), the taint lattice with its launderers, fixpoint function
summaries, annotation parsing, and both CLIs' exit codes.
"""

import ast
import textwrap
from pathlib import Path

import pytest

from repro.analysis import dataflow, lint
from repro.analysis.summaries import (
    TAINT_ENV,
    TAINT_UNORDERED,
    Project,
    is_fingerprint_name,
    load_sources,
)
from repro._validation import ConfigurationError


def project(**modules):
    """Build a Project from ``{dotted_name: source}`` keyword modules."""
    sources = {
        f"src/{name.replace('.', '/')}.py": textwrap.dedent(source)
        for name, source in modules.items()
    }
    return Project(sources)


def fn(proj, module_name, qualname):
    found = proj.function(module_name, qualname)
    assert found is not None, f"{module_name}:{qualname} not indexed"
    return found


class TestFingerprintNames:
    @pytest.mark.parametrize(
        "name",
        ["model_fingerprint", "content_hash", "cache_key", "payload_digest", "_hash", "make_key"],
    )
    def test_matches(self, name):
        assert is_fingerprint_name(name)

    @pytest.mark.parametrize("name", ["evaluate", "__hash__", "solve", "shash"])
    def test_rejects(self, name):
        assert not is_fingerprint_name(name)


class TestCallResolution:
    def test_resolves_bare_same_module_call(self):
        proj = project(
            mod="""
            def helper(x):
                return x
            def caller(y):
                return helper(y)
            """
        )
        caller = fn(proj, "mod", "caller")
        call = next(n for n in ast.walk(caller.node) if isinstance(n, ast.Call))
        resolved = proj.resolve_call(caller, call)
        assert resolved is not None and resolved.qualname == "helper"

    def test_resolves_from_import(self):
        proj = project(
            **{
                "pkg.a": """
                def helper(x):
                    return x
                """,
                "pkg.b": """
                from pkg.a import helper
                def caller(y):
                    return helper(y)
                """,
            }
        )
        caller = fn(proj, "pkg.b", "caller")
        call = next(n for n in ast.walk(caller.node) if isinstance(n, ast.Call))
        resolved = proj.resolve_call(caller, call)
        assert resolved is not None and resolved.module_name == "pkg.a"

    def test_resolves_module_alias(self):
        proj = project(
            **{
                "pkg.a": """
                def helper(x):
                    return x
                """,
                "pkg.b": """
                import pkg.a as a
                def caller(y):
                    return a.helper(y)
                """,
            }
        )
        caller = fn(proj, "pkg.b", "caller")
        call = next(n for n in ast.walk(caller.node) if isinstance(n, ast.Call))
        resolved = proj.resolve_call(caller, call)
        assert resolved is not None and resolved.qualname == "helper"

    def test_resolves_self_method_and_unique_method_name(self):
        proj = project(
            mod="""
            class C:
                def part(self):
                    return 1
                def whole(self):
                    return self.part()
            def outside(c):
                return c.part()
            """
        )
        whole = fn(proj, "mod", "C.whole")
        call = next(n for n in ast.walk(whole.node) if isinstance(n, ast.Call))
        assert proj.resolve_call(whole, call).qualname == "C.part"
        outside = fn(proj, "mod", "outside")
        call = next(n for n in ast.walk(outside.node) if isinstance(n, ast.Call))
        assert proj.resolve_call(outside, call).qualname == "C.part"

    def test_rejects_non_string_keys(self):
        with pytest.raises(ConfigurationError):
            Project({Path("x.py"): "pass"})


class TestSlices:
    def test_return_slice_follows_assignments_and_fstrings(self):
        proj = project(
            mod="""
            def make_key(scenario, tolerance):
                part = f"{scenario}:{tolerance}"
                return part
            """
        )
        sliced = proj.return_slice(fn(proj, "mod", "make_key"))
        assert sliced.params == {"scenario", "tolerance"}

    def test_return_slice_sees_guard_conditions(self):
        proj = project(
            mod="""
            def make_key(payload, include_extra=True):
                data = {"p": payload}
                if include_extra:
                    data["extra"] = 1
                return str(data)
            """
        )
        sliced = proj.return_slice(fn(proj, "mod", "make_key"))
        assert "include_extra" in sliced.params

    def test_comprehension_binds_loop_variable(self):
        proj = project(
            mod="""
            def make_key(items):
                return ",".join(str(v) for v in sorted(items))
            """
        )
        sliced = proj.return_slice(fn(proj, "mod", "make_key"))
        assert sliced.params == {"items"}
        assert "v" not in sliced.names

    def test_self_attributes_recorded(self):
        proj = project(
            mod="""
            class C:
                def _hash(self):
                    return f"{self.alpha}:{self.beta}"
            """
        )
        sliced = proj.return_slice(fn(proj, "mod", "C._hash"))
        assert sliced.attrs == {"alpha", "beta"}

    def test_rebound_parameter_keeps_both_influences(self):
        proj = project(
            mod="""
            def store(payload):
                payload = {"version": 3, **payload}
                return str(payload)
            """
        )
        sliced = proj.return_slice(fn(proj, "mod", "store"))
        assert "payload" in sliced.params
        assert sliced.has_version


class TestTaintLattice:
    def test_env_taint_from_environ_and_clock(self):
        proj = project(
            mod="""
            import os
            import time
            def a():
                return os.environ["HOME"]
            def b():
                return time.time()
            """
        )
        for name in ("a", "b"):
            sliced = proj.return_slice(fn(proj, "mod", name))
            assert sliced.taint_kinds() == {TAINT_ENV}

    def test_unordered_taint_from_set_laundered_by_sorted(self):
        proj = project(
            mod="""
            def raw(values):
                return {v for v in values}
            def ordered(values):
                return sorted({v for v in values})
            """
        )
        assert proj.return_slice(fn(proj, "mod", "raw")).taint_kinds() == {
            TAINT_UNORDERED
        }
        assert proj.return_slice(fn(proj, "mod", "ordered")).taint_kinds() == set()

    def test_sum_does_not_launder(self):
        proj = project(
            mod="""
            def total(values):
                return sum(set(values))
            """
        )
        assert TAINT_UNORDERED in proj.return_slice(
            fn(proj, "mod", "total")
        ).taint_kinds()


class TestSummaries:
    def test_taint_propagates_through_call_chain(self):
        proj = project(
            mod="""
            import time
            def stamp():
                return time.time()
            def wrap():
                return stamp()
            def outer():
                return wrap()
            """
        )
        summary = proj.summary(fn(proj, "mod", "outer"))
        assert {hit.kind for hit in summary.return_taints} == {TAINT_ENV}

    def test_version_marker_visible_two_hops_up(self):
        proj = project(
            mod="""
            import json
            class Spec:
                def to_dict(self):
                    return {"schema_version": 1, "name": self.name}
                def canonical_json(self):
                    return json.dumps(self.to_dict())
            """
        )
        summary = proj.summary(fn(proj, "mod", "Spec.canonical_json"))
        assert summary.return_has_version

    def test_sink_params_identified(self):
        proj = project(
            mod="""
            import hashlib
            def digest_of(blob):
                return hashlib.sha256(blob).hexdigest()
            """
        )
        summary = proj.summary(fn(proj, "mod", "digest_of"))
        assert summary.sink_params == {"blob"}


class TestAnnotations:
    def test_fingerprint_input_targets_parsed(self):
        proj = project(
            mod="""
            class C:
                def __init__(self, a, b):
                    self.a = a  # fingerprint-input: _hash
                    self.b = b  # fingerprint-input: other_key
                def _hash(self):
                    return str(self.a)
            """
        )
        assert proj.declared_inputs(fn(proj, "mod", "C._hash")) == ["a"]

    def test_bare_annotation_targets_every_fingerprint(self):
        proj = project(
            mod="""
            class C:
                def __init__(self, a):
                    self.a = a  # fingerprint-input
                def _hash(self):
                    return str(self.a)
                def cache_key(self):
                    return str(self.a)
            """
        )
        assert proj.declared_inputs(fn(proj, "mod", "C._hash")) == ["a"]
        assert proj.declared_inputs(fn(proj, "mod", "C.cache_key")) == ["a"]

    def test_dataclass_field_annotation(self):
        proj = project(
            mod="""
            from dataclasses import dataclass
            @dataclass
            class C:
                a: int  # fingerprint-input: _hash
                def _hash(self):
                    return str(self.a)
            """
        )
        assert proj.declared_inputs(fn(proj, "mod", "C._hash")) == ["a"]


class TestCLI:
    def _clean_file(self, tmp_path):
        path = tmp_path / "clean.py"
        path.write_text("def evaluate(x):\n    return x\n")
        return path

    def test_clean_tree_exits_zero(self, tmp_path):
        assert dataflow.main([str(self._clean_file(tmp_path))]) == 0

    def test_violations_exit_one(self, tmp_path):
        path = tmp_path / "bad.py"
        path.write_text(
            "def make_key(scenario, tolerance):\n    return str(scenario)\n"
        )
        assert dataflow.main([str(path)]) == 1

    def test_unknown_select_code_exits_two(self, tmp_path, capsys):
        code = dataflow.main(["--select", "RPR999", str(self._clean_file(tmp_path))])
        assert code == 2
        assert "unknown rule code" in capsys.readouterr().err

    def test_lint_cli_unknown_select_code_exits_two(self, tmp_path, capsys):
        code = lint.main(["--select", "RPR301", str(self._clean_file(tmp_path))])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown rule code" in err
        assert "repro.analysis.dataflow" in err

    def test_missing_path_exits_two(self):
        assert dataflow.main(["definitely/not/here"]) == 2

    def test_list_rules_prints_all_six(self, capsys):
        assert dataflow.main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("RPR301", "RPR302", "RPR303", "RPR304", "RPR305", "RPR306"):
            assert code in out

    def test_select_filters_codes(self, tmp_path):
        path = tmp_path / "bad.py"
        path.write_text(
            "def make_key(scenario, tolerance):\n    return str(scenario)\n"
        )
        assert dataflow.main(["--select", "RPR306", str(path)]) == 0


class TestRepositoryIsClean:
    def test_src_tree_has_no_rpr3xx_violations(self):
        root = Path(__file__).resolve().parents[2] / "src"
        assert root.is_dir()
        violations = dataflow.analyze_paths([root])
        assert violations == [], "\n".join(v.render() for v in violations)

    def test_load_sources_reads_tree(self):
        root = Path(__file__).resolve().parents[2] / "src" / "repro" / "analysis"
        sources = load_sources([root])
        assert any(path.endswith("summaries.py") for path in sources)
