"""Tests for the domain AST lint (`repro.analysis.lint`).

Every rule gets three fixtures: code that must be flagged, code that
must pass, and a flagged line rescued by `# repro: noqa[CODE]`.
"""

import textwrap
from pathlib import Path

from repro.analysis import lint
from repro.analysis.lint import LINT_RULES, lint_source, main


def codes(source, path="module.py", select=None):
    return [v.code for v in lint_source(textwrap.dedent(source), path=path, select=select)]


class TestRPR101UnseededRandom:
    def test_flags_np_random_module_draw(self):
        src = """
            import numpy as np
            x = np.random.rand(3)
        """
        assert codes(src) == ["RPR101"]

    def test_flags_unseeded_default_rng(self):
        src = """
            import numpy as np
            rng = np.random.default_rng()
        """
        assert codes(src) == ["RPR101"]

    def test_passes_seeded_default_rng(self):
        src = """
            import numpy as np
            rng = np.random.default_rng(1234)
            x = rng.normal(size=3)
        """
        assert codes(src) == []

    def test_passes_generator_plumbing(self):
        src = """
            import numpy as np
            seq = np.random.SeedSequence(7)
            gen = np.random.Generator(np.random.PCG64(seq))
        """
        assert codes(src) == []

    def test_flags_stdlib_random_import(self):
        assert codes("import random\n") == ["RPR101"]

    def test_flags_stdlib_random_from_import(self):
        assert codes("from random import choice\n") == ["RPR101"]

    def test_allowed_in_rng_module(self):
        src = """
            import random
            x = random.random()
        """
        assert codes(src, path="src/repro/sim/rng.py") == []

    def test_noqa_suppresses(self):
        src = """
            import numpy as np
            x = np.random.rand(3)  # repro: noqa[RPR101]
        """
        assert codes(src) == []


class TestRPR102FloatEquality:
    def test_flags_nonsentinel_literal(self):
        assert codes("ok = x == 0.3\n") == ["RPR102"]

    def test_passes_sentinel_literals(self):
        assert codes("a = x == 0.0\nb = y != 1.0\n") == []

    def test_flags_probability_named_operands(self):
        assert codes("same = forward_rate == baseline_rate\n") == ["RPR102"]

    def test_passes_unrelated_names(self):
        assert codes("same = left == right\n") == []

    def test_passes_int_literals(self):
        assert codes("done = count == 3\n") == []

    def test_noqa_suppresses(self):
        assert codes("ok = x == 0.3  # repro: noqa[RPR102]\n") == []


class TestRPR103FrozenMutation:
    def test_flags_attribute_assignment(self):
        assert codes("scenario.vms = 10\n") == ["RPR103"]

    def test_flags_augmented_assignment(self):
        assert codes("params.utilization += 0.1\n") == ["RPR103"]

    def test_allows_assignment_in_init(self):
        src = """
            class Holder:
                def __init__(self, scenario):
                    require(scenario is not None, "scenario required")
                    scenario.touched = True
        """
        assert codes(src) == []

    def test_flags_setattr_outside_construction(self):
        src = """
            def poke(obj):
                object.__setattr__(obj, "vms", 3)
        """
        assert codes(src) == ["RPR103"]

    def test_allows_setattr_in_post_init(self):
        src = """
            class _Box:
                def __post_init__(self):
                    object.__setattr__(self, "vms", 3)
        """
        assert codes(src) == []

    def test_passes_ordinary_receiver(self):
        assert codes("counter.total = 3\n") == []

    def test_noqa_suppresses(self):
        assert codes("scenario.vms = 10  # repro: noqa[RPR103]\n") == []


class TestRPR104UnvalidatedEntryPoint:
    def test_flags_public_init_without_validation(self):
        src = """
            class Model:
                def __init__(self, horizon):
                    self.horizon = horizon
        """
        assert codes(src) == ["RPR104"]

    def test_passes_with_validation_helper(self):
        src = """
            class Model:
                def __init__(self, horizon):
                    self.horizon = check_positive(horizon, "horizon")
        """
        assert codes(src) == []

    def test_passes_with_raise(self):
        src = """
            class Model:
                def __init__(self, horizon):
                    if horizon <= 0:
                        raise ValueError("horizon must be positive")
                    self.horizon = horizon
        """
        assert codes(src) == []

    def test_passes_private_class(self):
        src = """
            class _Internal:
                def __init__(self, horizon):
                    self.horizon = horizon
        """
        assert codes(src) == []

    def test_passes_argless_init(self):
        src = """
            class Model:
                def __init__(self):
                    self.items = []
        """
        assert codes(src) == []

    def test_passes_exception_class(self):
        src = """
            class SolverError(Exception):
                def __init__(self, detail):
                    super().__init__(detail)
                    self.detail = detail
        """
        assert codes(src) == []

    def test_noqa_suppresses(self):
        src = """
            class Model:
                def __init__(self, horizon):  # repro: noqa[RPR104]
                    self.horizon = horizon
        """
        assert codes(src) == []


class TestRPR105CacheKeyDeterminism:
    def test_flags_wall_clock_in_cache_key(self):
        src = """
            import time

            def cache_key(obj):
                return f"{obj}-{time.time()}"
        """
        assert codes(src) == ["RPR105"]

    def test_flags_builtin_id_in_fingerprint(self):
        src = """
            def model_fingerprint(model):
                return str(id(model))
        """
        assert codes(src) == ["RPR105"]

    def test_flags_builtin_hash_in_key_builder(self):
        src = """
            def entry_key(value):
                return hash(value)
        """
        assert codes(src) == ["RPR105"]

    def test_passes_content_hash(self):
        src = """
            import hashlib
            import json

            def cache_key(payload):
                blob = json.dumps(payload, sort_keys=True)
                return hashlib.sha256(blob.encode()).hexdigest()
        """
        assert codes(src) == []

    def test_ignores_calls_outside_key_functions(self):
        src = """
            import time

            def elapsed():
                return time.time()
        """
        assert codes(src) == []

    def test_noqa_suppresses(self):
        src = """
            def cache_key(obj):
                return str(id(obj))  # repro: noqa[RPR105]
        """
        assert codes(src) == []


class TestSuppression:
    def test_bare_noqa_suppresses_everything(self):
        assert codes("scenario.vms = 10  # repro: noqa\n") == []

    def test_noqa_for_other_code_keeps_violation(self):
        assert codes("scenario.vms = 10  # repro: noqa[RPR101]\n") == ["RPR103"]

    def test_noqa_code_list(self):
        src = "scenario.prob = prob_a == prob_b  # repro: noqa[RPR102, RPR103]\n"
        assert codes(src) == []


class TestHarness:
    def test_syntax_error_reports_rpr000(self):
        assert codes("def broken(:\n") == ["RPR000"]

    def test_select_filters_rules(self):
        src = """
            import random
            scenario.vms = 10
        """
        assert codes(src, select=["RPR103"]) == ["RPR103"]

    def test_violations_sorted_and_rendered(self):
        violations = lint_source("import random\nscenario.vms = 1\n", path="m.py")
        assert [v.line for v in violations] == sorted(v.line for v in violations)
        rendered = violations[0].render()
        assert rendered.startswith("m.py:") and "RPR101" in rendered

    def test_rule_table_complete(self):
        assert [rule.code for rule in LINT_RULES] == [
            "RPR101",
            "RPR102",
            "RPR103",
            "RPR104",
            "RPR105",
            "RPR201",
            "RPR202",
            "RPR203",
            "RPR204",
            "RPR205",
        ]
        assert all(rule.name and rule.summary for rule in LINT_RULES)


class TestCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "clean.py").write_text("x = 1\n")
        assert main([str(tmp_path)]) == 0
        assert capsys.readouterr().out == ""

    def test_violations_exit_one(self, tmp_path, capsys):
        (tmp_path / "dirty.py").write_text("import random\n")
        assert main([str(tmp_path)]) == 1
        captured = capsys.readouterr()
        assert "RPR101" in captured.out
        assert "1 violation" in captured.err

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope")]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in LINT_RULES:
            assert rule.code in out

    def test_select_flag(self, tmp_path):
        (tmp_path / "dirty.py").write_text("import random\n")
        assert main(["--select", "RPR103", str(tmp_path)]) == 0
        assert main(["--select", "RPR101", str(tmp_path)]) == 1

    def test_iter_python_files_mixes_files_and_dirs(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        sub = tmp_path / "pkg"
        sub.mkdir()
        (sub / "b.py").write_text("y = 2\n")
        (tmp_path / "notes.txt").write_text("ignored")
        files = lint.iter_python_files([tmp_path / "a.py", sub])
        assert [p.name for p in files] == ["a.py", "b.py"]
        assert all(isinstance(p, Path) for p in files)


class TestRepositoryIsClean:
    def test_src_tree_has_no_violations(self):
        root = Path(__file__).resolve().parents[2] / "src"
        assert root.is_dir()
        violations = lint.lint_paths([root])
        assert violations == [], "\n".join(v.render() for v in violations)
