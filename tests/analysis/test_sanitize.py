"""Tests for the runtime stochastic sanitizer (`repro.analysis.sanitize`)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.analysis import sanitize
from repro.analysis.sanitize import (
    InvariantViolation,
    check_cache_payload,
    check_distribution,
    check_distribution_rows,
    check_finite,
    check_generator,
    check_interaction_vector,
    check_params,
    check_stochastic_matrix,
    check_utilities,
    check_weights,
    sanitized,
)
from repro.exceptions import SCShareError
from repro.perf.params import PerformanceParams


@pytest.fixture
def active():
    with sanitized(True):
        yield


def good_generator():
    return np.array([[-2.0, 2.0], [3.0, -3.0]])


class TestToggling:
    def test_context_manager_restores_previous_state(self):
        with sanitized(False):
            assert not sanitize.sanitize_enabled()
            with sanitized(True):
                assert sanitize.sanitize_enabled()
            assert not sanitize.sanitize_enabled()

    def test_enable_disable(self):
        with sanitized(False):
            sanitize.sanitize_enable()
            assert sanitize.sanitize_enabled()
            sanitize.sanitize_disable()
            assert not sanitize.sanitize_enabled()

    def test_checks_are_noops_when_disabled(self):
        with sanitized(False):
            check_generator(np.array([[1.0, 2.0], [3.0, 4.0]]))
            check_distribution([0.9, 0.9])
            check_finite(float("nan"))
            check_utilities([float("inf")])

    def test_env_parsing(self, monkeypatch):
        for raw, expected in [
            ("", False),
            ("0", False),
            ("false", False),
            ("off", False),
            ("1", True),
            ("true", True),
            ("yes", True),
        ]:
            monkeypatch.setenv(sanitize.SANITIZE_ENV_VAR, raw)
            assert sanitize._env_enabled() is expected, raw


class TestInvariantViolation:
    def test_is_a_library_error_with_context(self):
        err = InvariantViolation("demo-invariant", "it broke", {"index": 3})
        assert isinstance(err, SCShareError)
        assert err.invariant == "demo-invariant"
        assert err.context == {"index": 3}
        assert "[demo-invariant]" in str(err)

    def test_context_defaults_to_empty_dict(self):
        assert InvariantViolation("x", "y").context == {}


class TestGenerator:
    def test_valid_dense_and_sparse_pass(self, active):
        check_generator(good_generator())
        check_generator(sp.csr_matrix(good_generator()))

    def test_bad_row_sums(self, active):
        q = np.array([[-2.0, 2.5], [3.0, -3.0]])
        with pytest.raises(InvariantViolation) as exc:
            check_generator(q, label="test-Q")
        assert exc.value.invariant == "generator-row-sums"
        assert exc.value.context["worst_row"] == 0

    def test_negative_off_diagonal(self, active):
        q = np.array([[1.0, -1.0], [3.0, -3.0]])
        with pytest.raises(InvariantViolation) as exc:
            check_generator(sp.csr_matrix(q))
        assert exc.value.invariant in ("generator-off-diagonal", "generator-row-sums")

    def test_non_finite(self, active):
        q = np.array([[-np.inf, np.inf], [3.0, -3.0]])
        with pytest.raises(InvariantViolation) as exc:
            check_generator(q)
        assert exc.value.invariant == "generator-finite"


class TestStochasticMatrix:
    def test_valid_passes(self, active):
        check_stochastic_matrix(np.array([[0.5, 0.5], [0.1, 0.9]]))

    def test_row_sum_violation(self, active):
        with pytest.raises(InvariantViolation) as exc:
            check_stochastic_matrix(np.array([[0.5, 0.6], [0.1, 0.9]]))
        assert exc.value.invariant == "stochastic-row-sums"

    def test_nan_entries(self, active):
        with pytest.raises(InvariantViolation) as exc:
            check_stochastic_matrix(np.array([[np.nan, 1.0], [0.1, 0.9]]))
        assert exc.value.invariant == "stochastic-finite"


class TestDistribution:
    def test_valid_passes(self, active):
        check_distribution(np.array([0.25, 0.25, 0.5]))

    def test_mass_violation(self, active):
        with pytest.raises(InvariantViolation) as exc:
            check_distribution([0.5, 0.6], label="pi-test")
        assert exc.value.invariant == "distribution-mass"
        assert "pi-test" in str(exc.value)

    def test_negative_entry(self, active):
        with pytest.raises(InvariantViolation) as exc:
            check_distribution([1.1, -0.1])
        assert exc.value.invariant == "distribution-negative"

    def test_non_finite_entry(self, active):
        with pytest.raises(InvariantViolation) as exc:
            check_distribution([np.nan, 1.0])
        assert exc.value.invariant == "distribution-finite"

    def test_rows_helper_checks_each_row(self, active):
        check_distribution_rows(np.array([[0.5, 0.5], [1.0, 0.0]]))
        with pytest.raises(InvariantViolation):
            check_distribution_rows(np.array([[0.5, 0.5], [0.9, 0.0]]))

    def test_rows_helper_rejects_wrong_shape(self, active):
        with pytest.raises(InvariantViolation) as exc:
            check_distribution_rows(np.array([0.5, 0.5]))
        assert exc.value.invariant == "distribution-shape"

    def test_interaction_and_weights_aliases(self, active):
        check_interaction_vector([0.2, 0.8])
        check_weights(np.array([0.3, 0.7]))
        with pytest.raises(InvariantViolation):
            check_interaction_vector([0.2, 0.9])
        with pytest.raises(InvariantViolation):
            check_weights(np.array([0.3, 0.8]))


class TestScalars:
    def test_check_finite_scalar_and_array(self, active):
        check_finite(1.0)
        check_finite(np.zeros(3))
        with pytest.raises(InvariantViolation) as exc:
            check_finite(np.array([1.0, np.inf]), label="welfare")
        assert exc.value.invariant == "non-finite"
        assert exc.value.context["indices"] == [1]

    def test_check_utilities(self, active):
        check_utilities([0.0, -3.5, 12.0])
        with pytest.raises(InvariantViolation) as exc:
            check_utilities([1.0, float("nan")], label="u")
        assert exc.value.invariant == "utility-finite"
        assert exc.value.context["index"] == 1


class TestParams:
    def test_valid_params_pass(self, active):
        check_params(
            PerformanceParams(
                lent_mean=0.5, borrowed_mean=0.3, forward_rate=0.0, utilization=0.8
            )
        )

    def test_nan_field_rejected(self, active):
        # NaN slips past the constructor's sign checks (NaN compares
        # false against every bound); the sanitizer must still catch it.
        params = PerformanceParams(
            lent_mean=float("nan"), borrowed_mean=0.0, forward_rate=0.0, utilization=0.5
        )
        with pytest.raises(InvariantViolation) as exc:
            check_params(params, label="sc0")
        assert exc.value.invariant == "params-finite"
        assert exc.value.context["field"] == "lent_mean"


class TestCachePayload:
    def test_matching_digests_pass(self, active):
        check_cache_payload({"x": 1}, expected_digest="abc", stored_digest="abc")

    def test_mismatch_raises(self, active):
        with pytest.raises(InvariantViolation) as exc:
            check_cache_payload(
                {"x": 1}, expected_digest="abc123", stored_digest="def456", label="c"
            )
        assert exc.value.invariant == "cache-digest"
        assert exc.value.context["stored"] == "def456"

    def test_missing_digest_is_noop(self, active):
        check_cache_payload({"x": 1}, expected_digest="abc", stored_digest=None)
        check_cache_payload({"x": 1}, expected_digest=None, stored_digest="abc")


class TestPipelineIntegration:
    """The sanitizer hooks wired into the CTMC layer fire end to end."""

    def test_ctmc_construction_and_steady_state_pass(self, active):
        from repro.markov.ctmc import CTMC
        from repro.markov.state_space import StateSpace

        ctmc = CTMC(StateSpace([0, 1]), sp.csr_matrix(good_generator()))
        pi = ctmc.steady_state()
        assert pi == pytest.approx([0.6, 0.4])

    def test_birth_death_chain_passes(self, active):
        from repro.markov.birth_death import mmc_chain

        chain = mmc_chain(arrival_rate=2.0, service_rate=1.0, servers=2, capacity=6)
        pi = chain.stationary()
        check_distribution(pi)
