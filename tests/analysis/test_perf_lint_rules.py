"""Fixture suites for the hot-path performance rules (RPR401-406).

Every rule gets code that must be flagged, code that must pass, and a
flagged line rescued by `# repro: noqa[CODE]`.  All fixtures annotate
the function under test with `# hot-path` — the rules only fire in hot
regions, which the gating tests at the bottom pin directly.
"""

import textwrap

from repro.analysis.perf_lint import analyze_sources


def codes(source, path="src/repro/mod.py", select=None, noqa=True, extra_roots=()):
    sources = {path: textwrap.dedent(source)}
    return [
        v.code
        for v in analyze_sources(
            sources, select=select, noqa=noqa, extra_roots=extra_roots
        )
    ]


class TestRPR401DenseMaterialization:
    def test_flags_toarray_in_hot_function(self):
        src = """
            # hot-path
            def solve(q):
                return q.toarray()
        """
        assert codes(src) == ["RPR401"]

    def test_flags_todense_on_subscript_receiver(self):
        src = """
            # hot-path
            def solve(qt):
                return qt[1:, 0].todense()
        """
        assert codes(src) == ["RPR401"]

    def test_passes_sparse_pipeline(self):
        src = """
            # hot-path
            def solve(q):
                return q.transpose().tocsr()
        """
        assert codes(src) == []

    def test_noqa_rescues_flagged_line(self):
        src = """
            # hot-path
            def solve(q):
                return q.toarray()  # repro: noqa[RPR401]
        """
        assert codes(src) == []


class TestRPR402ElementwiseLoop:
    def test_flags_pure_arithmetic_range_loop(self):
        src = """
            import numpy as np

            # hot-path
            def accumulate():
                arr = np.zeros(16)
                acc = 0.0
                for i in range(len(arr)):
                    acc += arr[i] * 2.0
                return acc
        """
        assert codes(src) == ["RPR402"]

    def test_flags_direct_iteration_over_ndarray(self):
        src = """
            import numpy as np

            # hot-path
            def total():
                arr = np.ones(8)
                acc = 0.0
                for value in arr:
                    acc += value
                return acc
        """
        assert codes(src) == ["RPR402"]

    def test_passes_loop_calling_helper_per_element(self):
        src = """
            import numpy as np

            # hot-path
            def accumulate(helper):
                arr = np.zeros(16)
                acc = 0.0
                for i in range(len(arr)):
                    acc += helper(arr[i])
                return acc
        """
        assert codes(src) == []

    def test_passes_loop_carried_recurrence(self):
        src = """
            import numpy as np

            # hot-path
            def recur():
                arr = np.zeros(16)
                prev = 0.0
                for i in range(len(arr)):
                    prev = arr[i] + prev * 0.5
                return prev
        """
        assert codes(src) == []

    def test_noqa_rescues_flagged_loop(self):
        src = """
            import numpy as np

            # hot-path
            def accumulate():
                arr = np.zeros(16)
                acc = 0.0
                for i in range(len(arr)):  # repro: noqa[RPR402]
                    acc += arr[i] * 2.0
                return acc
        """
        assert codes(src) == []


class TestRPR403LoopInvariantCall:
    def test_flags_invariant_key_construction(self):
        src = """
            # hot-path
            def walk(scope):
                out = []
                for i in range(8):
                    k = scope.registry.make_cache_key()
                    out.append((i, k))
                return out
        """
        assert codes(src) == ["RPR403"]

    def test_passes_call_depending_on_loop_variable(self):
        src = """
            # hot-path
            def walk(scope):
                out = []
                for i in range(8):
                    k = scope.registry.make_cache_key(i)
                    out.append((i, k))
                return out
        """
        assert codes(src) == []

    def test_passes_while_retry_loop(self):
        src = """
            # hot-path
            def spin(scope):
                while True:
                    k = scope.registry.make_cache_key()
                    if k:
                        return k
        """
        assert codes(src) == []

    def test_passes_cheap_deep_chain(self):
        src = """
            # hot-path
            def drain(state, items):
                out = []
                for item in items:
                    out.append(state.buffers.pending.get())
                return out
        """
        assert codes(src) == []

    def test_noqa_rescues_flagged_line(self):
        src = """
            # hot-path
            def walk(scope):
                out = []
                for i in range(8):
                    k = scope.registry.make_cache_key()  # repro: noqa[RPR403]
                    out.append((i, k))
                return out
        """
        assert codes(src) == []


class TestRPR404AllocationChurn:
    def test_flags_string_concat_in_loop(self):
        src = """
            # hot-path
            def join(parts):
                buf = ''
                for part in parts:
                    buf += part
                return buf
        """
        assert codes(src) == ["RPR404"]

    def test_flags_list_pop_zero(self):
        src = """
            # hot-path
            def drain(queue):
                return queue.pop(0)
        """
        assert codes(src) == ["RPR404"]

    def test_flags_append_only_range_loop(self):
        src = """
            # hot-path
            def build(n):
                out = []
                for i in range(n):
                    out.append(i * 2)
                return out
        """
        assert codes(src) == ["RPR404"]

    def test_passes_deque_popleft_and_join(self):
        src = """
            # hot-path
            def drain(queue, parts):
                first = queue.popleft()
                return first + ''.join(parts)
        """
        assert codes(src) == []

    def test_passes_pop_without_index(self):
        src = """
            # hot-path
            def drain(queue):
                return queue.pop()
        """
        assert codes(src) == []

    def test_noqa_rescues_flagged_line(self):
        src = """
            # hot-path
            def drain(queue):
                return queue.pop(0)  # repro: noqa[RPR404]
        """
        assert codes(src) == []


class TestRPR405EagerFormat:
    def test_flags_concatenated_metric_name(self):
        src = """
            from repro import obs

            # hot-path
            def tick(name):
                obs.inc('metric.' + name)
        """
        assert codes(src) == ["RPR405"]

    def test_flags_fstring_message(self):
        src = """
            from repro import obs

            # hot-path
            def tick(name):
                obs.inc(f'metric.{name}')
        """
        assert codes(src) == ["RPR405"]

    def test_passes_constant_metric_name(self):
        src = """
            from repro import obs

            # hot-path
            def tick():
                obs.inc('metric.fixed')
        """
        assert codes(src) == []

    def test_passes_guarded_formatting(self):
        src = """
            from repro import obs

            # hot-path
            def tick(name):
                if obs.metrics_active():
                    obs.inc(f'metric.{name}')
        """
        assert codes(src) == []

    def test_passes_prebuilt_name_lookup(self):
        src = """
            from repro import obs

            NAMES = {'a': 'metric.a'}

            # hot-path
            def tick(kind):
                obs.inc(NAMES[kind])
        """
        assert codes(src) == []

    def test_noqa_rescues_flagged_line(self):
        src = """
            from repro import obs

            # hot-path
            def tick(name):
                obs.inc('metric.' + name)  # repro: noqa[RPR405]
        """
        assert codes(src) == []


class TestRPR406PerElementLocking:
    def test_flags_lock_acquired_per_iteration(self):
        src = """
            # hot-path
            def drain(items, page_lock, handle):
                for item in items:
                    with page_lock:
                        handle(item)
        """
        assert codes(src) == ["RPR406"]

    def test_flags_cache_get_per_element(self):
        src = """
            # hot-path
            def lookup(keys, cache):
                out = []
                for key in keys:
                    out.append(cache.get(key))
                return out
        """
        assert codes(src) == ["RPR406"]

    def test_passes_check_then_fill_memo(self):
        src = """
            # hot-path
            def lookup(keys, cache, compute):
                out = []
                for key in keys:
                    val = cache.get(key)
                    if val is None:
                        val = compute(key)
                        cache[key] = val
                    out.append(val)
                return out
        """
        assert codes(src) == []

    def test_passes_lock_outside_loop(self):
        src = """
            # hot-path
            def drain(items, page_lock, handle):
                with page_lock:
                    for item in items:
                        handle(item)
        """
        assert codes(src) == []

    def test_passes_while_retry_under_lock(self):
        src = """
            # hot-path
            def settle(page_lock, state):
                while True:
                    with page_lock:
                        if state.ready:
                            return state.value
        """
        assert codes(src) == []

    def test_noqa_rescues_flagged_line(self):
        src = """
            # hot-path
            def drain(items, page_lock, handle):
                for item in items:
                    with page_lock:  # repro: noqa[RPR406]
                        handle(item)
        """
        assert codes(src) == []


class TestHotRegionGating:
    COLD = """
        def solve(q):
            return q.toarray()
    """

    def test_cold_function_not_flagged(self):
        assert codes(self.COLD) == []

    def test_extra_roots_force_hotness(self):
        assert codes(self.COLD, extra_roots=("solve",)) == ["RPR401"]

    def test_callee_of_hot_root_is_checked(self):
        src = """
            # hot-path
            def outer(q):
                return inner(q)

            def inner(q):
                return q.toarray()
        """
        assert codes(src) == ["RPR401"]

    def test_caller_of_hot_root_is_checked(self):
        src = """
            def outer(q):
                return inner(q).toarray()

            # hot-path
            def inner(q):
                return q
        """
        assert codes(src) == ["RPR401"]

    def test_select_filters_codes(self):
        src = """
            # hot-path
            def churn(queue, q):
                head = queue.pop(0)
                return head, q.toarray()
        """
        assert codes(src, select=["RPR401"]) == ["RPR401"]
