"""Process-safe neighborhood scoring in the best responder.

The batch scorer replaces the closure objective during Tabu/exhaustive
prefetch with a picklable module-level task, so process pools genuinely
score neighborhoods in parallel instead of silently falling back to
serial.  The contract: same responses, same utilities, same evaluation
counts on every backend — parallel scoring is a performance knob, never
a semantics knob.
"""

from __future__ import annotations

import pickle

import pytest

from repro import obs
from repro.bench.scenarios import kscale_scenario
from repro.game.best_response import BestResponder, _score_trial_task
from repro.market.evaluator import UtilityEvaluator
from repro.perf.approximate import ApproximateModel
from repro.runtime.executor import ProcessExecutor, SerialExecutor, ThreadExecutor


def make_responder(executor=None, method="tabu"):
    scenario = kscale_scenario(5, sharers=3, vms=2)
    evaluator = UtilityEvaluator(
        scenario, ApproximateModel(executor=executor), gamma=0.5
    )
    spaces = [[0, 1, 2] if i < 3 else [0] for i in range(5)]
    responder = BestResponder(
        evaluator, spaces, method=method, executor=executor
    )
    return responder, evaluator


def respond_all(responder):
    profile = [1, 1, 1, 0, 0]
    return [responder.respond(profile, index) for index in range(3)]


class TestCrossBackendEquivalence:
    def test_thread_matches_serial(self):
        serial_responder, serial_eval = make_responder(SerialExecutor())
        thread_responder, thread_eval = make_responder(ThreadExecutor(workers=3))
        assert respond_all(thread_responder) == respond_all(serial_responder)
        assert thread_eval.total_evaluations == serial_eval.total_evaluations

    @pytest.mark.slow
    def test_process_matches_serial(self):
        serial_responder, serial_eval = make_responder(SerialExecutor())
        process_responder, process_eval = make_responder(ProcessExecutor(workers=2))
        assert respond_all(process_responder) == respond_all(serial_responder)
        assert process_eval.total_evaluations == serial_eval.total_evaluations

    def test_exhaustive_method_matches_too(self):
        serial_responder, _ = make_responder(SerialExecutor(), method="exhaustive")
        thread_responder, _ = make_responder(
            ThreadExecutor(workers=3), method="exhaustive"
        )
        assert respond_all(thread_responder) == respond_all(serial_responder)


class TestScoreTask:
    def test_task_is_picklable(self):
        _, evaluator = make_responder()
        task = (evaluator, (1, 1, 1, 0, 0), 0)
        clone_fn, clone_task = pickle.loads(
            pickle.dumps((_score_trial_task, task))
        )
        utility, params = clone_fn(clone_task)
        assert utility == evaluator.utility([1, 1, 1, 0, 0], 0)
        assert params is not None

    def test_zero_share_trial_returns_no_params(self):
        _, evaluator = make_responder()
        utility, params = _score_trial_task((evaluator, (0, 1, 1, 0, 0), 0))
        assert params is None
        assert utility == evaluator.utility([0, 1, 1, 0, 0], 0)

    def test_no_pickle_fallback_on_process_pool(self):
        # The counter the old closure objective used to trip: a process
        # pool that cannot pickle its task falls back to serial and
        # records runtime.executor.pickle_fallback.
        _, evaluator = make_responder()
        tasks = [
            (evaluator, (1, 1, 1, 0, 0), 0),
            (evaluator, (2, 1, 1, 0, 0), 0),
        ]
        with obs.capture(tracing=False, metrics=True) as cap:
            ProcessExecutor(workers=2).map(_score_trial_task, tasks)
        counters = dict(cap.snapshot().counter_view())
        assert counters.get("runtime.executor.pickle_fallback", 0) == 0
