"""Shared fixtures for game-layer tests (see tests/helpers.py)."""

from __future__ import annotations

import pytest

from repro.core.small_cloud import FederationScenario, SmallCloud
from tests.helpers import StubModel


@pytest.fixture
def stub_model() -> StubModel:
    return StubModel()


@pytest.fixture
def three_sc_scenario() -> FederationScenario:
    return FederationScenario((
        SmallCloud(name="lo", vms=10, arrival_rate=6.0, public_price=1.0, federation_price=0.5),
        SmallCloud(name="mid", vms=10, arrival_rate=8.5, public_price=1.0, federation_price=0.5),
        SmallCloud(name="hi", vms=10, arrival_rate=9.5, public_price=1.0, federation_price=0.5),
    ))
