"""Tests for the sequential (Gauss–Seidel) best-response dynamic."""

import pytest

from repro.exceptions import GameError
from repro.game.best_response import BestResponder
from repro.game.dynamics import SequentialGame
from repro.game.equilibrium import is_nash_equilibrium
from repro.game.repeated_game import RepeatedGame
from repro.game.strategy import full_strategy_spaces
from repro.market.evaluator import UtilityEvaluator


@pytest.fixture
def components(three_sc_scenario, stub_model):
    evaluator = UtilityEvaluator(three_sc_scenario, stub_model, gamma=0.0)
    spaces = full_strategy_spaces(three_sc_scenario)
    return evaluator, BestResponder(evaluator, spaces), spaces


class TestSequentialGame:
    def test_converges(self, components):
        _evaluator, responder, _spaces = components
        result = SequentialGame(responder).run()
        assert result.converged
        assert not result.cycled

    def test_fixed_point_is_nash(self, components):
        evaluator, responder, spaces = components
        result = SequentialGame(responder).run()
        assert is_nash_equilibrium(evaluator, result.equilibrium, spaces)

    def test_history_records_sweeps(self, components):
        _evaluator, responder, _spaces = components
        result = SequentialGame(responder).run(initial=(1, 1, 1))
        assert result.history[0] == (1, 1, 1)
        assert result.history[-1] == result.equilibrium

    def test_settles_where_simultaneous_does(self, components):
        _evaluator, responder, _spaces = components
        sequential = SequentialGame(responder).run()
        simultaneous = RepeatedGame(responder).run()
        # Same attractor for this scenario (both are Nash points either way).
        assert sequential.equilibrium == simultaneous.equilibrium

    def test_handles_oscillation_prone_games(self):
        """Where simultaneous dynamics cycle, sequential settles."""
        from repro.core.small_cloud import FederationScenario, SmallCloud
        from tests.perf_stub_for_cycles import CyclingModel

        scenario = FederationScenario((
            SmallCloud(name="a", vms=1, arrival_rate=0.9),
            SmallCloud(name="b", vms=1, arrival_rate=0.9),
        ))
        evaluator = UtilityEvaluator(scenario, CyclingModel(), gamma=0.0)
        responder = BestResponder(evaluator, [[0, 1], [0, 1]])
        result = SequentialGame(responder, max_rounds=30).run(initial=(0, 1))
        # Sequential sweeps either converge or exhaust the budget without
        # the two-profile flip-flop; they never report a cycle.
        assert not result.cycled

    def test_bad_initial_rejected(self, components):
        _evaluator, responder, _spaces = components
        with pytest.raises(GameError):
            SequentialGame(responder).run(initial=(1,))
