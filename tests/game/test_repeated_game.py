"""Tests for Algorithm 1 (the repeated best-response game)."""

import pytest

from repro.exceptions import GameError
from repro.game.best_response import BestResponder
from repro.game.equilibrium import is_nash_equilibrium
from repro.game.repeated_game import RepeatedGame
from repro.game.strategy import full_strategy_spaces
from repro.market.evaluator import UtilityEvaluator


@pytest.fixture
def game(three_sc_scenario, stub_model):
    evaluator = UtilityEvaluator(three_sc_scenario, stub_model, gamma=0.0)
    spaces = full_strategy_spaces(three_sc_scenario)
    return RepeatedGame(BestResponder(evaluator, spaces)), evaluator, spaces


class TestConvergence:
    def test_converges_from_empty_profile(self, game):
        runner, evaluator, spaces = game
        result = runner.run()
        assert result.converged
        assert not result.cycled
        assert result.iterations >= 1

    def test_fixed_point_is_nash(self, game):
        runner, evaluator, spaces = game
        result = runner.run()
        assert is_nash_equilibrium(evaluator, result.equilibrium, spaces)

    def test_history_starts_at_initial_and_ends_at_equilibrium(self, game):
        runner, _evaluator, _spaces = game
        result = runner.run(initial=(2, 2, 2))
        assert result.history[0] == (2, 2, 2)
        assert result.history[-1] == result.equilibrium
        # The last two entries coincide (that is the convergence check).
        assert result.history[-2] == result.history[-1]

    def test_utilities_reported_at_equilibrium(self, game):
        runner, evaluator, _spaces = game
        result = runner.run()
        assert result.utilities == tuple(evaluator.utilities(result.equilibrium))

    def test_model_evaluations_counted(self, game):
        runner, _evaluator, _spaces = game
        result = runner.run()
        assert result.model_evaluations > 0

    def test_bad_initial_length_rejected(self, game):
        runner, _evaluator, _spaces = game
        with pytest.raises(GameError):
            runner.run(initial=(1, 2))


class TestCycleDetection:
    def test_cycles_are_detected_not_looped(self):
        from repro.core.small_cloud import FederationScenario, SmallCloud
        from tests.perf_stub_for_cycles import CyclingModel

        scenario = FederationScenario((
            SmallCloud(name="a", vms=1, arrival_rate=0.9),
            SmallCloud(name="b", vms=1, arrival_rate=0.9),
        ))
        evaluator = UtilityEvaluator(scenario, CyclingModel(), gamma=0.0)
        spaces = [[0, 1], [0, 1]]
        runner = RepeatedGame(BestResponder(evaluator, spaces), max_rounds=50)
        result = runner.run(initial=(0, 1))
        assert result.cycled or result.converged
        if result.cycled:
            assert not result.converged
            assert result.iterations < 50
