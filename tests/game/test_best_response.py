"""Tests for best-response computation (exhaustive and Tabu)."""

import pytest

from repro.exceptions import GameError
from repro.game.best_response import BestResponder
from repro.game.strategy import full_strategy_spaces
from repro.game.tabu import TabuSearch
from repro.market.evaluator import UtilityEvaluator


@pytest.fixture
def evaluator(three_sc_scenario, stub_model):
    return UtilityEvaluator(three_sc_scenario, stub_model, gamma=0.0)


@pytest.fixture
def spaces(three_sc_scenario):
    return full_strategy_spaces(three_sc_scenario)


class TestExhaustive:
    def test_response_is_utility_maximizing(self, evaluator, spaces):
        responder = BestResponder(evaluator, spaces, method="exhaustive")
        profile = [0, 0, 0]
        best, best_utility = responder.respond(profile, 0)
        for candidate in spaces[0]:
            trial = list(profile)
            trial[0] = candidate
            assert evaluator.utility(trial, 0) <= best_utility + 1e-12

    def test_profile_not_mutated(self, evaluator, spaces):
        responder = BestResponder(evaluator, spaces)
        profile = [2, 3, 4]
        responder.respond(profile, 1)
        assert profile == [2, 3, 4]

    def test_tie_broken_toward_incumbent(self, evaluator, spaces):
        # The "hi" SC has only 0.5 idle VMs, so in the stub model every
        # sharing level >= 1 produces identical supply and identical
        # utility — a plateau.  The responder must keep the incumbent
        # decision instead of jumping along the plateau.
        responder = BestResponder(evaluator, spaces)
        plateau = [
            evaluator.utility([0, 0, s], 2) for s in (1, 3, 7)
        ]
        assert plateau[0] == pytest.approx(plateau[1]) == pytest.approx(plateau[2])
        share, _utility_value = responder.respond([0, 0, 3], 2)
        assert share == 3

    def test_bad_method_rejected(self, evaluator, spaces):
        with pytest.raises(GameError):
            BestResponder(evaluator, spaces, method="gradient")

    def test_space_count_mismatch_rejected(self, evaluator, spaces):
        with pytest.raises(GameError):
            BestResponder(evaluator, spaces[:2])


class TestTabu:
    def test_tabu_matches_exhaustive_on_small_space(self, evaluator, spaces):
        exhaustive = BestResponder(evaluator, spaces, method="exhaustive")
        tabu = BestResponder(
            evaluator,
            spaces,
            method="tabu",
            tabu=TabuSearch(distance=11, tenure=3, max_moves=60),
        )
        for profile in ([0, 0, 0], [5, 5, 5], [10, 2, 7]):
            for i in range(3):
                share_e, value_e = exhaustive.respond(profile, i)
                share_t, value_t = tabu.respond(profile, i)
                assert value_t == pytest.approx(value_e, abs=1e-9)

    def test_tabu_uses_fewer_evaluations_than_space(self, evaluator, spaces):
        responder = BestResponder(
            evaluator,
            spaces,
            method="tabu",
            tabu=TabuSearch(distance=2, tenure=3, max_moves=8),
        )
        # The objective routes through the target-indexed path, so count
        # both full-vector and single-SC model solves.
        before = evaluator.evaluations + evaluator.target_evaluations
        responder.respond([0, 0, 0], 2)
        used = evaluator.evaluations + evaluator.target_evaluations - before
        assert 0 < used < len(spaces[2])
