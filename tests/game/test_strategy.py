"""Tests for strategy-space construction."""

import pytest

from repro.core.small_cloud import FederationScenario, SmallCloud
from repro.exceptions import ConfigurationError
from repro.game.strategy import full_strategy_spaces, strategy_space


def cloud(vms=10):
    return SmallCloud(name="sc", vms=vms, arrival_rate=1.0)


class TestStrategySpace:
    def test_default_is_every_value(self):
        assert strategy_space(cloud(5)) == [0, 1, 2, 3, 4, 5]

    def test_step_coarsens(self):
        assert strategy_space(cloud(10), step=3) == [0, 3, 6, 9, 10]

    def test_upper_bound_always_included(self):
        space = strategy_space(cloud(10), step=4)
        assert space[-1] == 10

    def test_zero_always_included(self):
        assert 0 in strategy_space(cloud(7), step=2)

    def test_max_share_caps(self):
        assert strategy_space(cloud(10), max_share=4) == [0, 1, 2, 3, 4]

    def test_max_share_above_vms_rejected(self):
        with pytest.raises(ConfigurationError):
            strategy_space(cloud(5), max_share=6)

    def test_invalid_step_rejected(self):
        with pytest.raises(ConfigurationError):
            strategy_space(cloud(5), step=0)


class TestFullStrategySpaces:
    def test_one_space_per_cloud(self):
        scenario = FederationScenario((
            SmallCloud(name="a", vms=3, arrival_rate=1.0),
            SmallCloud(name="b", vms=5, arrival_rate=1.0),
        ))
        spaces = full_strategy_spaces(scenario)
        assert spaces == [[0, 1, 2, 3], [0, 1, 2, 3, 4, 5]]
