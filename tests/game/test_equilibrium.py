"""Tests for Nash-equilibrium verification helpers."""

import pytest

from repro.game.best_response import BestResponder
from repro.game.equilibrium import best_deviation, is_nash_equilibrium
from repro.game.repeated_game import RepeatedGame
from repro.game.strategy import full_strategy_spaces
from repro.market.evaluator import UtilityEvaluator


@pytest.fixture
def evaluator(three_sc_scenario, stub_model):
    return UtilityEvaluator(three_sc_scenario, stub_model, gamma=0.0)


@pytest.fixture
def spaces(three_sc_scenario):
    return full_strategy_spaces(three_sc_scenario)


class TestIsNash:
    def test_game_equilibrium_verifies(self, evaluator, spaces):
        runner = RepeatedGame(BestResponder(evaluator, spaces))
        result = runner.run()
        assert is_nash_equilibrium(evaluator, result.equilibrium, spaces)

    def test_non_equilibrium_detected(self, evaluator, spaces):
        # The all-zero profile is not an equilibrium here: the low-load SC
        # profits by lending to the overloaded ones.
        equilibrium = RepeatedGame(BestResponder(evaluator, spaces)).run().equilibrium
        if equilibrium != (0, 0, 0):
            assert not is_nash_equilibrium(evaluator, (0, 0, 0), spaces)

    def test_profile_not_mutated(self, evaluator, spaces):
        profile = [1, 2, 3]
        is_nash_equilibrium(evaluator, profile, spaces)
        assert profile == [1, 2, 3]


class TestBestDeviation:
    def test_none_at_equilibrium(self, evaluator, spaces):
        equilibrium = RepeatedGame(BestResponder(evaluator, spaces)).run().equilibrium
        assert best_deviation(evaluator, equilibrium, spaces) is None

    def test_deviation_found_and_profitable(self, evaluator, spaces):
        equilibrium = RepeatedGame(BestResponder(evaluator, spaces)).run().equilibrium
        if equilibrium == (0, 0, 0):
            pytest.skip("degenerate scenario: nothing to deviate from")
        deviation = best_deviation(evaluator, (0, 0, 0), spaces)
        assert deviation is not None
        sc_index, new_share, gain = deviation
        assert gain > 0
        profile = [0, 0, 0]
        before = evaluator.utility(profile, sc_index)
        profile[sc_index] = new_share
        after = evaluator.utility(profile, sc_index)
        assert after - before == pytest.approx(gain)
