"""Tests for the Tabu-search best-response heuristic."""

import pytest

from repro.exceptions import GameError
from repro.game.tabu import TabuSearch


class TestTabuSearch:
    def test_finds_global_optimum_of_unimodal(self):
        search = TabuSearch(distance=2, tenure=3, max_moves=50)
        best, value, _ = search.search(range(0, 21), lambda x: -((x - 13) ** 2))
        assert best == 13
        assert value == 0

    def test_escapes_local_optimum_with_enough_distance(self):
        # Two peaks: local at 2 (height 5), global at 8 (height 9),
        # separated by a valley.
        landscape = {0: 0, 1: 3, 2: 5, 3: 2, 4: 0, 5: 1, 6: 4, 7: 7, 8: 9, 9: 6, 10: 2}
        search = TabuSearch(distance=3, tenure=4, max_moves=60)
        best, value, _ = search.search(sorted(landscape), landscape.__getitem__, start=2)
        assert best == 8
        assert value == 9

    def test_small_distance_may_stay_local(self):
        landscape = {0: 0, 1: 5, 2: 0, 3: 0, 4: 0, 5: 0, 6: 0, 7: 0, 8: 9}
        search = TabuSearch(distance=1, tenure=2, max_moves=4)
        best, _value, _ = search.search(sorted(landscape), landscape.__getitem__, start=1)
        # With radius 1 and a tiny move budget the far peak is unreachable.
        assert best == 1

    def test_start_snaps_to_nearest_candidate(self):
        search = TabuSearch()
        best, _value, _ = search.search([0, 10, 20], lambda x: -x, start=12)
        assert best == 0  # searched from 10, slid down to 0

    def test_caches_objective_evaluations(self):
        calls = []

        def objective(x):
            calls.append(x)
            return -abs(x - 3)

        search = TabuSearch(distance=2, tenure=3, max_moves=30)
        search.search(range(8), objective)
        assert len(calls) == len(set(calls))  # never evaluated twice

    def test_evaluation_count_reported(self):
        search = TabuSearch(distance=2, tenure=3, max_moves=30)
        _best, _value, evaluations = search.search(range(10), lambda x: float(x))
        assert 1 <= evaluations <= 10

    def test_empty_candidates_rejected(self):
        with pytest.raises(GameError):
            TabuSearch().search([], lambda x: 0.0)

    def test_single_candidate(self):
        best, value, _ = TabuSearch().search([4], lambda x: 2.0)
        assert best == 4
        assert value == 2.0

    def test_exhaustive_when_space_small(self):
        # With distance >= space size, tabu search degenerates to
        # exhaustive search and must match it.
        space = range(6)
        objective = lambda x: [3, 1, 4, 1, 5, 9][x]  # noqa: E731
        search = TabuSearch(distance=6, tenure=2, max_moves=40)
        best, value, _ = search.search(space, objective)
        assert best == 5
        assert value == 9
