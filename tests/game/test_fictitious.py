"""Tests for the fictitious-play dynamic."""

import pytest

from repro.game.best_response import BestResponder
from repro.game.equilibrium import is_nash_equilibrium
from repro.game.fictitious import FictitiousPlay
from repro.game.repeated_game import RepeatedGame
from repro.game.strategy import full_strategy_spaces
from repro.market.evaluator import UtilityEvaluator


@pytest.fixture
def components(three_sc_scenario, stub_model):
    evaluator = UtilityEvaluator(three_sc_scenario, stub_model, gamma=0.0)
    spaces = full_strategy_spaces(three_sc_scenario)
    return evaluator, BestResponder(evaluator, spaces), spaces


class TestFictitiousPlay:
    def test_converges(self, components):
        _evaluator, responder, _spaces = components
        result = FictitiousPlay(responder).run()
        assert result.converged

    def test_settles_on_nash(self, components):
        evaluator, responder, spaces = components
        result = FictitiousPlay(responder).run()
        assert is_nash_equilibrium(evaluator, result.equilibrium, spaces)

    def test_agrees_with_best_response_dynamics(self, components):
        _evaluator, responder, _spaces = components
        fp = FictitiousPlay(responder).run()
        br = RepeatedGame(responder).run()
        # Both dynamics settle on pure equilibria; with this scenario's
        # single attractor they coincide.
        assert fp.equilibrium == br.equilibrium

    def test_history_recorded(self, components):
        _evaluator, responder, _spaces = components
        result = FictitiousPlay(responder).run(initial=(1, 1, 1))
        assert result.history[0] == (1, 1, 1)
        assert len(result.history) >= 2

    def test_bad_initial_rejected(self, components):
        from repro.exceptions import GameError

        _evaluator, responder, _spaces = components
        with pytest.raises(GameError):
            FictitiousPlay(responder).run(initial=(1,))
