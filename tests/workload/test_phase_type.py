"""Tests for two-moment phase-type fitting (the Sect. VII extension)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as hyp

from repro.exceptions import ConfigurationError
from repro.workload.phase_type import fit_from_samples, fit_two_moment
from repro.workload.service import (
    ErlangService,
    ExponentialService,
    HyperExponentialService,
)


class TestFitTwoMoment:
    def test_scv_one_gives_exponential(self):
        dist = fit_two_moment(mean=2.0, scv=1.0)
        assert isinstance(dist, ExponentialService)
        assert dist.mean() == pytest.approx(2.0)

    def test_low_scv_gives_erlang(self):
        dist = fit_two_moment(mean=1.0, scv=0.25)
        assert isinstance(dist, ErlangService)
        assert dist.stages == 4
        assert dist.mean() == pytest.approx(1.0)
        assert dist.scv() == pytest.approx(0.25)

    def test_high_scv_gives_h2_with_exact_moments(self):
        target_mean, target_scv = 3.0, 4.0
        dist = fit_two_moment(target_mean, target_scv)
        assert isinstance(dist, HyperExponentialService)
        assert dist.mean() == pytest.approx(target_mean, rel=1e-9)
        assert dist.scv() == pytest.approx(target_scv, rel=1e-9)

    def test_non_reciprocal_scv_uses_ceiling_stage_count(self):
        dist = fit_two_moment(mean=1.0, scv=0.3)
        assert isinstance(dist, ErlangService)
        assert dist.stages == 4  # ceil(1 / 0.3)
        assert dist.mean() == pytest.approx(1.0)

    @given(
        mean=hyp.floats(min_value=0.1, max_value=50.0),
        scv=hyp.floats(min_value=1.0, max_value=25.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_high_variability_fits_exactly(self, mean, scv):
        dist = fit_two_moment(mean, scv)
        assert dist.mean() == pytest.approx(mean, rel=1e-9)
        empirical_scv = dist.second_moment() / dist.mean() ** 2 - 1.0
        assert empirical_scv == pytest.approx(scv, rel=1e-6)

    @given(
        mean=hyp.floats(min_value=0.1, max_value=50.0),
        scv=hyp.floats(min_value=0.02, max_value=0.99),
    )
    @settings(max_examples=60, deadline=None)
    def test_low_variability_mean_exact_scv_close(self, mean, scv):
        dist = fit_two_moment(mean, scv)
        assert dist.mean() == pytest.approx(mean, rel=1e-9)
        # The integer stage count bounds achievable SCV from below.
        assert dist.scv() <= scv + 1e-9

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            fit_two_moment(0.0, 1.0)
        with pytest.raises(ConfigurationError):
            fit_two_moment(1.0, 0.0)


class TestFitFromSamples:
    def test_recovers_exponential_trace(self):
        rng = np.random.default_rng(0)
        samples = rng.exponential(2.0, size=50_000)
        dist = fit_from_samples(samples)
        assert dist.mean() == pytest.approx(2.0, rel=0.05)

    def test_recovers_bursty_trace(self):
        rng = np.random.default_rng(1)
        source = HyperExponentialService([0.8, 0.2], [4.0, 0.25])
        samples = [source.sample(rng) for _ in range(50_000)]
        dist = fit_from_samples(samples)
        assert isinstance(dist, HyperExponentialService)
        assert dist.mean() == pytest.approx(source.mean(), rel=0.1)

    def test_too_few_samples_rejected(self):
        with pytest.raises(ConfigurationError):
            fit_from_samples([1.0])

    def test_non_positive_samples_rejected(self):
        with pytest.raises(ConfigurationError):
            fit_from_samples([1.0, -2.0, 3.0])
