"""Tests for arrival processes."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.workload.arrivals import MMPPProcess, PoissonProcess


def rng(seed=0):
    return np.random.default_rng(seed)


class TestPoissonProcess:
    def test_mean_interarrival_matches_rate(self):
        process = PoissonProcess(rate=4.0, rng=rng())
        samples = [process.next_interarrival() for _ in range(20_000)]
        assert np.mean(samples) == pytest.approx(0.25, rel=0.05)

    def test_exponential_memoryless_cv(self):
        process = PoissonProcess(rate=2.0, rng=rng(1))
        samples = np.array([process.next_interarrival() for _ in range(20_000)])
        cv2 = samples.var() / samples.mean() ** 2
        assert cv2 == pytest.approx(1.0, abs=0.1)

    def test_mean_rate(self):
        assert PoissonProcess(3.0, rng()).mean_rate() == 3.0

    def test_invalid_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            PoissonProcess(0.0, rng())


class TestMMPPProcess:
    def two_phase(self, seed=0, rates=(1.0, 10.0), switch=1.0):
        generator = [[-switch, switch], [switch, -switch]]
        return MMPPProcess(rates, generator, rng(seed))

    def test_long_run_rate_matches_stationary_mix(self):
        process = self.two_phase(seed=2)
        expected = process.mean_rate()
        n = 30_000
        total_time = sum(process.next_interarrival() for _ in range(n))
        assert n / total_time == pytest.approx(expected, rel=0.05)

    def test_stationary_phases_uniform_for_symmetric_generator(self):
        process = self.two_phase()
        np.testing.assert_allclose(process.stationary_phases(), [0.5, 0.5], atol=1e-10)

    def test_degenerate_single_phase_is_poisson(self):
        process = MMPPProcess([5.0], [[0.0]], rng(3))
        samples = [process.next_interarrival() for _ in range(10_000)]
        assert np.mean(samples) == pytest.approx(0.2, rel=0.05)

    def test_burstier_than_poisson(self):
        # Slow switching between very different rates -> CV^2 > 1.
        process = MMPPProcess(
            [0.5, 20.0], [[-0.05, 0.05], [0.05, -0.05]], rng(4)
        )
        samples = np.array([process.next_interarrival() for _ in range(30_000)])
        cv2 = samples.var() / samples.mean() ** 2
        assert cv2 > 1.5

    def test_generator_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            MMPPProcess([1.0, 2.0], [[-1.0, 1.0]], rng())

    def test_bad_row_sums_rejected(self):
        with pytest.raises(ConfigurationError):
            MMPPProcess([1.0, 2.0], [[-1.0, 2.0], [1.0, -1.0]], rng())

    def test_all_zero_rates_rejected(self):
        with pytest.raises(ConfigurationError):
            MMPPProcess([0.0, 0.0], [[-1.0, 1.0], [1.0, -1.0]], rng())

    def test_negative_off_diagonal_rejected(self):
        with pytest.raises(ConfigurationError):
            MMPPProcess([1.0, 1.0], [[1.0, -1.0], [1.0, -1.0]], rng())
