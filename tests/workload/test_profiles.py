"""Declarative demand profiles: validation, moments, round-trips."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.workload.profiles import ArrivalSpec, DemandProfile, ServiceSpec


class TestArrivalSpec:
    def test_poisson_default_round_trip(self):
        spec = ArrivalSpec()
        assert ArrivalSpec.from_dict(spec.to_dict()) == spec
        assert spec.mean_rate(4.0) == 4.0

    def test_mmpp_stationary_mean(self):
        spec = ArrivalSpec(
            kind="mmpp", rates=(2.0, 6.0), transitions=((-0.01, 0.01), (0.01, -0.01))
        )
        # Symmetric switching -> stationary (0.5, 0.5) -> mean 4.
        assert spec.stationary_phases() == pytest.approx([0.5, 0.5])
        assert spec.mean_rate(999.0) == pytest.approx(4.0)

    def test_mmpp_asymmetric_stationary(self):
        spec = ArrivalSpec(
            kind="mmpp", rates=(1.0, 9.0), transitions=((-0.01, 0.01), (0.09, -0.09))
        )
        pi = spec.stationary_phases()
        assert pi == pytest.approx([0.9, 0.1])
        assert spec.mean_rate(0.0) == pytest.approx(0.9 * 1.0 + 0.1 * 9.0)

    def test_mmpp_round_trip(self):
        spec = ArrivalSpec(
            kind="mmpp", rates=(2.0, 6.0), transitions=((-0.01, 0.01), (0.01, -0.01))
        )
        assert ArrivalSpec.from_dict(spec.to_dict()) == spec

    def test_build_returns_live_processes(self):
        rng = np.random.default_rng(0)
        from repro.workload.arrivals import MMPPProcess, PoissonProcess

        assert isinstance(ArrivalSpec().build(3.0, rng), PoissonProcess)
        mmpp = ArrivalSpec(
            kind="mmpp", rates=(2.0, 6.0), transitions=((-0.01, 0.01), (0.01, -0.01))
        )
        assert isinstance(mmpp.build(3.0, rng), MMPPProcess)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"kind": "weibull"},
            {"kind": "poisson", "rates": (1.0, 2.0)},
            {"kind": "mmpp", "rates": (2.0,), "transitions": ((-0.0,),)},
            {"kind": "mmpp", "rates": (-1.0, 2.0), "transitions": ((-0.01, 0.01), (0.01, -0.01))},
            {"kind": "mmpp", "rates": (1.0, 2.0), "transitions": ((-0.01, 0.02), (0.01, -0.01))},
            {"kind": "mmpp", "rates": (1.0, 2.0), "transitions": ((0.0, 0.0), (0.01, -0.01))},
            {"kind": "mmpp", "rates": (1.0, 2.0), "transitions": ((-0.01, 0.01),)},
        ],
    )
    def test_rejections(self, kwargs):
        with pytest.raises(ConfigurationError):
            ArrivalSpec(**kwargs)

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError):
            ArrivalSpec.from_dict({"kind": "poisson", "burst": 3})


class TestServiceSpec:
    def test_exponential_mean(self):
        assert ServiceSpec().mean(4.0) == 0.25

    def test_erlang_keeps_mean(self):
        spec = ServiceSpec(kind="erlang", stages=3)
        assert spec.mean(2.0) == 0.5
        dist = spec.build(2.0)
        assert dist.mean() == pytest.approx(0.5)

    def test_hyperexponential_mean(self):
        spec = ServiceSpec(
            kind="hyperexponential", probabilities=(0.25, 0.75), rates=(1.0, 3.0)
        )
        assert spec.mean(999.0) == pytest.approx(0.25 / 1.0 + 0.75 / 3.0)

    def test_phase_fit_hits_target_scv(self):
        spec = ServiceSpec(kind="phase-fit", scv=5.0)
        dist = spec.build(2.0)
        assert dist.mean() == pytest.approx(0.5)
        assert dist.scv() == pytest.approx(5.0)

    @pytest.mark.parametrize(
        "kind",
        ["exponential", "erlang", "hyperexponential", "phase-fit"],
    )
    def test_round_trip(self, kind):
        spec = {
            "exponential": ServiceSpec(),
            "erlang": ServiceSpec(kind="erlang", stages=4),
            "hyperexponential": ServiceSpec(
                kind="hyperexponential", probabilities=(0.5, 0.5), rates=(1.0, 2.0)
            ),
            "phase-fit": ServiceSpec(kind="phase-fit", scv=3.0),
        }[kind]
        assert ServiceSpec.from_dict(spec.to_dict()) == spec

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"kind": "pareto"},
            {"kind": "exponential", "stages": 2},
            {"kind": "erlang"},
            {"kind": "erlang", "stages": -1},
            {"kind": "hyperexponential", "probabilities": (0.5,), "rates": (1.0, 2.0)},
            {"kind": "hyperexponential", "probabilities": (0.6, 0.6), "rates": (1.0, 2.0)},
            {"kind": "hyperexponential", "probabilities": (0.5, 0.5), "rates": (1.0, -2.0)},
            {"kind": "phase-fit"},
            {"kind": "phase-fit", "scv": -1.0},
        ],
    )
    def test_rejections(self, kwargs):
        with pytest.raises(ConfigurationError):
            ServiceSpec(**kwargs)

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError):
            ServiceSpec.from_dict({"kind": "erlang", "shape": 2})


class TestDemandProfile:
    def test_default_round_trip(self):
        profile = DemandProfile()
        assert DemandProfile.from_dict(profile.to_dict()) == profile
        assert DemandProfile.from_dict({}) == profile

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError):
            DemandProfile.from_dict({"arrival": {"kind": "poisson"}, "queue": {}})

    def test_type_check(self):
        with pytest.raises(ConfigurationError):
            DemandProfile(arrival="poisson")
