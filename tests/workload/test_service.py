"""Tests for service-time distributions and their moments."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as hyp

from repro.exceptions import ConfigurationError
from repro.workload.service import (
    ErlangService,
    ExponentialService,
    HyperExponentialService,
    ServiceDistribution,
)


def rng(seed=0):
    return np.random.default_rng(seed)


def empirical_moments(dist, n=40_000, seed=0):
    generator = rng(seed)
    samples = np.array([dist.sample(generator) for _ in range(n)])
    return samples.mean(), (samples**2).mean()


class TestExponential:
    def test_moments(self):
        dist = ExponentialService(rate=2.0)
        assert dist.mean() == 0.5
        assert dist.second_moment() == 0.5
        assert dist.scv() == 1.0

    def test_samples_match_moments(self):
        dist = ExponentialService(rate=2.0)
        mean, second = empirical_moments(dist)
        assert mean == pytest.approx(dist.mean(), rel=0.05)
        assert second == pytest.approx(dist.second_moment(), rel=0.1)

    def test_protocol_conformance(self):
        assert isinstance(ExponentialService(1.0), ServiceDistribution)

    def test_invalid_rate(self):
        with pytest.raises(ConfigurationError):
            ExponentialService(0.0)


class TestErlang:
    def test_moments(self):
        dist = ErlangService(stages=4, stage_rate=2.0)
        assert dist.mean() == 2.0
        assert dist.scv() == 0.25
        assert dist.second_moment() == pytest.approx(4.0 + 1.0)

    def test_samples_match_moments(self):
        dist = ErlangService(stages=3, stage_rate=3.0)
        mean, second = empirical_moments(dist, seed=1)
        assert mean == pytest.approx(dist.mean(), rel=0.05)
        assert second == pytest.approx(dist.second_moment(), rel=0.1)

    def test_low_variability(self):
        assert ErlangService(stages=10, stage_rate=10.0).scv() < 1.0

    def test_invalid_stages(self):
        with pytest.raises(ConfigurationError):
            ErlangService(stages=0, stage_rate=1.0)


class TestHyperExponential:
    def test_moments(self):
        dist = HyperExponentialService([0.3, 0.7], [1.0, 4.0])
        expected_mean = 0.3 / 1.0 + 0.7 / 4.0
        expected_second = 0.3 * 2.0 / 1.0 + 0.7 * 2.0 / 16.0
        assert dist.mean() == pytest.approx(expected_mean)
        assert dist.second_moment() == pytest.approx(expected_second)

    def test_high_variability(self):
        dist = HyperExponentialService([0.9, 0.1], [10.0, 0.1])
        assert dist.scv() > 1.0

    def test_samples_match_moments(self):
        dist = HyperExponentialService([0.5, 0.5], [1.0, 5.0])
        mean, second = empirical_moments(dist, seed=2)
        assert mean == pytest.approx(dist.mean(), rel=0.05)
        assert second == pytest.approx(dist.second_moment(), rel=0.15)

    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(ConfigurationError):
            HyperExponentialService([0.5, 0.4], [1.0, 2.0])

    def test_mismatched_lengths(self):
        with pytest.raises(ConfigurationError):
            HyperExponentialService([1.0], [1.0, 2.0])

    def test_non_positive_rates_rejected(self):
        with pytest.raises(ConfigurationError):
            HyperExponentialService([0.5, 0.5], [1.0, 0.0])

    @given(
        p=hyp.floats(min_value=0.05, max_value=0.95),
        r1=hyp.floats(min_value=0.1, max_value=10.0),
        r2=hyp.floats(min_value=0.1, max_value=10.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_scv_at_least_one_minus_epsilon(self, p, r1, r2):
        # Hyperexponential mixtures are always at least as variable as
        # an exponential.
        dist = HyperExponentialService([p, 1.0 - p], [r1, r2])
        assert dist.scv() >= 1.0 - 1e-9
