"""End-to-end market integration with the real (pooled) performance model.

Verifies the paper's headline market behaviours on a real model: the
federation forms at sane prices, equilibria verify as Nash, and the
performance cache makes price sweeps cheap.
"""

import pytest

from repro.core.framework import SCShare
from repro.core.small_cloud import FederationScenario, SmallCloud
from repro.game.equilibrium import is_nash_equilibrium
from repro.perf.pooled import PooledModel

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def base_scenario():
    return FederationScenario((
        SmallCloud(name="lo", vms=5, arrival_rate=2.9),
        SmallCloud(name="mid", vms=5, arrival_rate=3.7),
        SmallCloud(name="hi", vms=5, arrival_rate=4.2),
    ))


@pytest.fixture(scope="module")
def outcome(base_scenario):
    runner = SCShare(
        base_scenario.with_price_ratio(0.5), model=PooledModel(), gamma=0.0
    )
    return runner, runner.run(alpha=0.0, optimum_method="ascent")


class TestEquilibrium:
    def test_game_converges(self, outcome):
        _runner, result = outcome
        assert result.game.converged

    def test_equilibrium_is_nash(self, outcome):
        runner, result = outcome
        assert is_nash_equilibrium(
            runner.evaluator, result.equilibrium, runner.strategy_spaces
        )

    def test_federation_forms_at_half_price(self, outcome):
        _runner, result = outcome
        assert any(s > 0 for s in result.equilibrium)

    def test_participants_do_not_lose(self, outcome):
        # At equilibrium, sharing SCs weakly prefer their position to not
        # sharing (utility >= utility of S_i = 0, which is 0).
        _runner, result = outcome
        for detail in result.details:
            if detail.shared_vms > 0:
                assert detail.utility >= 0.0


class TestPriceSweepCache:
    def test_sweep_reuses_performance_solutions(self, base_scenario):
        cache = {}
        evaluations = []
        for ratio in (0.3, 0.6, 0.9):
            runner = SCShare(
                base_scenario.with_price_ratio(ratio),
                model=PooledModel(),
                gamma=0.0,
                strategy_step=2,
                params_cache=cache,
            )
            runner.run(alpha=0.0, optimum_method="ascent")
            evaluations.append(runner.evaluator.evaluations)
        # Later price points hit mostly cache: strictly fewer evaluations.
        assert evaluations[2] < evaluations[0]

    def test_zero_price_ratio_boundary(self, base_scenario):
        # A free federation (C^G = 0) must still run end to end.
        runner = SCShare(
            base_scenario.with_price_ratio(0.0),
            model=PooledModel(),
            gamma=0.0,
            strategy_step=2,
        )
        result = runner.run(alpha=0.0, optimum_method="ascent")
        assert result.game.converged
