"""Integration: the market game driven by the paper-faithful approximate model.

A deliberately tiny federation (the hierarchical model is expensive)
exercises the full Fig. 2 loop with the Sect. III-C model in the inner
position — the exact configuration the paper used for its market results.
"""

import pytest

from repro.core.framework import SCShare
from repro.core.small_cloud import FederationScenario, SmallCloud
from repro.game.equilibrium import is_nash_equilibrium
from repro.perf.approximate import ApproximateModel


@pytest.fixture(scope="module")
def runner():
    scenario = FederationScenario((
        SmallCloud(name="lo", vms=3, arrival_rate=1.6, federation_price=0.5),
        SmallCloud(name="hi", vms=3, arrival_rate=2.6, federation_price=0.5),
    ))
    return SCShare(scenario, model=ApproximateModel(), gamma=0.0)


@pytest.fixture(scope="module")
def outcome(runner):
    return runner.run(alpha=0.0, optimum_method="ascent")


class TestApproximateModelGame:
    def test_converges(self, outcome):
        assert outcome.game.converged

    def test_equilibrium_is_nash_under_the_model(self, runner, outcome):
        assert is_nash_equilibrium(
            runner.evaluator, outcome.equilibrium, runner.strategy_spaces
        )

    def test_federation_forms(self, outcome):
        # At half price with an overloaded partner, sharing must happen.
        assert any(s > 0 for s in outcome.equilibrium)

    def test_cost_reductions_consistent(self, outcome):
        for detail in outcome.details:
            assert detail.utility >= 0.0
            if detail.utility > 0.0:
                assert detail.cost_reduction > 0.0

    def test_efficiency_bounded(self, outcome):
        assert 0.0 <= outcome.efficiency <= 1.0
