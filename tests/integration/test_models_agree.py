"""Cross-model integration: all four estimators agree on small federations.

This is the repository's anchor test: the exact chain and the simulator
are independent implementations of the same stochastic process, so their
agreement validates both; the approximations must then land within their
documented error bands.
"""

import pytest

from repro.core.small_cloud import FederationScenario, SmallCloud
from repro.perf.approximate import ApproximateModel
from repro.perf.detailed import DetailedModel
from repro.perf.pooled import PooledModel
from repro.perf.simulation import SimulationModel

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def scenario():
    return FederationScenario((
        SmallCloud(name="a", vms=5, arrival_rate=3.5, shared_vms=2),
        SmallCloud(name="b", vms=5, arrival_rate=4.2, shared_vms=2),
    ))


@pytest.fixture(scope="module")
def exact(scenario):
    return DetailedModel().evaluate(scenario)


@pytest.fixture(scope="module")
def simulated(scenario):
    return SimulationModel(horizon=150_000.0, warmup=5_000.0, seed=17).evaluate(
        scenario
    )


class TestExactVsSimulation:
    """The two ground truths must agree tightly."""

    def test_lent_and_borrowed(self, exact, simulated):
        for e, s in zip(exact, simulated):
            assert s.lent_mean == pytest.approx(e.lent_mean, rel=0.05)
            assert s.borrowed_mean == pytest.approx(e.borrowed_mean, rel=0.05)

    def test_forward_rate(self, exact, simulated):
        for e, s in zip(exact, simulated):
            assert s.forward_rate == pytest.approx(e.forward_rate, rel=0.10, abs=0.01)

    def test_utilization(self, exact, simulated):
        for e, s in zip(exact, simulated):
            assert s.utilization == pytest.approx(e.utilization, abs=0.01)


class TestApproximateVsExact:
    """The hierarchical model must hit the paper's error bands."""

    def test_net_borrowed_within_band(self, scenario, exact):
        # The paper reports I underestimated / O overestimated at higher
        # utilization; at this deliberately tiny scale (N=5) the absolute
        # values are small, so the band is absolute rather than relative.
        approx = ApproximateModel().evaluate(scenario)
        for a, e in zip(approx, exact):
            assert a.net_borrowed == pytest.approx(e.net_borrowed, abs=0.25)

    def test_bias_direction_matches_paper(self, scenario, exact):
        # Sect. V-A: the approximation underestimates Ibar and
        # overestimates Obar as utilization grows.
        approx = ApproximateModel().evaluate(scenario)
        for a, e in zip(approx, exact):
            assert a.lent_mean <= e.lent_mean + 0.05
            assert a.borrowed_mean >= e.borrowed_mean - 0.05

    def test_utilization_close(self, scenario, exact):
        approx = ApproximateModel().evaluate(scenario)
        for a, e in zip(approx, exact):
            assert a.utilization == pytest.approx(e.utilization, abs=0.05)


class TestPooledVsExact:
    """The fast model is rougher; it must still track lent/borrowed."""

    def test_lent_borrowed_ballpark(self, scenario, exact):
        pooled = PooledModel().evaluate(scenario)
        for p, e in zip(pooled, exact):
            assert p.lent_mean == pytest.approx(
                e.lent_mean, abs=max(0.5 * e.lent_mean, 0.2)
            )
            assert p.borrowed_mean == pytest.approx(
                e.borrowed_mean, abs=max(0.5 * e.borrowed_mean, 0.2)
            )

    def test_utilization_ballpark(self, scenario, exact):
        pooled = PooledModel().evaluate(scenario)
        for p, e in zip(pooled, exact):
            assert p.utilization == pytest.approx(e.utilization, abs=0.08)
