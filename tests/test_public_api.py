"""Tests for the top-level public API surface."""

import pytest

import repro


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_lazy_exports_resolve(self):
        for name in repro.__all__:
            if name == "__version__":
                continue
            assert getattr(repro, name) is not None

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            repro.definitely_not_a_thing

    def test_quickstart_types_importable_directly(self):
        from repro import FederationScenario, SCShare, SmallCloud

        scenario = FederationScenario((
            SmallCloud(name="x", vms=4, arrival_rate=2.0),
        ))
        assert SCShare(scenario).scenario is scenario

    def test_lazy_model_exports_are_the_real_classes(self):
        from repro.perf.approximate import ApproximateModel

        assert repro.ApproximateModel is ApproximateModel

    def test_core_lazy_exports(self):
        from repro.core import SCShare as core_scshare
        from repro.core.framework import SCShare

        assert core_scshare is SCShare

    def test_core_unknown_attribute(self):
        import repro.core

        with pytest.raises(AttributeError):
            repro.core.nope
