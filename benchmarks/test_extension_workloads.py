"""Extension benchmark: federation value under non-Poisson workloads.

Quantifies the Sect. VII extensions end to end: the forwarding saved by a
fixed sharing vector, as arrival burstiness (MMPP) and service
variability (phase-type SCV) grow.  The asserted shape: burstier demand
forwards more in isolation, and the federation's absolute saving does not
vanish — sharing keeps paying off beyond the exponential base model.
"""

import numpy as np

from repro.bench.tables import render_table
from repro.core.small_cloud import FederationScenario, SmallCloud
from repro.sim.federation import FederationSimulator
from repro.workload.arrivals import MMPPProcess
from repro.workload.phase_type import fit_two_moment

RATES = (7.0, 8.0)


def _mmpp(mean_rate, factor, seed):
    low = mean_rate / factor
    high = mean_rate * (2.0 - 1.0 / factor)
    return MMPPProcess(
        rates=[low, high],
        generator=[[-0.05, 0.05], [0.05, -0.05]],
        rng=np.random.default_rng(seed),
    )


def _forwarding(sharing, factor=1.0, scv=1.0, seed=3, horizon=20_000.0):
    scenario = FederationScenario((
        SmallCloud(name="a", vms=10, arrival_rate=RATES[0], shared_vms=sharing[0]),
        SmallCloud(name="b", vms=10, arrival_rate=RATES[1], shared_vms=sharing[1]),
    ))
    arrivals = None
    if factor != 1.0:
        arrivals = [_mmpp(RATES[0], factor, 1), _mmpp(RATES[1], factor, 2)]
    service = None
    if scv != 1.0:
        dist = fit_two_moment(mean=1.0, scv=scv)
        service = [dist, dist]
    simulator = FederationSimulator(
        scenario, seed=seed, arrival_processes=arrivals, service_distributions=service
    )
    metrics = simulator.run(horizon=horizon, warmup=horizon * 0.05)
    return sum(m.forward_rate for m in metrics)


def run_sweep():
    rows = []
    for factor in (1.0, 2.0, 4.0):
        alone = _forwarding((0, 0), factor=factor)
        together = _forwarding((5, 5), factor=factor)
        rows.append(("burst", factor, alone, together, alone - together))
    for scv in (0.25, 1.0, 4.0):
        alone = _forwarding((0, 0), scv=scv)
        together = _forwarding((5, 5), scv=scv)
        rows.append(("scv", scv, alone, together, alone - together))
    return rows


def test_extension_workload_sweep(benchmark, save_table):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    save_table(
        "extension_workloads",
        render_table(
            ["knob", "value", "isolated fwd", "federated fwd", "saved"],
            rows,
            title="Extension — federation value under bursty workloads",
        ),
    )
    burst_rows = [r for r in rows if r[0] == "burst"]
    # Isolation forwarding grows with burstiness.
    isolated = [r[2] for r in burst_rows]
    assert isolated == sorted(isolated)
    # The federation saves forwarding at every burstiness level.
    assert all(r[4] > 0.0 for r in burst_rows)
    # Service variability: higher SCV forwards more in isolation too.
    scv_rows = [r for r in rows if r[0] == "scv"]
    assert scv_rows[-1][2] > scv_rows[0][2]
