"""Shared benchmark configuration.

Every benchmark writes its rendered table to ``benchmarks/results/`` so
the regenerated figures survive the run (pytest captures stdout).  Set
``REPRO_BENCH_FULL=1`` to run the paper-scale grids instead of the
default laptop-sized ones.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def full_scale() -> bool:
    """Whether the paper-scale grids were requested."""
    return os.environ.get("REPRO_BENCH_FULL", "") == "1"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_table(results_dir):
    """Return a writer that stores a rendered table under results/."""

    def write(name: str, table: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(table + "\n")

    return write
