"""Ablation: the accuracy/cost trade-off across all four performance models.

DESIGN.md calls out the model hierarchy (exact -> approximate -> pooled)
as the central design choice; this bench quantifies what each step buys.
On a common 2-SC scenario it measures wall-clock time and error against
the exact chain for every estimator.
"""

import time

from repro.bench.tables import render_table
from repro.core.small_cloud import FederationScenario, SmallCloud
from repro.perf.approximate import ApproximateModel
from repro.perf.detailed import DetailedModel
from repro.perf.pooled import PooledModel
from repro.perf.simulation import SimulationModel


def scenario():
    return FederationScenario((
        SmallCloud(name="a", vms=10, arrival_rate=7.0, shared_vms=5),
        SmallCloud(name="b", vms=10, arrival_rate=8.0, shared_vms=3),
    ))


def run_ablation():
    models = {
        "detailed": DetailedModel(),
        "approximate": ApproximateModel(),
        "pooled": PooledModel(),
        "simulation": SimulationModel(horizon=30_000.0, warmup=1_000.0, seed=7),
    }
    timings = {}
    results = {}
    for name, model in models.items():
        start = time.perf_counter()
        results[name] = model.evaluate(scenario())
        timings[name] = time.perf_counter() - start
    return timings, results


def test_model_ablation(benchmark, save_table):
    timings, results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    exact = results["detailed"]
    rows = []
    for name in ("detailed", "approximate", "pooled", "simulation"):
        for i, p in enumerate(results[name]):
            error = abs(p.net_borrowed - exact[i].net_borrowed)
            rows.append((name, f"sc{i}", timings[name], p.lent_mean, p.borrowed_mean, error))
    save_table(
        "ablation_models",
        render_table(
            ["model", "sc", "seconds", "Ibar", "Obar", "abs err(O-I)"],
            rows,
            title="Ablation — accuracy/cost across performance models",
        ),
    )
    # The hierarchy's reason to exist: each approximation level is at
    # least ~5x faster than the one above it on this scenario.
    assert timings["approximate"] < timings["detailed"]
    assert timings["pooled"] < timings["approximate"]
    # And the approximations stay within their documented bands.
    for i in range(2):
        approx_err = abs(results["approximate"][i].net_borrowed - exact[i].net_borrowed)
        assert approx_err < 0.35
        sim_err = abs(results["simulation"][i].net_borrowed - exact[i].net_borrowed)
        assert sim_err < 0.1  # simulation is unbiased, just noisy
