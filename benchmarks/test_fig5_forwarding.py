"""Fig. 5 benchmark: forwarding probability vs utilization.

Regenerates the four curves (N in {10, 100} x Q in {0.2, 0.5}) from the
analytic model, validates a subset against simulation, and asserts the
paper's qualitative claims (monotonicity in load, ordering in Q and N).
"""

from conftest import full_scale

from repro.bench import fig5


def test_fig5_model_curves(benchmark, save_table):
    """Analytic curves for all four configurations (the figure's lines)."""
    utilizations = (
        (0.5, 0.55, 0.6, 0.65, 0.7, 0.75, 0.8, 0.85, 0.9, 0.95)
        if full_scale()
        else (0.5, 0.6, 0.7, 0.8, 0.9, 0.95)
    )
    rows = benchmark.pedantic(
        fig5.run_fig5,
        kwargs={"utilizations": utilizations, "with_simulation": False},
        rounds=1,
        iterations=1,
    )
    save_table("fig5_model", fig5.render(rows))
    assert fig5.check_shape(rows) == []


def test_fig5_simulation_validation(benchmark, save_table):
    """Model vs simulation agreement (the figure's markers)."""
    horizon = 40_000.0 if full_scale() else 8_000.0
    rows = benchmark.pedantic(
        fig5.run_fig5,
        kwargs={
            "utilizations": (0.7, 0.9),
            "horizon": horizon,
            "with_simulation": True,
        },
        rounds=1,
        iterations=1,
    )
    save_table("fig5_validation", fig5.render(rows))
    for row in rows:
        # The paper's model tracks simulation closely; at these horizons
        # a 20% relative band (with an absolute floor for near-zero
        # probabilities) is comfortably met.
        assert row.relative_error < 0.2 or (
            row.simulated_forward_probability < 1e-3
            and abs(
                row.model_forward_probability - row.simulated_forward_probability
            )
            < 2e-3
        )
