"""Fig. 6a/6b benchmark: approximate vs exact on the 2-SC federation.

The fixed SC has lambda=7 and S=5; the target SC shares 1 or 9 VMs while
its load sweeps.  Ground truth is the exact detailed CTMC.  Asserts the
paper's error claims: Ibar/Obar within ~10% when the target shares one
VM, degrading but staying useful at heavy sharing, with the cost-relevant
difference Obar - Ibar tracked throughout.
"""

from conftest import full_scale

from repro.bench import fig6


def test_fig6_2sc_validation(benchmark, save_table):
    rates = (5.0, 6.0, 7.0, 8.0) if full_scale() else (5.0, 7.0)
    rows = benchmark.pedantic(
        fig6.run_fig6_2sc,
        kwargs={"target_shares": (1, 9), "target_rates": rates},
        rounds=1,
        iterations=1,
    )
    save_table("fig6_2sc", fig6.render(rows))

    for row in rows:
        if row.target_share == 1:
            # Near-exact when the target shares a single VM (paper: the
            # exact and approximate curves are "nearly the same").
            assert row.lent_error < 0.15
            assert row.borrowed_error < 0.15
        else:
            # Heavier sharing degrades the estimates but the error stays
            # bounded (paper: within 10%; allow slack for the smaller
            # interaction fan-out used here).
            assert row.lent_error < 0.45
            assert row.borrowed_error < 0.45
        assert row.net_error < 0.6


def test_fig6_2sc_bias_direction(save_table):
    """Sect. V-A: Ibar underestimated, Obar overestimated, as load grows."""
    rows = fig6.run_fig6_2sc(target_shares=(9,), target_rates=(8.0,))
    for row in rows:
        assert row.approx.lent_mean <= row.exact.lent_mean + 0.05
        assert row.approx.borrowed_mean >= row.exact.borrowed_mean - 0.05
