"""Fig. 7 benchmark: market efficiency vs the price ratio C^G/C^P.

Reproduces all four panels (load mixes x UF0/UF1) with the fast pooled
performance model (see DESIGN.md: performance caching makes the whole
sweep share one set of model solutions).  Asserts the paper's qualitative
market findings:

- a federation forms across the low/middle price range,
- UF1 federations share far fewer VMs than UF0 federations,
- equilibria verify as pure-strategy Nash points.
"""

from conftest import full_scale

from repro.bench import fig7
from repro.bench.scenarios import fig7_scenario


def _ratios():
    if full_scale():
        return None  # the paper's full (0, 1] grid
    return [0.1, 0.3, 0.5, 0.7, 0.9]


def _step():
    return 1 if full_scale() else 2


def test_fig7a_spread_loads_uf0(benchmark, save_table):
    rows = benchmark.pedantic(
        fig7.run_fig7,
        kwargs={"loads": "spread", "gamma": 0.0, "ratios": _ratios(), "strategy_step": _step()},
        rounds=1,
        iterations=1,
    )
    save_table("fig7a_spread_uf0", fig7.render(rows))
    assert fig7.check_shape(rows) == []
    # UF0 SCs are incentivized to share: mid-range prices sustain sharing.
    mid = [r for r in rows if 0.2 <= r.price_ratio <= 0.6]
    assert any(sum(r.equilibrium) >= 3 for r in mid)


def test_fig7b_spread_loads_uf1(benchmark, save_table):
    rows = benchmark.pedantic(
        fig7.run_fig7,
        kwargs={"loads": "spread", "gamma": 1.0, "ratios": _ratios(), "strategy_step": 1},
        rounds=1,
        iterations=1,
    )
    save_table("fig7b_spread_uf1", fig7.render(rows))
    # Paper: under UF1 the SCs share only ~1 VM regardless of price.
    formed = [r for r in rows if r.federation_formed]
    assert formed, "UF1 federation should form somewhere"
    for r in formed:
        assert max(r.equilibrium) <= 3


def test_fig7c_high_loads_uf0(benchmark, save_table):
    rows = benchmark.pedantic(
        fig7.run_fig7,
        kwargs={"loads": "high", "gamma": 0.0, "ratios": _ratios(), "strategy_step": _step()},
        rounds=1,
        iterations=1,
    )
    save_table("fig7c_high_uf0", fig7.render(rows))
    assert fig7.check_shape(rows) == []


def test_fig7d_medium_loads_uf1(benchmark, save_table):
    rows = benchmark.pedantic(
        fig7.run_fig7,
        kwargs={"loads": "medium", "gamma": 1.0, "ratios": _ratios(), "strategy_step": 1},
        rounds=1,
        iterations=1,
    )
    save_table("fig7d_medium_uf1", fig7.render(rows))
    # Medium loads with UF1: the federation exists at low prices but is
    # fragile at high ones (paper: breaks beyond ~0.8).
    low = [r for r in rows if r.price_ratio <= 0.5]
    assert any(r.federation_formed for r in low)


def test_fig7_equilibria_are_nash(save_table):
    """Spot-verify the reported equilibria against unilateral deviations."""
    from repro.core.framework import SCShare
    from repro.game.equilibrium import is_nash_equilibrium

    scenario = fig7_scenario("spread").with_price_ratio(0.5)
    runner = SCShare(scenario, gamma=0.0, strategy_step=2)
    outcome = runner.run(alpha=0.0, optimum_method="ascent")
    assert is_nash_equilibrium(
        runner.evaluator, outcome.equilibrium, runner.strategy_spaces
    )
