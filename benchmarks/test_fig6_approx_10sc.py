"""Fig. 6c/6d benchmark: approximate vs simulation on the 10-SC federation.

Nine fixed SCs (shares 3,3,3,2,2,2,1,1,1; loads 7,7,7,8,8,8,9,9,9) plus
the swept target.  The exact chain has billions of states (the paper's
own point), so the simulator is ground truth.  This is the expensive
validation — the default grid is one point per panel; set
``REPRO_BENCH_FULL=1`` for the paper's sweep.
"""

from conftest import full_scale

from repro.bench import fig6


def test_fig6_10sc_validation(benchmark, save_table):
    if full_scale():
        shares, rates, horizon = (1, 5), (5.0, 6.0, 7.0, 8.0), 100_000.0
    else:
        shares, rates, horizon = (1,), (7.0,), 20_000.0
    rows = benchmark.pedantic(
        fig6.run_fig6_10sc,
        kwargs={
            "target_shares": shares,
            "target_rates": rates,
            "horizon": horizon,
        },
        rounds=1,
        iterations=1,
    )
    save_table("fig6_10sc", fig6.render(rows))
    for row in rows:
        # Paper claim: within 10% below rho=0.8, within 20% below 0.9 for
        # the difference; the absolute-floored relative error used here
        # keeps near-zero denominators from exploding the metric.
        assert row.net_error < 0.6
        assert row.approx.borrowed_mean <= 18.0 + 1e-9  # pool bound
