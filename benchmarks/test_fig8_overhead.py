"""Fig. 8 benchmark: computational overhead of the models.

8a: approximate-model build+solve time as the federation grows — the
paper's claim is feasibility (tens of seconds, polynomial growth) where
the exact chain would need billions of states.
8b: game rounds to equilibrium vs federation size and Tabu distance —
the paper's claim is that iterations *shrink* as the federation grows.
"""

from conftest import full_scale

from repro.bench import fig8


def test_fig8a_model_time_growth(benchmark, save_table):
    sizes = (2, 3, 4, 6, 8, 10) if full_scale() else (2, 3, 4, 6)
    rows = benchmark.pedantic(
        fig8.run_fig8a, kwargs={"sizes": sizes}, rounds=1, iterations=1
    )
    save_table("fig8a_model_time", fig8.render_8a(rows))
    # State counts (and hence cost) grow with K through the shared pool.
    states = [r.states for r in rows]
    assert states == sorted(states)
    # Feasibility: every size solves in bounded time on a laptop.
    assert all(r.seconds < 300.0 for r in rows)


def test_fig8b_game_iterations(benchmark, save_table):
    if full_scale():
        sizes, vms = (2, 3, 4, 6, 8), 20
    else:
        sizes, vms = (2, 3, 4), 10
    rows = benchmark.pedantic(
        fig8.run_fig8b,
        kwargs={"sizes": sizes, "tabu_distances": (1, 2, 4), "vms": vms},
        rounds=1,
        iterations=1,
    )
    save_table("fig8b_game_iterations", fig8.render_8b(rows))
    assert all(r.converged for r in rows)
    # Paper's shape: bigger federations need no more rounds than the
    # 2-SC case (each individual decision matters less).
    by_distance: dict[int, list] = {}
    for r in rows:
        by_distance.setdefault(r.tabu_distance, []).append(r)
    for distance, group in by_distance.items():
        group.sort(key=lambda r: r.n_clouds)
        assert group[-1].iterations <= group[0].iterations + 2, (
            f"iterations grew with K at tabu distance {distance}"
        )
