"""Ablation: Tabu search vs exhaustive best responses.

The paper adopts Tabu search as its discrete Tâtonnement substitute; this
bench verifies that on the Fig. 7 scenario the heuristic (a) reaches the
same equilibrium welfare as exhaustive best responses and (b) spends
fewer model evaluations per round — the whole point of using it.
"""

from repro.bench.scenarios import fig7_scenario
from repro.bench.tables import render_table
from repro.core.framework import SCShare
from repro.game.tabu import TabuSearch
from repro.perf.pooled import PooledModel


def run_comparison():
    scenario = fig7_scenario("spread").with_price_ratio(0.5)
    cache: dict = {}
    outcomes = {}
    for method, tabu in (
        ("exhaustive", None),
        ("tabu_d2", TabuSearch(distance=2, tenure=4, max_moves=30)),
        ("tabu_d4", TabuSearch(distance=4, tenure=4, max_moves=30)),
    ):
        runner = SCShare(
            scenario,
            model=PooledModel(),
            gamma=0.0,
            best_response="exhaustive" if tabu is None else "tabu",
            tabu=tabu,
            params_cache=dict(cache),  # fresh copy: count evals per method
        )
        result = runner.game.run()
        welfare = runner.evaluator.welfare(result.equilibrium, 0.0)
        outcomes[method] = {
            "equilibrium": result.equilibrium,
            "welfare": welfare,
            "iterations": result.iterations,
            "evaluations": result.model_evaluations,
            "converged": result.converged,
        }
    return outcomes


def test_tabu_vs_exhaustive(benchmark, save_table):
    outcomes = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    save_table(
        "ablation_game",
        render_table(
            ["method", "equilibrium", "welfare", "rounds", "model evals"],
            [
                (
                    name,
                    str(o["equilibrium"]),
                    o["welfare"],
                    o["iterations"],
                    o["evaluations"],
                )
                for name, o in outcomes.items()
            ],
            title="Ablation — best-response search strategies",
        ),
    )
    assert all(o["converged"] for o in outcomes.values())
    exhaustive = outcomes["exhaustive"]
    for name in ("tabu_d2", "tabu_d4"):
        # Tabu may stop at a different (local) equilibrium, but it must
        # retain most of the welfare and must not cost more evaluations.
        assert outcomes[name]["welfare"] >= 0.5 * exhaustive["welfare"]
        assert outcomes[name]["evaluations"] <= exhaustive["evaluations"]
