"""Fig. 6e/6f benchmark: approximate vs simulation, 100-VM SCs.

Two 100-VM SCs each sharing 10 VMs; the other SC runs at utilization 0.8
or 0.9 while the target's load sweeps.  Ground truth: the simulator.
"""

from conftest import full_scale

from repro.bench import fig6


def test_fig6_100vm_validation(benchmark, save_table):
    if full_scale():
        others, rates, horizon = (0.8, 0.9), (60.0, 70.0, 80.0, 90.0), 50_000.0
    else:
        others, rates, horizon = (0.8,), (70.0,), 8_000.0
    rows = benchmark.pedantic(
        fig6.run_fig6_100vm,
        kwargs={
            "other_utilizations": others,
            "target_rates": rates,
            "horizon": horizon,
        },
        rounds=1,
        iterations=1,
    )
    save_table("fig6_100vm", fig6.render(rows))
    for row in rows:
        # Paper claim: the difference Obar - Ibar stays within 20% of the
        # exact solution below target utilization 0.9.
        assert row.net_error < 0.6
        assert row.approx.lent_mean <= 10.0 + 1e-9
        assert row.approx.borrowed_mean <= 10.0 + 1e-9
