"""Ablation: queue-truncation sensitivity.

DESIGN.md pins the queue truncation rule (cut where the SLA tail drops
below ``tail_epsilon``).  This bench sweeps the tolerance across six
orders of magnitude and verifies that the performance metrics are
insensitive to it — i.e., the truncation rule is safe, not a tuned knob.
"""

from repro.bench.tables import render_table
from repro.core.small_cloud import FederationScenario, SmallCloud
from repro.perf.approximate import ApproximateModel
from repro.queueing.forwarding import NoSharingModel


def run_truncation_sweep():
    epsilons = (1e-6, 1e-9, 1e-12)
    rows = []
    for eps in epsilons:
        model = NoSharingModel(
            servers=10, arrival_rate=9.0, service_rate=1.0, sla_bound=0.2,
            tail_epsilon=eps,
        )
        rows.append(("no-sharing", eps, model.q_max, model.forward_probability))
    scenario = FederationScenario((
        SmallCloud(name="a", vms=5, arrival_rate=3.5, shared_vms=2),
        SmallCloud(name="b", vms=5, arrival_rate=4.2, shared_vms=2),
    ))
    for eps in epsilons:
        params = ApproximateModel(tail_epsilon=eps).evaluate_target(scenario)
        rows.append(("approximate", eps, None, params.net_borrowed))
    return rows


def test_truncation_insensitivity(benchmark, save_table):
    rows = benchmark.pedantic(run_truncation_sweep, rounds=1, iterations=1)
    save_table(
        "ablation_truncation",
        render_table(
            ["model", "tail_epsilon", "q_max", "metric"],
            [(m, e, q if q is not None else "-", v) for m, e, q, v in rows],
            title="Ablation — queue truncation tolerance",
        ),
    )
    no_sharing = [v for m, _e, _q, v in rows if m == "no-sharing"]
    approx = [v for m, _e, _q, v in rows if m == "approximate"]
    # Forward probabilities agree to ~1e-6 across tolerances.
    assert max(no_sharing) - min(no_sharing) < 1e-6
    # The approximate model's net-borrowed metric moves by < 1%.
    assert max(approx) - min(approx) < 0.01
    # Tighter tolerance means a longer retained queue.
    q_levels = [q for m, _e, q, _v in rows if m == "no-sharing"]
    assert q_levels == sorted(q_levels)
