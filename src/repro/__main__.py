"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``solve SCENARIO`` — run the SC-Share market loop on a scenario and
  print the equilibrium, per-SC positions, and federation efficiency as
  JSON.
- ``sweep SCENARIO`` — sweep the price ratio and print the recommended
  price region per fairness objective.
- ``simulate SCENARIO`` — run the discrete-event simulator and print
  per-SC performance metrics.

``SCENARIO`` is either a scenario JSON file (see
:mod:`repro.core.serialization` for the legacy flat format and
:mod:`repro.scenarios.schema` for the versioned one) or the name of a
scenario-library entry (``python -m repro.scenarios list``) — so any
library entry can drive a traced/profiled run directly.

All commands accept ``--model {pooled,approximate}`` where applicable;
``solve`` and ``sweep`` also accept ``--workers N`` (parallel evaluation)
and ``--cache-dir PATH`` (persistent model-solution cache) — neither
changes any printed number, only how fast it appears.

Observability (any command): ``--trace FILE`` exports the span tree
(``.json`` tree, ``.chrome.json`` Chrome trace, ``.folded``
flamegraph), ``--metrics FILE`` exports the metrics snapshot as JSON,
and ``--profile`` prints a cProfile report to stderr.  Like the runtime
flags, none of them changes a printed number (the differential checker
pins the traced run bit-identical to the untraced one).
"""

from __future__ import annotations

import argparse
import json
import sys

from typing import TYPE_CHECKING

from repro.analysis.sanitize import sanitize_enable
from repro.core.serialization import load_scenario, outcome_to_dict

if TYPE_CHECKING:
    from collections.abc import Callable

    from repro.core.small_cloud import FederationScenario
    from repro.perf.base import PerformanceModel
    from repro.runtime.cache import DiskParamsCache
    from repro.runtime.executor import Executor
    from repro.scenarios.schema import ScenarioSpec


def _resolve_spec(ref: str) -> "ScenarioSpec | None":
    """A versioned library spec for ``ref``, or ``None`` for legacy files.

    ``ref`` may be a library scenario name, a versioned scenario file
    (:mod:`repro.scenarios.schema`), or a legacy flat scenario file —
    only the last returns ``None`` (callers fall back to
    :func:`~repro.core.serialization.load_scenario`).
    """
    from pathlib import Path

    path = Path(ref)
    if path.exists():
        data = json.loads(path.read_text())
        if isinstance(data, dict) and ("schema_version" in data or "name" in data):
            from repro.scenarios.schema import spec_from_dict

            return spec_from_dict(data)
        return None
    from repro.scenarios.library import resolve

    return resolve(ref)


def _resolve_federation(ref: str) -> "FederationScenario":
    """The federation named by ``ref`` (file or library entry)."""
    spec = _resolve_spec(ref)
    if spec is not None:
        return spec.federation()
    return load_scenario(ref)


def _build_executor(args: argparse.Namespace) -> "Executor | None":
    from repro.runtime.executor import make_executor

    return make_executor(
        getattr(args, "workers", 1), kind=getattr(args, "parallel_backend", "auto")
    )


def _build_model(name: str, executor: "Executor | None" = None) -> "PerformanceModel":
    if name == "pooled":
        from repro.perf.pooled import PooledModel

        return PooledModel()
    if name == "approximate":
        from repro.perf.approximate import ApproximateModel

        return ApproximateModel(executor=executor)
    raise SystemExit(f"unknown model {name!r}")


def _build_params_cache(
    args: argparse.Namespace,
    scenario: "FederationScenario",
    model: "PerformanceModel",
) -> "DiskParamsCache | None":
    if getattr(args, "cache_dir", None) is None:
        return None
    from repro.runtime.cache import DiskParamsCache

    return DiskParamsCache(args.cache_dir, scenario, model)


def _cmd_solve(args: argparse.Namespace) -> int:
    from repro.core.framework import SCShare

    scenario = _resolve_federation(args.scenario)
    if args.price_ratio is not None:
        scenario = scenario.with_price_ratio(args.price_ratio)
    executor = _build_executor(args)
    model = _build_model(args.model, executor=executor)
    runner = SCShare(
        scenario,
        model=model,
        gamma=args.gamma,
        strategy_step=args.strategy_step,
        params_cache=_build_params_cache(args, scenario, model),
        executor=executor,
    )
    outcome = runner.run(alpha=args.alpha, optimum_method="ascent")
    print(json.dumps(outcome_to_dict(outcome), indent=2))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.core.framework import SCShare
    from repro.market.pricing import price_ratio_grid
    from repro.market.regions import analyze_regions
    from repro.bench.fig7 import ALPHAS, Fig7Row

    scenario = _resolve_federation(args.scenario)
    executor = _build_executor(args)
    model = _build_model(args.model, executor=executor)
    cache = _build_params_cache(args, scenario, model)
    if cache is None:
        cache = {}
    rows = []
    for ratio in price_ratio_grid(points=args.points):
        runner = SCShare(
            scenario.with_price_ratio(ratio),
            model=model,
            gamma=args.gamma,
            strategy_step=args.strategy_step,
            params_cache=cache,
            executor=executor,
        )
        efficiency = {}
        welfare = {}
        equilibrium: tuple[int, ...] = ()
        iterations = 0
        for name, alpha in ALPHAS.items():
            outcome = runner.run(alpha=alpha, optimum_method="ascent")
            efficiency[name] = outcome.efficiency
            welfare[name] = outcome.welfare
            equilibrium = outcome.equilibrium
            iterations = outcome.game.iterations
        rows.append(
            Fig7Row(
                loads="custom",
                gamma=args.gamma,
                price_ratio=ratio,
                equilibrium=equilibrium,
                iterations=iterations,
                efficiency=efficiency,
                welfare=welfare,
            )
        )
    report = analyze_regions(rows)
    output = {
        "regions": [
            {
                "objective": r.objective,
                "best_ratio": r.best_ratio,
                "range": [r.low, r.high],
                "efficiency": r.efficiency,
            }
            for r in report.regions
        ],
        "collapse_ratios": list(report.collapse_ratios),
    }
    print(json.dumps(output, indent=2))
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    spec = _resolve_spec(args.scenario)
    if spec is not None:
        # Versioned specs carry demand profiles (MMPP arrivals,
        # phase-type service); run them through the scenario runner so
        # the profiles actually drive the simulator.  CLI flags override
        # the spec's run config.
        from dataclasses import replace

        from repro.scenarios.runner import simulate_spec

        spec = replace(spec, run=replace(spec.run, seed=args.seed, horizon=args.horizon))
        print(json.dumps(simulate_spec(spec), indent=2))
        return 0
    from repro.sim.federation import FederationSimulator

    scenario = load_scenario(args.scenario)
    simulator = FederationSimulator(scenario, seed=args.seed)
    metrics = simulator.run(horizon=args.horizon, warmup=args.horizon * 0.05)
    output = [
        {
            "name": cloud.name,
            "lent_mean": m.lent_mean,
            "borrowed_mean": m.borrowed_mean,
            "forward_rate": m.forward_rate,
            "forward_probability": m.forward_probability,
            "utilization": m.utilization,
            "mean_wait": m.mean_wait,
        }
        for cloud, m in zip(scenario, metrics)
    ]
    print(json.dumps(output, indent=2))
    return 0


def add_obs_arguments(command: argparse.ArgumentParser) -> None:
    """Attach the shared ``--trace`` / ``--metrics`` / ``--profile`` flags.

    Shared with :mod:`repro.bench.runner`, so every entry point exposes
    the same observability surface.
    """
    command.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="export the span tree (format by extension: .json tree, "
        ".chrome.json Chrome trace_event, .folded flamegraph)",
    )
    command.add_argument(
        "--metrics",
        default=None,
        metavar="FILE",
        help="export counters/gauges/histograms as JSON",
    )
    command.add_argument(
        "--profile",
        action="store_true",
        help="cProfile the run and print the top functions to stderr",
    )


def run_with_obs(args: argparse.Namespace, func: "Callable[[], int]") -> int:
    """Run ``func`` under the instrumentation ``args`` requests.

    With no observability flag set this is a plain call — the hooks stay
    compiled to no-ops.  Otherwise the run happens inside one
    :func:`repro.obs.capture` block and the requested artifacts are
    written after it returns (also on error, so a crashed run still
    leaves its trace behind).
    """
    trace_path = getattr(args, "trace", None)
    metrics_path = getattr(args, "metrics", None)
    profile = bool(getattr(args, "profile", False))
    if trace_path is None and metrics_path is None and not profile:
        return func()

    from contextlib import ExitStack

    from repro import obs
    from repro.obs import export, profiling

    with ExitStack() as stack:
        capture = stack.enter_context(
            obs.capture(
                tracing=trace_path is not None,
                metrics=metrics_path is not None,
            )
        )
        if profile:
            stack.enter_context(profiling.profiled(sys.stderr))
        try:
            return func()
        finally:
            if trace_path is not None:
                export.write_trace(capture.tracer, trace_path)
            if metrics_path is not None:
                export.write_metrics(capture.snapshot(), metrics_path)


def _add_runtime_arguments(command: argparse.ArgumentParser) -> None:
    command.add_argument(
        "--workers",
        type=int,
        default=1,
        help="parallel width for model/game evaluation (1 = serial)",
    )
    command.add_argument(
        "--parallel-backend",
        choices=["auto", "thread", "process"],
        default="auto",
        help="executor kind behind --workers (auto = process pools)",
    )
    command.add_argument(
        "--cache-dir",
        default=None,
        help="directory for the persistent model-solution cache",
    )
    command.add_argument(
        "--sanitize",
        action="store_true",
        help="enable the runtime stochastic sanitizer "
        "(equivalent to REPRO_SANITIZE=1)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI parser (exposed for testing)."""
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    solve = sub.add_parser("solve", help="run the market loop to equilibrium")
    solve.add_argument("scenario", help="scenario JSON file or library scenario name")
    solve.add_argument("--model", default="pooled", choices=["pooled", "approximate"])
    solve.add_argument("--gamma", type=float, default=0.0)
    solve.add_argument("--alpha", type=float, default=0.0)
    solve.add_argument("--price-ratio", type=float, default=None)
    solve.add_argument("--strategy-step", type=int, default=1)
    _add_runtime_arguments(solve)
    add_obs_arguments(solve)
    solve.set_defaults(func=_cmd_solve)

    sweep = sub.add_parser("sweep", help="sweep C^G/C^P and recommend regions")
    sweep.add_argument("scenario", help="scenario JSON file or library scenario name")
    sweep.add_argument("--model", default="pooled", choices=["pooled", "approximate"])
    sweep.add_argument("--gamma", type=float, default=0.0)
    sweep.add_argument("--points", type=int, default=6)
    sweep.add_argument("--strategy-step", type=int, default=2)
    _add_runtime_arguments(sweep)
    add_obs_arguments(sweep)
    sweep.set_defaults(func=_cmd_sweep)

    simulate = sub.add_parser("simulate", help="run the discrete-event simulator")
    simulate.add_argument("scenario", help="scenario JSON file or library scenario name")
    simulate.add_argument("--horizon", type=float, default=20_000.0)
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument(
        "--sanitize",
        action="store_true",
        help="enable the runtime stochastic sanitizer "
        "(equivalent to REPRO_SANITIZE=1)",
    )
    add_obs_arguments(simulate)
    simulate.set_defaults(func=_cmd_simulate)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "sanitize", False):
        sanitize_enable()
    return run_with_obs(args, lambda: args.func(args))


if __name__ == "__main__":
    sys.exit(main())
