"""Shared argument-validation helpers.

Every public constructor in the library funnels its scalar checks through
these helpers so error messages are uniform ("name must be ... , got ...")
and so tests can assert on :class:`~repro.exceptions.ConfigurationError`
consistently.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.exceptions import ConfigurationError


def require(condition: bool, message: str) -> None:
    """Raise :class:`ConfigurationError` with ``message`` unless ``condition``."""
    if not condition:
        raise ConfigurationError(message)


def check_positive(value: float, name: str) -> float:
    """Validate that ``value`` is a finite number strictly greater than zero."""
    value = check_finite(value, name)
    if value <= 0:
        raise ConfigurationError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(value: float, name: str) -> float:
    """Validate that ``value`` is a finite number greater than or equal to zero."""
    value = check_finite(value, name)
    if value < 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value!r}")
    return value


def check_finite(value: float, name: str) -> float:
    """Validate that ``value`` is a real, finite number and return it as float."""
    try:
        value = float(value)
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(f"{name} must be a real number, got {value!r}") from exc
    if math.isnan(value) or math.isinf(value):
        raise ConfigurationError(f"{name} must be finite, got {value!r}")
    return value


def check_probability(value: float, name: str) -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    value = check_finite(value, name)
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_int(value: int, name: str) -> int:
    """Validate that ``value`` is an integer (bools are rejected)."""
    if isinstance(value, bool) or not isinstance(value, (int,)):
        # numpy integers satisfy __index__; accept them explicitly.
        try:
            as_int = int(value)
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(f"{name} must be an integer, got {value!r}") from exc
        if as_int != value:
            raise ConfigurationError(f"{name} must be an integer, got {value!r}")
        return as_int
    return int(value)


def check_positive_int(value: int, name: str) -> int:
    """Validate that ``value`` is an integer strictly greater than zero."""
    value = check_int(value, name)
    if value <= 0:
        raise ConfigurationError(f"{name} must be a positive integer, got {value!r}")
    return value


def check_non_negative_int(value: int, name: str) -> int:
    """Validate that ``value`` is an integer greater than or equal to zero."""
    value = check_int(value, name)
    if value < 0:
        raise ConfigurationError(f"{name} must be a non-negative integer, got {value!r}")
    return value


def check_in_range(value: float, name: str, low: float, high: float) -> float:
    """Validate that ``low <= value <= high``."""
    value = check_finite(value, name)
    if not low <= value <= high:
        raise ConfigurationError(f"{name} must be in [{low}, {high}], got {value!r}")
    return value


def check_sequence_length(seq: Sequence, name: str, length: int) -> Sequence:
    """Validate that ``seq`` has exactly ``length`` elements."""
    if len(seq) != length:
        raise ConfigurationError(
            f"{name} must have length {length}, got length {len(seq)}"
        )
    return seq
