"""Fingerprint-soundness dataflow rules (RPR301, RPR304, RPR306).

The system's caches are correct only while every performance-relevant
input reaches the cache key.  These rules make that contract static:

=======  ==============================================================
Code     Contract
=======  ==============================================================
RPR301   Cache-key omission: every parameter of a fingerprint/key/digest
         function, and every attribute declared ``# fingerprint-input:``
         for it, must flow into the returned key expression.  An input
         that never reaches the digest means two configurations that
         differ in it share a cache entry — stale utilities served
         silently.
RPR304   Mutable aliasing: an object passed into a fingerprint must not
         be mutated afterwards in the same function — the captured key
         describes the pre-mutation state, so the cache entry and the
         object diverge.
RPR306   Persisted payloads carry a format version: a payload written
         through ``json.dump``/``pickle.dump``/``write_text(json.dumps)``
         must include a version-named constant or key, so a layout
         change invalidates old entries instead of misreading them.
=======  ==============================================================

Suppression: ``# repro: noqa[RPR3xx]`` on the reported line.
"""

from __future__ import annotations

import ast

from repro.analysis.lintbase import LintRule, Violation, attribute_chain
from repro.analysis.summaries import (
    FunctionInfo,
    Project,
    is_fingerprint_name,
)

__all__ = [
    "FINGERPRINT_RULES",
    "RPR301",
    "RPR304",
    "RPR306",
    "check_fingerprints",
]

RPR301 = LintRule(
    code="RPR301",
    name="cache-key-omission",
    summary="fingerprint input (parameter or declared attribute) never reaches the key expression",
)
RPR304 = LintRule(
    code="RPR304",
    name="aliased-fingerprint-input",
    summary="object mutated after entering a fingerprint/cache key",
)
RPR306 = LintRule(
    code="RPR306",
    name="unversioned-persisted-payload",
    summary="persisted payload has no format-version constant in its content",
)

#: All fingerprint-soundness rules, in code order.
FINGERPRINT_RULES: tuple[LintRule, ...] = (RPR301, RPR304, RPR306)

#: Mutations that change an already-fingerprinted object in place.
_MUTATOR_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "clear",
        "discard",
        "extend",
        "extendleft",
        "insert",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "setdefault",
        "sort",
        "update",
    }
)


def _violation(path: str, node: ast.AST, rule: LintRule, message: str) -> Violation:
    return Violation(
        path=path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0) + 1,
        code=rule.code,
        message=message,
    )


# -- RPR301: cache-key omission -----------------------------------------


def required_inputs(project: Project, fn: FunctionInfo) -> list[tuple[str, str]]:
    """The declared inputs of fingerprint function ``fn``.

    Returns ``(kind, name)`` pairs: every non-self parameter of the
    signature (``"parameter"``) plus every class attribute annotated
    ``# fingerprint-input:`` targeting this function (``"attribute"``).
    Both survive any edit to the function body, which is what lets the
    mutation self-test measure recall against them.
    """
    inputs: list[tuple[str, str]] = [("parameter", name) for name in fn.params]
    inputs.extend(("attribute", attr) for attr in project.declared_inputs(fn))
    return inputs


def _check_rpr301(project: Project, fn: FunctionInfo) -> list[Violation]:
    if not fn.is_fingerprint:
        return []
    summary = project.summary(fn)
    if not summary.returns_value:
        return []  # reports/mutators named *_key etc. build no key value
    inputs = required_inputs(project, fn)
    if not inputs:
        return []
    sliced = project.return_slice(fn)
    violations: list[Violation] = []
    for kind, name in inputs:
        present = name in sliced.params if kind == "parameter" else name in sliced.attrs
        if present:
            continue
        violations.append(
            _violation(
                fn.path,
                fn.node,
                RPR301,
                f"fingerprint function {fn.qualname} never feeds {kind} "
                f"{name!r} into its key/digest expression; two inputs "
                f"differing only in {name!r} would share a cache entry "
                "(stale results served silently) — include it in the key "
                "or suppress with a reasoned '# repro: noqa[RPR301]'",
            )
        )
    return violations


# -- RPR304: mutation after fingerprint capture -------------------------


def _fingerprinted_names(  # repro: noqa[RPR301] - returns captured aliases, not a cache key
    project: Project, fn: FunctionInfo, stmt: ast.stmt
) -> list[tuple[str, str]]:
    """Names passed by ``stmt`` into a fingerprint call: ``(name, callee)``."""
    captured: list[tuple[str, str]] = []
    for node in ast.walk(stmt):
        if not isinstance(node, ast.Call):
            continue
        chain = attribute_chain(node.func)
        called_name = chain[-1] if chain else ""
        resolved = project.resolve_call(fn, node)
        fingerprinty = is_fingerprint_name(called_name) or (
            resolved is not None and resolved.is_fingerprint
        )
        if not fingerprinty:
            continue
        for arg in [*node.args, *(kw.value for kw in node.keywords)]:
            if isinstance(arg, ast.Name):
                captured.append((arg.id, called_name or "<fingerprint>"))
            elif (
                isinstance(arg, ast.Attribute)
                and isinstance(arg.value, ast.Name)
                and arg.value.id in ("self", "cls")
            ):
                captured.append((f"self.{arg.attr}", called_name or "<fingerprint>"))
    return captured


def _mutated_names(stmt: ast.stmt) -> list[tuple[str, ast.AST]]:
    """Names whose bound object ``stmt`` mutates in place (not rebinds)."""
    mutated: list[tuple[str, ast.AST]] = []

    def base_name(target: ast.expr) -> str | None:
        if isinstance(target, (ast.Subscript, ast.Attribute)):
            base = target.value
            if isinstance(base, ast.Name):
                return base.id
            if (
                isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id in ("self", "cls")
            ):
                return f"self.{base.attr}"
        return None

    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            name = base_name(target)
            if name is not None:
                mutated.append((name, target))
    elif isinstance(stmt, ast.AugAssign):
        name = base_name(stmt.target)
        if name is not None:
            mutated.append((name, stmt.target))
    for node in ast.walk(stmt):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr not in _MUTATOR_METHODS:
                continue
            receiver = node.func.value
            if isinstance(receiver, ast.Name):
                mutated.append((receiver.id, node))
            elif (
                isinstance(receiver, ast.Attribute)
                and isinstance(receiver.value, ast.Name)
                and receiver.value.id in ("self", "cls")
            ):
                mutated.append((f"self.{receiver.attr}", node))
    return mutated


def _rebound_names(stmt: ast.stmt) -> set[str]:
    rebound: set[str] = set()
    targets: list[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        targets = [stmt.target]
    for target in targets:
        if isinstance(target, ast.Name):
            rebound.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                if isinstance(element, ast.Name):
                    rebound.add(element.id)
    return rebound


def _check_rpr304(project: Project, fn: FunctionInfo) -> list[Violation]:
    statements = sorted(
        (
            node
            for node in ast.walk(fn.node)
            if isinstance(
                node,
                (
                    ast.Assign,
                    ast.AnnAssign,
                    ast.AugAssign,
                    ast.Expr,
                    ast.Return,
                    ast.Raise,
                    ast.Assert,
                    ast.Delete,
                ),
            )
        ),
        key=lambda node: (node.lineno, node.col_offset),
    )
    live: dict[str, tuple[str, int]] = {}  # name -> (fingerprint callee, line)
    violations: list[Violation] = []
    for stmt in statements:
        for name in _rebound_names(stmt):
            live.pop(name, None)  # a rebind creates a new object
        for name, node in _mutated_names(stmt):
            if name in live:
                callee, captured_line = live[name]
                violations.append(
                    _violation(
                        fn.path,
                        node,
                        RPR304,
                        f"{name!r} is mutated after entering fingerprint "
                        f"{callee}() on line {captured_line}; the captured "
                        "key describes the pre-mutation object, so the "
                        "cache entry and the live object now disagree — "
                        "fingerprint a copy or mutate before keying",
                    )
                )
                live.pop(name, None)  # report each divergence once
        for name, callee in _fingerprinted_names(project, fn, stmt):
            live.setdefault(name, (callee, stmt.lineno))
    return violations


# -- RPR306: persisted payloads carry a version marker ------------------


def _check_rpr306(project: Project, fn: FunctionInfo) -> list[Violation]:
    slicer = project.slicer(fn)
    violations: list[Violation] = []
    for call, payload in slicer.persist_calls():
        sliced = slicer.trace(payload)
        if sliced.has_version:
            continue
        violations.append(
            _violation(
                fn.path,
                call,
                RPR306,
                f"payload persisted by {fn.qualname} carries no "
                "format-version marker (no version-named constant, key, "
                "or attribute flows into it); bump-and-reject is how "
                "stale layouts stay out of the caches — add a "
                "'*_FORMAT_VERSION' field or suppress with a reasoned "
                "'# repro: noqa[RPR306]'",
            )
        )
    return violations


def check_fingerprints(project: Project) -> list[Violation]:  # repro: noqa[RPR302] - returns lint findings, not a digest
    """Evaluate RPR301/RPR304/RPR306 over every function of ``project``."""
    violations: list[Violation] = []
    for fn in project.functions:
        violations.extend(_check_rpr301(project, fn))
        violations.extend(_check_rpr304(project, fn))
        violations.extend(_check_rpr306(project, fn))
    return violations
