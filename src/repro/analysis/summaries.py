"""Project index, def-use slices, and interprocedural summaries.

The dataflow rule family (RPR301-RPR306, :mod:`repro.analysis.dataflow`)
asks questions no single-file AST pass can answer: *does this parameter
reach the digest expression?*, *does wall-clock taint flow into a
persisted payload?*, *does a version constant enter this fingerprint?*
This module supplies the machinery those rules share:

- :class:`Project` — every module of the analyzed tree parsed once,
  with functions indexed by qualified name and calls resolved across
  modules (imports, ``self.method``, unique-method-name fallback);
- :func:`slice_expr` / :meth:`Project.return_slice` — a flow-insensitive
  backward slice: the parameters, ``self`` attributes, module globals,
  and taint sources that *influence* an expression, following local
  assignments, container mutations, guard conditions (control
  dependence), f-strings, comprehensions, and calls;
- :class:`FunctionSummary` — per-function facts computed to a fixpoint
  bottom-up over the call graph, so a taint introduced two calls deep
  or a version constant added by a callee is visible at the call site.

The taint lattice is a powerset over three independent *kinds*:

=========  ==========================================================
Kind       Introduced by
=========  ==========================================================
env        process environment and wall clock: ``os.environ``,
           ``os.getenv``, ``time.time``/``perf_counter``/...,
           ``datetime.now``, ``platform.*``, ``uuid1``/``uuid4``,
           ``socket.gethostname``, ``os.urandom``, salted builtin
           ``hash()``.
thread     scheduling-dependent state: ``threading.get_ident``,
           ``current_thread``, ``os.getpid``, ``active_count``,
           ``multiprocessing.current_process``, ``as_completed``.
unordered  iteration-order-unstable collections: set literals and
           comprehensions, ``set()``/``frozenset()`` and the set
           algebra methods, ``as_completed``, ``os.listdir`` /
           ``scandir``, ``glob.*``, ``Path.iterdir``/``glob``/
           ``rglob``.
=========  ==========================================================

Merging is set union (may-taint).  The ``unordered`` kind alone is
*laundered* by order-insensitive reductions (``sorted``, ``min``,
``max``, ``len``, ``any``, ``all``): ``sorted(some_set)`` is a
deterministic value even though its argument is not.  ``sum()`` is
deliberately **not** a launderer — float addition is not associative,
so a sum over an unordered collection is exactly the bug RPR302 hunts.

Annotations (mirroring ``# guarded-by:`` from the RPR2xx family):

- ``# fingerprint-input:`` on an attribute's initialising assignment
  declares that the attribute must flow into every fingerprint function
  of the class; ``# fingerprint-input: _hash, _key`` restricts the
  obligation to the named functions.  RPR301 enforces the declaration,
  and the ``--self-test`` mutation harness uses it to seed recall
  mutants.
- ``# repro: noqa[RPR3xx]`` suppresses per line, exactly as for the
  RPR1xx/RPR2xx families.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro._validation import require
from repro.analysis.lintbase import attribute_chain

__all__ = [
    "FINGERPRINT_INPUT_PATTERN",
    "FINGERPRINT_NAME",
    "FunctionInfo",
    "FunctionSummary",
    "ModuleInfo",
    "Project",
    "SliceResult",
    "TAINT_ENV",
    "TAINT_THREAD",
    "TAINT_UNORDERED",
    "TaintHit",
    "VERSION_NAME",
    "is_fingerprint_name",
]

FuncDef = ast.FunctionDef | ast.AsyncFunctionDef
_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)

#: Function-name shapes that build fingerprints, cache keys, or digests.
FINGERPRINT_NAME = re.compile(
    r"(fingerprint|content_hash|cache_key|digest|(^|_)hash($|_)|_key$)",
    re.IGNORECASE,
)

#: Names that carry a format/schema version marker.
VERSION_NAME = re.compile(r"version", re.IGNORECASE)

#: The fingerprint-input annotation: ``# fingerprint-input: _hash, _key``
#: (the target list optional — bare means every fingerprint function of
#: the class).
FINGERPRINT_INPUT_PATTERN = re.compile(
    r"#\s*fingerprint-input:?\s*(?P<targets>[A-Za-z0-9_,\s]*)"
)

TAINT_ENV = "env"
TAINT_THREAD = "thread"
TAINT_UNORDERED = "unordered"

#: Attribute/call chain tails introducing environment taint, keyed by the
#: head module names they are legitimate under (empty set: any receiver).
_ENV_CALL_TAILS: dict[str, frozenset[str]] = {
    "getenv": frozenset({"os"}),
    "environb": frozenset({"os"}),
    "uname": frozenset({"os", "platform"}),
    "getlogin": frozenset({"os"}),
    "urandom": frozenset({"os"}),
    "time": frozenset({"time"}),
    "time_ns": frozenset({"time"}),
    "perf_counter": frozenset({"time"}),
    "perf_counter_ns": frozenset({"time"}),
    "monotonic": frozenset({"time"}),
    "monotonic_ns": frozenset({"time"}),
    "process_time": frozenset({"time"}),
    "now": frozenset({"datetime", "date"}),
    "utcnow": frozenset({"datetime"}),
    "today": frozenset({"datetime", "date"}),
    "uuid1": frozenset({"uuid"}),
    "uuid4": frozenset({"uuid"}),
    "gethostname": frozenset({"socket"}),
    "getfqdn": frozenset({"socket"}),
    "getuser": frozenset({"getpass"}),
}

#: ``platform.<anything>()`` is machine identity; the whole module taints.
_ENV_MODULES = frozenset({"platform"})

#: Attribute chains (no call needed) introducing environment taint.
_ENV_ATTR_CHAINS = frozenset({("os", "environ"), ("sys", "platform")})

#: Calls introducing scheduling/backend taint.
_THREAD_CALL_TAILS: dict[str, frozenset[str]] = {
    "get_ident": frozenset({"threading"}),
    "get_native_id": frozenset({"threading"}),
    "current_thread": frozenset({"threading"}),
    "active_count": frozenset({"threading"}),
    "getpid": frozenset({"os"}),
    "gettid": frozenset({"os"}),
    "current_process": frozenset({"multiprocessing"}),
    "as_completed": frozenset(),
}

#: Calls whose result iterates in an unstable order.
_UNORDERED_CALL_TAILS: dict[str, frozenset[str]] = {
    "set": frozenset(),
    "frozenset": frozenset(),
    "as_completed": frozenset(),
    "listdir": frozenset({"os"}),
    "scandir": frozenset({"os"}),
    "glob": frozenset(),
    "iglob": frozenset({"glob"}),
    "rglob": frozenset(),
    "iterdir": frozenset(),
    "union": frozenset(),
    "intersection": frozenset(),
    "difference": frozenset(),
    "symmetric_difference": frozenset(),
}

#: Order-insensitive reductions: their result is deterministic even over
#: an unordered argument, so they launder the ``unordered`` kind (only).
_ORDER_LAUNDERERS = frozenset({"sorted", "min", "max", "len", "any", "all"})

#: In-place mutator methods (a call on a name counts as a definition).
_MUTATOR_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "clear",
        "discard",
        "extend",
        "extendleft",
        "insert",
        "move_to_end",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "setdefault",
        "update",
    }
)


def is_fingerprint_name(name: str) -> bool:
    """Whether ``name`` is a fingerprint-function name (dunders never are)."""
    if name.startswith("__") and name.endswith("__"):
        return False
    return FINGERPRINT_NAME.search(name) is not None


@dataclass(frozen=True)
class TaintHit:
    """One taint source observed inside a slice."""

    kind: str
    what: str
    line: int
    col: int


@dataclass
class SliceResult:
    """Everything that influences a sliced expression."""

    params: set[str] = field(default_factory=set)
    attrs: set[str] = field(default_factory=set)
    names: set[str] = field(default_factory=set)
    taints: set[TaintHit] = field(default_factory=set)
    has_version: bool = False

    def merge(self, other: "SliceResult") -> None:
        self.params |= other.params
        self.attrs |= other.attrs
        self.names |= other.names
        self.taints |= other.taints
        self.has_version = self.has_version or other.has_version

    def taint_kinds(self) -> set[str]:
        return {hit.kind for hit in self.taints}


@dataclass
class FunctionSummary:
    """Interprocedural facts about one function, computed to a fixpoint.

    Attributes:
        attrs_to_return: ``self`` attributes influencing the return value.
        return_taints: taint hits the return value carries (introduced in
            this function or any callee, independent of the arguments).
        return_has_version: a version-named constant/key/global flows
            into the return value.
        sink_params: parameters whose value flows into a digest or
            persisted payload inside this function (or transitively in a
            callee) — a tainted argument at any call site is a finding.
        returns_value: the function has at least one ``return <expr>``.
    """

    attrs_to_return: set[str] = field(default_factory=set)
    return_taints: set[TaintHit] = field(default_factory=set)
    return_has_version: bool = False
    sink_params: set[str] = field(default_factory=set)
    returns_value: bool = False

    def key(self) -> tuple[object, ...]:
        return (
            tuple(sorted(self.attrs_to_return)),
            tuple(sorted((h.kind, h.what, h.line, h.col) for h in self.return_taints)),
            self.return_has_version,
            tuple(sorted(self.sink_params)),
            self.returns_value,
        )


@dataclass
class FunctionInfo:
    """One function or method of the analyzed project."""

    path: str
    module_name: str
    name: str
    qualname: str
    class_name: str | None
    node: FuncDef

    @property
    def params(self) -> tuple[str, ...]:
        args = self.node.args
        names = [a.arg for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)]
        return tuple(n for n in names if n not in ("self", "cls"))

    @property
    def has_self(self) -> bool:
        args = self.node.args
        first = (*args.posonlyargs, *args.args)[:1]
        return bool(first) and first[0].arg in ("self", "cls")

    @property
    def is_fingerprint(self) -> bool:
        return is_fingerprint_name(self.name)


@dataclass
class ModuleInfo:
    """One parsed module with its local indexes."""

    path: str
    name: str
    source: str
    lines: list[str]
    tree: ast.Module
    functions: list[FunctionInfo] = field(default_factory=list)
    #: local alias -> imported module dotted path (``import x.y as z``).
    import_aliases: dict[str, str] = field(default_factory=dict)
    #: local name -> (module dotted path, original name) for from-imports.
    imported_names: dict[str, tuple[str, str]] = field(default_factory=dict)
    #: class name -> {attribute -> declared target functions (None=all)}.
    fingerprint_inputs: dict[str, dict[str, tuple[str, ...] | None]] = field(
        default_factory=dict
    )


def _module_name_for(path: str) -> str:
    """Dotted module name for ``path`` (best effort; unique per file)."""
    parts = Path(path).with_suffix("").parts
    if "src" in parts:
        parts = parts[parts.index("src") + 1 :]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else str(path)


def _line_comment(lines: list[str], node: ast.stmt) -> str | None:
    """The fingerprint-input targets string on any line of ``node``."""
    first = getattr(node, "lineno", 1)
    last = getattr(node, "end_lineno", first) or first
    for lineno in range(first, last + 1):
        if 0 < lineno <= len(lines):
            match = FINGERPRINT_INPUT_PATTERN.search(lines[lineno - 1])
            if match is not None:
                return match.group("targets") or ""
    return None


def _parse_targets(raw: str) -> tuple[str, ...] | None:
    names = tuple(part.strip() for part in raw.split(",") if part.strip())
    return names or None


class Project:
    """Every module of the analyzed tree, parsed and cross-indexed.

    Args:
        sources: mapping of file path to module source text.
        parsed: optional pre-parsed trees keyed by path (the self-test
            reuses unchanged trees across mutants).
    """

    def __init__(
        self,
        sources: Mapping[str, str],
        parsed: Mapping[str, ast.Module] | None = None,
    ) -> None:
        require(
            all(isinstance(key, str) for key in sources),
            "sources must map str paths to module text",
        )
        self.modules: dict[str, ModuleInfo] = {}
        self.modules_by_name: dict[str, ModuleInfo] = {}
        self.functions: list[FunctionInfo] = []
        self._methods_by_name: dict[str, list[FunctionInfo]] = {}
        self._summaries: dict[tuple[str, str], FunctionSummary] = {}
        for path in sorted(sources):
            source = sources[path]
            tree = parsed.get(path) if parsed else None
            if tree is None:
                try:
                    tree = ast.parse(source, filename=path)
                except SyntaxError:
                    continue
            module = self._index_module(path, source, tree)
            self.modules[path] = module
            self.modules_by_name[module.name] = module
        self._compute_summaries()

    # -- indexing --------------------------------------------------------

    def _index_module(self, path: str, source: str, tree: ast.Module) -> ModuleInfo:
        module = ModuleInfo(
            path=path,
            name=_module_name_for(path),
            source=source,
            lines=source.splitlines(),
            tree=tree,
        )
        for node in tree.body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    module.import_aliases[alias.asname or alias.name.split(".")[0]] = (
                        alias.name
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    module.imported_names[alias.asname or alias.name] = (
                        node.module,
                        alias.name,
                    )
        self._index_functions(module, tree.body, class_name=None)
        return module

    def _index_functions(
        self,
        module: ModuleInfo,
        body: Sequence[ast.stmt],
        class_name: str | None,
    ) -> None:
        for node in body:
            if isinstance(node, _FUNC_NODES):
                qualname = f"{class_name}.{node.name}" if class_name else node.name
                info = FunctionInfo(
                    path=module.path,
                    module_name=module.name,
                    name=node.name,
                    qualname=qualname,
                    class_name=class_name,
                    node=node,
                )
                module.functions.append(info)
                self.functions.append(info)
                if class_name is not None:
                    self._methods_by_name.setdefault(node.name, []).append(info)
            elif isinstance(node, ast.ClassDef):
                self._index_class_annotations(module, node)
                self._index_functions(module, node.body, class_name=node.name)

    def _index_class_annotations(self, module: ModuleInfo, cls: ast.ClassDef) -> None:
        declared: dict[str, tuple[str, ...] | None] = {}
        # Dataclass-style field declarations in the class body.
        for stmt in cls.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                raw = _line_comment(module.lines, stmt)
                if raw is not None:
                    declared[stmt.target.id] = _parse_targets(raw)
        # ``self.<attr> = ...`` sites in any method (conventionally
        # __init__), exactly like ``# guarded-by:`` declarations.
        for stmt in cls.body:
            if not isinstance(stmt, _FUNC_NODES):
                continue
            for sub in ast.walk(stmt):
                if not isinstance(sub, (ast.Assign, ast.AnnAssign)):
                    continue
                raw = _line_comment(module.lines, sub)
                if raw is None:
                    continue
                targets = (
                    sub.targets if isinstance(sub, ast.Assign) else [sub.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        declared[target.attr] = _parse_targets(raw)
        if declared:
            module.fingerprint_inputs.setdefault(cls.name, {}).update(declared)

    # -- lookups ---------------------------------------------------------

    def function(self, module_name: str, qualname: str) -> FunctionInfo | None:
        module = self.modules_by_name.get(module_name)
        if module is None:
            return None
        for info in module.functions:
            if info.qualname == qualname:
                return info
        return None

    def fingerprint_functions(self) -> list[FunctionInfo]:
        return [fn for fn in self.functions if fn.is_fingerprint]

    def declared_inputs(self, fn: FunctionInfo) -> list[str]:
        """Attributes declared ``# fingerprint-input:`` targeting ``fn``."""
        if fn.class_name is None:
            return []
        module = self.modules[fn.path]
        declared = module.fingerprint_inputs.get(fn.class_name, {})
        return sorted(
            attr
            for attr, targets in declared.items()
            if targets is None or fn.name in targets
        )

    def summary(self, fn: FunctionInfo) -> FunctionSummary:
        return self._summaries[(fn.path, fn.qualname)]

    def resolve_call(
        self, caller: FunctionInfo, call: ast.Call
    ) -> FunctionInfo | None:
        """Best-effort static resolution of ``call`` inside ``caller``.

        Resolution order: ``self.m`` to a same-class method; a bare name
        to a same-module function, then a from-import into a project
        module; ``alias.f`` through ``import`` aliases; finally any
        method name defined by exactly one project class (the receiver's
        type is unknown, but a unique name is unambiguous).
        """
        chain = attribute_chain(call.func)
        module = self.modules[caller.path]
        if len(chain) == 2 and chain[0] in ("self", "cls") and caller.class_name:
            for info in module.functions:
                if info.class_name == caller.class_name and info.name == chain[1]:
                    return info
            return None
        if len(chain) == 1:
            name = chain[0]
            for info in module.functions:
                if info.class_name is None and info.name == name:
                    return info
            if name in module.imported_names:
                target_module, original = module.imported_names[name]
                return self.function(target_module, original)
            return None
        if len(chain) == 2 and chain[0] in module.import_aliases:
            return self.function(module.import_aliases[chain[0]], chain[1])
        if chain:
            candidates = self._methods_by_name.get(chain[-1], [])
            if len(candidates) == 1:
                return candidates[0]
        return None

    # -- slicing ---------------------------------------------------------

    def return_slice(self, fn: FunctionInfo) -> SliceResult:
        """Influences of ``fn``'s return value (union over return sites)."""
        slicer = _Slicer(self, fn)
        result = SliceResult()
        for ret, guards in slicer.returns:
            if ret.value is None:
                continue
            result.merge(slicer.trace(ret.value))
            for guard in guards:
                result.merge(slicer.trace(guard))
        return result

    def slicer(self, fn: FunctionInfo) -> "_Slicer":
        return _Slicer(self, fn)

    # -- summaries -------------------------------------------------------

    def _compute_summaries(self) -> None:
        for fn in self.functions:
            self._summaries[(fn.path, fn.qualname)] = FunctionSummary()
        for _ in range(8):  # fixpoint over call-graph cycles; depth-bounded
            changed = False
            for fn in self.functions:
                updated = self._summarize(fn)
                key = (fn.path, fn.qualname)
                if updated.key() != self._summaries[key].key():
                    self._summaries[key] = updated
                    changed = True
                else:
                    self._summaries[key] = updated
            if not changed:
                break

    def _summarize(self, fn: FunctionInfo) -> FunctionSummary:
        slicer = _Slicer(self, fn)
        summary = FunctionSummary()
        returned = SliceResult()
        for ret, guards in slicer.returns:
            if ret.value is None:
                continue
            summary.returns_value = True
            returned.merge(slicer.trace(ret.value))
            for guard in guards:
                returned.merge(slicer.trace(guard))
        summary.attrs_to_return = set(returned.attrs)
        summary.return_taints = set(returned.taints)
        summary.return_has_version = returned.has_version
        params = set(fn.params)
        for sink_slice in slicer.sink_slices():
            summary.sink_params |= params & sink_slice.params
        return summary


class _Slicer:
    """Flow-insensitive backward slicing inside one function.

    Definitions are collected in one pass (plain and augmented
    assignments, loop/with targets, walrus bindings, container-mutating
    statements), each tagged with the guard conditions it sits under;
    tracing an expression then chases names through those definitions,
    records parameters / ``self`` attributes / globals, classifies taint
    sources, and consults callee summaries at resolved call sites.
    """

    def __init__(self, project: Project, fn: FunctionInfo) -> None:
        self.project = project
        self.fn = fn
        self.params = set(fn.params)
        #: name -> [(value expression, guard expressions)]
        self.defs: dict[str, list[tuple[ast.expr, tuple[ast.expr, ...]]]] = {}
        #: every return statement with its guard stack.
        self.returns: list[tuple[ast.Return, tuple[ast.expr, ...]]] = []
        self._collect(fn.node.body, ())

    # -- definition collection -------------------------------------------

    def _add_def(
        self, name: str, value: ast.expr, guards: tuple[ast.expr, ...]
    ) -> None:
        self.defs.setdefault(name, []).append((value, guards))

    def _bind_target(
        self, target: ast.expr, value: ast.expr, guards: tuple[ast.expr, ...]
    ) -> None:
        if isinstance(target, ast.Name):
            self._add_def(target.id, value, guards)
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value, value, guards)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind_target(element, value, guards)
        elif isinstance(target, (ast.Subscript, ast.Attribute)):
            # ``x[k] = v`` / ``x.a = v`` mutates the object bound to the
            # base name: the write contributes to that name's content.
            base: ast.expr = target
            while isinstance(base, (ast.Subscript, ast.Attribute)):
                base = base.value
            if isinstance(base, ast.Name):
                self._add_def(base.id, value, guards)
                if isinstance(target, ast.Subscript) and isinstance(
                    target.slice, ast.expr
                ):
                    self._add_def(base.id, target.slice, guards)

    def _collect(
        self, body: Sequence[ast.stmt], guards: tuple[ast.expr, ...]
    ) -> None:
        for stmt in body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    self._bind_target(target, stmt.value, guards)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                self._bind_target(stmt.target, stmt.value, guards)
            elif isinstance(stmt, ast.AugAssign):
                self._bind_target(stmt.target, stmt.value, guards)
            elif isinstance(stmt, ast.Return):
                self.returns.append((stmt, guards))
            elif isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
                call = stmt.value
                func = call.func
                if (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.attr in _MUTATOR_METHODS
                ):
                    for arg in call.args:
                        self._add_def(func.value.id, arg, guards)
                    for keyword in call.keywords:
                        self._add_def(func.value.id, keyword.value, guards)
            elif isinstance(stmt, (ast.If, ast.While)):
                inner = guards + (stmt.test,)
                self._collect(stmt.body, inner)
                self._collect(stmt.orelse, inner)
                continue
            elif isinstance(stmt, ast.For):
                self._bind_target(stmt.target, stmt.iter, guards)
                self._collect(stmt.body, guards)
                self._collect(stmt.orelse, guards)
                continue
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    if item.optional_vars is not None:
                        self._bind_target(
                            item.optional_vars, item.context_expr, guards
                        )
                self._collect(stmt.body, guards)
                continue
            elif isinstance(stmt, ast.Try):
                self._collect(stmt.body, guards)
                for handler in stmt.handlers:
                    self._collect(handler.body, guards)
                self._collect(stmt.orelse, guards)
                self._collect(stmt.finalbody, guards)
                continue
            elif isinstance(stmt, _FUNC_NODES) or isinstance(stmt, ast.ClassDef):
                continue  # nested scopes are sliced on their own
            # Walrus bindings can hide anywhere in a statement's exprs.
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.NamedExpr) and isinstance(
                    sub.target, ast.Name
                ):
                    self._add_def(sub.target.id, sub.value, guards)

    # -- tracing ----------------------------------------------------------

    def trace(self, expr: ast.expr, bound: frozenset[str] = frozenset()) -> SliceResult:
        """The :class:`SliceResult` influencing ``expr``."""
        return self._trace(expr, bound, visited=set())

    def _taint_for_call(self, chain: list[str]) -> list[tuple[str, str]]:
        if not chain:
            return []
        head, tail = chain[0], chain[-1]
        hits: list[tuple[str, str]] = []
        for table, kind in (
            (_ENV_CALL_TAILS, TAINT_ENV),
            (_THREAD_CALL_TAILS, TAINT_THREAD),
            (_UNORDERED_CALL_TAILS, TAINT_UNORDERED),
        ):
            heads = table.get(tail)
            if heads is None:
                continue
            if not heads or head in heads or len(chain) == 1:
                hits.append((kind, ".".join(chain)))
        if head in _ENV_MODULES and len(chain) >= 2:
            hits.append((TAINT_ENV, ".".join(chain)))
        return hits

    def _record_call_taints(self, node: ast.Call, result: SliceResult) -> None:
        chain = attribute_chain(node.func)
        for kind, what in self._taint_for_call(chain):
            result.taints.add(
                TaintHit(kind=kind, what=f"{what}()", line=node.lineno, col=node.col_offset + 1)
            )
        if isinstance(node.func, ast.Name) and node.func.id == "hash":
            result.taints.add(
                TaintHit(
                    kind=TAINT_ENV,
                    what="builtin hash() (PYTHONHASHSEED-salted)",
                    line=node.lineno,
                    col=node.col_offset + 1,
                )
            )

    def _trace(
        self,
        expr: ast.expr,
        bound: frozenset[str],
        visited: set[str],
    ) -> SliceResult:
        result = SliceResult()
        if isinstance(expr, ast.Name):
            name = expr.id
            if name in bound or name in visited:
                return result
            if name in self.params:
                result.params.add(name)
                if VERSION_NAME.search(name):
                    result.has_version = True
                # A rebound parameter (``payload = {..., **payload}``)
                # carries the influences of its redefinitions too.
                if name not in self.defs:
                    return result
            if name in self.defs:
                visited.add(name)
                for value, guards in self.defs[name]:
                    result.merge(self._trace(value, bound, visited))
                    for guard in guards:
                        result.merge(self._trace(guard, bound, visited))
                return result
            result.names.add(name)
            if VERSION_NAME.search(name):
                result.has_version = True
            return result
        if isinstance(expr, ast.Attribute):
            chain = attribute_chain(expr)
            if tuple(chain) in _ENV_ATTR_CHAINS:
                result.taints.add(
                    TaintHit(
                        kind=TAINT_ENV,
                        what=".".join(chain),
                        line=expr.lineno,
                        col=expr.col_offset + 1,
                    )
                )
                return result
            if (
                len(chain) == 2
                and chain[0] in ("self", "cls")
                and self.fn.class_name is not None
            ):
                result.attrs.add(chain[1])
                if VERSION_NAME.search(chain[1]):
                    result.has_version = True
                return result
            if VERSION_NAME.search(expr.attr):
                result.has_version = True
            result.merge(self._trace(expr.value, bound, visited))
            return result
        if isinstance(expr, ast.Call):
            self._record_call_taints(expr, result)
            chain = attribute_chain(expr.func)
            launder = bool(chain) and chain[-1] in _ORDER_LAUNDERERS
            inner = SliceResult()
            if not isinstance(expr.func, (ast.Name, ast.Attribute)):
                inner.merge(self._trace(expr.func, bound, visited))
            elif isinstance(expr.func, ast.Attribute):
                inner.merge(self._trace(expr.func.value, bound, visited))
            for arg in expr.args:
                inner.merge(self._trace(arg, bound, visited))
            for keyword in expr.keywords:
                inner.merge(self._trace(keyword.value, bound, visited))
            callee = self.project.resolve_call(self.fn, expr)
            if callee is not None:
                summary = self.project.summary(callee)
                inner.taints |= summary.return_taints
                inner.has_version = inner.has_version or summary.return_has_version
                if (
                    callee.class_name is not None
                    and callee.class_name == self.fn.class_name
                    and chain[:1] in (["self"], ["cls"])
                ):
                    inner.attrs |= summary.attrs_to_return
            if launder:
                inner.taints = {
                    hit for hit in inner.taints if hit.kind != TAINT_UNORDERED
                }
            result.merge(inner)
            return result
        if isinstance(expr, (ast.Set, ast.SetComp)):
            result.taints.add(
                TaintHit(
                    kind=TAINT_UNORDERED,
                    what="set literal" if isinstance(expr, ast.Set) else "set comprehension",
                    line=expr.lineno,
                    col=expr.col_offset + 1,
                )
            )
        if isinstance(expr, ast.Dict):
            for key in expr.keys:
                if key is None:
                    continue
                if (
                    isinstance(key, ast.Constant)
                    and isinstance(key.value, str)
                    and VERSION_NAME.search(key.value)
                ):
                    result.has_version = True
                result.merge(self._trace(key, bound, visited))
            for value in expr.values:
                result.merge(self._trace(value, bound, visited))
            return result
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
            comp_bound = set(bound)
            for generator in expr.generators:
                result.merge(self._trace(generator.iter, frozenset(comp_bound), visited))
                names: set[str] = set()
                _collect_bound_names(generator.target, names)
                comp_bound |= names
                for condition in generator.ifs:
                    result.merge(
                        self._trace(condition, frozenset(comp_bound), visited)
                    )
            inner_bound = frozenset(comp_bound)
            if isinstance(expr, ast.DictComp):
                result.merge(self._trace(expr.key, inner_bound, visited))
                result.merge(self._trace(expr.value, inner_bound, visited))
            else:
                result.merge(self._trace(expr.elt, inner_bound, visited))
            return result
        if isinstance(expr, ast.Lambda):
            names = set()
            for arg in (
                *expr.args.posonlyargs,
                *expr.args.args,
                *expr.args.kwonlyargs,
            ):
                names.add(arg.arg)
            result.merge(self._trace(expr.body, bound | frozenset(names), visited))
            return result
        if isinstance(expr, ast.Constant):
            if isinstance(expr.value, str) and VERSION_NAME.search(expr.value):
                result.has_version = True
            return result
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                result.merge(self._trace(child, bound, visited))
        return result

    # -- sink enumeration --------------------------------------------------

    def digest_calls(self) -> list[ast.Call]:
        """``hashlib.<alg>(...)`` calls anywhere in the function."""
        found: list[ast.Call] = []
        for node in ast.walk(self.fn.node):
            if isinstance(node, ast.Call):
                chain = attribute_chain(node.func)
                if len(chain) == 2 and chain[0] == "hashlib":
                    found.append(node)
        return found

    def persist_calls(self) -> list[tuple[ast.Call, ast.expr]]:
        """JSON/pickle persistence sites: ``(call, payload expression)``.

        Covers ``json.dump(payload, fh)`` / ``pickle.dump(payload, fh)``
        and ``*.write_text(...)`` / ``*.write(...)`` whose argument
        contains a ``json.dumps(payload)`` call.  Plain-text writes
        (no ``json.dumps`` in the argument) are not payload formats.
        """
        found: list[tuple[ast.Call, ast.expr]] = []
        for node in ast.walk(self.fn.node):
            if not isinstance(node, ast.Call):
                continue
            chain = attribute_chain(node.func)
            if (
                len(chain) == 2
                and chain[0] in ("json", "pickle")
                and chain[1] == "dump"
                and node.args
            ):
                found.append((node, node.args[0]))
            elif chain and chain[-1] in ("write_text", "write") and node.args:
                for sub in ast.walk(node.args[0]):
                    if (
                        isinstance(sub, ast.Call)
                        and attribute_chain(sub.func) == ["json", "dumps"]
                        and sub.args
                    ):
                        found.append((node, sub.args[0]))
                        break
        return found

    def sink_slices(self) -> list[SliceResult]:
        """Slices of every digest argument and persisted payload."""
        slices: list[SliceResult] = []
        for call in self.digest_calls():
            combined = SliceResult()
            for arg in call.args:
                combined.merge(self.trace(arg))
            slices.append(combined)
        for _, payload in self.persist_calls():
            slices.append(self.trace(payload))
        return slices


def _collect_bound_names(target: ast.expr, into: set[str]) -> None:
    if isinstance(target, ast.Name):
        into.add(target.id)
    elif isinstance(target, ast.Starred):
        _collect_bound_names(target.value, into)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            _collect_bound_names(element, into)


def load_sources(paths: Iterable[Path]) -> dict[str, str]:
    """Read every ``.py`` file under ``paths`` into a sources mapping."""
    sources: dict[str, str] = {}
    for path in paths:
        if path.is_dir():
            for file_path in sorted(path.rglob("*.py")):
                sources[str(file_path)] = file_path.read_text(encoding="utf-8")
        elif path.suffix == ".py":
            sources[str(path)] = path.read_text(encoding="utf-8")
    return sources
