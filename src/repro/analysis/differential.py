"""Cross-backend differential checker for bitwise determinism.

The runtime promises that parallelism and caching are *performance*
knobs, never *semantics* knobs: a game run under any executor backend,
with or without level-prefix memoization, with or without warm-started
solves, must produce bit-identical results.  This module checks that
promise end to end.  One scenario is played through Algorithm 1 under a
matrix of configurations::

    backends:  serial | thread | process
    variants:  base (memo on, warm-start off) | nomemo | warm

and every configuration's observables — equilibrium profile, round
history, per-SC utilities, equilibrium performance parameters, welfare —
are serialized with ``float.hex`` (no tolerance, no rounding) and hashed.
All nine digests must equal the serial/base reference digest exactly.

K-sweep scenarios (``ksweep10``, ``ksweep20``) extend the same contract
to the sharded and incremental evaluation modes of
:class:`~repro.perf.approximate.ApproximateModel`: their matrix swaps the
variant axis for::

    modes:  monolithic | sharded | incremental

and asserts every (backend, mode) cell's equilibrium digest equals the
serial/monolithic reference bit-for-bit.  The federations are sized for
K-scaling rather than load realism — a handful of active sharers with
unit shares keeps every level's pool (and therefore its state space)
small while the chain length grows with K.

Two further sections extend the contract to observability:

- a tenth *traced* cell replays the serial/base configuration with
  :mod:`repro.obs` tracing and metrics fully enabled — its digest must
  equal the reference, proving instrumentation observes without
  participating;
- a *metrics-merge* section runs a seed-fixed replication workload on
  every backend with metrics enabled and requires the merged counter
  totals (the integer-exact ``counter_view``) to be identical across
  serial, thread, and process executors.

Small scenarios are deliberate: the direct steady-state solver used for
small chains is a pure function of the chain (warm-start seeds are
ignored on the direct path), which is what makes bitwise identity an
achievable contract rather than an aspiration.

Run from the command line::

    python -m repro.analysis.differential --scenario quick
    python -m repro.analysis.differential --scenario fig6 --output report.json

Exit status is 0 when every configuration matches the reference, 1
otherwise; ``--output`` writes the machine-readable report consumed by
CI.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
from collections.abc import Sequence
from dataclasses import dataclass

from repro import obs
from repro.core.small_cloud import FederationScenario, SmallCloud
from repro.game.best_response import BestResponder
from repro.game.repeated_game import RepeatedGame
from repro.market.evaluator import UtilityEvaluator
from repro.perf.approximate import ApproximateModel
from repro.runtime.executor import (
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
)

__all__ = [
    "DifferentialScenario",
    "SCENARIOS",
    "main",
    "run_differential",
]


@dataclass(frozen=True)
class DifferentialScenario:
    """One named differential scenario.

    Attributes:
        name: registry key (the ``--scenario`` argument).
        scenario: the federation (prices included).
        strategy_step: stride of each SC's candidate sharing values.
        gamma: utilization exponent of Eq. (2).
        alpha: fairness level for the welfare observable.
        description: one line for reports.
        matrix: ``"variants"`` (backend x memo/warm variants, the
            original contract) or ``"modes"`` (backend x evaluation
            modes of the approximate model — the K-sweep contract).
        spaces: optional explicit per-SC strategy spaces overriding the
            ``strategy_step`` grid; the K-sweep scenarios pin all but a
            few leading SCs to a single value so equilibrium search cost
            stays bounded while the chain length grows with K.
    """

    name: str
    scenario: FederationScenario
    strategy_step: int
    gamma: float
    alpha: float
    description: str
    matrix: str = "variants"
    spaces: tuple[tuple[int, ...], ...] | None = None

    def __post_init__(self) -> None:
        if self.matrix not in ("variants", "modes"):
            raise ValueError(
                f"matrix must be 'variants' or 'modes', got {self.matrix!r}"
            )
        if self.spaces is not None and len(self.spaces) != len(self.scenario):
            raise ValueError(
                "spaces must list one strategy space per SC "
                f"({len(self.spaces)} spaces for {len(self.scenario)} SCs)"
            )

    def strategy_spaces(self) -> list[list[int]]:
        if self.spaces is not None:
            return [list(space) for space in self.spaces]
        return [
            list(range(0, cloud.vms + 1, self.strategy_step))
            for cloud in self.scenario
        ]


def _quick_scenario() -> DifferentialScenario:
    return DifferentialScenario(
        name="quick",
        scenario=FederationScenario(
            clouds=(
                SmallCloud(
                    name="sc1",
                    vms=4,
                    arrival_rate=2.4,
                    federation_price=0.4,
                ),
                SmallCloud(
                    name="sc2",
                    vms=5,
                    arrival_rate=3.5,
                    federation_price=0.4,
                ),
            )
        ),
        strategy_step=2,
        gamma=0.5,
        alpha=1.0,
        description="2 SCs, coarse strategy grid - the CI configuration",
    )


def _fig6_scenario() -> DifferentialScenario:
    return DifferentialScenario(
        name="fig6",
        scenario=FederationScenario(
            clouds=(
                SmallCloud(
                    name="sc1",
                    vms=5,
                    arrival_rate=3.0,
                    federation_price=0.4,
                ),
                SmallCloud(
                    name="sc2",
                    vms=5,
                    arrival_rate=3.5,
                    federation_price=0.4,
                ),
                SmallCloud(
                    name="sc3",
                    vms=5,
                    arrival_rate=4.0,
                    federation_price=0.4,
                ),
            )
        ),
        strategy_step=2,
        gamma=0.5,
        alpha=1.0,
        description="3 symmetric-size SCs, fig6-shaped heterogeneous load",
    )


#: Leading SCs whose sharing value is searched in the K-sweep scenarios;
#: the rest are pinned, so equilibrium cost grows with K only through
#: chain length, never through the strategy product.
_KSWEEP_ACTIVE = 3


def _ksweep_scenario(k: int) -> DifferentialScenario:
    """A K-SC federation sized for chain-length scaling, tiny pools.

    Unit shares on the first ``_KSWEEP_ACTIVE`` SCs bound every level's
    pool ``B_i`` by 3, so per-level state spaces stay constant while the
    hierarchy deepens with K — the regime the sharded and incremental
    evaluation modes exist for.
    """
    clouds = []
    spaces = []
    for i in range(k):
        active = i < _KSWEEP_ACTIVE
        clouds.append(
            SmallCloud(
                name=f"sc{i + 1:02d}",
                vms=3,
                arrival_rate=1.5 + 0.01 * (i % 7),
                sla_bound=3.0,
                federation_price=0.4,
                shared_vms=1 if active else 0,
            )
        )
        spaces.append((0, 1) if active else (0,))
    return DifferentialScenario(
        name=f"ksweep{k}",
        scenario=FederationScenario(clouds=tuple(clouds)),
        strategy_step=1,
        gamma=0.5,
        alpha=1.0,
        description=(
            f"{k} SCs, {_KSWEEP_ACTIVE} active unit sharers - "
            "backend x evaluation-mode K-scaling matrix"
        ),
        matrix="modes",
        spaces=tuple(spaces),
    )


#: Scenario registry keyed by ``--scenario`` name.
SCENARIOS: dict[str, DifferentialScenario] = {
    spec.name: spec
    for spec in (
        _quick_scenario(),
        _fig6_scenario(),
        _ksweep_scenario(10),
        _ksweep_scenario(20),
    )
}

#: The configuration matrix: (backend, variant) per cell.
_BACKENDS = ("serial", "thread", "process")
_VARIANTS = ("base", "nomemo", "warm")

#: The variant axis of the ``matrix="modes"`` scenarios: evaluation
#: modes of the approximate model instead of memo/warm-start variants.
_MODES = ("monolithic", "sharded", "incremental")

#: The cell every other cell must match bit-for-bit.
_REFERENCE = ("serial", "base")
_MODES_REFERENCE = ("serial", "monolithic")


def _make_executor(backend: str) -> Executor:
    if backend == "serial":
        return SerialExecutor()
    if backend == "thread":
        return ThreadExecutor(workers=2)
    return ProcessExecutor(workers=2)


def _run_cell(spec: DifferentialScenario, backend: str, variant: str) -> dict:
    """Play the scenario under one configuration; return its observables.

    Every float is rendered with ``float.hex`` so the comparison is
    bitwise — two results differing in the last ulp get different
    digests.
    """
    executor = _make_executor(backend)
    if spec.matrix == "modes":
        # The variant axis names an evaluation mode of the approximate
        # model; solver configuration stays at the defaults so the only
        # degree of freedom per cell is how the chains are scheduled.
        model = ApproximateModel(executor=executor, mode=variant)
    else:
        model = ApproximateModel(
            executor=executor,
            level_cache_size=0 if variant == "nomemo" else 64,
            warm_start=(variant == "warm"),
        )
    evaluator = UtilityEvaluator(spec.scenario, model, gamma=spec.gamma)
    responder = BestResponder(
        evaluator,
        strategy_spaces=spec.strategy_spaces(),
        method="exhaustive",
        executor=executor,
    )
    result = RepeatedGame(responder, executor=executor).run()
    params = evaluator.params(result.equilibrium)
    observables = {
        "equilibrium": list(result.equilibrium),
        "converged": result.converged,
        "iterations": result.iterations,
        "history": [list(profile) for profile in result.history],
        "utilities": [float(u).hex() for u in result.utilities],
        "welfare": float(
            evaluator.welfare(result.equilibrium, alpha=spec.alpha)
        ).hex(),
        "params": [
            {
                "lent_mean": float(entry.lent_mean).hex(),
                "borrowed_mean": float(entry.borrowed_mean).hex(),
                "forward_rate": float(entry.forward_rate).hex(),
                "utilization": float(entry.utilization).hex(),
            }
            for entry in params
        ],
    }
    digest = hashlib.sha256(
        json.dumps(observables, sort_keys=True).encode("utf-8")
    ).hexdigest()
    return {
        "backend": backend,
        "variant": variant,
        "digest": digest,
        "observables": observables,
        "model_evaluations": evaluator.total_evaluations,
    }


def _run_traced_cell(spec: DifferentialScenario) -> dict:
    """The serial/base cell again, with tracing and metrics fully on.

    The digest must equal the untraced reference's — the observability
    layer's "observes, never participates" contract, checked bitwise.
    """
    with obs.capture(tracing=True, metrics=True) as cap:
        cell = _run_cell(spec, _REFERENCE[0], _REFERENCE[1])
    cell["variant"] = "traced"
    cell["span_count"] = cap.tracer.span_count
    cell["counter_view"] = dict(cap.snapshot().counter_view())
    return cell


def _metrics_merge_counts(backend: str) -> dict[str, int]:
    """Merged counter totals of a fixed replication workload on ``backend``.

    Each replication's seed is fixed up front, so every backend performs
    identical work; :func:`repro.obs.map_with_metrics` merges the
    per-task snapshots in input order.  Only the integer ``counter_view``
    is returned — histogram sums hold wall-clock floats that legitimately
    differ between runs, while counts cannot.
    """
    from repro.sim.replications import replicate

    with obs.capture(tracing=False, metrics=True) as cap:
        replicate(
            SCENARIOS["quick"].scenario,
            replications=3,
            horizon=400.0,
            warmup=50.0,
            executor=_make_executor(backend),
        )
    return dict(cap.snapshot().counter_view())


def check_metrics_merge() -> dict:
    """Compare merged counter totals across executor backends."""
    counts = {backend: _metrics_merge_counts(backend) for backend in _BACKENDS}
    reference = counts[_BACKENDS[0]]
    mismatched = [
        backend for backend in _BACKENDS[1:] if counts[backend] != reference
    ]
    return {
        "counters": counts,
        "mismatched_backends": mismatched,
        "ok": not mismatched,
    }


def run_differential(spec: DifferentialScenario) -> dict:
    """Run the full backend x variant matrix; returns the JSON-able report.

    The serial/base cell is the reference; every other cell — the traced
    replay included — must match its digest exactly, and the
    metrics-merge section must agree across backends.

    ``matrix="modes"`` scenarios swap the variant axis for the
    approximate model's evaluation modes and reference serial/monolithic
    instead; the traced and metrics-merge sections are omitted there
    (the ``quick`` scenario already holds that part of the contract, and
    K-sweep cells are expensive enough without replays).
    """
    modes_matrix = spec.matrix == "modes"
    variants = _MODES if modes_matrix else _VARIANTS
    cells = [
        _run_cell(spec, backend, variant)
        for backend in _BACKENDS
        for variant in variants
    ]
    by_key = {(cell["backend"], cell["variant"]): cell for cell in cells}
    reference = by_key[_MODES_REFERENCE if modes_matrix else _REFERENCE]
    if modes_matrix:
        metrics_merge = {"counters": {}, "mismatched_backends": [], "ok": True}
    else:
        cells.append(_run_traced_cell(spec))
        metrics_merge = check_metrics_merge()
    mismatches = [
        {
            "backend": cell["backend"],
            "variant": cell["variant"],
            "digest": cell["digest"],
        }
        for cell in cells
        if cell["digest"] != reference["digest"]
    ]
    return {
        "checker": "repro.analysis.differential",
        "format_version": 1,
        "scenario": spec.name,
        "description": spec.description,
        "matrix": spec.matrix,
        "reference": {
            "backend": reference["backend"],
            "variant": reference["variant"],
            "digest": reference["digest"],
        },
        "cells": [
            {
                "backend": cell["backend"],
                "variant": cell["variant"],
                "digest": cell["digest"],
                "model_evaluations": cell["model_evaluations"],
                "match": cell["digest"] == reference["digest"],
            }
            for cell in cells
        ],
        "observables": reference["observables"],
        "metrics_merge": metrics_merge,
        "mismatches": mismatches,
        "ok": not mismatches and metrics_merge["ok"],
    }


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.differential",
        description="cross-backend bitwise-determinism checker",
    )
    parser.add_argument(
        "--scenario",
        choices=sorted(SCENARIOS),
        default="quick",
        help="scenario to play under every configuration (default: quick)",
    )
    parser.add_argument(
        "--output", type=str, default=None, help="write the JSON report here"
    )
    args = parser.parse_args(argv)

    report = run_differential(SCENARIOS[args.scenario])
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)

    for cell in report["cells"]:
        status = "ok" if cell["match"] else "FAIL"
        print(
            f"{status:4s} {cell['backend']:8s} {cell['variant']:7s} "
            f"digest={cell['digest'][:16]} evals={cell['model_evaluations']}"
        )
    if report["matrix"] == "variants":
        merge = report["metrics_merge"]
        merge_status = "ok" if merge["ok"] else "FAIL"
        print(
            f"{merge_status:4s} metrics-merge: counter totals "
            + (
                "identical across backends"
                if merge["ok"]
                else f"diverge on {', '.join(merge['mismatched_backends'])}"
            )
        )
    if report["ok"]:
        print(
            f"all {len(report['cells'])} configurations bit-identical "
            f"(scenario {report['scenario']!r}, "
            f"equilibrium {tuple(report['observables']['equilibrium'])})"
        )
    else:
        print(
            f"{len(report['mismatches'])} of {len(report['cells'])} "
            "configurations diverged from the serial/base reference"
        )
    return 0 if report["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
