"""Runtime stochastic sanitizer: debug-mode contracts for the pipeline.

The performance models, Markov solvers, and market layer exchange
numerical objects whose validity is assumed, not enforced: infinitesimal
generators (rows sum to zero, off-diagonal rates non-negative),
probability distributions (non-negative, sum to one), interaction
outcome matrices (stochastic rows), performance parameters
(``Ibar/Obar/Pbar/rho`` finite and non-negative), utilities (finite),
and disk-cache payloads (well-formed and untampered).  In a parallel
run a single corrupted array can propagate through caches and executors
long before it produces a visibly wrong figure.

This module is the contract layer.  Hooks throughout the library call
the ``check_*`` functions below; each hook is a no-op unless sanitizing
is enabled, so production runs pay one boolean read per hook.  Enable
with the environment variable ``REPRO_SANITIZE=1``, the ``--sanitize``
flag of ``repro.__main__`` / ``repro.bench.runner``, or programmatically
via :func:`sanitize_enable` / the :func:`sanitized` context manager.

On violation the hooks raise :class:`InvariantViolation`, which carries
a machine-readable ``context`` mapping with the offending values (the
row sums that failed, the index of the NaN utility, the mismatched
cache digest) so failures in deep call stacks are diagnosable without a
debugger.

Tolerances follow the library's existing conventions: row sums and
normalization are checked relative to the magnitude of the data, with
absolute floors matching the solvers' residual checks.
"""

from __future__ import annotations

import os
from collections.abc import Iterator, Mapping, Sequence
from contextlib import contextmanager
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.exceptions import SCShareError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    import scipy.sparse as sp

    from repro.perf.params import PerformanceParams

__all__ = [
    "InvariantViolation",
    "check_cache_payload",
    "check_distribution",
    "check_distribution_rows",
    "check_finite",
    "check_generator",
    "check_interaction_vector",
    "check_params",
    "check_stochastic_matrix",
    "check_utilities",
    "check_weights",
    "sanitize_disable",
    "sanitize_enable",
    "sanitize_enabled",
    "sanitized",
]

#: Environment variable that turns the sanitizer on at import time.
SANITIZE_ENV_VAR = "REPRO_SANITIZE"

#: Relative tolerance for "sums to zero/one" checks.
REL_TOL = 1e-8

#: Absolute tolerance floor for the same checks.
ABS_TOL = 1e-9


class InvariantViolation(SCShareError):
    """A runtime numerical invariant was violated.

    Attributes:
        invariant: short machine-readable name of the violated contract
            (``"generator-row-sums"``, ``"distribution-mass"``, ...).
        context: mapping with the offending state — indices, values,
            row sums, digests — attached for post-mortem inspection.
    """

    def __init__(
        self,
        invariant: str,
        message: str,
        context: Mapping[str, Any] | None = None,
    ) -> None:
        super().__init__(f"[{invariant}] {message}")
        self.invariant = invariant
        self.message = message
        self.context: dict[str, Any] = dict(context or {})

    def __reduce__(
        self,
    ) -> tuple[type["InvariantViolation"], tuple[str, str, dict[str, Any]]]:
        # Violations raised inside process-pool workers travel back to
        # the parent by pickle.  The default exception protocol replays
        # ``args`` — here the single pre-formatted string — into a
        # constructor that wants (invariant, message, context), so
        # without this the *unpickling* of the violation raises a
        # TypeError and the real diagnostic is lost.
        return (type(self), (self.invariant, self.message, self.context))


def _env_enabled() -> bool:
    value = os.environ.get(SANITIZE_ENV_VAR, "").strip().lower()
    return value not in ("", "0", "false", "no", "off")


_enabled: bool = _env_enabled()


def sanitize_enabled() -> bool:
    """Whether sanitizer hooks are currently active."""
    return _enabled


def sanitize_enable() -> None:
    """Turn the sanitizer on for this process."""
    # The process-pool worker bootstrap replays this switch in every
    # spawned worker (repro.runtime.executor._worker_bootstrap), which is
    # exactly the mitigation RPR205 asks for.
    global _enabled  # repro: noqa[RPR205]
    _enabled = True


def sanitize_disable() -> None:
    """Turn the sanitizer off for this process."""
    global _enabled  # repro: noqa[RPR205]
    _enabled = False


@contextmanager
def sanitized(active: bool = True) -> Iterator[None]:
    """Context manager scoping sanitizer activation (used by tests)."""
    global _enabled  # repro: noqa[RPR205]
    previous = _enabled
    _enabled = active
    try:
        yield
    finally:
        _enabled = previous


def _violation(
    invariant: str, message: str, context: Mapping[str, Any]
) -> InvariantViolation:
    return InvariantViolation(invariant, message, context)


def check_generator(q: "sp.spmatrix | np.ndarray", label: str = "Q") -> None:
    """Validate a CTMC infinitesimal generator.

    Rows must sum to (approximately) zero and every off-diagonal entry
    must be non-negative; all entries must be finite.
    """
    if not _enabled:
        return
    import scipy.sparse as sp  # local: keep module import light

    dense_diag = (
        q.diagonal() if sp.issparse(q) else np.asarray(q, dtype=float).diagonal()
    )
    data = q.data if sp.issparse(q) else np.asarray(q, dtype=float)
    if data.size and not np.isfinite(data).all():
        raise _violation(
            "generator-finite",
            f"{label} contains non-finite rates",
            {"label": label, "n_nonfinite": int((~np.isfinite(data)).sum())},
        )
    if sp.issparse(q):
        off = q.copy()
        off.setdiag(0.0)
        min_off = float(off.data.min()) if off.nnz else 0.0
    else:
        arr = np.asarray(q, dtype=float)
        off_arr = arr - np.diag(np.diag(arr))
        min_off = float(off_arr.min(initial=0.0))
    scale = max(1.0, float(np.abs(dense_diag).max(initial=0.0)))
    if min_off < -REL_TOL * scale:
        raise _violation(
            "generator-off-diagonal",
            f"{label} has negative off-diagonal rate {min_off:.3e}",
            {"label": label, "min_off_diagonal": min_off, "scale": scale},
        )
    row_sums = np.asarray(q.sum(axis=1)).ravel()
    worst = int(np.abs(row_sums).argmax()) if row_sums.size else 0
    max_residual = float(np.abs(row_sums).max(initial=0.0))
    if max_residual > REL_TOL * scale:
        raise _violation(
            "generator-row-sums",
            f"{label} rows do not sum to zero (max |row sum| = {max_residual:.3e})",
            {
                "label": label,
                "worst_row": worst,
                "row_sum": float(row_sums[worst]),
                "scale": scale,
            },
        )


def check_stochastic_matrix(p: "sp.spmatrix | np.ndarray", label: str = "P") -> None:
    """Validate a DTMC transition matrix: entries in [0, 1], rows sum to 1."""
    if not _enabled:
        return
    import scipy.sparse as sp

    data = p.data if sp.issparse(p) else np.asarray(p, dtype=float)
    if data.size and not np.isfinite(data).all():
        raise _violation(
            "stochastic-finite",
            f"{label} contains non-finite probabilities",
            {"label": label},
        )
    min_entry = float(data.min(initial=0.0)) if data.size else 0.0
    if min_entry < -REL_TOL:
        raise _violation(
            "stochastic-negative",
            f"{label} has negative entry {min_entry:.3e}",
            {"label": label, "min_entry": min_entry},
        )
    row_sums = np.asarray(p.sum(axis=1)).ravel()
    if row_sums.size:
        worst = int(np.abs(row_sums - 1.0).argmax())
        residual = float(abs(row_sums[worst] - 1.0))
        if residual > REL_TOL * max(1.0, float(np.abs(row_sums).max())):
            raise _violation(
                "stochastic-row-sums",
                f"{label} rows do not sum to one (worst residual {residual:.3e})",
                {"label": label, "worst_row": worst, "row_sum": float(row_sums[worst])},
            )


def check_distribution(
    pi: np.ndarray | Sequence[float],
    label: str = "pi",
    tol: float = 1e-6,
) -> None:
    """Validate a probability vector: finite, non-negative, sums to 1."""
    if not _enabled:
        return
    arr = np.asarray(pi, dtype=float).ravel()
    if not np.isfinite(arr).all():
        bad = np.flatnonzero(~np.isfinite(arr))
        raise _violation(
            "distribution-finite",
            f"{label} contains non-finite entries at indices {bad[:8].tolist()}",
            {"label": label, "indices": bad.tolist()},
        )
    min_val = float(arr.min(initial=0.0))
    if min_val < -tol:
        raise _violation(
            "distribution-negative",
            f"{label} has negative probability {min_val:.3e}",
            {"label": label, "min_value": min_val, "index": int(arr.argmin())},
        )
    total = float(arr.sum())
    if abs(total - 1.0) > tol:
        raise _violation(
            "distribution-mass",
            f"{label} sums to {total!r}, expected 1 within {tol:g}",
            {"label": label, "total": total, "tol": tol},
        )


def check_distribution_rows(
    rows: np.ndarray, label: str = "rows", tol: float = 1e-6
) -> None:
    """Validate every row of a matrix as a probability distribution."""
    if not _enabled:
        return
    arr = np.asarray(rows, dtype=float)
    if arr.ndim != 2:
        raise _violation(
            "distribution-shape",
            f"{label} expected a 2-D row-distribution matrix, got ndim={arr.ndim}",
            {"label": label, "shape": tuple(arr.shape)},
        )
    for i in range(arr.shape[0]):
        check_distribution(arr[i], label=f"{label}[{i}]", tol=tol)


def check_interaction_vector(
    probabilities: np.ndarray | Sequence[float],
    label: str = "interaction",
    tol: float = 1e-6,
) -> None:
    """Validate an interaction-probability vector (Sect. III-C coupling)."""
    check_distribution(probabilities, label=label, tol=tol)


def check_weights(
    weights: np.ndarray, label: str = "fox-glynn", tol: float = 1e-6
) -> None:
    """Validate truncated Poisson weights: finite, non-negative, mass ~ 1."""
    check_distribution(weights, label=label, tol=tol)


def check_finite(
    values: np.ndarray | Sequence[float] | float,
    label: str = "values",
) -> None:
    """Validate that a scalar or array is entirely finite."""
    if not _enabled:
        return
    arr = np.asarray(values, dtype=float)
    if not np.isfinite(arr).all():
        flat = arr.ravel()
        bad = np.flatnonzero(~np.isfinite(flat))
        raise _violation(
            "non-finite",
            f"{label} contains non-finite values at flat indices {bad[:8].tolist()}",
            {"label": label, "indices": bad.tolist(), "values": flat[bad][:8].tolist()},
        )


def check_utilities(
    utilities: Sequence[float], label: str = "utilities"
) -> None:
    """Validate per-SC utilities: every entry finite (Eq. 2 outputs)."""
    if not _enabled:
        return
    for i, value in enumerate(utilities):
        if not np.isfinite(value):
            raise _violation(
                "utility-finite",
                f"{label}[{i}] is {value!r}",
                {"label": label, "index": i, "value": float(value)},
            )


def check_params(
    params: "PerformanceParams", label: str = "params"
) -> None:
    """Validate one SC's performance parameters (``Ibar/Obar/Pbar/rho``)."""
    if not _enabled:
        return
    fields = {
        "lent_mean": params.lent_mean,
        "borrowed_mean": params.borrowed_mean,
        "forward_rate": params.forward_rate,
        "utilization": params.utilization,
    }
    for name, value in fields.items():
        if not np.isfinite(value):
            raise _violation(
                "params-finite",
                f"{label}.{name} is {value!r}",
                {"label": label, "field": name, "value": value},
            )
        if value < -ABS_TOL:
            raise _violation(
                "params-negative",
                f"{label}.{name} is negative ({value!r})",
                {"label": label, "field": name, "value": value},
            )
    if params.utilization > 1.0 + 1e-6:
        raise _violation(
            "params-utilization",
            f"{label}.utilization exceeds 1 ({params.utilization!r})",
            {"label": label, "value": params.utilization},
        )


def check_cache_payload(
    payload: Mapping[str, Any],
    expected_digest: str | None,
    stored_digest: str | None,
    label: str = "cache",
) -> None:
    """Validate a disk-cache payload's integrity digest.

    The persistent caches store a content hash next to every payload;
    loading recomputes it.  A mismatch means on-disk tampering or
    corruption that still parsed as JSON — under the sanitizer this is
    an error rather than a silent cache miss, because a corrupt shared
    cache directory usually indicates a bug worth surfacing (partial
    writes are already impossible by the atomic-rename protocol).
    """
    if not _enabled:
        return
    if stored_digest is None or expected_digest is None:
        return
    if stored_digest != expected_digest:
        raise _violation(
            "cache-digest",
            f"{label} payload digest mismatch "
            f"(stored {stored_digest[:12]}..., recomputed {expected_digest[:12]}...)",
            {
                "label": label,
                "stored": stored_digest,
                "recomputed": expected_digest,
                "keys": sorted(payload),
            },
        )
