"""Determinism taint rules (RPR302, RPR303, RPR305).

The differential checker asserts bitwise-identical equilibria across
serial/thread/process backends, and every fingerprint must be a pure
function of content.  These rules trace the ways nondeterminism leaks
into those guarantees:

=======  ==============================================================
Code     Contract
=======  ==============================================================
RPR302   Unordered-collection order must not feed float accumulation or
         digests: iterating a set (or ``as_completed``, ``os.listdir``,
         ``glob`` results) into a ``sum``/``fsum``/``+=`` accumulator or
         a digest makes the result depend on iteration order — float
         addition is not associative.  Launder through ``sorted()``.
RPR303   Environment taint (``os.environ``, wall clock, ``platform``,
         salted builtin ``hash()``) must not reach fingerprints,
         persisted payloads, or digests: keys must be pure functions of
         content, or a restart silently invalidates every cache entry —
         or worse, two hosts disagree about the same content.
RPR305   Thread-/backend-dependent state (thread ids, pids,
         ``as_completed`` completion order) must not reach observables
         or digests asserted bit-identical by
         :mod:`repro.analysis.differential` — the assertion would then
         fail (or pass) for scheduling reasons, not correctness ones.
=======  ==============================================================

All three share the slice/summary machinery of
:mod:`repro.analysis.summaries`; suppression is the standard
``# repro: noqa[RPR3xx]``.
"""

from __future__ import annotations

import ast
import re

from repro.analysis.lintbase import LintRule, Violation, attribute_chain
from repro.analysis.summaries import (
    TAINT_ENV,
    TAINT_THREAD,
    TAINT_UNORDERED,
    FunctionInfo,
    Project,
    SliceResult,
    TaintHit,
)

__all__ = [
    "DETERMINISM_RULES",
    "RPR302",
    "RPR303",
    "RPR305",
    "check_determinism",
]

RPR302 = LintRule(
    code="RPR302",
    name="unordered-float-accumulation",
    summary="set/listing iteration order feeds a float sum, digest, or observable",
)
RPR303 = LintRule(
    code="RPR303",
    name="environment-taint-in-fingerprint",
    summary="os.environ / wall-clock / platform / hash() reaches a fingerprint or payload",
)
RPR305 = LintRule(
    code="RPR305",
    name="backend-state-in-observables",
    summary="thread/pid/as_completed state reaches bit-identical observables or digests",
)

#: All determinism rules, in code order.
DETERMINISM_RULES: tuple[LintRule, ...] = (RPR302, RPR303, RPR305)

#: Order-sensitive reductions over floats.
_ACCUMULATORS = frozenset({"sum", "fsum", "prod", "nansum", "cumsum"})

#: Function names whose return value the differential checker digests.
_OBSERVABLE_NAME = re.compile(r"observable", re.IGNORECASE)


def _violation(path: str, node: ast.AST, rule: LintRule, message: str) -> Violation:
    return Violation(
        path=path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0) + 1,
        code=rule.code,
        message=message,
    )


def _hits(sliced: SliceResult, kind: str) -> list[TaintHit]:
    return sorted(
        (hit for hit in sliced.taints if hit.kind == kind),
        key=lambda hit: (hit.line, hit.col, hit.what),
    )


def _sinks(
    project: Project, fn: FunctionInfo
) -> list[tuple[ast.AST, str, SliceResult]]:
    """Every taint sink of ``fn``: ``(node, description, slice)``.

    Sinks: arguments of ``hashlib.*`` digests, persisted payloads, the
    return value of fingerprint functions, and the return value of
    observable-builder functions (what the differential checker asserts
    bit-identical).
    """
    slicer = project.slicer(fn)
    sinks: list[tuple[ast.AST, str, SliceResult]] = []
    for call in slicer.digest_calls():
        combined = SliceResult()
        for arg in call.args:
            combined.merge(slicer.trace(arg))
        sinks.append((call, "digest", combined))
    for call, payload in slicer.persist_calls():
        sinks.append((call, "persisted payload", slicer.trace(payload)))
    is_observable = _OBSERVABLE_NAME.search(fn.name) is not None
    if fn.is_fingerprint or is_observable:
        description = "fingerprint" if fn.is_fingerprint else "observables"
        sliced = project.return_slice(fn)
        sinks.append((fn.node, description, sliced))
    return sinks


def _check_sinks(project: Project, fn: FunctionInfo) -> list[Violation]:
    violations: list[Violation] = []
    for node, description, sliced in _sinks(project, fn):
        for hit in _hits(sliced, TAINT_ENV):
            violations.append(
                _violation(
                    fn.path,
                    node,
                    RPR303,
                    f"environment state ({hit.what}, line {hit.line}) flows "
                    f"into the {description} built by {fn.qualname}; "
                    "fingerprints and persisted payloads must be pure "
                    "functions of content — pass the value in explicitly "
                    "or drop it from the key",
                )
            )
        for hit in _hits(sliced, TAINT_THREAD):
            violations.append(
                _violation(
                    fn.path,
                    node,
                    RPR305,
                    f"scheduling-dependent state ({hit.what}, line "
                    f"{hit.line}) flows into the {description} built by "
                    f"{fn.qualname}; the differential checker asserts "
                    "these bit-identical across serial/thread/process "
                    "backends — derive the value from content or task "
                    "identity instead",
                )
            )
        for hit in _hits(sliced, TAINT_UNORDERED):
            violations.append(
                _violation(
                    fn.path,
                    node,
                    RPR302,
                    f"unordered iteration ({hit.what}, line {hit.line}) "
                    f"reaches the {description} built by {fn.qualname}; "
                    "order it first (sorted(...)) so the bytes cannot "
                    "depend on hash seeding or completion order",
                )
            )
    return violations


def _check_tainted_sink_args(project: Project, fn: FunctionInfo) -> list[Violation]:
    """Tainted arguments handed to a callee that digests/persists them."""
    slicer = project.slicer(fn)
    violations: list[Violation] = []
    for node in ast.walk(fn.node):
        if not isinstance(node, ast.Call):
            continue
        callee = project.resolve_call(fn, node)
        if callee is None:
            continue
        summary = project.summary(callee)
        if not summary.sink_params:
            continue
        positional = [
            a
            for a in (
                *callee.node.args.posonlyargs,
                *callee.node.args.args,
            )
            if a.arg not in ("self", "cls")
        ]
        pairs: list[tuple[str, ast.expr]] = []
        for index, arg in enumerate(node.args):
            if index < len(positional):
                pairs.append((positional[index].arg, arg))
        for keyword in node.keywords:
            if keyword.arg is not None:
                pairs.append((keyword.arg, keyword.value))
        for param, arg in pairs:
            if param not in summary.sink_params:
                continue
            sliced = slicer.trace(arg)
            for kind, rule, noun in (
                (TAINT_ENV, RPR303, "environment state"),
                (TAINT_THREAD, RPR305, "scheduling-dependent state"),
                (TAINT_UNORDERED, RPR302, "unordered iteration order"),
            ):
                for hit in _hits(sliced, kind):
                    violations.append(
                        _violation(
                            fn.path,
                            node,
                            rule,
                            f"{noun} ({hit.what}, line {hit.line}) is passed "
                            f"as {param!r} to {callee.qualname}, which feeds "
                            "it into a digest or persisted payload",
                        )
                    )
    return violations


def _check_accumulation(project: Project, fn: FunctionInfo) -> list[Violation]:
    """RPR302 over explicit accumulation sites (sum() and += loops)."""
    slicer = project.slicer(fn)
    violations: list[Violation] = []
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Call):
            chain = attribute_chain(node.func)
            if chain and chain[-1] in _ACCUMULATORS and node.args:
                sliced = slicer.trace(node.args[0])
                for hit in _hits(sliced, TAINT_UNORDERED):
                    violations.append(
                        _violation(
                            fn.path,
                            node,
                            RPR302,
                            f"{'.'.join(chain)}() accumulates over an "
                            f"unordered iterable ({hit.what}, line "
                            f"{hit.line}); float addition is not "
                            "associative, so the total depends on "
                            "iteration order — sort first",
                        )
                    )
        elif isinstance(node, ast.For):
            sliced = slicer.trace(node.iter)
            hits = _hits(sliced, TAINT_UNORDERED)
            if not hits:
                continue
            for sub in ast.walk(node):
                if isinstance(sub, ast.AugAssign) and isinstance(sub.op, ast.Add):
                    violations.append(
                        _violation(
                            fn.path,
                            sub,
                            RPR302,
                            f"'+=' accumulation inside a loop over an "
                            f"unordered iterable ({hits[0].what}, line "
                            f"{hits[0].line}); the running total depends "
                            "on iteration order — iterate "
                            "sorted(...) instead",
                        )
                    )
    return violations


def check_determinism(project: Project) -> list[Violation]:
    """Evaluate RPR302/RPR303/RPR305 over every function of ``project``."""
    violations: list[Violation] = []
    for fn in project.functions:
        violations.extend(_check_sinks(project, fn))
        violations.extend(_check_tainted_sink_args(project, fn))
        violations.extend(_check_accumulation(project, fn))
    return violations
