"""Hot-path performance lint (RPR401-RPR406).

The rules only fire *inside hot regions* as classified by
:class:`~repro.analysis.hotness.HotnessIndex` (annotation roots +
may-call closure + committed profile evidence), which keeps the signal
high: a ``.toarray()`` in a cold admin helper is fine; the same call in
a solver inner loop is a silent 10x.

Rules
-----

RPR401
    Dense materialization of a sparse matrix (``.toarray()`` /
    ``.todense()``) anywhere in a hot function.  Densifying turns the
    O(nnz) sparse pipeline into O(n^2) memory traffic.
RPR402
    A per-element Python ``for`` loop over an ndarray whose body is pure
    element arithmetic (no calls, no loop-carried reads) — the shape
    NumPy vectorizes directly.  Loops that call helpers per element or
    carry values across iterations are *not* flagged; the restriction is
    what keeps Fox-Glynn stepping and dict-building reductions clean.
RPR403
    A loop-invariant expensive call — fingerprint/key/hash construction
    (:data:`~repro.analysis.summaries.FINGERPRINT_NAME`) or a deep
    (>= 3 links) attribute-chain call — inside a hot loop.  Invariance
    is proven syntactically: no name the call reads is bound by the
    innermost loop.  Hoist it one level out.
RPR404
    Allocation churn in a hot function: string ``+=`` in a loop,
    a ``range()`` loop that only ``.append()``\\ s to a list initialized
    empty (build it with a comprehension or preallocate), or
    ``list.pop(0)`` FIFO discipline (O(n) per pop — use
    ``collections.deque.popleft``).
RPR405
    An ``obs``/logging call whose message is eagerly formatted
    (f-string, ``+`` concatenation, ``%``, ``.format``) without an
    enable-flag guard.  Formatting runs even when tracing/metrics are
    disabled; hot paths must pass constants or guard with
    ``obs.tracing_active()`` / ``obs.metrics_active()``.
RPR406
    Per-element lock acquisition (``with <lock>:`` inside a loop) or a
    per-element cache lookup (``<cache>.get(...)`` in a loop) where the
    batch APIs (``get_or_create``, ``map_with_metrics``) already exist.

Suppression uses the shared per-line protocol:
``# repro: noqa[RPR401]`` with a reason comment.

The mutation self-test (``--self-test``) injects each anti-pattern into
every ``# hot-path``-annotated function of the analyzed tree and demands
100% detection — measured recall on real code, not assumed.
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Sequence, TextIO

from repro.analysis.hotness import (
    DEFAULT_PROFILE_PATH,
    HotnessIndex,
    ProfileEvidence,
)
from repro.analysis.lintbase import (
    LintRule,
    Violation,
    apply_noqa,
    attribute_chain,
    render_json,
)
from repro.analysis.summaries import (
    FunctionInfo,
    ModuleInfo,
    Project,
    is_fingerprint_name,
    load_sources,
)

__all__ = [
    "PERF_RULES",
    "MutantOutcome",
    "analyze_paths",
    "analyze_sources",
    "main",
    "run_self_test",
]

#: Every RPR4xx rule, in code order.
PERF_RULES: tuple[LintRule, ...] = (
    LintRule(
        "RPR401",
        "hot-dense-materialization",
        "sparse matrix densified (.toarray/.todense) in a hot function",
    ),
    LintRule(
        "RPR402",
        "hot-elementwise-loop",
        "per-element Python loop over an ndarray that vectorizes directly",
    ),
    LintRule(
        "RPR403",
        "hot-loop-invariant-call",
        "loop-invariant expensive call (key/hash/deep chain) in a hot loop",
    ),
    LintRule(
        "RPR404",
        "hot-allocation-churn",
        "string +=, append-only range loop, or list.pop(0) churn in hot code",
    ),
    LintRule(
        "RPR405",
        "hot-eager-format",
        "eagerly formatted obs/log message without an enable-flag guard",
    ),
    LintRule(
        "RPR406",
        "hot-per-element-locking",
        "per-element lock/cache access in a loop where a batch API exists",
    ),
)

_RULE_BY_CODE = {rule.code: rule for rule in PERF_RULES}

_DENSIFIERS = frozenset({"toarray", "todense"})
_OBS_HEADS = frozenset({"obs", "logging", "logger", "log"})
_OBS_TAILS = frozenset(
    {
        "inc",
        "observe",
        "gauge",
        "add_event",
        "span",
        "event",
        "debug",
        "info",
        "warning",
        "error",
        "exception",
        "log",
    }
)
_GUARD_TAILS = frozenset(
    {"tracing_active", "metrics_active", "profiling_active", "enabled", "is_enabled"}
)
_LOCK_NAME = re.compile(r"(lock|mutex|sem)", re.IGNORECASE)
_CACHE_NAME = re.compile(r"(cache|memo)", re.IGNORECASE)

#: Attribute chains at least this long count as "deep" for RPR403.
_DEEP_CHAIN = 3

#: Cheap O(1) container/synchronization operations: a deep chain ending
#: in one of these is not an "expensive call" (RPR403), however long the
#: chain — re-checking them per iteration is often the algorithm.
_CHEAP_TAILS = frozenset(
    {
        "get",
        "pop",
        "popitem",
        "popleft",
        "setdefault",
        "move_to_end",
        "append",
        "appendleft",
        "add",
        "update",
        "remove",
        "discard",
        "clear",
        "extend",
        "insert",
        "items",
        "keys",
        "values",
        "wait",
        "set",
        "acquire",
        "release",
    }
)


def _numpy_aliases(module: ModuleInfo) -> set[str]:
    aliases = {
        alias
        for alias, target in module.import_aliases.items()
        if target == "numpy" or target.startswith("numpy.")
    }
    aliases.update(
        local
        for local, (target, _name) in module.imported_names.items()
        if target == "numpy" or target.startswith("numpy.")
    )
    return aliases


def _assigned_names(node: ast.AST) -> set[str]:
    """Every plain name bound by statements under ``node``."""
    names: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Store):
            names.add(sub.id)
        elif isinstance(sub, ast.NamedExpr) and isinstance(sub.target, ast.Name):
            names.add(sub.target.id)
    return names


def _loaded_names(node: ast.AST) -> set[str]:
    return {
        sub.id
        for sub in ast.walk(node)
        if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load)
    }


@dataclass
class _Loop:
    node: ast.For | ast.While
    bound: set[str] = field(default_factory=set)


class _HotFunctionChecker:
    """Applies RPR401-406 to one hot function."""

    def __init__(
        self,
        module: ModuleInfo,
        fn: FunctionInfo,
        out: list[Violation],
    ) -> None:
        self.module = module
        self.fn = fn
        self.out = out
        self.numpy = _numpy_aliases(module)
        self.loops: list[_Loop] = []
        self.guard_depth = 0
        self.str_names: set[str] = set()
        self.ndarray_names: set[str] = set()
        self.empty_lists: set[str] = set()
        self._prepass()

    # -- prepass: local type facts --------------------------------------

    def _prepass(self) -> None:
        for node in ast.walk(self.fn.node):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            value = node.value
            if isinstance(value, ast.Constant) and isinstance(value.value, str):
                self.str_names.add(target.id)
            elif isinstance(value, ast.JoinedStr):
                self.str_names.add(target.id)
            elif isinstance(value, ast.List) and not value.elts:
                self.empty_lists.add(target.id)
            elif isinstance(value, ast.Call):
                chain = attribute_chain(value.func)
                if chain and (
                    chain[0] in self.numpy or chain[-1] in _DENSIFIERS
                ):
                    self.ndarray_names.add(target.id)
        for arg in (
            *self.fn.node.args.posonlyargs,
            *self.fn.node.args.args,
            *self.fn.node.args.kwonlyargs,
        ):
            if arg.annotation is not None:
                try:
                    rendered = ast.unparse(arg.annotation)
                except Exception:  # pragma: no cover - defensive
                    continue
                if "ndarray" in rendered or "NDArray" in rendered:
                    self.ndarray_names.add(arg.arg)

    # -- helpers ---------------------------------------------------------

    def _flag(self, node: ast.AST, code: str, message: str) -> None:
        self.out.append(
            Violation(
                path=self.fn.path,
                line=getattr(node, "lineno", self.fn.node.lineno),
                col=getattr(node, "col_offset", 0),
                code=code,
                message=f"{message} [in hot function {self.fn.qualname}]",
            )
        )

    def _is_guarded(self, test: ast.expr) -> bool:
        for sub in ast.walk(test):
            chain = attribute_chain(
                sub.func if isinstance(sub, ast.Call) else sub
            )
            if chain and (
                chain[-1] in _GUARD_TAILS or chain[-1].endswith("_active")
            ):
                return True
        return False

    # -- walk ------------------------------------------------------------

    def check(self) -> None:
        for stmt in self.fn.node.body:
            self._visit(stmt)

    def _visit(self, node: ast.AST) -> None:
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
        ):
            return  # nested scopes run elsewhere; out of this rule set
        if isinstance(node, ast.For):
            self._check_elementwise(node)
            self._check_append_only(node)
            self._visit(node.iter)  # header evaluates once, outside the loop
            self.loops.append(_Loop(node=node, bound=self._loop_bound(node)))
            for stmt in (*node.body, *node.orelse):
                self._visit(stmt)
            self.loops.pop()
            return
        if isinstance(node, ast.While):
            self.loops.append(_Loop(node=node, bound=self._loop_bound(node)))
            self._visit(node.test)
            for stmt in (*node.body, *node.orelse):
                self._visit(stmt)
            self.loops.pop()
            return
        if isinstance(node, ast.If):
            guarded = self._is_guarded(node.test)
            self._visit(node.test)
            if guarded:
                self.guard_depth += 1
            for stmt in node.body:
                self._visit(stmt)
            if guarded:
                self.guard_depth -= 1
            for stmt in node.orelse:
                self._visit(stmt)
            return
        if isinstance(node, ast.With):
            if self.loops and isinstance(self.loops[-1].node, ast.For):
                self._check_lock_in_loop(node)
            for item in node.items:
                self._visit(item.context_expr)
            for stmt in node.body:
                self._visit(stmt)
            return
        if isinstance(node, ast.AugAssign):
            self._check_str_concat(node)
        if isinstance(node, ast.Call):
            self._check_call(node)
        for child in ast.iter_child_nodes(node):
            self._visit(child)

    def _loop_bound(self, node: ast.For | ast.While) -> set[str]:
        bound: set[str] = set()
        if isinstance(node, ast.For):
            bound |= _assigned_names(node.target)
        for stmt in (*node.body, *getattr(node, "orelse", ())):
            bound |= _assigned_names(stmt)
        return bound

    # -- RPR401 / RPR403 / RPR404(c) / RPR405 / RPR406(b) on calls -------

    def _check_call(self, call: ast.Call) -> None:
        chain = attribute_chain(call.func)
        # Attribute checks use ``attr`` directly: the receiver may be any
        # expression (``qt[1:, 0].toarray()``), not just a name chain.
        attr = call.func.attr if isinstance(call.func, ast.Attribute) else None
        if attr in _DENSIFIERS:
            self._flag(
                call,
                "RPR401",
                f"dense materialization '.{attr}()' on the hot path; "
                "keep the sparse pipeline (or justify with a noqa reason)",
            )
        if (
            attr == "pop"
            and call.args
            and isinstance(call.args[0], ast.Constant)
            and call.args[0].value == 0
        ):
            self._flag(
                call,
                "RPR404",
                "list.pop(0) is O(n) per pop; use collections.deque.popleft()",
            )
        # Per-element reasoning (RPR403/RPR406) applies to ``for`` loops;
        # ``while`` retry/convergence loops (single-flight re-checks,
        # fixed-point iteration) re-evaluate state by design.
        if self.loops and chain and isinstance(self.loops[-1].node, ast.For):
            self._check_invariant_call(call, chain)
            self._check_cache_in_loop(call, chain)
        self._check_eager_format(call, chain)

    def _check_invariant_call(self, call: ast.Call, chain: list[str]) -> None:
        expensive = is_fingerprint_name(chain[-1]) or (
            len(chain) >= _DEEP_CHAIN and chain[-1] not in _CHEAP_TAILS
        )
        if not expensive:
            return
        bound = self.loops[-1].bound
        if _loaded_names(call) & bound:
            return
        kind = (
            "fingerprint/key construction"
            if is_fingerprint_name(chain[-1])
            else "deep attribute-chain call"
        )
        self._flag(
            call,
            "RPR403",
            f"loop-invariant {kind} '{'.'.join(chain)}(...)'; "
            "hoist it out of the loop",
        )

    def _check_cache_in_loop(self, call: ast.Call, chain: list[str]) -> None:
        if chain[-1] != "get" or len(chain) < 2:
            return
        receiver = chain[-2]
        if not _CACHE_NAME.search(receiver):
            return
        if self._writes_receiver(receiver):
            return  # check-then-fill memo: the lookup IS the cache discipline
        self._flag(
            call,
            "RPR406",
            f"per-element cache lookup '{'.'.join(chain)}(...)' in a loop; "
            "batch through get_or_create/map_with_metrics",
        )

    def _writes_receiver(self, receiver: str) -> bool:
        """Whether the function stores into ``receiver`` anywhere.

        ``recv[key] = ...``, ``recv.put(...)`` or ``recv.setdefault(...)``
        mark a check-then-fill memo over ``receiver``; its per-element
        ``.get`` is the caching discipline itself, not a missed batch.
        """
        for node in ast.walk(self.fn.node):
            if (
                isinstance(node, ast.Subscript)
                and isinstance(node.ctx, ast.Store)
                and attribute_chain(node.value)[-1:] == [receiver]
            ):
                return True
            if isinstance(node, ast.Call):
                chain = attribute_chain(node.func)
                if (
                    len(chain) >= 2
                    and chain[-1] in ("put", "setdefault")
                    and chain[-2] == receiver
                ):
                    return True
        return False

    @staticmethod
    def _is_eager_format(node: ast.expr) -> bool:
        if isinstance(node, ast.JoinedStr):
            return any(isinstance(v, ast.FormattedValue) for v in node.values)
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, ast.Mod):
                left = node.left
                return isinstance(left, ast.Constant) and isinstance(left.value, str)
            if isinstance(node.op, ast.Add):
                return any(
                    (isinstance(side, ast.Constant) and isinstance(side.value, str))
                    or isinstance(side, ast.JoinedStr)
                    for side in (node.left, node.right)
                )
        if isinstance(node, ast.Call):
            chain = attribute_chain(node.func)
            return bool(chain) and chain[-1] == "format" and len(chain) >= 2
        return False

    def _check_eager_format(self, call: ast.Call, chain: list[str]) -> None:
        if not chain or len(chain) < 2:
            return
        if chain[0] not in _OBS_HEADS or chain[-1] not in _OBS_TAILS:
            return
        if self.guard_depth > 0:
            return
        values = list(call.args) + [kw.value for kw in call.keywords]
        for value in values:
            if self._is_eager_format(value):
                self._flag(
                    call,
                    "RPR405",
                    f"eagerly formatted message in '{'.'.join(chain)}(...)'; "
                    "pass a constant name or guard with "
                    "obs.tracing_active()/obs.metrics_active()",
                )
                return

    # -- RPR402: trivially vectorizable element loop ---------------------

    def _iterates_ndarray(self, node: ast.For) -> str | None:
        """The ndarray name ``node`` iterates (directly or via range)."""
        iter_node = node.iter
        if isinstance(iter_node, ast.Name) and iter_node.id in self.ndarray_names:
            return iter_node.id
        if not (isinstance(iter_node, ast.Call) and not iter_node.keywords):
            return None
        chain = attribute_chain(iter_node.func)
        if chain != ["range"] or len(iter_node.args) != 1:
            return None
        arg = iter_node.args[0]
        if (
            isinstance(arg, ast.Call)
            and attribute_chain(arg.func) == ["len"]
            and len(arg.args) == 1
            and isinstance(arg.args[0], ast.Name)
            and arg.args[0].id in self.ndarray_names
        ):
            return arg.args[0].id
        if isinstance(arg, ast.Subscript):
            chain = attribute_chain(arg.value)
            if (
                len(chain) == 2
                and chain[1] == "shape"
                and chain[0] in self.ndarray_names
            ):
                return chain[0]
        return None

    def _check_elementwise(self, node: ast.For) -> None:
        array = self._iterates_ndarray(node)
        if array is None or node.orelse:
            return
        stores: set[str] = set()
        for stmt in node.body:
            if not isinstance(stmt, (ast.Assign, ast.AugAssign)):
                return
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Call):
                    return  # helper calls per element: not trivially vectorizable
            if isinstance(stmt, ast.Assign):
                stores |= _assigned_names(stmt)
        # A plain-Assign target read back in the body is a loop-carried
        # dependency (recurrence); AugAssign accumulators reduce fine.
        for stmt in node.body:
            value = stmt.value
            if _loaded_names(value) & stores:
                return
        self._flag(
            node,
            "RPR402",
            f"per-element Python loop over ndarray '{array}' with pure "
            "arithmetic body; use a vectorized NumPy expression",
        )

    # -- RPR404(a,b) -----------------------------------------------------

    def _check_str_concat(self, node: ast.AugAssign) -> None:
        if not self.loops or not isinstance(node.op, ast.Add):
            return
        if isinstance(node.target, ast.Name) and node.target.id in self.str_names:
            self._flag(
                node,
                "RPR404",
                f"string '+=' on '{node.target.id}' in a hot loop is O(n^2); "
                "collect parts and ''.join() once",
            )

    def _check_append_only(self, node: ast.For) -> None:
        if node.orelse or len(node.body) != 1:
            return
        stmt = node.body[0]
        if not (isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call)):
            return
        chain = attribute_chain(stmt.value.func)
        if len(chain) != 2 or chain[-1] != "append":
            return
        if chain[0] not in self.empty_lists:
            return
        iter_chain = (
            attribute_chain(node.iter.func)
            if isinstance(node.iter, ast.Call)
            else []
        )
        if iter_chain != ["range"]:
            return
        self._flag(
            node,
            "RPR404",
            f"range loop only appends to '{chain[0]}'; build it with a list "
            "comprehension (known size, one allocation)",
        )

    # -- RPR406(a) -------------------------------------------------------

    def _check_lock_in_loop(self, node: ast.With) -> None:
        for item in node.items:
            expr = item.context_expr
            target = expr.func if isinstance(expr, ast.Call) else expr
            chain = attribute_chain(target)
            if chain and _LOCK_NAME.search(chain[-1]):
                self._flag(
                    node,
                    "RPR406",
                    f"lock '{'.'.join(chain)}' acquired per loop iteration; "
                    "acquire once outside the loop or use a batch API",
                )
                return


# -- analysis entry points -----------------------------------------------


def analyze_sources(
    sources: Mapping[str, str],
    select: Sequence[str] | None = None,
    noqa: bool = True,
    parsed: Mapping[str, ast.Module] | None = None,
    profile: ProfileEvidence | None = None,
    extra_roots: tuple[str, ...] = (),
) -> list[Violation]:
    """Run RPR401-406 over the hot regions of ``sources``.

    Args:
        sources: mapping of file path to module source text.
        select: optional rule codes to keep (default: all).
        noqa: honour ``# repro: noqa[...]`` suppressions (the mutation
            self-test disables this so suppressions cannot mask a miss).
        parsed: optional pre-parsed trees, keyed by path.
        profile: committed profile evidence fused into the hotness index.
        extra_roots: extra root qualnames forced hot (tests/self-test).
    """
    project = Project(sources, parsed=parsed)
    index = HotnessIndex(project, profile, extra_roots=extra_roots)
    violations: list[Violation] = []
    for fn in project.functions:
        if not index.is_hot(fn):
            continue
        _HotFunctionChecker(project.modules[fn.path], fn, violations).check()
    if noqa:
        by_path: dict[str, list[Violation]] = {}
        for violation in violations:
            by_path.setdefault(violation.path, []).append(violation)
        violations = []
        for path, group in by_path.items():
            violations.extend(apply_noqa(group, sources.get(path, "")))
    if select is not None:
        wanted = {code.upper() for code in select}
        violations = [v for v in violations if v.code in wanted]
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    return violations


def analyze_paths(
    paths: Sequence[Path],
    select: Sequence[str] | None = None,
    noqa: bool = True,
    profile: ProfileEvidence | None = None,
) -> list[Violation]:
    """Analyze every ``.py`` file under ``paths``."""
    return analyze_sources(
        load_sources(paths), select=select, noqa=noqa, profile=profile
    )


# -- mutation self-test --------------------------------------------------


@dataclass
class MutantOutcome:
    """One injected anti-pattern mutant and whether its rule caught it."""

    path: str
    qualname: str
    code: str
    caught: bool

    def render(self) -> str:
        status = "caught" if self.caught else "MISSED"
        return (
            f"self-test: {self.path}:{self.qualname} :: inject {self.code} "
            f"-> {status}"
        )


#: Injection snippets per rule.  ``{np}`` is the module's NumPy alias.
#: Names are ``___``-prefixed so mutants cannot collide with real
#: bindings; mutants are parsed and linted, never executed.
_SNIPPETS: dict[str, tuple[str | None, tuple[str, ...]]] = {
    "RPR401": (None, ("___dense = ___matrix.toarray()",)),
    "RPR402": (
        "numpy",
        (
            "___arr = {np}.zeros(16)",
            "___acc = 0.0",
            "for ___i in range(len(___arr)):",
            "    ___acc += ___arr[___i] * 2.0",
        ),
    ),
    "RPR403": (
        None,
        (
            "for ___i in range(8):",
            "    ___k = ___scope.___registry.make_cache_key()",
        ),
    ),
    "RPR404": (
        None,
        (
            "___buf = ''",
            "for ___i in range(8):",
            "    ___buf += 'x'",
        ),
    ),
    "RPR405": ("obs", ("obs.inc('___probe.' + ___label)",)),
    "RPR406": (
        None,
        (
            "for ___i in range(8):",
            "    with ___page_lock:",
            "        ___val = ___i",
        ),
    ),
}


def _module_requirement_met(module: ModuleInfo, requirement: str | None) -> bool:
    if requirement is None:
        return True
    if requirement == "numpy":
        return bool(_numpy_aliases(module))
    if requirement == "obs":
        return "obs" in module.imported_names or "obs" in module.import_aliases
    return False  # pragma: no cover - unknown requirement


def _inject(module: ModuleInfo, fn: FunctionInfo, lines: tuple[str, ...]) -> str | None:
    """Module source with ``lines`` spliced before ``fn``'s first statement."""
    body = fn.node.body
    if not body or body[0].lineno <= fn.node.lineno:
        return None  # one-liner def; nowhere to splice
    insert_at = body[0].lineno  # 1-based line of the first statement
    src_lines = module.source.splitlines(keepends=True)
    first = src_lines[insert_at - 1]
    indent = first[: len(first) - len(first.lstrip())]
    np_alias = next(iter(sorted(_numpy_aliases(module))), "np")
    spliced = [indent + line.format(np=np_alias) + "\n" for line in lines]
    return "".join(src_lines[: insert_at - 1] + spliced + src_lines[insert_at - 1 :])


def run_self_test(paths: Sequence[Path], stream: TextIO | None = None) -> int:
    """Inject each anti-pattern into every annotated hot root; demand 100%.

    Each file is analyzed in isolation per mutant (the ``# hot-path``
    annotation survives injection, so the target function is a root of
    its own single-file hotness index) — measured recall on the real
    hot functions, one small re-index per mutant.
    """
    if stream is None:
        stream = sys.stdout
    sources = load_sources(paths)
    outcomes: list[MutantOutcome] = []
    skipped: list[str] = []
    for path in sorted(sources):
        baseline = Project({path: sources[path]})
        index = HotnessIndex(baseline)
        roots = [fn for fn in baseline.functions if index.record(fn).kind == "root"]
        module = baseline.modules.get(path)
        if module is None or not roots:
            continue
        for fn in roots:
            fn_line = fn.node.body[0].lineno if fn.node.body else fn.node.lineno
            for code, (requirement, lines) in sorted(_SNIPPETS.items()):
                if not _module_requirement_met(module, requirement):
                    skipped.append(f"{path}:{fn.qualname} {code} (missing import)")
                    continue
                mutated = _inject(module, fn, lines)
                if mutated is None:
                    skipped.append(f"{path}:{fn.qualname} {code} (one-line def)")
                    continue
                findings = analyze_sources({path: mutated}, noqa=False)
                span = range(fn_line, fn_line + len(lines) + 1)
                caught = any(
                    v.code == code and v.line in span for v in findings
                )
                outcomes.append(
                    MutantOutcome(
                        path=path, qualname=fn.qualname, code=code, caught=caught
                    )
                )
    for outcome in outcomes:
        print(outcome.render(), file=stream)
    for entry in skipped:
        print(f"self-test: skipped: {entry}", file=stream)
    caught_count = sum(1 for outcome in outcomes if outcome.caught)
    total = len(outcomes)
    percent = 100.0 * caught_count / total if total else 0.0
    print(
        f"self-test: {caught_count}/{total} injected anti-pattern mutants "
        f"caught ({percent:.0f}%)",
        file=stream,
    )
    if total == 0:
        print("self-test: no # hot-path annotated functions found", file=stream)
        return 1
    return 0 if caught_count == total else 1


# -- CLI -----------------------------------------------------------------


def _parse_select(raw: str | None) -> list[str] | None:
    """Parse ``--select``; raises :class:`ValueError` on unknown codes."""
    if raw is None:
        return None
    codes = [code.strip().upper() for code in raw.split(",") if code.strip()]
    unknown = [code for code in codes if code not in _RULE_BY_CODE]
    if unknown:
        raise ValueError(
            f"unknown rule code(s): {', '.join(unknown)} "
            f"(known: {', '.join(sorted(_RULE_BY_CODE))}; RPR1xx/RPR2xx "
            "run through python -m repro.analysis.lint and RPR3xx through "
            "python -m repro.analysis.dataflow)"
        )
    return codes


def _load_profile(option: str | None, disabled: bool) -> ProfileEvidence | None:
    if disabled:
        return None
    if option is not None:
        return ProfileEvidence.load(Path(option))
    if DEFAULT_PROFILE_PATH.exists():
        return ProfileEvidence.load(DEFAULT_PROFILE_PATH)
    return None


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code (0 clean, 1
    violations or self-test misses, 2 usage error)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.perf_lint",
        description="Hot-path performance lint (RPR401-RPR406): dense "
        "materialization, unvectorized element loops, loop-invariant "
        "expensive calls, allocation churn, eager trace formatting, and "
        "per-element locking — applied only inside statically/profile-"
        "classified hot regions.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        default=[Path("src")],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated RPR4xx codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="inject each anti-pattern into annotated hot functions and "
        "verify 100%% detection",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="violation output format (default: text)",
    )
    parser.add_argument(
        "--profile",
        metavar="FILE",
        help="profile evidence JSON to fuse into the hotness index "
        f"(default: {DEFAULT_PROFILE_PATH} when present)",
    )
    parser.add_argument(
        "--no-profile",
        action="store_true",
        help="static hotness only; ignore committed profile evidence",
    )
    options = parser.parse_args(argv)
    if options.list_rules:
        for rule in PERF_RULES:
            print(f"{rule.code}  {rule.name:32s} {rule.summary}")
        return 0
    try:
        select = _parse_select(options.select)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    paths = options.paths or [Path("src")]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2
    if options.self_test:
        return run_self_test(paths)
    try:
        profile = _load_profile(options.profile, options.no_profile)
    except (OSError, ValueError) as exc:
        print(f"error: cannot load profile: {exc}", file=sys.stderr)
        return 2
    violations = analyze_paths(paths, select=select, profile=profile)
    if options.format == "json":
        print(render_json(violations))
    else:
        for violation in violations:
            print(violation.render())
    if violations:
        count = len(violations)
        print(f"found {count} violation{'s' if count != 1 else ''}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
