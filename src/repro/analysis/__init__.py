"""Static analysis and runtime invariant checking for the SC-Share pipeline.

The reproduction's correctness rests on numerical invariants that are
easy to violate silently — CTMC generator rows summing to zero,
probability vectors being valid distributions, Fox–Glynn windows
normalizing, utilities staying finite.  This package makes those
invariants mechanical:

- :mod:`repro.analysis.lint` — a standalone AST checker
  (``python -m repro.analysis.lint src``) with domain-specific rules
  (unseeded randomness, float equality on probabilities, mutation of
  frozen configuration objects, unvalidated public entry points,
  nondeterministic cache keys), plus the concurrency rules of
  :mod:`repro.analysis.concurrency` (lock discipline over
  ``# guarded-by:`` attributes, check-then-act, lock ordering, pickle
  hooks for sync state, module-level mutable state).  Each rule has a
  stable ``RPRxxx`` code and a ``# repro: noqa[CODE]`` escape hatch.
- :mod:`repro.analysis.dataflow` — an interprocedural dataflow/taint
  checker (``python -m repro.analysis.dataflow src``) built on
  :mod:`repro.analysis.summaries`: cache-key omission against
  ``# fingerprint-input:`` declarations, unordered-iteration order
  feeding float sums or digests, environment/thread taint reaching
  fingerprints and persisted payloads, post-fingerprint mutation, and
  unversioned payload formats (RPR301–RPR306).  Its ``--self-test``
  seeds fingerprint-omission mutants and demands 100% RPR301 recall.
- :mod:`repro.analysis.perf_lint` — a profile-guided hot-path
  performance lint (``python -m repro.analysis.perf_lint src``):
  RPR401–RPR406 flag dense materialization, unvectorized element
  loops, loop-invariant expensive calls, allocation churn, eager
  observability formatting, and per-element lock/cache traffic — but
  *only* inside the hot region computed by
  :mod:`repro.analysis.hotness` (a static hotness index over the
  may-call graph from ``# hot-path`` annotations, fused with the
  committed cProfile evidence).  Its ``--self-test`` injects one
  anti-pattern mutant per rule into real hot functions and demands
  100% detection.
- :mod:`repro.analysis.hotspots` — the hotness report and CI agreement
  gate (``python -m repro.analysis.hotspots --check``): ranks
  functions by fused static/profile score, re-collects the committed
  evidence (``--collect``), and flags blind spots — code under an
  annotated root the profiled workload never executed.
- :mod:`repro.analysis.sanitize` — a runtime "stochastic sanitizer":
  debug-mode contracts over generators, distributions, interaction
  vectors, performance parameters, and cache payloads, enabled with
  ``REPRO_SANITIZE=1`` (or ``--sanitize`` on the CLIs) and raising
  structured :class:`~repro.analysis.sanitize.InvariantViolation`
  errors with the offending state attached.
- :mod:`repro.analysis.race` — a dynamic race harness
  (``python -m repro.analysis.race --quick``): seeded serialized
  schedules checked against a serial-replay oracle, plus barrier storms
  over the runtime's single-flight paths.
- :mod:`repro.analysis.differential` — a cross-backend differential
  checker (``python -m repro.analysis.differential --scenario quick``)
  asserting bitwise-identical game results across
  serial/thread/process execution and caching variants.

``python -m repro.analysis check`` runs all four static rule families
(RPR1xx/RPR2xx/RPR3xx/RPR4xx) in one pass with a shared ``--select``
and a common JSON report format (see :mod:`repro.analysis.__main__`).

All layers are dependency-free (stdlib ``ast``/``threading`` plus
numpy) and cheap when disabled: every sanitizer hook is guarded by one
module-level boolean read.
"""

from repro.analysis.sanitize import (
    InvariantViolation,
    sanitize_disable,
    sanitize_enable,
    sanitize_enabled,
    sanitized,
)

__all__ = [
    "InvariantViolation",
    "sanitize_disable",
    "sanitize_enable",
    "sanitize_enabled",
    "sanitized",
]
