"""Umbrella CLI over every static rule family.

``python -m repro.analysis check`` runs all four families in one pass:

- RPR1xx/RPR2xx — domain + concurrency lint (:mod:`repro.analysis.lint`),
- RPR3xx — interprocedural fingerprint/determinism dataflow
  (:mod:`repro.analysis.dataflow`),
- RPR4xx — profile-guided hot-path performance lint
  (:mod:`repro.analysis.perf_lint`).

``--select`` accepts codes from any family and routes each code to the
checker that owns it; families with no selected codes are skipped
entirely (the RPR3xx/RPR4xx passes build whole-project summaries, so
skipping them matters).  ``--format json`` emits the shared
``repro.analysis.lint-report`` payload with violations from every
family merged and sorted; ``--list-rules`` prints one consistent table.

Exit codes match the per-family CLIs: 0 clean, 1 violations, 2 usage
error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis import dataflow, lint, perf_lint
from repro.analysis.hotness import DEFAULT_PROFILE_PATH, ProfileEvidence
from repro.analysis.lintbase import LintRule, Violation, render_json

__all__ = ["main"]

#: family name -> (rule table, how to run it).  Order is report order.
_FAMILIES: tuple[tuple[str, tuple[LintRule, ...]], ...] = (
    ("lint", lint.LINT_RULES),
    ("dataflow", dataflow.DATAFLOW_RULES),
    ("perf_lint", perf_lint.PERF_RULES),
)


def _rule_owner() -> dict[str, str]:
    """Map every known RPR code to the family that owns it."""
    owner: dict[str, str] = {}
    for family, rules in _FAMILIES:
        for rule in rules:
            owner[rule.code] = family
    return owner


def _split_select(
    raw: str | None,
) -> dict[str, list[str] | None]:
    """Route a shared ``--select`` to per-family code lists.

    Returns ``{family: codes}`` where ``None`` means "all rules" (no
    ``--select`` given) and a missing key means "skip this family"
    (codes were selected, none of them belong to it).  Raises
    :class:`ValueError` on unknown codes.
    """
    if raw is None:
        return {family: None for family, _ in _FAMILIES}
    owner = _rule_owner()
    codes = [code.strip().upper() for code in raw.split(",") if code.strip()]
    unknown = [code for code in codes if code not in owner]
    if unknown:
        raise ValueError(
            f"unknown rule code(s): {', '.join(unknown)} "
            f"(known: {', '.join(sorted(owner))})"
        )
    routed: dict[str, list[str] | None] = {}
    for code in codes:
        family = owner[code]
        bucket = routed.setdefault(family, [])
        assert bucket is not None  # buckets are always lists here
        bucket.append(code)
    return routed


def _run_family(
    family: str,
    paths: Sequence[Path],
    select: list[str] | None,
    profile: ProfileEvidence | None,
) -> list[Violation]:
    if family == "lint":
        return lint.lint_paths(paths, select=select)
    if family == "dataflow":
        return dataflow.analyze_paths(paths, select=select)
    return perf_lint.analyze_paths(paths, select=select, profile=profile)


def check(
    paths: Sequence[Path],
    select: str | None = None,
    profile: ProfileEvidence | None = None,
) -> list[Violation]:
    """Run every (selected) rule family over ``paths``; merged findings."""
    routed = _split_select(select)
    violations: list[Violation] = []
    for family, _ in _FAMILIES:
        if family not in routed:
            continue
        violations.extend(_run_family(family, paths, routed[family], profile))
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    return violations


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Umbrella over the repro static checkers: domain/"
        "concurrency lint (RPR1xx/2xx), fingerprint dataflow (RPR3xx), "
        "and hot-path performance lint (RPR4xx).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    checker = sub.add_parser(
        "check",
        help="run all rule families over the given paths",
        description="Run RPR1xx/2xx/3xx/4xx in one pass; --select routes "
        "codes to the owning family and skips families with none selected.",
    )
    checker.add_argument(
        "paths",
        nargs="*",
        type=Path,
        default=[Path("src")],
        help="files or directories to check (default: src)",
    )
    checker.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes from any family (default: all)",
    )
    checker.add_argument(
        "--list-rules",
        action="store_true",
        help="print the combined rule table and exit",
    )
    checker.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="violation output format (default: text)",
    )
    checker.add_argument(
        "--profile",
        metavar="FILE",
        help="profile evidence for the RPR4xx hotness fusion "
        f"(default: {DEFAULT_PROFILE_PATH} when present)",
    )
    checker.add_argument(
        "--no-profile",
        action="store_true",
        help="ignore committed profile evidence (annotation-only hotness)",
    )
    options = parser.parse_args(argv)
    if options.list_rules:
        for _, rules in _FAMILIES:
            for rule in rules:
                print(f"{rule.code}  {rule.name:32s} {rule.summary}")
        return 0
    paths = options.paths or [Path("src")]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2
    try:
        profile = perf_lint._load_profile(options.profile, options.no_profile)
    except (OSError, ValueError) as exc:
        print(f"error: cannot load profile: {exc}", file=sys.stderr)
        return 2
    try:
        violations = check(paths, select=options.select, profile=profile)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if options.format == "json":
        print(render_json(violations))
        return 1 if violations else 0
    for violation in violations:
        print(violation.render())
    if violations:
        count = len(violations)
        print(f"found {count} violation{'s' if count != 1 else ''}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
