"""Hotspot report: static hotness vs. committed profile evidence.

``python -m repro.analysis.hotspots`` ranks project functions by the
:class:`~repro.analysis.hotness.HotnessIndex` score, cross-checks the
static classification against the committed cProfile capture, and flags
**blind spots** — functions the annotations/closure claim are hot but
the profiled workload never executed (a stale annotation, or a workload
that misses a path the tree says matters).

``--collect`` regenerates the committed evidence
(``benchmarks/results/PROFILE_hotspots.json``) by profiling the quick
reference workload: the differential quick scenario's equilibrium cell
(exercising the market/game/perf/markov spine) plus a deep-backlog
federation simulation (exercising the event-heap roots).

``--check`` is the CI agreement gate: every profiled top-5 function must
be statically hot (exit 1 otherwise) — the annotations, the call-graph
closure, and the measured reality are not allowed to drift apart
silently.
"""

from __future__ import annotations

import argparse
import cProfile
import json
import sys
import time
from pathlib import Path
from typing import Sequence, TextIO

from repro.analysis.hotness import (
    DEFAULT_PROFILE_PATH,
    HotnessIndex,
    HotRecord,
    PROFILE_FORMAT,
    PROFILE_FORMAT_VERSION,
    ProfileEvidence,
    _norm_path,
)
from repro.analysis.summaries import Project, load_sources

__all__ = [
    "build_index",
    "check_agreement",
    "collect_profile",
    "main",
    "render_report",
]

#: How many profiled entries the agreement gate inspects.
_TOP_CHECK = 5


def build_index(
    paths: Sequence[Path], profile: ProfileEvidence | None
) -> HotnessIndex:
    return HotnessIndex(Project(load_sources(paths)), profile)


# -- collection ----------------------------------------------------------


def _profile_workload() -> None:
    """The quick reference workload the committed evidence profiles.

    Deliberately spans both halves of the system: the market/game spine
    (equilibrium of the differential quick scenario, touching evaluator,
    approximate level builds, interaction coupling, and the Markov
    solvers) and the event-heap simulator under a deep backlog (touching
    ``Event.__lt__``, ``SimulationEngine.step``, ``_CloudState.record``).
    """
    from repro.analysis.differential import SCENARIOS, _run_cell
    from repro.core.small_cloud import FederationScenario, SmallCloud
    from repro.sim.federation import FederationSimulator

    _run_cell(SCENARIOS["quick"], "serial", "base")
    scenario = FederationScenario(
        clouds=(
            SmallCloud(
                name="sc1",
                vms=2,
                arrival_rate=6.0,
                sla_bound=50.0,
                federation_price=0.4,
            ),
            SmallCloud(
                name="sc2",
                vms=2,
                arrival_rate=5.5,
                sla_bound=50.0,
                federation_price=0.4,
            ),
        )
    )
    FederationSimulator(scenario, seed=7).run(horizon=4000.0, warmup=100.0)


def collect_profile(workload: str = "quick-game+sim") -> dict:
    """Run the workload under cProfile; return the evidence payload."""
    profiler = cProfile.Profile()
    started = time.perf_counter()
    profiler.enable()
    try:
        _profile_workload()
    finally:
        profiler.disable()
    total_seconds = time.perf_counter() - started
    entries = []
    for stat in profiler.getstats():  # type: ignore[attr-defined]
        code = stat.code
        if isinstance(code, str):  # builtins render as strings
            continue
        if code.co_name.startswith("<"):
            continue  # lambdas/comprehensions; cost shows in their callers
        norm = _norm_path(code.co_filename)
        if not norm.startswith("repro/"):
            continue
        if norm == "repro/analysis/hotspots.py":
            continue  # the collection harness is not the subject
        entries.append(
            {
                "path": norm,
                "line": int(code.co_firstlineno),
                "function": code.co_name,
                "ncalls": int(stat.callcount),
                # cProfile's totaltime is inclusive of callees (cumtime);
                # inlinetime is the function's own cost (tottime).
                "tottime": float(stat.inlinetime),
                "cumtime": float(stat.totaltime),
            }
        )
    entries.sort(key=lambda e: (-e["cumtime"], e["path"], e["line"]))
    return {
        "format": PROFILE_FORMAT,
        "format_version": PROFILE_FORMAT_VERSION,
        "workload": workload,
        "total_seconds": total_seconds,
        "entries": entries,
    }


# -- report --------------------------------------------------------------


def _fmt_record(record: HotRecord) -> str:
    fn = record.fn
    kind = record.kind or "-"
    depth = str(record.depth) if record.depth is not None else "-"
    if record.profile is not None:
        cum = f"{record.profile.cumtime:8.3f}s"
        frac = f"{100.0 * record.profile_fraction:5.1f}%"
    else:
        cum, frac = "       -", "    -"
    return (
        f"{kind:6s} d={depth:2s} {cum} {frac}  "
        f"{fn.qualname}  ({fn.path}:{fn.node.lineno})"
    )


def check_agreement(index: HotnessIndex, top: int = _TOP_CHECK) -> list[str]:
    """Mismatches between the profiled top-``top`` and static hotness.

    Returns one message per profiled top function that is statically
    cold — the acceptance gate is an empty list.
    """
    problems: list[str] = []
    for entry, record in index.profile_ranked()[:top]:
        if record is None:
            problems.append(
                f"profiled function {entry.function} ({entry.path}:{entry.line}) "
                "matches no project function"
            )
        elif record.kind is None:
            problems.append(
                f"statically cold function in profiled top {top}: "
                f"{record.fn.qualname} ({entry.path}:{entry.line}, "
                f"cumtime {entry.cumtime:.3f}s)"
            )
    return problems


def render_report(
    index: HotnessIndex, top: int, stream: TextIO
) -> None:
    roots = index.roots()
    print(f"hotness roots ({len(roots)} annotated # hot-path):", file=stream)
    for fn in roots:
        print(f"  {fn.qualname}  ({fn.path}:{fn.node.lineno})", file=stream)
    hot = index.hot()
    print(
        f"\ntop {min(top, len(hot))} of {len(hot)} hot functions "
        "(kind, depth, profile cumtime, share):",
        file=stream,
    )
    for record in hot[:top]:
        print(f"  {_fmt_record(record)}", file=stream)
    if index.profile is not None:
        print(
            f"\nprofiled top {_TOP_CHECK} "
            f"(workload {index.profile.workload!r}, "
            f"{index.profile.total_seconds:.2f}s total):",
            file=stream,
        )
        for entry, record in index.profile_ranked()[:_TOP_CHECK]:
            name = record.fn.qualname if record else entry.function
            kind = record.kind if record and record.kind else "COLD"
            print(
                f"  {entry.cumtime:8.3f}s {kind:6s} {name} "
                f"({entry.path}:{entry.line})",
                file=stream,
            )
        problems = check_agreement(index)
        if problems:
            print("\nagreement check FAILED:", file=stream)
            for problem in problems:
                print(f"  {problem}", file=stream)
        else:
            print(
                f"\nagreement check OK: profiled top {_TOP_CHECK} "
                "are all statically hot",
                file=stream,
            )
        spots = index.blind_spots()
        print(f"\nblind spots (statically hot, never profiled): {len(spots)}", file=stream)
        for record in spots[:top]:
            fn = record.fn
            print(
                f"  {record.kind:6s} {fn.qualname}  ({fn.path}:{fn.node.lineno})",
                file=stream,
            )
        if len(spots) > top:
            print(f"  ... and {len(spots) - top} more", file=stream)
    else:
        print(
            "\nno profile evidence loaded (run --collect, or pass --profile); "
            "static classification only",
            file=stream,
        )


def _json_report(index: HotnessIndex, top: int) -> dict:
    def record_payload(record: HotRecord) -> dict:
        return {
            "qualname": record.fn.qualname,
            "path": record.fn.path,
            "line": record.fn.node.lineno,
            "kind": record.kind,
            "depth": record.depth,
            "profile_cumtime": (
                record.profile.cumtime if record.profile else None
            ),
            "profile_fraction": record.profile_fraction,
            "score": record.score,
        }

    return {
        "format": "repro.analysis.hotspots-report",
        "format_version": 1,
        "roots": [fn.qualname for fn in index.roots()],
        "hot": [record_payload(r) for r in index.hot()[:top]],
        "blind_spots": [record_payload(r) for r in index.blind_spots()],
        "agreement_problems": check_agreement(index),
    }


# -- CLI -----------------------------------------------------------------


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.hotspots",
        description="Rank functions by static hotness, cross-check the "
        "classification against committed profile evidence, and flag "
        "statically-hot-but-never-profiled blind spots.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        default=[Path("src")],
        help="files or directories to index (default: src)",
    )
    parser.add_argument(
        "--profile",
        metavar="FILE",
        help=f"profile evidence JSON (default: {DEFAULT_PROFILE_PATH})",
    )
    parser.add_argument(
        "--collect",
        action="store_true",
        help="run the quick reference workload under cProfile and write "
        "fresh evidence instead of reporting",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        help=f"where --collect writes (default: {DEFAULT_PROFILE_PATH})",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=20,
        metavar="N",
        help="how many hot functions to list (default: 20)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 unless every profiled top-5 function is statically "
        "hot (the CI agreement gate)",
    )
    options = parser.parse_args(argv)
    paths = options.paths or [Path("src")]
    if options.collect:
        payload = collect_profile()
        out = Path(options.output) if options.output else DEFAULT_PROFILE_PATH
        out.parent.mkdir(parents=True, exist_ok=True)
        # Profile evidence is a measurement, not a fingerprint: elapsed
        # wall-clock is the payload's *content* (like bench provenance).
        out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")  # repro: noqa[RPR303]
        print(
            f"collected {len(payload['entries'])} entries "
            f"({payload['total_seconds']:.2f}s workload) -> {out}"
        )
        return 0
    profile_path = Path(options.profile) if options.profile else DEFAULT_PROFILE_PATH
    profile: ProfileEvidence | None = None
    if profile_path.exists():
        try:
            profile = ProfileEvidence.load(profile_path)
        except (OSError, ValueError) as exc:
            print(f"error: cannot load profile: {exc}", file=sys.stderr)
            return 2
    elif options.profile is not None or options.check:
        print(f"error: no profile evidence at {profile_path}", file=sys.stderr)
        return 2
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2
    index = build_index(paths, profile)
    if options.check:
        problems = check_agreement(index)
        for problem in problems:
            print(problem, file=sys.stderr)
        if not problems:
            print(
                f"agreement OK: profiled top {_TOP_CHECK} are statically hot"
            )
        return 1 if problems else 0
    if options.format == "json":
        print(json.dumps(_json_report(index, options.top), indent=2))
    else:
        render_report(index, options.top, sys.stdout)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
