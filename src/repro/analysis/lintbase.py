"""Shared plumbing of the domain lint framework.

:mod:`repro.analysis.lint` (the RPR1xx domain rules and the CLI) and
:mod:`repro.analysis.concurrency` (the RPR2xx lock-discipline rules)
both build on the same three pieces: the rule descriptor, the violation
record, and the per-line ``# repro: noqa[CODE]`` suppression protocol.
They live here so the rule modules can import them without importing
each other.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass

__all__ = [
    "LintRule",
    "Violation",
    "apply_noqa",
    "attribute_chain",
    "render_json",
    "suppressed_codes",
]


@dataclass(frozen=True)
class LintRule:
    """One domain lint rule.

    Attributes:
        code: stable error code (``RPRxxx``), used in output and noqa.
        name: short kebab-case rule name.
        summary: one-line description shown by ``--list-rules``.
    """

    code: str
    name: str
    summary: str


@dataclass(frozen=True)
class Violation:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        """Format as ``path:line:col: CODE message`` (editor-clickable)."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


_NOQA_PATTERN = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<codes>[A-Z0-9,\s]+)\])?", re.IGNORECASE
)


def suppressed_codes(line: str) -> set[str] | None:
    """Codes suppressed by a ``# repro: noqa`` comment on ``line``.

    Returns ``None`` when nothing is suppressed, an empty set for a bare
    ``noqa`` (suppress everything), or the explicit code set.
    """
    match = _NOQA_PATTERN.search(line)
    if match is None:
        return None
    codes = match.group("codes")
    if codes is None:
        return set()
    return {code.strip().upper() for code in codes.split(",") if code.strip()}


def apply_noqa(violations: list[Violation], source: str) -> list[Violation]:
    """Drop violations suppressed by a noqa comment on their line."""
    lines = source.splitlines()
    kept: list[Violation] = []
    for violation in violations:
        line = lines[violation.line - 1] if 0 < violation.line <= len(lines) else ""
        suppressed = suppressed_codes(line)
        if suppressed is None:
            kept.append(violation)
        elif suppressed and violation.code not in suppressed:
            kept.append(violation)
    return kept


def render_json(violations: list[Violation]) -> str:
    """Machine-readable report shared by every lint CLI's ``--format json``."""
    payload = {
        "format": "repro.analysis.lint-report",
        "format_version": 1,
        "count": len(violations),
        "violations": [
            {
                "path": v.path,
                "line": v.line,
                "col": v.col,
                "code": v.code,
                "message": v.message,
            }
            for v in violations
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=False)


def attribute_chain(node: ast.AST) -> list[str]:
    """Flatten ``a.b.c`` into ``['a', 'b', 'c']`` (empty if not a chain)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return []
