"""Lock-discipline lint rules for the parallel runtime (RPR201–RPR205).

PRs 1–3 introduced thread/process executors, a thread-shared level-prefix
memo, and the single-flight ``UtilityEvaluator`` — shared mutable state
whose correctness contracts a generic linter cannot know.  These rules
make them mechanical:

=======  ==============================================================
Code     Contract
=======  ==============================================================
RPR201   Guarded attributes are written under their lock.  An attribute
         whose initialising assignment carries a ``# guarded-by: <lock>``
         comment may only be written (rebound, item-assigned, mutated in
         place) inside a ``with self.<lock>:`` block.  Construction
         methods (``__init__`` etc.) and ``*_locked`` helpers are exempt;
         calling a ``*_locked`` helper outside a lock is itself flagged.
RPR202   No check-then-act on guarded state outside its lock: a method
         that writes a guarded attribute must not also *read* it (``in``
         tests, ``.get``, subscript loads) outside the lock — the check
         races with concurrent writers even when the write is locked.
RPR203   Consistent lock order, no nested re-acquisition: acquiring a
         lock already held (stdlib locks are non-reentrant — deadlock),
         or acquiring two locks in opposite orders at different sites
         (lock-order inversion — deadlock under contention).
RPR204   No process-unsafe state in picklable objects: a class that
         stores a ``threading``/``multiprocessing`` primitive or an open
         file handle on ``self`` must define ``__getstate__`` or
         ``__reduce__`` — executors pickle task payloads, and a live
         lock in one kills the whole pool submission.
RPR205   No mutable module-level state reworked at runtime: module
         globals rebound via ``global`` or mutated in place from
         function bodies silently diverge across processes (spawned
         workers re-import the module fresh); pass state explicitly or
         re-establish it in a worker bootstrap.
=======  ==============================================================

Conventions introduced here:

- ``# guarded-by: <lock>`` on the line(s) of an attribute's initialising
  assignment declares which lock protects it (the lock is named by its
  attribute name, e.g. ``_lock``).
- A method name ending in ``_locked`` declares "caller holds the lock";
  its body is exempt from RPR201/RPR202 and its call sites are checked
  instead.

Suppression uses the standard ``# repro: noqa[RPR2xx]`` comment.  Run
through the unified CLI::

    python -m repro.analysis.lint --select RPR201,RPR202,RPR203,RPR204,RPR205 src
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field

from repro.analysis.lintbase import LintRule, Violation, attribute_chain

__all__ = [
    "CONCURRENCY_RULES",
    "RPR201",
    "RPR202",
    "RPR203",
    "RPR204",
    "RPR205",
    "check_concurrency",
]

RPR201 = LintRule(
    code="RPR201",
    name="unguarded-guarded-write",
    summary="write to a '# guarded-by:' attribute outside its lock",
)
RPR202 = LintRule(
    code="RPR202",
    name="check-then-act-outside-lock",
    summary="read of a guarded attribute outside its lock in a writing method",
)
RPR203 = LintRule(
    code="RPR203",
    name="lock-order",
    summary="nested re-acquisition or inconsistent acquisition order of locks",
)
RPR204 = LintRule(
    code="RPR204",
    name="process-unsafe-state",
    summary="lock/event/file stored on self without __getstate__/__reduce__",
)
RPR205 = LintRule(
    code="RPR205",
    name="mutable-module-state",
    summary="module-level state rebound or mutated from function bodies",
)

#: All concurrency rules, in code order.
CONCURRENCY_RULES: tuple[LintRule, ...] = (RPR201, RPR202, RPR203, RPR204, RPR205)

#: The guarded-by annotation: ``# guarded-by: _lock``.
_GUARDED_BY = re.compile(r"#\s*guarded-by:\s*(?P<lock>[A-Za-z_][A-Za-z0-9_]*)")

#: Names that denote lock-like objects for RPR203 order tracking.
_LOCKISH_NAME = re.compile(
    r"(^|_)(lock|mutex|rlock|semaphore|sem|cond|condition)($|_)", re.IGNORECASE
)

#: Methods allowed to touch guarded attributes without the lock: the
#: object is not yet (or no longer) shared during construction.
_CONSTRUCTION_METHODS = frozenset(
    {"__init__", "__post_init__", "__new__", "__setstate__", "__getstate__"}
)

#: Dunder hooks whose presence makes a lock-holding class pickle-safe.
_PICKLE_HOOKS = frozenset({"__getstate__", "__reduce__", "__reduce_ex__"})

#: threading / multiprocessing constructors that produce unpicklable or
#: process-local synchronisation state.
_SYNC_FACTORIES = frozenset(
    {
        "Lock",
        "RLock",
        "Event",
        "Condition",
        "Semaphore",
        "BoundedSemaphore",
        "Barrier",
    }
)

#: Method calls that mutate a container in place (RPR201/RPR205 writes).
_MUTATOR_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "clear",
        "discard",
        "extend",
        "extendleft",
        "insert",
        "move_to_end",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "setdefault",
        "update",
    }
)

#: Constructors of mutable containers for RPR205 module-state tracking.
_MUTABLE_CONSTRUCTORS = frozenset(
    {
        "dict",
        "list",
        "set",
        "bytearray",
        "deque",
        "defaultdict",
        "OrderedDict",
        "Counter",
        "ChainMap",
    }
)


def _is_mutable_literal(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        chain = attribute_chain(node.func)
        return bool(chain) and chain[-1] in _MUTABLE_CONSTRUCTORS
    return False


def _add_bindings(target: ast.expr, bound: set[str]) -> None:
    """Collect names *bound* by an assignment target.

    ``x = ...`` and ``x, y = ...`` bind; ``x[k] = ...`` and ``x.a = ...``
    mutate an existing object and bind nothing.
    """
    if isinstance(target, ast.Name):
        bound.add(target.id)
    elif isinstance(target, ast.Starred):
        _add_bindings(target.value, bound)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            _add_bindings(element, bound)


def _self_attribute(node: ast.AST) -> str | None:
    """``X`` when ``node`` is exactly ``self.X``; ``None`` otherwise."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


@dataclass
class _Access:
    """One read or write of a guarded ``self.<attr>`` inside a method."""

    attr: str
    write: bool
    node: ast.AST
    held: frozenset[str]


@dataclass
class _ClassInfo:
    """Guard declarations and pickle hooks of one class body."""

    name: str
    guarded: dict[str, str] = field(default_factory=dict)  # attr -> lock name
    pickle_safe: bool = False


def _lock_name(expr: ast.AST) -> str | None:
    """The lock identifier acquired by a ``with`` item, if lock-like.

    ``self.<name>`` and bare ``<name>`` context expressions qualify when
    the name looks lock-like; method calls (``lock.acquire()``) and
    foreign receivers do not — the rules only reason about locks the
    enclosing object owns.
    """
    attr = _self_attribute(expr)
    if attr is not None:
        return attr if _LOCKISH_NAME.search(attr) else None
    if isinstance(expr, ast.Name):
        return expr.id if _LOCKISH_NAME.search(expr.id) else None
    return None


class _Analyzer:
    """Single-file analyzer evaluating all RPR2xx rules."""

    def __init__(self, source: str, path: str) -> None:
        self.path = path
        self.lines = source.splitlines()
        self.violations: list[Violation] = []
        # (outer, inner) -> first with-node acquiring inner while holding
        # outer; used for order-inversion detection after the full pass.
        self._order_pairs: dict[tuple[str, str], list[ast.AST]] = {}

    # -- shared plumbing -------------------------------------------------

    def _report(self, node: ast.AST, rule: LintRule, message: str) -> None:
        self.violations.append(
            Violation(
                path=self.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                code=rule.code,
                message=message,
            )
        )

    def _line_range_comment_lock(self, node: ast.stmt) -> str | None:
        """The guarded-by lock named on any source line of ``node``."""
        first = getattr(node, "lineno", 1)
        last = getattr(node, "end_lineno", first) or first
        for lineno in range(first, last + 1):
            if 0 < lineno <= len(self.lines):
                match = _GUARDED_BY.search(self.lines[lineno - 1])
                if match is not None:
                    return match.group("lock")
        return None

    # -- module entry ----------------------------------------------------

    def run(self, tree: ast.Module) -> list[Violation]:
        self._check_module_state(tree)
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                self._check_class(node)
        # Lock-order inversions only become visible once every
        # acquisition pair in the file is known.
        for (outer, inner), nodes in sorted(self._order_pairs.items()):
            if outer != inner and (inner, outer) in self._order_pairs:
                for node in nodes:
                    self._report(
                        node,
                        RPR203,
                        f"lock {inner!r} acquired while holding {outer!r}, but "
                        f"the opposite order also occurs in this file; pick one "
                        "global order (deadlock under contention otherwise)",
                    )
        self.violations.sort(key=lambda v: (v.line, v.col, v.code))
        return self.violations

    # -- RPR204 / class-level analysis -----------------------------------

    def _check_class(self, cls: ast.ClassDef) -> None:
        info = _ClassInfo(name=cls.name)
        methods = [
            stmt
            for stmt in cls.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        info.pickle_safe = any(m.name in _PICKLE_HOOKS for m in methods)
        # Collect guarded-by declarations from every self.<attr> = ...
        # site (conventionally in __init__, but any method counts).
        for method in methods:
            for stmt in ast.walk(method):
                if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                    lock = self._line_range_comment_lock(stmt)
                    if lock is None:
                        continue
                    targets = (
                        stmt.targets
                        if isinstance(stmt, ast.Assign)
                        else [stmt.target]
                    )
                    for target in targets:
                        attr = _self_attribute(target)
                        if attr is not None:
                            info.guarded[attr] = lock
        for method in methods:
            self._check_sync_state(method, info)
            self._analyze_method(method, info)

    def _check_sync_state(
        self, method: ast.FunctionDef | ast.AsyncFunctionDef, info: _ClassInfo
    ) -> None:
        """RPR204: synchronisation/file state on a pickle-unsafe class."""
        if info.pickle_safe:
            return
        for node in ast.walk(method):
            if not isinstance(node, ast.Assign):
                continue
            if not isinstance(node.value, ast.Call):
                continue
            attrs = [a for a in map(_self_attribute, node.targets) if a is not None]
            if not attrs:
                continue
            chain = attribute_chain(node.value.func)
            unsafe: str | None = None
            if chain and chain[-1] in _SYNC_FACTORIES:
                if len(chain) == 1 or chain[0] in ("threading", "multiprocessing"):
                    unsafe = ".".join(chain)
            elif chain == ["open"] or chain == ["os", "fdopen"]:
                unsafe = ".".join(chain)
            if unsafe is not None:
                self._report(
                    node,
                    RPR204,
                    f"{info.name}.{attrs[0]} holds {unsafe}() but {info.name} "
                    "defines no __getstate__/__reduce__; executors pickle task "
                    "payloads, and unpicklable state kills the pool submission "
                    "— ship configuration only (see LRUCache.__getstate__)",
                )

    # -- RPR201 / RPR202 / RPR203: per-method lock tracking --------------

    def _analyze_method(
        self, method: ast.FunctionDef | ast.AsyncFunctionDef, info: _ClassInfo
    ) -> None:
        accesses: list[_Access] = []
        locked_calls: list[tuple[ast.Call, str, frozenset[str]]] = []
        self._walk(method.body, frozenset(), info, accesses, locked_calls)
        exempt = (
            method.name in _CONSTRUCTION_METHODS or method.name.endswith("_locked")
        )
        if not exempt:
            wrote = {access.attr for access in accesses if access.write}
            for access in accesses:
                lock = info.guarded[access.attr]
                if lock in access.held:
                    continue
                if access.write:
                    self._report(
                        access.node,
                        RPR201,
                        f"write to {info.name}.{access.attr} outside 'with "
                        f"self.{lock}:' (declared '# guarded-by: {lock}')",
                    )
                elif access.attr in wrote:
                    self._report(
                        access.node,
                        RPR202,
                        f"check-then-act: {info.name}.{method.name} reads "
                        f"self.{access.attr} outside 'with self.{lock}:' but "
                        "also writes it — the check races with concurrent "
                        "writers; move the read under the lock",
                    )
            for call, helper, held in locked_calls:
                if not held:
                    self._report(
                        call,
                        RPR201,
                        f"call to self.{helper}() outside any lock; the "
                        "'_locked' suffix declares that the caller must hold "
                        "the lock",
                    )

    def _walk(
        self,
        body: list[ast.stmt] | ast.stmt | ast.expr,
        held: frozenset[str],
        info: _ClassInfo,
        accesses: list[_Access],
        locked_calls: list[tuple[ast.Call, str, frozenset[str]]],
    ) -> None:
        """Recursive statement walk tracking the lexically held lock set."""
        if isinstance(body, list):
            for stmt in body:
                self._walk(stmt, held, info, accesses, locked_calls)
            return
        node = body
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired: list[str] = []
            for item in node.items:
                self._scan_expr(item.context_expr, held, info, accesses, locked_calls)
                name = _lock_name(item.context_expr)
                if name is not None:
                    if name in held or name in acquired:
                        self._report(
                            node,
                            RPR203,
                            f"lock {name!r} acquired while already held; "
                            "stdlib locks are non-reentrant — this deadlocks",
                        )
                    for outer in sorted(held) + acquired:
                        self._order_pairs.setdefault((outer, name), []).append(node)
                    acquired.append(name)
            self._walk(node.body, held | frozenset(acquired), info, accesses, locked_calls)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # A nested function may escape the lock's dynamic extent (it
            # can run after the with-block exits), so its body is checked
            # as holding nothing.
            self._walk(node.body, frozenset(), info, accesses, locked_calls)
            return
        if isinstance(node, ast.ClassDef):
            return  # nested classes are analyzed by their own _check_class
        if isinstance(node, ast.stmt):
            self._scan_statement(node, held, info, accesses, locked_calls)
            for child_body in self._child_bodies(node):
                self._walk(child_body, held, info, accesses, locked_calls)
            return
        self._scan_expr(node, held, info, accesses, locked_calls)

    @staticmethod
    def _child_bodies(node: ast.stmt) -> list[list[ast.stmt]]:
        bodies: list[list[ast.stmt]] = []
        for name in ("body", "orelse", "finalbody"):
            value = getattr(node, name, None)
            if isinstance(value, list) and value and isinstance(value[0], ast.stmt):
                bodies.append(value)
        for handler in getattr(node, "handlers", []) or []:
            bodies.append(handler.body)
        return bodies

    def _scan_statement(
        self,
        node: ast.stmt,
        held: frozenset[str],
        info: _ClassInfo,
        accesses: list[_Access],
        locked_calls: list[tuple[ast.Call, str, frozenset[str]]],
    ) -> None:
        """Record guarded-attribute accesses in one statement's own
        expressions (child statement bodies are walked separately)."""
        write_parts: set[int] = set()

        def mark_write(target: ast.AST) -> None:
            """Register a write target, remembering which Attribute nodes
            participate so the generic read scan skips them."""
            if isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    mark_write(element)
                return
            base = target
            if isinstance(base, ast.Subscript):
                base = base.value
            attr = _self_attribute(base)
            if attr is not None and attr in info.guarded:
                accesses.append(_Access(attr=attr, write=True, node=target, held=held))
                write_parts.add(id(base))

        if isinstance(node, ast.Assign):
            for target in node.targets:
                mark_write(target)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            mark_write(node.target)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                mark_write(target)

        # Expression scan: mutator calls are writes, everything else
        # touching a guarded attribute is a read; only the *statement's
        # own* expressions are visited (nested statements arrive via
        # _walk, preserving their held-lock context).
        for child in ast.iter_child_nodes(node):
            if not isinstance(child, ast.stmt):
                self._scan_expr(
                    child, held, info, accesses, locked_calls, write_parts
                )

    def _scan_expr(
        self,
        node: ast.AST,
        held: frozenset[str],
        info: _ClassInfo,
        accesses: list[_Access],
        locked_calls: list[tuple[ast.Call, str, frozenset[str]]],
        write_parts: set[int] | None = None,
    ) -> None:
        parts = write_parts if write_parts is not None else set()
        pending: list[tuple[ast.AST, frozenset[str]]] = [(node, held)]
        while pending:
            sub, sub_held = pending.pop()
            if isinstance(sub, (ast.Lambda, ast.FunctionDef, ast.AsyncFunctionDef)):
                # The function object may outlive the with-block, so its
                # body is analyzed as holding no locks.
                pending.extend(
                    (child, frozenset()) for child in ast.iter_child_nodes(sub)
                )
                continue
            pending.extend((child, sub_held) for child in ast.iter_child_nodes(sub))
            held = sub_held
            if isinstance(sub, ast.Call):
                func = sub.func
                if isinstance(func, ast.Attribute):
                    receiver_attr = _self_attribute(func.value)
                    if (
                        receiver_attr is not None
                        and receiver_attr in info.guarded
                        and func.attr in _MUTATOR_METHODS
                    ):
                        accesses.append(
                            _Access(attr=receiver_attr, write=True, node=sub, held=held)
                        )
                        parts.add(id(func.value))
                    helper = _self_attribute(func)
                    if helper is not None and helper.endswith("_locked"):
                        locked_calls.append((sub, helper, held))
            elif isinstance(sub, ast.Attribute):
                attr = _self_attribute(sub)
                if (
                    attr is not None
                    and attr in info.guarded
                    and id(sub) not in parts
                    and isinstance(sub.ctx, ast.Load)
                ):
                    accesses.append(
                        _Access(attr=attr, write=False, node=sub, held=held)
                    )

    # -- RPR205: module-level mutable state ------------------------------

    def _check_module_state(self, tree: ast.Module) -> None:
        module_names: set[str] = set()
        mutable_names: set[str] = set()
        for stmt in tree.body:
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            for target in targets:
                if isinstance(target, ast.Name):
                    module_names.add(target.id)
                    if value is not None and _is_mutable_literal(value):
                        mutable_names.add(target.id)
        if not module_names:
            return
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            self._check_function_module_state(node, module_names, mutable_names)

    @staticmethod
    def _locally_bound_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
        """Names the function binds locally (params, plain assignments,
        loop/with targets) — these shadow same-named module globals
        unless a ``global`` statement says otherwise."""
        bound: set[str] = set()
        args = func.args
        for arg in (
            *args.posonlyargs,
            *args.args,
            *args.kwonlyargs,
            *([args.vararg] if args.vararg else []),
            *([args.kwarg] if args.kwarg else []),
        ):
            bound.add(arg.arg)
        for node in ast.walk(func):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign, ast.For)):
                targets = [node.target]
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                targets = [
                    item.optional_vars
                    for item in node.items
                    if item.optional_vars is not None
                ]
            for target in targets:
                _add_bindings(target, bound)
        return bound

    def _check_function_module_state(
        self,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        module_names: set[str],
        mutable_names: set[str],
    ) -> None:
        declared_global: set[str] = {
            name
            for node in ast.walk(func)
            if isinstance(node, ast.Global)
            for name in node.names
        }
        shadowed = self._locally_bound_names(func) - declared_global
        for node in ast.walk(func):
            if isinstance(node, ast.Global):
                rebound = [name for name in node.names if name in module_names]
                for name in rebound:
                    self._report(
                        node,
                        RPR205,
                        f"function {func.name!r} rebinds module global "
                        f"{name!r}; spawned process-pool workers re-import "
                        "the module and silently lose this state — pass it "
                        "explicitly or re-establish it in a worker bootstrap",
                    )
            elif isinstance(node, ast.Call):
                callee = node.func
                if (
                    isinstance(callee, ast.Attribute)
                    and isinstance(callee.value, ast.Name)
                    and callee.value.id in mutable_names
                    and callee.value.id not in shadowed
                    and callee.attr in _MUTATOR_METHODS
                ):
                    self._report(
                        node,
                        RPR205,
                        f"function {func.name!r} mutates module-level "
                        f"container {callee.value.id!r}; module state is "
                        "per-process — workers see a fresh copy, and thread "
                        "races corrupt the shared one",
                    )
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
                targets = (
                    node.targets
                    if isinstance(node, (ast.Assign, ast.Delete))
                    else [node.target]
                )
                for target in targets:
                    base = target
                    if isinstance(base, ast.Subscript):
                        base = base.value
                    else:
                        continue  # plain Name assignment shadows locally
                    if (
                        isinstance(base, ast.Name)
                        and base.id in mutable_names
                        and base.id not in shadowed
                    ):
                        self._report(
                            node,
                            RPR205,
                            f"function {func.name!r} writes into module-level "
                            f"container {base.id!r}; module state is "
                            "per-process — workers see a fresh copy, and "
                            "thread races corrupt the shared one",
                        )


def check_concurrency(tree: ast.Module, source: str, path: str) -> list[Violation]:
    """Evaluate every RPR2xx rule over one parsed module.

    Args:
        tree: the parsed AST of ``source``.
        source: the module text (needed for the guarded-by comments).
        path: reported path.

    Returns:
        Violations before noqa filtering (the caller applies it so the
        suppression semantics stay identical across rule families).
    """
    return _Analyzer(source, path).run(tree)
