"""Static hotness index: which functions sit on a performance-critical path.

The index fuses two evidence sources over the interprocedural
:class:`~repro.analysis.summaries.Project`:

1. **Annotation roots.**  Functions carrying a ``# hot-path`` marker (on
   the ``def`` line, a decorator line, or the comment line immediately
   above) declare the kernels the maintainers already know dominate:
   event comparison, level builds, solver inner loops.
2. **Profile evidence.**  A committed cProfile capture
   (``benchmarks/results/PROFILE_hotspots.json``, regenerated with
   ``python -m repro.analysis.hotspots --collect``) contributes measured
   per-function cumulative time.

From the roots the index computes a may-call closure in both directions:

* the **spine** — transitive *callers* of a root (the evaluate/respond/
  run chain that sits above every kernel), and
* the **kernel** — transitive *callees* of the roots and the spine
  (everything executed under a hot region).

Call edges come from :meth:`Project.resolve_call` plus a deliberate
over-approximation: an unresolved method call ``recv.m(...)`` fans out to
*every* project class defining ``m`` (capped at :data:`FANOUT_CAP`
candidates — wildly ambiguous names carry no signal), and a bare call of
a project class name targets that class's ``__init__``.  Over-
approximation is the right polarity here: the consumer is a *linter*
(``repro.analysis.perf_lint``) whose rules only fire inside hot regions,
so an extra hot function costs a little noise while a missed one hides a
regression.

A function is **hot** when it is statically reachable as above *or* its
profiled cumulative time exceeds ``profile_threshold`` of the workload's
total.  Statically-hot functions that never appear in the profile are
reported as **blind spots** — either the committed workload misses a
path the annotations claim matters, or the annotation is stale.
"""

from __future__ import annotations

import ast
import json
import re
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path

from repro._validation import check_probability
from repro.analysis.lintbase import attribute_chain
from repro.analysis.summaries import FunctionInfo, Project

__all__ = [
    "DEFAULT_PROFILE_PATH",
    "FANOUT_CAP",
    "HOT_PATH_PATTERN",
    "HotRecord",
    "HotnessIndex",
    "ProfileEntry",
    "ProfileEvidence",
    "PROFILE_FORMAT",
    "PROFILE_FORMAT_VERSION",
]

#: The annotation contract: a comment containing ``# hot-path`` marks the
#: function it precedes (or shares a line with) as a hotness root.
HOT_PATH_PATTERN = re.compile(r"#\s*hot-path\b")

#: An unresolved method name defined by more than this many project
#: classes is too generic to contribute may-call edges.
FANOUT_CAP = 8

#: Default location of the committed profile evidence, relative to the
#: repository root.
DEFAULT_PROFILE_PATH = Path("benchmarks/results/PROFILE_hotspots.json")

PROFILE_FORMAT = "repro.analysis.profile"
PROFILE_FORMAT_VERSION = 1

#: A profiled function must account for at least this fraction of the
#: workload's total cumulative time to count as hot on its own.
DEFAULT_PROFILE_THRESHOLD = 0.02


def _norm_path(path: str) -> str:
    """Normalize ``path`` to its ``repro/...`` suffix for cross-matching.

    Profile entries record paths as seen by the interpreter while the
    project may be indexed from a different prefix (``src/...``,
    absolute, installed); comparing from the last ``repro/`` component
    makes the two worlds meet.
    """
    posix = path.replace("\\", "/")
    marker = posix.rfind("/repro/")
    if marker >= 0:
        return posix[marker + 1 :]
    if posix.startswith("repro/"):
        return posix
    return posix


@dataclass(frozen=True)
class ProfileEntry:
    """One profiled project function."""

    path: str
    line: int
    function: str
    ncalls: int
    tottime: float
    cumtime: float


@dataclass(frozen=True)
class ProfileEvidence:
    """A committed profile capture: workload metadata plus entries."""

    workload: str
    total_seconds: float
    entries: tuple[ProfileEntry, ...]

    @classmethod
    def from_payload(cls, payload: object) -> "ProfileEvidence":
        if not isinstance(payload, dict):
            raise ValueError("profile payload must be a JSON object")
        if payload.get("format") != PROFILE_FORMAT:
            raise ValueError(
                f"not a {PROFILE_FORMAT} payload: format={payload.get('format')!r}"
            )
        version = payload.get("format_version")
        if version != PROFILE_FORMAT_VERSION:
            raise ValueError(f"unsupported profile format_version: {version!r}")
        entries = tuple(
            ProfileEntry(
                path=str(raw["path"]),
                line=int(raw["line"]),
                function=str(raw["function"]),
                ncalls=int(raw["ncalls"]),
                tottime=float(raw["tottime"]),
                cumtime=float(raw["cumtime"]),
            )
            for raw in payload.get("entries", ())
        )
        return cls(
            workload=str(payload.get("workload", "")),
            total_seconds=float(payload.get("total_seconds", 0.0)),
            entries=entries,
        )

    @classmethod
    def load(cls, path: Path) -> "ProfileEvidence":
        return cls.from_payload(json.loads(path.read_text(encoding="utf-8")))

    def ranked(self) -> list[ProfileEntry]:
        """Entries by descending cumulative time (path/line tiebreak)."""
        return sorted(
            self.entries, key=lambda e: (-e.cumtime, e.path, e.line, e.function)
        )


@dataclass
class HotRecord:
    """The hotness classification of one project function."""

    fn: FunctionInfo
    #: ``"root"``, ``"spine"``, ``"kernel"`` or None (statically cold).
    kind: str | None = None
    #: BFS hops from the nearest root (0 for roots; None when cold).
    depth: int | None = None
    profile: ProfileEntry | None = None
    #: ``cumtime / total_seconds`` of the matched profile entry.
    profile_fraction: float = 0.0
    #: Whether the profile alone pushes this function over the threshold.
    profile_hot: bool = False

    @property
    def is_hot(self) -> bool:
        return self.kind is not None or self.profile_hot

    @property
    def score(self) -> float:
        """Ranking score: static evidence decayed by depth, plus profile."""
        base = {"root": 2.0, "spine": 1.0, "kernel": 1.0, None: 0.0}[self.kind]
        depth = self.depth if self.depth is not None else 0
        return base / (1.0 + depth) + 4.0 * self.profile_fraction


def _first_line(node: ast.AST) -> int:
    """First source line of a function including its decorators."""
    linenos = [node.lineno]  # type: ignore[attr-defined]
    for dec in getattr(node, "decorator_list", []):
        linenos.append(dec.lineno)
    return min(linenos)


def _is_annotated_root(fn: FunctionInfo, lines: list[str]) -> bool:
    """Whether ``fn`` carries a ``# hot-path`` marker.

    Accepted positions: any line from the first decorator to just before
    the first body statement (which admits multi-line signatures and a
    leading body comment), or the pure-comment line immediately above
    the header.
    """
    start = _first_line(fn.node)
    body = fn.node.body
    header_end = body[0].lineno - 1 if body else fn.node.lineno
    for lineno in range(start, min(header_end, len(lines)) + 1):
        if HOT_PATH_PATTERN.search(lines[lineno - 1]):
            return True
    above = start - 1
    if 0 < above <= len(lines):
        stripped = lines[above - 1].lstrip()
        if stripped.startswith("#") and HOT_PATH_PATTERN.search(stripped):
            return True
    return False


@dataclass
class _CallGraph:
    """May-call adjacency over the project, keyed by (path, qualname)."""

    callees: dict[tuple[str, str], set[tuple[str, str]]] = field(default_factory=dict)
    callers: dict[tuple[str, str], set[tuple[str, str]]] = field(default_factory=dict)

    def add_edge(self, src: tuple[str, str], dst: tuple[str, str]) -> None:
        self.callees.setdefault(src, set()).add(dst)
        self.callers.setdefault(dst, set()).add(src)


class HotnessIndex:
    """Static hotness classification over a :class:`Project`.

    Args:
        project: the parsed project.
        profile: optional committed profile evidence to fuse in.
        profile_threshold: cumtime fraction above which a profiled
            function is hot regardless of static reachability.
        extra_roots: additional root qualnames (``"Class.method"`` or
            bare function names) forced hot — used by tests and the
            mutation self-test.
    """

    def __init__(
        self,
        project: Project,
        profile: ProfileEvidence | None = None,
        *,
        profile_threshold: float = DEFAULT_PROFILE_THRESHOLD,
        extra_roots: tuple[str, ...] = (),
    ) -> None:
        self.project = project
        self.profile = profile
        self.profile_threshold = check_probability(
            profile_threshold, "profile_threshold"
        )
        self._records: dict[tuple[str, str], HotRecord] = {
            (fn.path, fn.qualname): HotRecord(fn=fn) for fn in project.functions
        }
        self._methods: dict[str, list[FunctionInfo]] = {}
        self._inits: dict[str, list[FunctionInfo]] = {}
        for fn in project.functions:
            if fn.class_name is not None:
                self._methods.setdefault(fn.name, []).append(fn)
                if fn.name == "__init__":
                    self._inits.setdefault(fn.class_name, []).append(fn)
        self.graph = self._build_graph()
        self.root_keys = self._find_roots(extra_roots)
        self._classify()
        if profile is not None:
            self._fuse_profile(profile)

    # -- construction ----------------------------------------------------

    def _build_graph(self) -> _CallGraph:
        graph = _CallGraph()
        for fn in self.project.functions:
            src = (fn.path, fn.qualname)
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                for target in self._call_targets(fn, node):
                    graph.add_edge(src, (target.path, target.qualname))
        return graph

    def _call_targets(
        self, caller: FunctionInfo, call: ast.Call
    ) -> list[FunctionInfo]:
        resolved = self.project.resolve_call(caller, call)
        if resolved is not None:
            return [resolved]
        chain = attribute_chain(call.func)
        if not chain:
            return []
        # Bare class-name call: edge to the class's __init__ (the
        # constructor body runs on the caller's path).
        if len(chain) == 1 and chain[0] in self._inits:
            return list(self._inits[chain[0]])
        # Unresolved method call: fan out to every project class
        # defining the name (may-call over-approximation), unless the
        # name is so common it carries no signal.
        candidates = self._methods.get(chain[-1], [])
        if 1 < len(candidates) <= FANOUT_CAP:
            return list(candidates)
        return []

    def _find_roots(self, extra_roots: tuple[str, ...]) -> set[tuple[str, str]]:
        roots: set[tuple[str, str]] = set()
        extras = set(extra_roots)
        for fn in self.project.functions:
            lines = self.project.modules[fn.path].lines
            if fn.qualname in extras or fn.name in extras:
                roots.add((fn.path, fn.qualname))
            elif _is_annotated_root(fn, lines):
                roots.add((fn.path, fn.qualname))
        return roots

    def _bfs(
        self,
        seeds: set[tuple[str, str]],
        adjacency: dict[tuple[str, str], set[tuple[str, str]]],
    ) -> dict[tuple[str, str], int]:
        """Hop counts from ``seeds`` over ``adjacency`` (seeds at 0)."""
        depth = {key: 0 for key in seeds}
        frontier = deque(seeds)
        while frontier:
            key = frontier.popleft()
            for nxt in adjacency.get(key, ()):
                if nxt not in depth:
                    depth[nxt] = depth[key] + 1
                    frontier.append(nxt)
        return depth

    def _classify(self) -> None:
        spine_depth = self._bfs(self.root_keys, self.graph.callers)
        hot_seeds = set(spine_depth)
        kernel_depth = self._bfs(hot_seeds, self.graph.callees)
        # Callee closure of the roots alone (no spine fan-out): the code
        # that runs *under* an annotated kernel.  Blind-spot reporting
        # uses this tighter set; the spine closure is linter territory.
        self._root_kernel_depth = self._bfs(self.root_keys, self.graph.callees)
        for key, record in self._records.items():
            if key in self.root_keys:
                record.kind, record.depth = "root", 0
            elif key in spine_depth:
                record.kind, record.depth = "spine", spine_depth[key]
            elif key in kernel_depth:
                record.kind, record.depth = "kernel", kernel_depth[key]

    def _fuse_profile(self, profile: ProfileEvidence) -> None:
        by_key: dict[tuple[str, str], list[HotRecord]] = {}
        for record in self._records.values():
            norm = _norm_path(record.fn.path)
            by_key.setdefault((norm, record.fn.name), []).append(record)
        total = profile.total_seconds
        for entry in profile.entries:
            candidates = by_key.get((_norm_path(entry.path), entry.function), [])
            record = self._nearest(candidates, entry.line)
            if record is None:
                continue
            # Keep the heaviest entry when a function is profiled under
            # several code objects (decorator wrappers, reloads).
            if record.profile is not None and record.profile.cumtime >= entry.cumtime:
                continue
            record.profile = entry
            record.profile_fraction = entry.cumtime / total if total > 0 else 0.0
            record.profile_hot = record.profile_fraction >= self.profile_threshold

    @staticmethod
    def _nearest(candidates: list[HotRecord], line: int) -> HotRecord | None:
        """The candidate whose header is closest to the profiled line.

        ``co_firstlineno`` points at the first decorator (CPython), the
        ``def`` line otherwise; same-named methods of different classes
        disambiguate by proximity.
        """
        best: HotRecord | None = None
        best_gap = 10**9
        for record in candidates:
            start = _first_line(record.fn.node)
            gap = abs(start - line)
            if gap < best_gap:
                best, best_gap = record, gap
        return best

    # -- queries ---------------------------------------------------------

    def record(self, fn: FunctionInfo) -> HotRecord:
        return self._records[(fn.path, fn.qualname)]

    def is_hot(self, fn: FunctionInfo) -> bool:
        return self._records[(fn.path, fn.qualname)].is_hot

    def roots(self) -> list[FunctionInfo]:
        return sorted(
            (self._records[key].fn for key in self.root_keys),
            key=lambda fn: (fn.path, fn.qualname),
        )

    def hot(self) -> list[HotRecord]:
        """All hot records, best score first (deterministic tiebreak)."""
        return sorted(
            (r for r in self._records.values() if r.is_hot),
            key=lambda r: (-r.score, r.fn.path, r.fn.qualname),
        )

    def records(self) -> list[HotRecord]:
        return sorted(
            self._records.values(), key=lambda r: (r.fn.path, r.fn.qualname)
        )

    def blind_spots(self, max_depth: int = 2) -> list[HotRecord]:
        """Functions under an annotated root the profile never saw.

        Restricted to the callee closure of the *roots* (within
        ``max_depth`` hops): this is code the annotations claim runs
        inside a kernel, so "the committed workload never executed it"
        is actionable — a stale annotation, or a workload gap (e.g. the
        quick workload solving every chain directly and never reaching
        the power-iteration path).  The full spine/kernel closure is
        deliberately over-approximate and would drown the signal.  Empty
        when no profile evidence was supplied.
        """
        if self.profile is None:
            return []
        return [
            r
            for r in self.hot()
            if r.profile is None
            and self._root_kernel_depth.get((r.fn.path, r.fn.qualname), 10**9)
            <= max_depth
        ]

    def profile_ranked(self) -> list[tuple[ProfileEntry, HotRecord | None]]:
        """Profile entries by cumtime, each paired with its function."""
        if self.profile is None:
            return []
        matched = {id(r.profile): r for r in self._records.values() if r.profile}
        out: list[tuple[ProfileEntry, HotRecord | None]] = []
        for entry in self.profile.ranked():
            out.append((entry, matched.get(id(entry))))
        return out
