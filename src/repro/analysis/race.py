"""Dynamic race harness for the parallel runtime's shared state.

The static rules (RPR201–RPR205, :mod:`repro.analysis.concurrency`) check
lock *discipline*; this module checks lock *behavior*.  It drives the
runtime's shared-state classes — :class:`repro.runtime.memo.LRUCache`,
the :class:`repro.runtime.cache.DiskParamsCache` memory tier, and the
:class:`repro.market.evaluator.UtilityEvaluator` pending tables — under
controlled thread schedules, records ``(thread, op, key, generation)``
events, and compares the observable outcomes against serial oracles:

- **Serialized schedules** (seeded interleavings enforced step-by-step
  with :class:`threading.Event` gates) replay the exact same global op
  order on a fresh cache in one thread; any divergence in contents or
  counters is a lost update or a torn statistic.  Only non-blocking ops
  run serialized — a blocking op whose wake-up partner is later in the
  schedule would deadlock the gate chain.
- **Storm schedules** (barrier-aligned free-running threads) exercise
  the blocking single-flight paths (``get_or_create``, ``params``) and
  assert the invariants that hold under *any* interleaving: zero
  duplicate builds, one factory/model solve per distinct key, identical
  payloads for every caller of one key, internally consistent stats.

Run it from the command line::

    python -m repro.analysis.race --quick
    python -m repro.analysis.race --seeds 5 --threads 8 --output report.json

Exit status is 0 when every check passes, 1 otherwise; ``--output``
writes the machine-readable report consumed by CI.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import threading
import time
from collections.abc import Callable, Hashable, Sequence
from dataclasses import dataclass
from typing import TypeVar

import numpy as np

from repro._validation import check_non_negative_int, check_positive_int, require
from repro.core.small_cloud import FederationScenario, SmallCloud
from repro.market.evaluator import UtilityEvaluator
from repro.perf.base import PerformanceModel
from repro.perf.params import PerformanceParams
from repro.runtime.cache import DiskParamsCache
from repro.runtime.memo import LRUCache

__all__ = [
    "AccessEvent",
    "AccessLog",
    "InstrumentedLRUCache",
    "RaceCheck",
    "ScheduleFuzzer",
    "main",
    "run_harness",
]

#: Join timeout (seconds) after which a schedule is declared deadlocked.
_JOIN_TIMEOUT = 30.0

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


@dataclass(frozen=True)
class AccessEvent:
    """One recorded shared-state access.

    Attributes:
        thread: harness thread index (not the OS thread id).
        op: operation label (``"get"``, ``"put"``, ``"build"``, ...).
        key: string form of the touched key.
        generation: global sequence number assigned under the log lock.
    """

    thread: int
    op: str
    key: str
    generation: int


class AccessLog:
    """Thread-safe append-only event recorder.

    The generation counter gives every event a global order even when
    two threads record "simultaneously" — whoever takes the log lock
    first is earlier.  Harness-only object: it never crosses a process
    boundary, so it deliberately carries no pickle support.
    """

    def __init__(self) -> None:
        self._events: list[AccessEvent] = []  # guarded-by: _lock
        self._generation = 0  # guarded-by: _lock
        self._lock = threading.Lock()  # repro: noqa[RPR204]

    def record(self, thread: int, op: str, key: object) -> AccessEvent:
        """Append one event, assigning it the next generation number."""
        with self._lock:
            event = AccessEvent(
                thread=thread, op=op, key=repr(key), generation=self._generation
            )
            self._generation += 1
            self._events.append(event)
            return event

    def events(self) -> list[AccessEvent]:
        """A snapshot of all events in generation order."""
        with self._lock:
            return list(self._events)

    def count(self, op: str) -> int:
        """Number of recorded events with operation label ``op``."""
        with self._lock:
            return sum(1 for event in self._events if event.op == op)


class InstrumentedLRUCache(LRUCache[K, V]):
    """An :class:`LRUCache` that records every public operation.

    The recording happens *around* the delegated call (the cache's own
    lock stays private), so the log shows each op's start order — enough
    to reconstruct which accesses overlapped.
    """

    def __init__(self, log: AccessLog, maxsize: int | None = 128) -> None:
        require(
            isinstance(log, AccessLog),
            f"log must be an AccessLog, got {type(log).__name__}",
        )
        super().__init__(maxsize=maxsize)
        self.access_log = log

    def _thread_index(self) -> int:
        ident = getattr(threading.current_thread(), "harness_index", None)
        return ident if isinstance(ident, int) else -1

    def get(self, key: K) -> V | None:
        self.access_log.record(self._thread_index(), "get", key)
        return super().get(key)

    def put(self, key: K, value: V) -> None:
        self.access_log.record(self._thread_index(), "put", key)
        super().put(key, value)

    def pop(self, key: K) -> V | None:
        self.access_log.record(self._thread_index(), "pop", key)
        return super().pop(key)

    def get_or_create(self, key: K, factory: Callable[[], V]) -> V:
        thread = self._thread_index()
        self.access_log.record(thread, "get_or_create", key)

        def logged_factory() -> V:
            self.access_log.record(thread, "build", key)
            return factory()

        return super().get_or_create(key, logged_factory)


class ScheduleFuzzer:
    """Seeded scheduler driving per-thread op programs.

    Args:
        seed: master seed; every interleaving is a pure function of it.

    Two modes:

    - :meth:`run_serialized` — ops execute one at a time in a seeded
      global interleaving (per-thread program order preserved), enforced
      with one :class:`threading.Event` gate per step.  Deterministic,
      so a serial replay of the same order is an exact oracle.
    - :meth:`run_storm` — threads align on a barrier, then free-run
      their programs.  Nondeterministic by design; used for blocking
      ops where a serialized schedule could deadlock.
    """

    def __init__(self, seed: int) -> None:
        self.seed = check_non_negative_int(seed, "seed")
        self._rng = np.random.default_rng(seed)

    def interleaving(self, program_lengths: Sequence[int]) -> list[int]:
        """A seeded global order over per-thread programs.

        Returns a list of thread indices: thread ``t`` appears exactly
        ``program_lengths[t]`` times, and occurrences of each thread are
        in program order.  Shuffling the multiset of thread ids yields a
        uniform random interleaving that preserves per-thread order.
        """
        order = [
            tid for tid, length in enumerate(program_lengths) for _ in range(length)
        ]
        self._rng.shuffle(order)
        return order

    def run_serialized(
        self, programs: Sequence[Sequence[Callable[[], object]]]
    ) -> tuple[list[int], list[str]]:
        """Execute ``programs`` under one seeded serialized interleaving.

        Returns ``(order, errors)`` where ``order`` is the global
        schedule (thread index per step) and ``errors`` collects
        formatted exceptions from worker threads (empty on success, and
        containing ``"deadlock"`` if the gate chain stalled).
        """
        order = self.interleaving([len(program) for program in programs])
        gates = [threading.Event() for _ in order]
        steps_of: dict[int, list[int]] = {tid: [] for tid in range(len(programs))}
        for step, tid in enumerate(order):
            steps_of[tid].append(step)
        errors: list[str] = []
        errors_lock = threading.Lock()

        def worker(tid: int) -> None:
            setattr(threading.current_thread(), "harness_index", tid)
            try:
                for op, step in zip(programs[tid], steps_of[tid]):
                    if not gates[step].wait(timeout=_JOIN_TIMEOUT):
                        raise TimeoutError(f"gate {step} never opened")
                    try:
                        op()
                    finally:
                        if step + 1 < len(gates):
                            gates[step + 1].set()
            except Exception as exc:  # propagate into the report
                with errors_lock:
                    errors.append(f"thread {tid}: {type(exc).__name__}: {exc}")
                # Open every remaining gate so the other threads drain
                # instead of hanging on a step that will never run.
                for gate in gates:
                    gate.set()

        threads = [
            threading.Thread(target=worker, args=(tid,), daemon=True)
            for tid in range(len(programs))
        ]
        if gates:
            gates[0].set()
        for thread in threads:
            thread.start()
        deadlocked = _join_all(threads)
        if deadlocked:
            errors.append("deadlock: serialized schedule did not complete")
        return order, errors

    def run_storm(
        self, programs: Sequence[Sequence[Callable[[], object]]]
    ) -> list[str]:
        """Execute ``programs`` concurrently from a barrier-aligned start."""
        barrier = threading.Barrier(len(programs))
        errors: list[str] = []
        errors_lock = threading.Lock()

        def worker(tid: int) -> None:
            setattr(threading.current_thread(), "harness_index", tid)
            try:
                barrier.wait(timeout=_JOIN_TIMEOUT)
                for op in programs[tid]:
                    op()
            except Exception as exc:
                with errors_lock:
                    errors.append(f"thread {tid}: {type(exc).__name__}: {exc}")

        threads = [
            threading.Thread(target=worker, args=(tid,), daemon=True)
            for tid in range(len(programs))
        ]
        for thread in threads:
            thread.start()
        if _join_all(threads):
            errors.append("deadlock: storm schedule did not complete")
        return errors


def _join_all(threads: Sequence[threading.Thread]) -> bool:
    """Join every thread; ``True`` when any is still alive (deadlock)."""
    deadline = time.monotonic() + _JOIN_TIMEOUT
    for thread in threads:
        thread.join(timeout=max(0.0, deadline - time.monotonic()))
    return any(thread.is_alive() for thread in threads)


class _ToyModel(PerformanceModel):
    """Deterministic analytic stand-in model with a tunable solve delay.

    Parameters are a pure closed-form function of the scenario (no
    solver), so every evaluation of one sharing vector is bit-identical;
    the optional delay widens race windows in the evaluator's
    single-flight path.  Call counters let checks assert that each
    distinct vector was solved exactly once.
    """

    def __init__(self, delay: float = 0.0) -> None:
        if delay < 0.0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        self.delay = delay
        self.calls = 0  # guarded-by: _calls_lock
        self.target_calls = 0  # guarded-by: _calls_lock
        self._calls_lock = threading.Lock()

    def evaluate(self, scenario: FederationScenario) -> list[PerformanceParams]:
        with self._calls_lock:
            self.calls += 1
        if self.delay:
            time.sleep(self.delay)
        return [self._params(scenario, i) for i in range(len(scenario))]

    def evaluate_target(
        self,
        scenario: FederationScenario,
        target: int,
        deviation: int | None = None,
    ) -> PerformanceParams:
        with self._calls_lock:
            self.target_calls += 1
        if self.delay:
            time.sleep(self.delay)
        return self._params(scenario, int(target))

    @staticmethod
    def _params(scenario: FederationScenario, index: int) -> PerformanceParams:
        cloud = scenario[index]
        others = scenario.shared_by_others(index)
        return PerformanceParams(
            lent_mean=0.5 * cloud.shared_vms,
            borrowed_mean=0.25 * others,
            forward_rate=0.05 * cloud.arrival_rate,
            utilization=min(0.95, cloud.offered_load / cloud.vms),
        )

    # Ship configuration only, like the real models' caches: counters
    # and the lock are per-process diagnostics.
    def __getstate__(self) -> dict[str, float]:
        return {"delay": self.delay}

    def __setstate__(self, state: dict[str, float]) -> None:
        self.delay = state["delay"]
        self.calls = 0
        self.target_calls = 0
        self._calls_lock = threading.Lock()


def _toy_scenario() -> FederationScenario:
    return FederationScenario(
        clouds=(
            SmallCloud(name="sc1", vms=4, arrival_rate=2.0),
            SmallCloud(name="sc2", vms=5, arrival_rate=2.5),
            SmallCloud(name="sc3", vms=6, arrival_rate=3.0),
        )
    )


def _stat(stats: dict[str, int | None], name: str) -> int:
    """A counter from a stats snapshot (``maxsize`` alone may be None)."""
    value = stats[name]
    return value if value is not None else 0


def _params_fingerprint(params: Sequence[PerformanceParams]) -> tuple[str, ...]:
    """Bit-exact value key of a parameter list (``float.hex`` per field)."""
    fields = ("lent_mean", "borrowed_mean", "forward_rate", "utilization")
    return tuple(
        float(getattr(entry, name)).hex() for entry in params for name in fields
    )


@dataclass(frozen=True)
class RaceCheck:
    """Outcome of one harness check."""

    name: str
    seed: int
    ok: bool
    details: dict

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "ok": self.ok,
            "details": self.details,
        }


# --------------------------------------------------------------------- #
# Check 1: serialized LRU schedules vs. a serial-replay oracle.
# --------------------------------------------------------------------- #


def check_lru_serialized(seed: int, threads: int, ops_per_thread: int = 24) -> RaceCheck:
    """Lost-update / torn-stats check for :class:`LRUCache` get/put/pop.

    A seeded serialized interleaving of non-blocking ops is executed by
    real threads (one at a time, gate-enforced), then the *same* global
    op order is replayed on a fresh cache in a single thread.  Because
    every op is atomic under the cache lock, the two executions must
    agree exactly — keys, LRU order, values, and hit/miss counters.  A
    divergence means an op's effect was lost or a counter was torn.
    """
    rng = np.random.default_rng(seed)
    keys = [f"k{i}" for i in range(4)]
    # Programs as data so the replay oracle can re-execute them.
    programs: list[list[tuple[str, str, object]]] = []
    for tid in range(threads):
        program: list[tuple[str, str, object]] = []
        for step in range(ops_per_thread):
            key = keys[int(rng.integers(len(keys)))]
            roll = float(rng.random())
            if roll < 0.45:
                program.append(("put", key, (tid, step)))
            elif roll < 0.9:
                program.append(("get", key, None))
            else:
                program.append(("pop", key, None))
        programs.append(program)

    log = AccessLog()
    cache: InstrumentedLRUCache = InstrumentedLRUCache(log, maxsize=3)

    def bind(op: tuple[str, str, object]) -> Callable[[], object]:
        kind, key, value = op
        if kind == "put":
            return lambda: cache.put(key, value)
        if kind == "get":
            return lambda: cache.get(key)
        return lambda: cache.pop(key)

    fuzzer = ScheduleFuzzer(seed)
    order, errors = fuzzer.run_serialized(
        [[bind(op) for op in program] for program in programs]
    )

    # Serial-replay oracle: the same global order on a fresh cache.
    oracle: LRUCache = LRUCache(maxsize=3)
    cursors = [0] * threads
    for tid in order:
        kind, key, value = programs[tid][cursors[tid]]
        cursors[tid] += 1
        if kind == "put":
            oracle.put(key, value)
        elif kind == "get":
            oracle.get(key)
        else:
            oracle.pop(key)

    live_stats = cache.stats()
    oracle_stats = oracle.stats()
    mismatches: list[str] = []
    if live_stats != oracle_stats:
        mismatches.append(f"stats diverged: live={live_stats} oracle={oracle_stats}")
    if cache.keys() != oracle.keys():
        mismatches.append(
            f"contents diverged: live={cache.keys()} oracle={oracle.keys()}"
        )
    for key in oracle.keys():
        if cache.pop(key) != oracle.pop(key):
            mismatches.append(f"value diverged for {key!r}")
    ok = not errors and not mismatches
    return RaceCheck(
        name="lru-serialized-replay",
        seed=seed,
        ok=ok,
        details={
            "threads": threads,
            "ops": sum(len(p) for p in programs),
            "events": log.count("get") + log.count("put") + log.count("pop"),
            "errors": errors,
            "mismatches": mismatches,
        },
    )


# --------------------------------------------------------------------- #
# Check 2: get_or_create single-flight under a storm.
# --------------------------------------------------------------------- #


def check_lru_single_flight(
    seed: int, threads: int, keys: int = 6, rounds: int = 3
) -> RaceCheck:
    """Duplicate-build / payload-identity check for ``get_or_create``.

    Every thread requests every key (seeded permutation per round) with
    a slow factory producing a *distinguishable* payload (a fresh list
    carrying a build serial).  Under single-flight discipline the
    factory runs exactly once per key, every caller gets the *same*
    object, and ``duplicate_builds`` stays zero.  A stats poller runs
    alongside the storm asserting every snapshot is internally
    consistent (no torn counters).
    """
    rng = np.random.default_rng(seed)
    key_names = [f"k{i}" for i in range(keys)]
    log = AccessLog()
    cache: InstrumentedLRUCache = InstrumentedLRUCache(log, maxsize=None)

    build_serial = [0]
    build_lock = threading.Lock()
    results: dict[int, list[tuple[str, int]]] = {tid: [] for tid in range(threads)}

    def factory_for(key: str) -> Callable[[], list]:
        def factory() -> list:
            time.sleep(0.002)
            with build_lock:
                build_serial[0] += 1
                serial = build_serial[0]
            return [key, serial]

        return factory

    def program_for(tid: int) -> list[Callable[[], object]]:
        ops: list[Callable[[], object]] = []
        for _ in range(rounds):
            for key in rng.permutation(key_names):
                key = str(key)

                def op(key: str = key, tid: int = tid) -> object:
                    value = cache.get_or_create(key, factory_for(key))
                    results[tid].append((key, id(value)))
                    return value

                ops.append(op)
        return ops

    programs = [program_for(tid) for tid in range(threads)]

    # Torn-stats poller: every snapshot must be internally consistent.
    stop = threading.Event()
    snapshot_errors: list[str] = []

    def poll_stats() -> None:
        previous_total = 0
        while not stop.is_set():
            stats = cache.stats()
            total = _stat(stats, "hits") + _stat(stats, "misses")
            if total < previous_total:
                snapshot_errors.append(
                    f"hits+misses went backwards: {previous_total} -> {total}"
                )
            if stats["duplicate_builds"] != 0:
                snapshot_errors.append(f"duplicate_builds={stats['duplicate_builds']}")
            previous_total = total
            time.sleep(0.0005)

    poller = threading.Thread(target=poll_stats, daemon=True)
    poller.start()
    errors = ScheduleFuzzer(seed).run_storm(programs)
    stop.set()
    poller.join(timeout=_JOIN_TIMEOUT)

    stats = cache.stats()
    mismatches: list[str] = list(snapshot_errors)
    if stats["duplicate_builds"] != 0:
        mismatches.append(f"duplicate_builds={stats['duplicate_builds']} (expected 0)")
    if log.count("build") != len(key_names):
        mismatches.append(
            f"factory ran {log.count('build')} times for {len(key_names)} keys"
        )
    if stats["misses"] != len(key_names):
        mismatches.append(f"misses={stats['misses']} (expected {len(key_names)})")
    expected_ops = threads * rounds * len(key_names)
    if _stat(stats, "hits") + _stat(stats, "misses") != expected_ops:
        mismatches.append(
            f"hits+misses={_stat(stats, 'hits') + _stat(stats, 'misses')} "
            f"(expected {expected_ops})"
        )
    # Payload identity: every caller of one key saw the same object.
    identities: dict[str, set[int]] = {}
    for returned in results.values():
        for key, ident in returned:
            identities.setdefault(key, set()).add(ident)
    for key, idents in sorted(identities.items()):
        if len(idents) != 1:
            mismatches.append(f"key {key!r} returned {len(idents)} distinct payloads")
    ok = not errors and not mismatches
    return RaceCheck(
        name="lru-single-flight",
        seed=seed,
        ok=ok,
        details={
            "threads": threads,
            "keys": len(key_names),
            "builds": log.count("build"),
            "stats": stats,
            "errors": errors,
            "mismatches": mismatches,
        },
    )


# --------------------------------------------------------------------- #
# Check 3: DiskParamsCache memory tier under concurrent readers/writers.
# --------------------------------------------------------------------- #


def check_disk_cache_memory_tier(seed: int, threads: int) -> RaceCheck:
    """Payload-identity check for the persistent cache's memory front.

    The cache is pre-populated with deterministic parameters for a small
    vector set, then a storm of readers (plus writers re-storing the
    same deterministic values) hammers it with a deliberately tiny
    memory tier so reads constantly evict and reload from disk.  Every
    read must return the exact stored floats, and the memory tier's
    counters must add up to the number of lookups issued.
    """
    rng = np.random.default_rng(seed)
    scenario = _toy_scenario()
    model = _ToyModel()
    vectors = [(0, 0, 0), (1, 0, 2), (2, 1, 0), (3, 2, 4), (1, 1, 1)]
    expected = {
        vector: model.evaluate(scenario.with_sharing(vector)) for vector in vectors
    }
    fingerprints = {
        vector: _params_fingerprint(params) for vector, params in expected.items()
    }

    with tempfile.TemporaryDirectory(prefix="repro-race-") as root:
        cache = DiskParamsCache(root, scenario, model, memory_size=2)
        for vector, params in expected.items():
            cache[vector] = params

        reads = [0]
        reads_lock = threading.Lock()
        mismatches: list[str] = []
        mismatch_lock = threading.Lock()

        def program_for(tid: int) -> list[Callable[[], object]]:
            ops: list[Callable[[], object]] = []
            sequence = [
                vectors[int(i)] for i in rng.integers(len(vectors), size=30)
            ]
            for vector in sequence:
                write = bool(rng.random() < 0.2)

                def op(vector: tuple[int, ...] = vector, write: bool = write) -> None:
                    if write:
                        cache[vector] = expected[vector]
                        return
                    with reads_lock:
                        reads[0] += 1
                    got = _params_fingerprint(cache[vector])
                    if got != fingerprints[vector]:
                        with mismatch_lock:
                            mismatches.append(
                                f"thread {tid} read torn params for {vector}"
                            )

                ops.append(op)
            return ops

        programs = [program_for(tid) for tid in range(threads)]
        errors = ScheduleFuzzer(seed).run_storm(programs)

        memory_stats = cache._memory.stats()
        lookups = _stat(memory_stats, "hits") + _stat(memory_stats, "misses")
        if lookups != reads[0]:
            mismatches.append(
                f"memory tier counted {lookups} lookups for {reads[0]} reads"
            )
        if len(cache) != len(vectors):
            mismatches.append(f"cache holds {len(cache)} vectors, expected {len(vectors)}")
        size = _stat(memory_stats, "size")
        if size > 2:
            mismatches.append(f"memory tier exceeded its bound: size={size}")
    ok = not errors and not mismatches
    return RaceCheck(
        name="disk-cache-memory-tier",
        seed=seed,
        ok=ok,
        details={
            "threads": threads,
            "vectors": len(vectors),
            "reads": reads[0],
            "memory_stats": memory_stats,
            "errors": errors,
            "mismatches": mismatches,
        },
    )


# --------------------------------------------------------------------- #
# Check 4: UtilityEvaluator pending tables under a storm.
# --------------------------------------------------------------------- #


def check_evaluator_pending(seed: int, threads: int) -> RaceCheck:
    """Duplicate-solve / result-identity check for the evaluator.

    A storm of ``params`` and ``params_target`` calls over overlapping
    sharing vectors must solve each distinct full vector exactly once
    (the pending-table single-flight), return the identical cached list
    to every caller, and satisfy the target contract
    ``params_target(s, i) == params(s)[i]`` bit-for-bit.
    """
    rng = np.random.default_rng(seed)
    scenario = _toy_scenario()
    model = _ToyModel(delay=0.002)
    evaluator = UtilityEvaluator(scenario, model, gamma=0.5)
    vectors = [(0, 0, 0), (1, 0, 2), (2, 1, 0), (3, 2, 4)]
    reference = {
        vector: _params_fingerprint(_ToyModel().evaluate(scenario.with_sharing(vector)))
        for vector in vectors
    }

    full_results: dict[int, list[tuple[tuple[int, ...], int]]] = {
        tid: [] for tid in range(threads)
    }
    mismatches: list[str] = []
    mismatch_lock = threading.Lock()

    def program_for(tid: int) -> list[Callable[[], object]]:
        ops: list[Callable[[], object]] = []
        for vector_index in rng.permutation(len(vectors)):
            vector = vectors[int(vector_index)]
            target = int(rng.integers(len(scenario)))

            def full_op(vector: tuple[int, ...] = vector, tid: int = tid) -> None:
                params = evaluator.params(vector)
                full_results[tid].append((vector, id(params)))
                if _params_fingerprint(params) != reference[vector]:
                    with mismatch_lock:
                        mismatches.append(f"params({vector}) diverged from reference")

            def target_op(
                vector: tuple[int, ...] = vector, target: int = target
            ) -> None:
                entry = evaluator.params_target(vector, target)
                full = evaluator.params(vector)[target]
                if _params_fingerprint([entry]) != _params_fingerprint([full]):
                    with mismatch_lock:
                        mismatches.append(
                            f"params_target({vector}, {target}) != params[{target}]"
                        )

            ops.extend([full_op, target_op])
        return ops

    programs = [program_for(tid) for tid in range(threads)]
    errors = ScheduleFuzzer(seed).run_storm(programs)

    if evaluator.evaluations != len(vectors):
        mismatches.append(
            f"evaluations={evaluator.evaluations} for {len(vectors)} distinct vectors"
        )
    if model.calls != evaluator.evaluations:
        mismatches.append(
            f"model solved {model.calls} times but evaluator counted "
            f"{evaluator.evaluations}"
        )
    if model.target_calls != evaluator.target_evaluations:
        mismatches.append(
            f"model target-solved {model.target_calls} times but evaluator "
            f"counted {evaluator.target_evaluations}"
        )
    # Result identity: every caller of one vector got the same list object.
    identities: dict[tuple[int, ...], set[int]] = {}
    for returned in full_results.values():
        for vector, ident in returned:
            identities.setdefault(vector, set()).add(ident)
    for vector, idents in sorted(identities.items()):
        if len(idents) != 1:
            mismatches.append(
                f"vector {vector} returned {len(idents)} distinct param lists"
            )
    ok = not errors and not mismatches
    return RaceCheck(
        name="evaluator-pending-tables",
        seed=seed,
        ok=ok,
        details={
            "threads": threads,
            "vectors": len(vectors),
            "evaluations": evaluator.evaluations,
            "target_evaluations": evaluator.target_evaluations,
            "errors": errors,
            "mismatches": mismatches,
        },
    )


# --------------------------------------------------------------------- #
# Harness driver and CLI.
# --------------------------------------------------------------------- #

_CHECKS: tuple[Callable[[int, int], RaceCheck], ...] = (
    check_lru_serialized,
    check_lru_single_flight,
    check_disk_cache_memory_tier,
    check_evaluator_pending,
)


def run_harness(seeds: Sequence[int], threads: int) -> dict:
    """Run every check under every seed; returns the JSON-able report."""
    threads = check_positive_int(threads, "threads")
    checks = [check(int(seed), threads) for seed in seeds for check in _CHECKS]
    return {
        "harness": "repro.analysis.race",
        "format_version": 1,
        "seeds": [int(seed) for seed in seeds],
        "threads": threads,
        "checks": [check.as_dict() for check in checks],
        "passed": sum(1 for check in checks if check.ok),
        "failed": sum(1 for check in checks if not check.ok),
        "ok": all(check.ok for check in checks),
    }


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.race",
        description="dynamic race harness for the parallel runtime",
    )
    parser.add_argument(
        "--seeds", type=int, default=3, help="number of schedule seeds (default 3)"
    )
    parser.add_argument(
        "--master-seed",
        type=int,
        default=20240,
        help="base seed; schedule seeds are master-seed + i",
    )
    parser.add_argument(
        "--threads", type=int, default=4, help="worker threads per schedule"
    )
    parser.add_argument(
        "--quick", action="store_true", help="single seed (the CI configuration)"
    )
    parser.add_argument(
        "--output", type=str, default=None, help="write the JSON report here"
    )
    args = parser.parse_args(argv)

    count = 1 if args.quick else max(1, args.seeds)
    seeds = [args.master_seed + i for i in range(count)]
    report = run_harness(seeds, threads=args.threads)

    if args.output:
        with open(args.output, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
    for check in report["checks"]:
        status = "ok" if check["ok"] else "FAIL"
        line = f"{status:4s} {check['name']} (seed {check['seed']})"
        if not check["ok"]:
            line += f" -- {check['details'].get('mismatches') or check['details'].get('errors')}"
        print(line)
    print(
        f"{report['passed']} passed, {report['failed']} failed "
        f"({len(report['seeds'])} seeds x {len(_CHECKS)} checks)"
    )
    return 0 if report["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
