"""Interprocedural fingerprint-soundness & determinism lint (RPR3xx).

Run as a module::

    python -m repro.analysis.dataflow src
    python -m repro.analysis.dataflow --list-rules
    python -m repro.analysis.dataflow --select RPR301 src
    python -m repro.analysis.dataflow --self-test src

The system's correctness rests on content-hash caches at three tiers
(level-prefix memo, warm-start replay, disk params cache) and on
bitwise-identical equilibria across serial/thread/process backends.
The RPR3xx family makes those contracts statically checkable:

=======  ==============================================================
Code     Contract
=======  ==============================================================
RPR301   Every declared fingerprint input (signature parameter or
         ``# fingerprint-input:`` attribute) flows into the returned
         key/digest expression.
RPR302   Unordered-collection iteration order never feeds float
         accumulation, digests, or observables.
RPR303   Environment state (``os.environ``, wall clock, ``platform``,
         salted ``hash()``) never reaches fingerprints, persisted
         payloads, or digests.
RPR304   Objects are not mutated after entering a fingerprint.
RPR305   Thread-/backend-dependent state never reaches observables the
         differential checker asserts bit-identical.
RPR306   Persisted payload formats carry a version constant.
=======  ==============================================================

Unlike the single-file RPR1xx/RPR2xx families, these rules are
*interprocedural*: the whole tree is indexed into a
:class:`~repro.analysis.summaries.Project`, calls are resolved across
modules, and per-function summaries are computed to a fixpoint, so a
taint introduced two calls deep is visible at the sink.

``--self-test`` measures the analyzer's recall instead of assuming it:
for every real fingerprint function in the tree it seeds one mutant per
flowing input — severing every read of that input to ``None`` — and
asserts RPR301 fires for each.  Anything below 100% is a failure.

Suppression: ``# repro: noqa[RPR3xx]`` per line, exactly as for the
other rule families.
"""

from __future__ import annotations

import argparse
import ast
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping, Sequence, TextIO

from repro.analysis.dataflow_determinism import DETERMINISM_RULES, check_determinism
from repro.analysis.dataflow_fingerprint import (
    FINGERPRINT_RULES,
    check_fingerprints,
    required_inputs,
)
from repro.analysis.lintbase import LintRule, Violation, apply_noqa, render_json
from repro.analysis.summaries import (
    FunctionInfo,
    ModuleInfo,
    Project,
    load_sources,
)

__all__ = [
    "DATAFLOW_RULES",
    "MutantOutcome",
    "analyze_paths",
    "analyze_sources",
    "main",
    "run_self_test",
]

#: Every RPR3xx rule, in code order.
DATAFLOW_RULES: tuple[LintRule, ...] = tuple(
    sorted((*FINGERPRINT_RULES, *DETERMINISM_RULES), key=lambda rule: rule.code)
)

_RULE_BY_CODE = {rule.code: rule for rule in DATAFLOW_RULES}


def analyze_sources(
    sources: Mapping[str, str],
    select: Sequence[str] | None = None,
    noqa: bool = True,
    parsed: Mapping[str, ast.Module] | None = None,
) -> list[Violation]:
    """Run every RPR3xx rule over ``sources`` and return violations.

    Args:
        sources: mapping of file path to module source text.
        select: optional rule codes to keep (default: all).
        noqa: honour ``# repro: noqa[...]`` suppressions (the mutation
            self-test disables this so suppressions cannot mask a miss).
        parsed: optional pre-parsed trees, keyed by path.
    """
    project = Project(sources, parsed=parsed)
    violations = check_fingerprints(project) + check_determinism(project)
    if noqa:
        by_path: dict[str, list[Violation]] = {}
        for violation in violations:
            by_path.setdefault(violation.path, []).append(violation)
        violations = []
        for path, group in by_path.items():
            violations.extend(apply_noqa(group, sources.get(path, "")))
    if select is not None:
        wanted = {code.upper() for code in select}
        violations = [v for v in violations if v.code in wanted]
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    return violations


def analyze_paths(
    paths: Sequence[Path],
    select: Sequence[str] | None = None,
    noqa: bool = True,
) -> list[Violation]:
    """Analyze every ``.py`` file under ``paths``."""
    return analyze_sources(load_sources(paths), select=select, noqa=noqa)


# -- mutation self-test --------------------------------------------------


@dataclass
class MutantOutcome:
    """One seeded fingerprint-omission mutant and whether RPR301 caught it."""

    path: str
    qualname: str
    kind: str
    name: str
    caught: bool

    def render(self) -> str:
        status = "caught" if self.caught else "MISSED"
        return (
            f"self-test: {self.path}:{self.qualname} :: sever {self.kind} "
            f"{self.name!r} -> {status}"
        )


def _sever_input(
    module: ModuleInfo, fn: FunctionInfo, kind: str, name: str
) -> str | None:
    """Mutated module source with every read of the input set to ``None``.

    Works on source spans, not ``ast.unparse``, so comments — including
    ``# fingerprint-input:`` declarations and ``# repro: noqa`` lines —
    survive the mutation.  Offsets are UTF-8 byte offsets (the ``ast``
    convention), so splicing happens on encoded lines.  Returns ``None``
    when no single-line read of the input exists to sever.
    """
    reads: list[ast.expr] = []
    for node in ast.walk(fn.node):
        if kind == "parameter":
            if (
                isinstance(node, ast.Name)
                and node.id == name
                and isinstance(node.ctx, ast.Load)
            ):
                reads.append(node)
        elif (
            isinstance(node, ast.Attribute)
            and node.attr == name
            and isinstance(node.ctx, ast.Load)
            and isinstance(node.value, ast.Name)
            and node.value.id in ("self", "cls")
        ):
            reads.append(node)
    spans: list[tuple[int, int, int]] = []  # (lineno, col, end_col)
    for read in reads:
        if read.end_lineno != read.lineno or read.end_col_offset is None:
            continue  # multi-line span; leave it and sever the others
        spans.append((read.lineno, read.col_offset, read.end_col_offset))
    if not spans:
        return None
    lines = [line.encode("utf-8") for line in module.source.splitlines(keepends=True)]
    for lineno, col, end_col in sorted(spans, reverse=True):
        line = lines[lineno - 1]
        lines[lineno - 1] = line[:col] + b"None" + line[end_col:]
    return b"".join(lines).decode("utf-8")


def run_self_test(paths: Sequence[Path], stream: TextIO | None = None) -> int:
    """Seed one omission mutant per flowing fingerprint input; demand 100%.

    Each fingerprint-declaring file is analyzed in isolation (calls out
    of the file are traced permissively, so an argument always reaches
    the slice — sound for RPR301), which keeps the per-mutant cost to
    one small re-index instead of a whole-tree fixpoint.
    """
    if stream is None:
        stream = sys.stdout
    sources = load_sources(paths)
    outcomes: list[MutantOutcome] = []
    skipped: list[str] = []
    for path in sorted(sources):
        baseline = Project({path: sources[path]})
        for fn in baseline.fingerprint_functions():
            if not baseline.summary(fn).returns_value:
                continue
            sliced = baseline.return_slice(fn)
            for kind, name in required_inputs(baseline, fn):
                flowing = (
                    name in sliced.params if kind == "parameter" else name in sliced.attrs
                )
                if not flowing:
                    continue  # a live RPR301 finding, not self-test material
                mutated = _sever_input(baseline.modules[path], fn, kind, name)
                if mutated is None:
                    skipped.append(f"{path}:{fn.qualname} {kind} {name!r}")
                    continue
                mutant = Project({path: mutated})
                findings = check_fingerprints(mutant)  # noqa suppressions off
                caught = any(
                    v.code == "RPR301"
                    and fn.qualname in v.message
                    and f"{name!r}" in v.message
                    for v in findings
                )
                outcomes.append(
                    MutantOutcome(
                        path=path, qualname=fn.qualname, kind=kind, name=name, caught=caught
                    )
                )
    for outcome in outcomes:
        print(outcome.render(), file=stream)
    for entry in skipped:
        print(f"self-test: skipped (no severable read): {entry}", file=stream)
    caught_count = sum(1 for outcome in outcomes if outcome.caught)
    total = len(outcomes)
    percent = 100.0 * caught_count / total if total else 0.0
    print(
        f"self-test: {caught_count}/{total} fingerprint-omission mutants "
        f"caught by RPR301 ({percent:.0f}%)",
        file=stream,
    )
    if total == 0:
        print("self-test: no fingerprint functions found", file=stream)
        return 1
    return 0 if caught_count == total else 1


# -- CLI -----------------------------------------------------------------


def _parse_select(raw: str | None) -> list[str] | None:
    """Parse ``--select``; raises :class:`ValueError` on unknown codes."""
    if raw is None:
        return None
    codes = [code.strip().upper() for code in raw.split(",") if code.strip()]
    unknown = [code for code in codes if code not in _RULE_BY_CODE]
    if unknown:
        raise ValueError(
            f"unknown rule code(s): {', '.join(unknown)} "
            f"(known: {', '.join(sorted(_RULE_BY_CODE))}; RPR1xx/RPR2xx "
            "run through python -m repro.analysis.lint, RPR4xx through "
            "python -m repro.analysis.perf_lint)"
        )
    return codes


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code (0 clean, 1
    violations or self-test misses, 2 usage error)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.dataflow",
        description="Interprocedural fingerprint-soundness and "
        "determinism lint (RPR301-RPR306): cache-key omission, "
        "unordered-order leaks, environment/thread taint, "
        "post-fingerprint mutation, unversioned payloads.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        default=[Path("src")],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated RPR3xx codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="seed fingerprint-omission mutants and verify RPR301 recall",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="violation output format (default: text)",
    )
    options = parser.parse_args(argv)
    if options.list_rules:
        for rule in DATAFLOW_RULES:
            print(f"{rule.code}  {rule.name:32s} {rule.summary}")
        return 0
    try:
        select = _parse_select(options.select)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    paths = options.paths or [Path("src")]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2
    if options.self_test:
        return run_self_test(paths)
    violations = analyze_paths(paths, select=select)
    if options.format == "json":
        print(render_json(violations))
        return 1 if violations else 0
    for violation in violations:
        print(violation.render())
    if violations:
        count = len(violations)
        print(f"found {count} violation{'s' if count != 1 else ''}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
