"""Domain-specific AST lint rules for the SC-Share reproduction.

Run as a module::

    python -m repro.analysis.lint src tests
    python -m repro.analysis.lint --list-rules
    python -m repro.analysis.lint --select RPR101,RPR105 src

Generic linters cannot know that this codebase's correctness depends on
seeded randomness, tolerance-based float comparison, immutable scenario
objects, validated constructors, and deterministic cache keys.  Each
rule below encodes one of those domain contracts as a static check with
a stable error code:

=======  ==============================================================
Code     Contract
=======  ==============================================================
RPR101   No unseeded randomness: ``np.random.*`` sampling helpers and
         the stdlib ``random`` module are forbidden outside the
         dedicated RNG modules; all draws flow through seeded
         ``numpy.random.Generator`` streams.
RPR102   No float equality on probabilities/rates: ``==`` / ``!=``
         against non-sentinel float literals (anything but exactly
         ``0.0`` / ``1.0``) or between two probability-/rate-named
         operands; compare against a tolerance instead.
RPR103   No mutation of frozen configuration objects
         (``PerformanceParams``, ``SmallCloud``, ``FederationScenario``
         and friends) after construction; ``object.__setattr__`` is
         allowed only inside ``__init__`` / ``__post_init__`` /
         ``__setstate__``.
RPR104   Every public entry point validates: public constructors
         (``__init__`` / ``__post_init__`` of public classes taking
         caller-supplied arguments) must call a
         :mod:`repro._validation` helper, a sanitizer check, or raise
         on bad input.
RPR105   Deterministic cache keys: fingerprint/hash/key-building
         functions must not call wall-clock, uuid, ``os.urandom``,
         ``id()`` or the salted builtin ``hash()``.
=======  ==============================================================

The RPR2xx lock-discipline rules (guarded-by attributes, check-then-act,
lock ordering, process-unsafe state, mutable module state) live in
:mod:`repro.analysis.concurrency` and run through this same CLI; see
that module for their contract table.

Suppression: append ``# repro: noqa[RPR101]`` (or a comma-separated
list, or bare ``# repro: noqa`` for all rules) to the offending line.
Suppressions are per-line and per-code so they survive refactors
without silently widening.
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.analysis.concurrency import CONCURRENCY_RULES, check_concurrency
from repro.analysis.lintbase import LintRule, Violation, apply_noqa, render_json

__all__ = [
    "LINT_RULES",
    "LintRule",
    "Violation",
    "lint_file",
    "lint_paths",
    "lint_source",
    "main",
]


RPR101 = LintRule(
    code="RPR101",
    name="unseeded-random",
    summary="np.random.* sampling / stdlib random outside the seeded RNG modules",
)
RPR102 = LintRule(
    code="RPR102",
    name="float-probability-equality",
    summary="== / != on probabilities, rates, or non-sentinel float literals",
)
RPR103 = LintRule(
    code="RPR103",
    name="frozen-object-mutation",
    summary="mutation of frozen scenario/params objects after construction",
)
RPR104 = LintRule(
    code="RPR104",
    name="unvalidated-entry-point",
    summary="public constructor without a _validation helper call or raise",
)
RPR105 = LintRule(
    code="RPR105",
    name="nondeterministic-cache-key",
    summary="wall-clock / uuid / id() / hash() inside cache-key construction",
)

#: All rules, in code order (domain rules plus the concurrency family).
LINT_RULES: tuple[LintRule, ...] = (
    RPR101,
    RPR102,
    RPR103,
    RPR104,
    RPR105,
) + CONCURRENCY_RULES

_RULE_BY_CODE = {rule.code: rule for rule in LINT_RULES}

#: Files (path suffixes) where direct randomness is the point.
RANDOMNESS_ALLOWED_SUFFIXES: tuple[str, ...] = (
    "repro/sim/rng.py",
    "repro/runtime/seeding.py",
)

#: numpy.random attributes that are seeding/plumbing, not unseeded draws.
_NP_RANDOM_SAFE = frozenset(
    {
        "Generator",
        "BitGenerator",
        "SeedSequence",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "MT19937",
        "SFC64",
    }
)

#: Operand names that denote probabilities/rates for RPR102.
_PROBABILITY_NAME = re.compile(
    r"(^|_)(prob|probability|probabilities|rate|rates|pi|rho|weight|weights|"
    r"mass|util|utilization|utility|utilities|welfare|epsilon|tol|tolerance|"
    r"density|fraction)($|_)",
    re.IGNORECASE,
)

#: Receiver names treated as frozen configuration objects for RPR103.
_FROZEN_RECEIVER = re.compile(
    r"(^|_)(scenario|cloud|clouds|params|param|outcome|small_cloud|federation)($|_)",
    re.IGNORECASE,
)

#: Methods allowed to call object.__setattr__ (frozen-dataclass idiom).
_CONSTRUCTION_METHODS = frozenset(
    {"__init__", "__post_init__", "__setstate__", "__new__"}
)

#: Validation helpers whose call satisfies RPR104.
_VALIDATION_HELPERS = re.compile(
    r"^(require|check_[a-z_]+|validate[a-z_]*|_validate[a-z_]*)$"
)

#: Function-name shapes that build cache keys/fingerprints (RPR105 scope).
_CACHE_KEY_FUNCTION = re.compile(
    r"(fingerprint|cache_key|digest|(^|_)hash(_|$)|_key$)", re.IGNORECASE
)

#: Call targets that are nondeterministic across processes/runs.
_NONDETERMINISTIC_ATTRS = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "now",
        "utcnow",
        "today",
        "uuid1",
        "uuid4",
        "urandom",
        "getrandbits",
    }
)
_NONDETERMINISTIC_BUILTINS = frozenset({"id", "hash"})


def _attribute_chain(node: ast.AST) -> list[str]:
    """Flatten ``a.b.c`` into ``['a', 'b', 'c']`` (empty if not a chain)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return []


def _operand_name(node: ast.AST) -> str | None:
    """The identifier an operand reads from, if any (name or attribute)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Call):
        return _operand_name(node.func)
    return None


@dataclass
class _ModuleContext:
    """Per-file alias and scope bookkeeping shared by all rules."""

    path: str
    randomness_allowed: bool
    numpy_aliases: set[str] = field(default_factory=set)
    numpy_random_aliases: set[str] = field(default_factory=set)
    stdlib_random_aliases: set[str] = field(default_factory=set)


class _Visitor(ast.NodeVisitor):
    """Single-pass visitor evaluating every lint rule."""

    def __init__(self, context: _ModuleContext) -> None:
        self.context = context
        self.violations: list[Violation] = []
        self._class_stack: list[ast.ClassDef] = []
        self._function_stack: list[ast.FunctionDef | ast.AsyncFunctionDef] = []

    # -- shared plumbing -------------------------------------------------

    def _report(self, node: ast.AST, rule: LintRule, message: str) -> None:
        self.violations.append(
            Violation(
                path=self.context.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                code=rule.code,
                message=message,
            )
        )

    # -- imports (alias tracking for RPR101) -----------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            target = alias.asname or alias.name.split(".")[0]
            if alias.name == "numpy":
                self.context.numpy_aliases.add(target)
            elif alias.name == "numpy.random":
                self.context.numpy_random_aliases.add(alias.asname or "numpy")
                if alias.asname:
                    self.context.numpy_random_aliases.add(alias.asname)
            elif alias.name == "random":
                name = alias.asname or "random"
                self.context.stdlib_random_aliases.add(name)
                if not self.context.randomness_allowed:
                    self._report(
                        node,
                        RPR101,
                        f"stdlib 'random' imported as {name!r}; use seeded "
                        "numpy Generator streams from repro.sim.rng",
                    )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "numpy" and node.level == 0:
            for alias in node.names:
                if alias.name == "random":
                    self.context.numpy_random_aliases.add(alias.asname or "random")
        elif node.module == "random" and node.level == 0:
            if not self.context.randomness_allowed:
                names = ", ".join(alias.name for alias in node.names)
                self._report(
                    node,
                    RPR101,
                    f"stdlib 'random' names imported ({names}); use seeded "
                    "numpy Generator streams from repro.sim.rng",
                )
        elif node.module == "numpy.random" and node.level == 0:
            for alias in node.names:
                if alias.name not in _NP_RANDOM_SAFE and alias.name != "default_rng":
                    if not self.context.randomness_allowed:
                        self._report(
                            node,
                            RPR101,
                            f"numpy.random.{alias.name} imported directly; draw "
                            "through a seeded Generator instead",
                        )
        self.generic_visit(node)

    # -- scope tracking --------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node)
        try:
            self.generic_visit(node)
        finally:
            self._class_stack.pop()

    def _visit_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self._function_stack.append(node)
        try:
            self._check_entry_point(node)
            self.generic_visit(node)
        finally:
            self._function_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    # -- RPR101: unseeded randomness -------------------------------------

    def _check_random_call(self, node: ast.Call) -> None:
        if self.context.randomness_allowed:
            return
        chain = _attribute_chain(node.func)
        if len(chain) < 2:
            return
        head, tail = chain[0], chain[-1]
        is_np_random = (
            len(chain) >= 3
            and head in self.context.numpy_aliases
            and chain[1] == "random"
        ) or (len(chain) == 2 and head in self.context.numpy_random_aliases)
        if is_np_random:
            if tail in _NP_RANDOM_SAFE:
                return
            if tail == "default_rng":
                if not node.args and not node.keywords:
                    self._report(
                        node,
                        RPR101,
                        "numpy default_rng() called without a seed; pass an "
                        "explicit seed or SeedSequence",
                    )
                return
            self._report(
                node,
                RPR101,
                f"unseeded numpy.random.{tail}() uses hidden global state; "
                "draw through a seeded Generator",
            )
            return
        if len(chain) == 2 and head in self.context.stdlib_random_aliases:
            self._report(
                node,
                RPR101,
                f"stdlib random.{tail}() is unseeded global state; use a "
                "seeded numpy Generator stream",
            )

    # -- RPR102: float equality ------------------------------------------

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            for side in (left, right):
                if (
                    isinstance(side, ast.Constant)
                    and isinstance(side.value, float)
                    and side.value not in (0.0, 1.0)
                ):
                    self._report(
                        node,
                        RPR102,
                        f"float equality against literal {side.value!r}; "
                        "compare with a tolerance (math.isclose / abs(a-b) < tol)",
                    )
                    break
            else:
                names = [_operand_name(side) for side in (left, right)]
                if all(name and _PROBABILITY_NAME.search(name) for name in names):
                    self._report(
                        node,
                        RPR102,
                        f"float equality between {names[0]!r} and {names[1]!r} "
                        "(probability/rate operands); compare with a tolerance",
                    )
        self.generic_visit(node)

    # -- RPR103: frozen mutation -----------------------------------------

    def _in_construction_method(self) -> bool:
        return any(
            fn.name in _CONSTRUCTION_METHODS for fn in self._function_stack
        )

    def _check_frozen_target(self, target: ast.AST, node: ast.AST) -> None:
        if not isinstance(target, ast.Attribute):
            return
        receiver = target.value
        if isinstance(receiver, ast.Name) and _FROZEN_RECEIVER.search(receiver.id):
            if self._in_construction_method():
                return
            self._report(
                node,
                RPR103,
                f"attribute assignment to frozen-looking object "
                f"{receiver.id!r} ({receiver.id}.{target.attr} = ...); "
                "scenario/params objects are immutable — use .with_*() copies",
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_frozen_target(target, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_frozen_target(node.target, node)
        self.generic_visit(node)

    # -- RPR104: validated entry points ----------------------------------

    @staticmethod
    def _is_exception_class(node: ast.ClassDef) -> bool:
        if re.search(r"(Error|Exception|Violation|Warning)$", node.name):
            return True
        for base in node.bases:
            name = _operand_name(base)
            if name and re.search(r"(Error|Exception|Violation|Warning)$", name):
                return True
        return False

    def _check_entry_point(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        if node.name not in ("__init__", "__post_init__"):
            return
        if not self._class_stack or self._class_stack[-1].name.startswith("_"):
            return
        # Exceptions carry diagnostic payloads, not caller configuration.
        if self._is_exception_class(self._class_stack[-1]):
            return
        if self._function_stack[:-1]:  # nested helper class/function
            return
        args = node.args
        positional = [a for a in args.posonlyargs + args.args if a.arg != "self"]
        if node.name == "__init__" and not (
            positional or args.vararg or args.kwonlyargs or args.kwarg
        ):
            return
        if self._calls_validation(node):
            return
        cls = self._class_stack[-1].name
        self._report(
            node,
            RPR104,
            f"public entry point {cls}.{node.name} accepts caller input but "
            "never calls a repro._validation helper (require/check_*) and "
            "never raises; validate or delegate to a validating constructor",
        )

    @staticmethod
    def _calls_validation(node: ast.AST) -> bool:
        for child in ast.walk(node):
            if isinstance(child, ast.Raise):
                return True
            if isinstance(child, ast.Call):
                name = _operand_name(child.func)
                if name and _VALIDATION_HELPERS.match(name):
                    return True
        return False

    # -- RPR105: deterministic cache keys --------------------------------

    def _in_cache_key_function(self) -> bool:
        return any(
            _CACHE_KEY_FUNCTION.search(fn.name) for fn in self._function_stack
        )

    def _check_cache_key_call(self, node: ast.Call) -> None:
        if not self._in_cache_key_function():
            return
        chain = _attribute_chain(node.func)
        if chain and chain[-1] in _NONDETERMINISTIC_ATTRS and len(chain) >= 2:
            self._report(
                node,
                RPR105,
                f"nondeterministic call {'.'.join(chain)}() inside cache-key "
                "construction; keys must be pure functions of content",
            )
            return
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in _NONDETERMINISTIC_BUILTINS
        ):
            self._report(
                node,
                RPR105,
                f"builtin {node.func.id}() is process-dependent; cache keys "
                "must be stable across runs (hash content explicitly)",
            )

    # -- call dispatch ----------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        self._check_random_call(node)
        self._check_cache_key_call(node)
        if (
            _attribute_chain(node.func) == ["object", "__setattr__"]
            and not self._in_construction_method()
        ):
            self._report(
                node,
                RPR103,
                "object.__setattr__ outside __init__/__post_init__ defeats "
                "frozen dataclasses; construct a new object instead",
            )
        self.generic_visit(node)


def lint_source(
    source: str,
    path: str = "<string>",
    select: Sequence[str] | None = None,
) -> list[Violation]:
    """Lint Python ``source`` and return surviving violations.

    Args:
        source: the module text.
        path: reported path (also drives the randomness allowlist).
        select: optional iterable of rule codes to keep (default: all).
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Violation(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1 if exc.offset else 1,
                code="RPR000",
                message=f"syntax error: {exc.msg}",
            )
        ]
    normalized = path.replace("\\", "/")
    context = _ModuleContext(
        path=path,
        randomness_allowed=any(
            normalized.endswith(suffix) for suffix in RANDOMNESS_ALLOWED_SUFFIXES
        ),
    )
    visitor = _Visitor(context)
    visitor.visit(tree)
    violations = visitor.violations + check_concurrency(tree, source, path)
    violations = apply_noqa(violations, source)
    if select is not None:
        wanted = {code.upper() for code in select}
        violations = [v for v in violations if v.code in wanted or v.code == "RPR000"]
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    return violations


def lint_file(path: Path, select: Sequence[str] | None = None) -> list[Violation]:
    """Lint one file on disk."""
    source = path.read_text(encoding="utf-8")
    return lint_source(source, path=str(path), select=select)


def iter_python_files(paths: Sequence[Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: set[Path] = set()
    for path in paths:
        if path.is_dir():
            found.update(path.rglob("*.py"))
        elif path.suffix == ".py":
            found.add(path)
    return sorted(found)


def lint_paths(
    paths: Sequence[Path], select: Sequence[str] | None = None
) -> list[Violation]:
    """Lint every Python file under ``paths``."""
    violations: list[Violation] = []
    for file_path in iter_python_files(paths):
        violations.extend(lint_file(file_path, select=select))
    return violations


def _parse_select(raw: str | None) -> list[str] | None:
    """Parse ``--select``; raises :class:`ValueError` on unknown codes."""
    if raw is None:
        return None
    codes = [code.strip().upper() for code in raw.split(",") if code.strip()]
    unknown = [code for code in codes if code not in _RULE_BY_CODE]
    if unknown:
        hint = ""
        if any(code.startswith("RPR3") for code in unknown):
            hint = "; RPR3xx rules run through python -m repro.analysis.dataflow"
        elif any(code.startswith("RPR4") for code in unknown):
            hint = "; RPR4xx rules run through python -m repro.analysis.perf_lint"
        raise ValueError(
            f"unknown rule code(s): {', '.join(unknown)} "
            f"(known: {', '.join(sorted(_RULE_BY_CODE))}{hint})"
        )
    return codes


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="SC-Share domain lint: seeded randomness, tolerance "
        "comparisons, frozen configs, validated entry points, "
        "deterministic cache keys.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        default=[Path("src")],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="violation output format (default: text)",
    )
    options = parser.parse_args(argv)
    if options.list_rules:
        for rule in LINT_RULES:
            print(f"{rule.code}  {rule.name:32s} {rule.summary}")
        return 0
    try:
        select = _parse_select(options.select)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    paths = options.paths or [Path("src")]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2
    violations = lint_paths(paths, select=select)
    if options.format == "json":
        print(render_json(violations))
        return 1 if violations else 0
    for violation in violations:
        print(violation.render())
    if violations:
        count = len(violations)
        print(f"found {count} violation{'s' if count != 1 else ''}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
