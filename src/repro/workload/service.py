"""Service-time distributions.

The simulator draws VM holding times through the small
:class:`ServiceDistribution` protocol so the exponential base model and
the Sect. VII phase-type extensions are interchangeable.  All
distributions expose their first two moments, which the PH fitter and the
tests use.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Protocol, runtime_checkable

import numpy as np

from repro._validation import check_positive, check_probability, require
from repro.exceptions import ConfigurationError


@runtime_checkable
class ServiceDistribution(Protocol):
    """Protocol for service-time distributions used by the simulator."""

    def sample(self, rng: np.random.Generator) -> float:
        """Draw one service time."""
        ...

    def mean(self) -> float:
        """First moment."""
        ...

    def second_moment(self) -> float:
        """Second raw moment ``E[X^2]``."""
        ...


class ExponentialService:
    """Exponential service with rate ``mu`` (the paper's base model)."""

    def __init__(self, rate: float) -> None:
        self.rate = check_positive(rate, "rate")

    def sample(self, rng: np.random.Generator) -> float:
        """Draw one service time."""
        return float(rng.exponential(1.0 / self.rate))

    def mean(self) -> float:
        """First moment."""
        return 1.0 / self.rate

    def second_moment(self) -> float:
        """Second raw moment."""
        return 2.0 / self.rate**2

    def scv(self) -> float:
        """Squared coefficient of variation (1 for exponential)."""
        return 1.0


class ErlangService:
    """Erlang-k service: sum of ``k`` exponential stages of rate ``stage_rate``.

    Models low-variability service (SCV = 1/k < 1).
    """

    def __init__(self, stages: int, stage_rate: float) -> None:
        if stages < 1:
            raise ConfigurationError(f"stages must be >= 1, got {stages}")
        self.stages = int(stages)
        self.stage_rate = check_positive(stage_rate, "stage_rate")

    def sample(self, rng: np.random.Generator) -> float:
        """Draw one service time."""
        return float(rng.gamma(self.stages, 1.0 / self.stage_rate))

    def mean(self) -> float:
        """First moment."""
        return self.stages / self.stage_rate

    def second_moment(self) -> float:
        """Second raw moment."""
        m = self.mean()
        variance = self.stages / self.stage_rate**2
        return variance + m * m

    def scv(self) -> float:
        """Squared coefficient of variation, ``1/k``."""
        return 1.0 / self.stages


class HyperExponentialService:
    """Hyperexponential (H2+) service: a probabilistic mix of exponentials.

    Models high-variability service (SCV > 1).

    Args:
        probabilities: branch probabilities (sum to 1).
        rates: per-branch exponential rates.
    """

    def __init__(self, probabilities: Sequence[float], rates: Sequence[float]) -> None:
        probs = np.asarray(probabilities, dtype=float)
        rates_arr = np.asarray(rates, dtype=float)
        require(len(probs) == len(rates_arr), "probabilities and rates must align")
        require(len(probs) >= 1, "need at least one branch")
        for p in probs:
            check_probability(float(p), "branch probability")
        if abs(probs.sum() - 1.0) > 1e-9:
            raise ConfigurationError("branch probabilities must sum to 1")
        if rates_arr.min() <= 0.0:
            raise ConfigurationError("branch rates must be > 0")
        self.probabilities = probs
        self.rates = rates_arr

    def sample(self, rng: np.random.Generator) -> float:
        """Draw one service time."""
        branch = int(rng.choice(len(self.rates), p=self.probabilities))
        return float(rng.exponential(1.0 / self.rates[branch]))

    def mean(self) -> float:
        """First moment."""
        return float(np.dot(self.probabilities, 1.0 / self.rates))

    def second_moment(self) -> float:
        """Second raw moment."""
        return float(np.dot(self.probabilities, 2.0 / self.rates**2))

    def scv(self) -> float:
        """Squared coefficient of variation (>= 1 for hyperexponentials)."""
        m = self.mean()
        return self.second_moment() / (m * m) - 1.0
