"""Arrival processes for the federation simulator.

:class:`PoissonProcess` is the paper's base arrival model.
:class:`MMPPProcess` (Markov-modulated Poisson process) implements the
Sect. VII extension: the arrival rate is modulated by a background CTMC,
which lets experiments model diurnal or bursty demand while reusing the
same simulator.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro._validation import check_positive, require
from repro.exceptions import ConfigurationError


class PoissonProcess:
    """A homogeneous Poisson process.

    Args:
        rate: arrival rate ``lambda`` (> 0).
        rng: a :class:`numpy.random.Generator`.
    """

    def __init__(self, rate: float, rng: np.random.Generator) -> None:
        self.rate = check_positive(rate, "rate")
        self._rng = rng

    def next_interarrival(self) -> float:
        """Sample the time until the next arrival."""
        return float(self._rng.exponential(1.0 / self.rate))

    def mean_rate(self) -> float:
        """Long-run arrival rate."""
        return self.rate


class MMPPProcess:
    """A Markov-modulated Poisson process.

    A background CTMC over phases ``0..m-1`` (with generator ``q``) selects
    the instantaneous arrival rate ``rates[phase]``.  Sampling uses
    competing exponentials: in each phase the sojourn and the next arrival
    race; phase changes resample the arrival clock (memorylessness makes
    this exact).

    Args:
        rates: per-phase arrival rates (all >= 0, at least one > 0).
        generator: dense ``m x m`` CTMC generator for the phase process.
        rng: a :class:`numpy.random.Generator`.
    """

    def __init__(
        self,
        rates: Sequence[float],
        generator: Sequence[Sequence[float]],
        rng: np.random.Generator,
    ) -> None:
        self.rates = np.asarray(rates, dtype=float)
        self.generator = np.asarray(generator, dtype=float)
        m = len(self.rates)
        require(m >= 1, "MMPP needs at least one phase")
        if self.generator.shape != (m, m):
            raise ConfigurationError(
                f"generator shape {self.generator.shape} does not match {m} phases"
            )
        if self.rates.min() < 0.0 or self.rates.max() <= 0.0:
            raise ConfigurationError("MMPP rates must be >= 0 with at least one > 0")
        off_diag = self.generator - np.diag(np.diag(self.generator))
        if off_diag.min() < 0.0:
            raise ConfigurationError("phase generator has negative off-diagonal rates")
        if np.abs(self.generator.sum(axis=1)).max() > 1e-9:
            raise ConfigurationError("phase generator rows must sum to zero")
        self._rng = rng
        self.phase = 0

    def _phase_exit_rate(self) -> float:
        return -float(self.generator[self.phase, self.phase])

    def _jump_phase(self) -> None:
        row = self.generator[self.phase].copy()
        row[self.phase] = 0.0
        total = row.sum()
        probs = row / total
        self.phase = int(self._rng.choice(len(row), p=probs))

    def next_interarrival(self) -> float:
        """Sample the time until the next arrival (advancing phases)."""
        elapsed = 0.0
        while True:
            rate = float(self.rates[self.phase])
            exit_rate = self._phase_exit_rate()
            if exit_rate <= 0.0:
                if rate <= 0.0:
                    raise ConfigurationError(
                        "absorbing MMPP phase with zero arrival rate"
                    )
                return elapsed + float(self._rng.exponential(1.0 / rate))
            total = rate + exit_rate
            step = float(self._rng.exponential(1.0 / total))
            elapsed += step
            if self._rng.random() < rate / total:
                return elapsed
            self._jump_phase()

    def stationary_phases(self) -> np.ndarray:
        """Stationary distribution of the phase CTMC."""
        from repro.markov.solvers import steady_state

        import scipy.sparse as sp

        return steady_state(sp.csr_matrix(self.generator))

    def mean_rate(self) -> float:
        """Long-run average arrival rate under the stationary phase mix."""
        return float(np.dot(self.stationary_phases(), self.rates))
