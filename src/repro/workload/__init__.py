"""Workload substrate: arrival processes and service-time distributions.

The paper's base model is Poisson arrivals with exponential service
(Sect. II-A); Sect. VII sketches extensions to Markov-modulated arrivals
and phase-type service fitted to trace moments.  This package implements
both the base model and those extensions:

- :mod:`repro.workload.arrivals` — Poisson and MMPP arrival processes.
- :mod:`repro.workload.service` — exponential, Erlang, hyperexponential
  service distributions behind one protocol.
- :mod:`repro.workload.phase_type` — two-moment PH fitting (Sect. VII).
- :mod:`repro.workload.profiles` — declarative, JSON-round-trippable
  demand profiles (arrival + service specs) used by scenario files.
"""

from repro.workload.arrivals import MMPPProcess, PoissonProcess
from repro.workload.phase_type import fit_two_moment
from repro.workload.profiles import ArrivalSpec, DemandProfile, ServiceSpec
from repro.workload.service import (
    ErlangService,
    ExponentialService,
    HyperExponentialService,
    ServiceDistribution,
)

__all__ = [
    "ArrivalSpec",
    "DemandProfile",
    "ErlangService",
    "ExponentialService",
    "HyperExponentialService",
    "MMPPProcess",
    "PoissonProcess",
    "ServiceDistribution",
    "ServiceSpec",
    "fit_two_moment",
]
