"""Declarative demand profiles: arrival + service specs as frozen data.

The simulator consumes live objects (:class:`~repro.workload.arrivals.MMPPProcess`
instances holding a ``Generator``); scenario files need plain data.  This
module bridges the two: :class:`ArrivalSpec` and :class:`ServiceSpec` are
frozen, JSON-round-trippable descriptions of an arrival process and a
service-time distribution, and :class:`DemandProfile` pairs one of each
per SC.  ``build_*`` factories turn a spec into the live object the
simulator wants; ``mean_*`` accessors expose the closed-form first
moments so :mod:`repro.scenarios.schema` can cross-check a profile
against its SC's ``arrival_rate``/``service_rate``.

Supported kinds:

- arrivals: ``"poisson"`` (the paper's base model) and ``"mmpp"``
  (Sect. VII — diurnal/bursty Markov-modulated demand);
- service: ``"exponential"``, ``"erlang"``, ``"hyperexponential"``, and
  ``"phase-fit"`` (two-moment PH fitting by target SCV, Sect. VII).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro._validation import (
    check_positive,
    check_positive_int,
    check_probability,
    require,
)
from repro.exceptions import ConfigurationError

if TYPE_CHECKING:
    import numpy as np

    from repro.workload.arrivals import MMPPProcess, PoissonProcess
    from repro.workload.service import ServiceDistribution

ARRIVAL_KINDS = ("poisson", "mmpp")
SERVICE_KINDS = ("exponential", "erlang", "hyperexponential", "phase-fit")

_ARRIVAL_FIELDS = ("kind", "rates", "transitions")
_SERVICE_FIELDS = ("kind", "stages", "probabilities", "rates", "scv")


def _as_float_tuple(values: Any, name: str) -> tuple[float, ...]:
    if not isinstance(values, (list, tuple)):
        raise ConfigurationError(f"{name} must be a sequence, got {type(values).__name__}")
    return tuple(float(v) for v in values)


@dataclass(frozen=True)
class ArrivalSpec:
    """A declarative arrival process.

    Attributes:
        kind: ``"poisson"`` (rate comes from the SC's ``arrival_rate``)
            or ``"mmpp"``.
        rates: per-phase arrival rates (mmpp only, >= 2 phases).
        transitions: phase-CTMC generator rows (mmpp only, ``m x m``,
            rows summing to zero).
    """

    kind: str = "poisson"
    rates: tuple[float, ...] = ()
    transitions: tuple[tuple[float, ...], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "rates", tuple(float(r) for r in self.rates))
        object.__setattr__(
            self, "transitions", tuple(tuple(float(q) for q in row) for row in self.transitions)
        )
        require(self.kind in ARRIVAL_KINDS, f"unknown arrival kind {self.kind!r}")
        if self.kind == "poisson":
            require(not self.rates, "poisson arrivals take no per-phase rates")
            require(not self.transitions, "poisson arrivals take no phase transitions")
            return
        m = len(self.rates)
        require(m >= 2, "an MMPP needs at least two phases")
        require(
            len(self.transitions) == m and all(len(row) == m for row in self.transitions),
            f"mmpp transitions must be {m}x{m}",
        )
        if min(self.rates) < 0.0 or max(self.rates) <= 0.0:
            raise ConfigurationError("mmpp rates must be >= 0 with at least one > 0")
        for i, row in enumerate(self.transitions):
            if any(rate < 0.0 for j, rate in enumerate(row) if j != i):
                raise ConfigurationError(f"mmpp transition row {i} has a negative rate")
            if abs(sum(row)) > 1e-9:
                raise ConfigurationError(f"mmpp transition row {i} does not sum to zero")
            if -row[i] <= 0.0:
                raise ConfigurationError(f"mmpp phase {i} is absorbing")

    def stationary_phases(self) -> "np.ndarray":
        """Stationary distribution of the phase CTMC (mmpp only)."""
        import numpy as np

        require(self.kind == "mmpp", "stationary phases are defined for mmpp only")
        q = np.asarray(self.transitions, dtype=float)
        m = q.shape[0]
        # pi Q = 0, sum(pi) = 1: replace one balance column by the
        # normalization constraint and solve the small dense system.
        a = q.T.copy()
        a[-1, :] = 1.0
        b = np.zeros(m)
        b[-1] = 1.0
        return np.asarray(np.linalg.solve(a, b), dtype=float)

    def mean_rate(self, base_rate: float) -> float:
        """Long-run arrival rate (``base_rate`` for poisson)."""
        if self.kind == "poisson":
            return float(base_rate)
        import numpy as np

        return float(np.dot(self.stationary_phases(), np.asarray(self.rates)))

    def build(self, base_rate: float, rng: "np.random.Generator") -> "PoissonProcess | MMPPProcess":
        """Instantiate the live arrival process for the simulator."""
        if self.kind == "poisson":
            from repro.workload.arrivals import PoissonProcess

            return PoissonProcess(rate=base_rate, rng=rng)
        from repro.workload.arrivals import MMPPProcess

        return MMPPProcess(rates=self.rates, generator=self.transitions, rng=rng)

    def to_dict(self) -> dict[str, Any]:
        """Serialize to a plain dictionary."""
        data: dict[str, Any] = {"kind": self.kind}
        if self.kind == "mmpp":
            data["rates"] = list(self.rates)
            data["transitions"] = [list(row) for row in self.transitions]
        return data

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "ArrivalSpec":
        """Deserialize; unknown keys are rejected loudly."""
        unknown = set(data) - set(_ARRIVAL_FIELDS)
        if unknown:
            raise ConfigurationError(f"unknown arrival-spec fields: {sorted(unknown)}")
        kind = data.get("kind", "poisson")
        rates = _as_float_tuple(data.get("rates", ()), "rates")
        raw_rows = data.get("transitions", ())
        if not isinstance(raw_rows, (list, tuple)):
            raise ConfigurationError("transitions must be a list of rows")
        transitions = tuple(_as_float_tuple(row, "transitions row") for row in raw_rows)
        return ArrivalSpec(kind=kind, rates=rates, transitions=transitions)


@dataclass(frozen=True)
class ServiceSpec:
    """A declarative service-time distribution.

    Attributes:
        kind: one of ``"exponential"`` (rate from the SC's
            ``service_rate``), ``"erlang"`` (``stages`` stages, mean kept
            at ``1/service_rate``), ``"hyperexponential"`` (explicit
            branch probabilities/rates), or ``"phase-fit"`` (two-moment
            PH fit at the SC's mean and the target ``scv``).
        stages: Erlang stage count (erlang only).
        probabilities: branch probabilities (hyperexponential only).
        rates: branch rates (hyperexponential only).
        scv: target squared coefficient of variation (phase-fit only).
    """

    kind: str = "exponential"
    stages: int = 0
    probabilities: tuple[float, ...] = ()
    rates: tuple[float, ...] = ()
    scv: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "probabilities", tuple(float(p) for p in self.probabilities))
        object.__setattr__(self, "rates", tuple(float(r) for r in self.rates))
        require(self.kind in SERVICE_KINDS, f"unknown service kind {self.kind!r}")
        if self.kind == "exponential":
            require(
                not self.stages and not self.probabilities and not self.rates and not self.scv,
                "exponential service takes no extra parameters",
            )
        elif self.kind == "erlang":
            check_positive_int(self.stages, "stages")
            require(
                not self.probabilities and not self.rates and not self.scv,
                "erlang service takes only a stage count",
            )
        elif self.kind == "hyperexponential":
            require(not self.stages and not self.scv, "hyperexponential takes branches only")
            require(
                len(self.probabilities) == len(self.rates) and len(self.rates) >= 1,
                "hyperexponential needs aligned probabilities and rates",
            )
            for p in self.probabilities:
                check_probability(p, "branch probability")
            if abs(sum(self.probabilities) - 1.0) > 1e-9:
                raise ConfigurationError("branch probabilities must sum to 1")
            if min(self.rates) <= 0.0:
                raise ConfigurationError("branch rates must be > 0")
        else:  # phase-fit
            require(
                not self.stages and not self.probabilities and not self.rates,
                "phase-fit takes only a target scv",
            )
            check_positive(self.scv, "scv")

    def mean(self, base_rate: float) -> float:
        """Mean service time implied by the spec at ``service_rate`` = ``base_rate``."""
        check_positive(base_rate, "base_rate")
        if self.kind == "hyperexponential":
            return float(sum(p / r for p, r in zip(self.probabilities, self.rates)))
        # exponential / erlang / phase-fit all pin the mean to 1/mu.
        return 1.0 / base_rate

    def build(self, base_rate: float) -> "ServiceDistribution":
        """Instantiate the live service distribution for the simulator."""
        if self.kind == "exponential":
            from repro.workload.service import ExponentialService

            return ExponentialService(rate=base_rate)
        if self.kind == "erlang":
            from repro.workload.service import ErlangService

            return ErlangService(stages=self.stages, stage_rate=self.stages * base_rate)
        if self.kind == "hyperexponential":
            from repro.workload.service import HyperExponentialService

            return HyperExponentialService(
                probabilities=self.probabilities, rates=self.rates
            )
        from repro.workload.phase_type import fit_two_moment

        return fit_two_moment(mean=1.0 / base_rate, scv=self.scv)

    def to_dict(self) -> dict[str, Any]:
        """Serialize to a plain dictionary."""
        data: dict[str, Any] = {"kind": self.kind}
        if self.kind == "erlang":
            data["stages"] = self.stages
        elif self.kind == "hyperexponential":
            data["probabilities"] = list(self.probabilities)
            data["rates"] = list(self.rates)
        elif self.kind == "phase-fit":
            data["scv"] = self.scv
        return data

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "ServiceSpec":
        """Deserialize; unknown keys are rejected loudly."""
        unknown = set(data) - set(_SERVICE_FIELDS)
        if unknown:
            raise ConfigurationError(f"unknown service-spec fields: {sorted(unknown)}")
        return ServiceSpec(
            kind=data.get("kind", "exponential"),
            stages=int(data.get("stages", 0)),
            probabilities=_as_float_tuple(data.get("probabilities", ()), "probabilities"),
            rates=_as_float_tuple(data.get("rates", ()), "rates"),
            scv=float(data.get("scv", 0.0)),
        )


@dataclass(frozen=True)
class DemandProfile:
    """One SC's demand: an arrival spec paired with a service spec."""

    arrival: ArrivalSpec = field(default_factory=ArrivalSpec)
    service: ServiceSpec = field(default_factory=ServiceSpec)

    def __post_init__(self) -> None:
        require(isinstance(self.arrival, ArrivalSpec), "arrival must be an ArrivalSpec")
        require(isinstance(self.service, ServiceSpec), "service must be a ServiceSpec")

    def to_dict(self) -> dict[str, Any]:
        """Serialize to a plain dictionary."""
        return {"arrival": self.arrival.to_dict(), "service": self.service.to_dict()}

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "DemandProfile":
        """Deserialize; unknown keys are rejected loudly."""
        unknown = set(data) - {"arrival", "service"}
        if unknown:
            raise ConfigurationError(f"unknown demand-profile fields: {sorted(unknown)}")
        return DemandProfile(
            arrival=ArrivalSpec.from_dict(data.get("arrival", {"kind": "poisson"})),
            service=ServiceSpec.from_dict(data.get("service", {"kind": "exponential"})),
        )
