"""Two-moment phase-type fitting (Sect. VII extension).

The paper notes that non-exponential service times can be handled by
fitting phase-type distributions to trace moments (citing Osogami &
Harchol-Balter).  This module implements the classical two-moment recipe:

- SCV == 1  → exponential,
- SCV  < 1  → Erlang-k with ``k = ceil(1/SCV)`` and a matched rate
  (moment-matching on the mean; the second moment is matched as closely
  as an integer stage count permits, exactly when ``1/SCV`` is integral),
- SCV  > 1  → two-branch hyperexponential with balanced means, matching
  both moments exactly.

The returned objects satisfy :class:`repro.workload.service.ServiceDistribution`
and plug directly into the simulator.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from repro._validation import check_positive
from repro.exceptions import ConfigurationError
if TYPE_CHECKING:
    from collections.abc import Sequence

    import numpy as np

from repro.workload.service import (
    ErlangService,
    ExponentialService,
    HyperExponentialService,
    ServiceDistribution,
)

_SCV_TOLERANCE = 1e-9


def fit_two_moment(mean: float, scv: float) -> ServiceDistribution:
    """Fit a phase-type distribution to a mean and squared coefficient of variation.

    Args:
        mean: target mean (> 0).
        scv: target squared coefficient of variation (> 0).

    Returns:
        A :class:`ServiceDistribution` matching the mean exactly and the
        SCV exactly for SCV >= 1 or SCV = 1/k; otherwise the closest
        Erlang stage count is used.
    """
    mean = check_positive(mean, "mean")
    scv = check_positive(scv, "scv")

    if abs(scv - 1.0) <= _SCV_TOLERANCE:
        return ExponentialService(rate=1.0 / mean)

    if scv < 1.0:
        stages = max(2, math.ceil(1.0 / scv - _SCV_TOLERANCE))
        return ErlangService(stages=stages, stage_rate=stages / mean)

    # SCV > 1: balanced-means H2 (Whitt's classical construction).
    # p1 = (1 + sqrt((scv-1)/(scv+1))) / 2; rates chosen so each branch
    # contributes half the mean.
    ratio = math.sqrt((scv - 1.0) / (scv + 1.0))
    p1 = 0.5 * (1.0 + ratio)
    p2 = 1.0 - p1
    rate1 = 2.0 * p1 / mean
    rate2 = 2.0 * p2 / mean
    if rate1 <= 0.0 or rate2 <= 0.0:  # pragma: no cover - defensive
        raise ConfigurationError(f"H2 fit failed for mean={mean}, scv={scv}")
    return HyperExponentialService(probabilities=[p1, p2], rates=[rate1, rate2])


def fit_from_samples(samples: "Sequence[float] | np.ndarray") -> ServiceDistribution:
    """Fit a two-moment phase-type distribution to empirical samples.

    Args:
        samples: a non-empty sequence of positive observations (e.g. VM
            holding times extracted from a trace).
    """
    import numpy as np

    data = np.asarray(list(samples), dtype=float)
    if data.size < 2:
        raise ConfigurationError("need at least two samples to estimate moments")
    if data.min() <= 0.0:
        raise ConfigurationError("samples must be strictly positive durations")
    mean = float(data.mean())
    variance = float(data.var(ddof=1))
    scv = variance / (mean * mean)
    if scv <= 0.0:
        scv = _SCV_TOLERANCE
    return fit_two_moment(mean, scv)
