"""Discrete-event simulation substrate.

Rebuilds the paper's C++ validation simulator in Python:

- :mod:`repro.sim.engine` — a generic event-heap simulation core.
- :mod:`repro.sim.rng` — reproducible independent random streams.
- :mod:`repro.sim.stats` — time-weighted averages, Welford accumulators,
  and batch-means confidence intervals.
- :mod:`repro.sim.federation` — the federation simulator implementing the
  exact SC-Share sharing semantics (load-balanced lending, SLA-driven
  forwarding, owner-priority VM returns, no preemption).
- :mod:`repro.sim.failures` — scheduled failure injection (SC outages,
  limplock VMs, flash crowds) and the welfare-under-failure sweep.
- :mod:`repro.sim.trace` — event trace recording for debugging/replay.

The engine steps in three modes — ``event`` (reference heap), ``batched``
(list-heap + pre-drawn RNG blocks + typed dispatch), ``three_phase``
(same-timestamp batches with deferred statistics) — all bit-identical;
see :data:`repro.sim.engine.STEP_MODES`.
"""

from repro.sim.engine import STEP_MODES, Event, SimulationEngine
from repro.sim.federation import FederationSimulator, SimulatedMetrics
from repro.sim.replications import ReplicatedMetrics, replicate
from repro.sim.rng import ExponentialBlock, RandomStreams, UniformBlock
from repro.sim.stats import BatchMeans, TimeWeightedAverage, WelfordAccumulator

# repro.sim.failures exports resolve lazily so `python -m
# repro.sim.failures` does not find its target pre-imported by this
# package init (runpy would warn about unpredictable double execution).
_FAILURE_EXPORTS = ("FAILURE_KINDS", "FailureWindow", "validate_schedule")


def __getattr__(name: str):  # noqa: ANN202 - module-level lazy exports
    if name in _FAILURE_EXPORTS:
        from repro.sim import failures

        return getattr(failures, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "BatchMeans",
    "Event",
    "ExponentialBlock",
    "FAILURE_KINDS",
    "FailureWindow",
    "FederationSimulator",
    "RandomStreams",
    "ReplicatedMetrics",
    "replicate",
    "SimulatedMetrics",
    "SimulationEngine",
    "STEP_MODES",
    "TimeWeightedAverage",
    "UniformBlock",
    "validate_schedule",
    "WelfordAccumulator",
]
