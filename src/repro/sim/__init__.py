"""Discrete-event simulation substrate.

Rebuilds the paper's C++ validation simulator in Python:

- :mod:`repro.sim.engine` — a generic event-heap simulation core.
- :mod:`repro.sim.rng` — reproducible independent random streams.
- :mod:`repro.sim.stats` — time-weighted averages, Welford accumulators,
  and batch-means confidence intervals.
- :mod:`repro.sim.federation` — the federation simulator implementing the
  exact SC-Share sharing semantics (load-balanced lending, SLA-driven
  forwarding, owner-priority VM returns, no preemption).
- :mod:`repro.sim.trace` — event trace recording for debugging/replay.
"""

from repro.sim.engine import Event, SimulationEngine
from repro.sim.federation import FederationSimulator, SimulatedMetrics
from repro.sim.replications import ReplicatedMetrics, replicate
from repro.sim.rng import RandomStreams
from repro.sim.stats import BatchMeans, TimeWeightedAverage, WelfordAccumulator

__all__ = [
    "BatchMeans",
    "Event",
    "FederationSimulator",
    "RandomStreams",
    "ReplicatedMetrics",
    "replicate",
    "SimulatedMetrics",
    "SimulationEngine",
    "TimeWeightedAverage",
    "WelfordAccumulator",
]
