"""Reproducible random-number streams.

Each stochastic component of a simulation (arrivals per SC, service times
per SC, tie-breaking) gets its own independent :class:`numpy.random.Generator`
derived from one master seed via ``SeedSequence.spawn``.  This gives:

- reproducibility: the same seed always produces the same sample path;
- common random numbers: changing one component (say, a sharing decision)
  does not perturb the draws of unrelated components, which sharpens
  comparisons between scenarios.

RNG stream mapping (batched stepping)
-------------------------------------

The batched simulator pre-draws randomness in NumPy blocks instead of one
scalar call per event.  Replications stay seed-deterministic because a
block draw consumes a generator's bit stream in exactly the order the
scalar calls would — NumPy fills an array by repeating the same scalar
routine over the stream — so for every stream the mapping is:

- ``Generator.exponential(scale)`` repeated n times
  == ``Generator.standard_exponential(n)`` element-wise ``* scale``
  (``exponential`` is defined as ``standard_exponential() * scale``, the
  same double multiply :class:`ExponentialBlock` performs);
- ``Generator.random()`` repeated n times == ``Generator.random(n)``
  (one 53-bit double per call, :class:`UniformBlock`).

Variable-argument draws (``integers(n)`` tie-breaking, non-exponential
``sample()``) are *not* blocked: both stepping paths issue the identical
scalar calls, in the identical order, on the identical stream.  This
per-stream equality is what makes ``step_mode="batched"`` bit-identical
to the ``event`` reference path, and it is pinned by
``tests/sim/test_rng.py`` and the engine-equivalence property suite.
"""

from __future__ import annotations

import numpy as np

from repro._validation import check_non_negative_int, check_positive_int


class RandomStreams:
    """A keyed factory of independent random generators.

    Streams are created lazily and memoized by name, so requesting the
    same name twice returns the same generator object.  Stream identity
    depends on the *order of first request* being deterministic — the
    simulator requests all of its streams up front in a fixed order.
    """

    def __init__(self, seed: int) -> None:
        self.seed = check_non_negative_int(seed, "seed")
        self._sequence = np.random.SeedSequence(self.seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name`` (created on first use)."""
        if name not in self._streams:
            child = self._sequence.spawn(1)[0]
            self._streams[name] = np.random.Generator(np.random.PCG64(child))
        return self._streams[name]

    def names(self) -> list[str]:
        """Names of all streams created so far (in creation order)."""
        return list(self._streams)


#: Default pre-draw block length.  Big enough to amortize the NumPy call
#: overhead to nothing, small enough that an abandoned block wastes only
#: a few KiB of draws.
DEFAULT_BLOCK = 4096


class ExponentialBlock:
    """Block-buffered exponential draws over one generator.

    Wraps a :class:`numpy.random.Generator` and serves
    ``standard_exponential`` variates from a pre-drawn block, scaled per
    draw.  By the stream mapping above, ``next(scale)`` returns exactly
    the value ``generator.exponential(scale)`` would have — same bits —
    while costing a fraction of the scalar call.  The wrapped generator
    must not be drawn from directly while a block is in flight.
    """

    __slots__ = ("_rng", "_block", "_buffer", "_index", "refills")

    def __init__(self, rng: np.random.Generator, block: int = DEFAULT_BLOCK) -> None:
        self._rng = rng
        self._block = check_positive_int(block, "block")
        self._buffer = rng.standard_exponential(self._block)
        self._index = 0
        self.refills = 1

    # hot-path: one call per simulated arrival/service draw in batched mode
    def next(self, scale: float) -> float:
        """The next variate, distributed ``Exponential(mean=scale)``."""
        index = self._index
        if index >= self._block:
            self._buffer = self._rng.standard_exponential(self._block)
            self.refills += 1
            index = 0
        self._index = index + 1
        return float(self._buffer[index]) * scale


class UniformBlock:
    """Block-buffered uniform draws over one generator.

    ``next()`` returns exactly what ``generator.random()`` would (one
    53-bit double per call), served from a pre-drawn block.
    """

    __slots__ = ("_rng", "_block", "_buffer", "_index", "refills")

    def __init__(self, rng: np.random.Generator, block: int = DEFAULT_BLOCK) -> None:
        self._rng = rng
        self._block = check_positive_int(block, "block")
        self._buffer = rng.random(self._block)
        self._index = 0
        self.refills = 1

    # hot-path: one call per SLA admission decision in batched mode
    def next(self) -> float:
        """The next variate, uniform on [0, 1)."""
        index = self._index
        if index >= self._block:
            self._buffer = self._rng.random(self._block)
            self.refills += 1
            index = 0
        self._index = index + 1
        return float(self._buffer[index])
