"""Reproducible random-number streams.

Each stochastic component of a simulation (arrivals per SC, service times
per SC, tie-breaking) gets its own independent :class:`numpy.random.Generator`
derived from one master seed via ``SeedSequence.spawn``.  This gives:

- reproducibility: the same seed always produces the same sample path;
- common random numbers: changing one component (say, a sharing decision)
  does not perturb the draws of unrelated components, which sharpens
  comparisons between scenarios.
"""

from __future__ import annotations

import numpy as np

from repro._validation import check_non_negative_int


class RandomStreams:
    """A keyed factory of independent random generators.

    Streams are created lazily and memoized by name, so requesting the
    same name twice returns the same generator object.  Stream identity
    depends on the *order of first request* being deterministic — the
    simulator requests all of its streams up front in a fixed order.
    """

    def __init__(self, seed: int) -> None:
        self.seed = check_non_negative_int(seed, "seed")
        self._sequence = np.random.SeedSequence(self.seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name`` (created on first use)."""
        if name not in self._streams:
            child = self._sequence.spawn(1)[0]
            self._streams[name] = np.random.Generator(np.random.PCG64(child))
        return self._streams[name]

    def names(self) -> list[str]:
        """Names of all streams created so far (in creation order)."""
        return list(self._streams)
