"""Event-trace recording for the federation simulator.

A :class:`TraceRecorder` captures a bounded list of structured events
(time, kind, fields).  Traces support debugging (inspecting the exact
sequence of sharing decisions), regression tests (golden traces for a
fixed seed), and post-hoc workload analysis (feeding waiting times to the
phase-type fitter).

When :mod:`repro.obs` tracing is active, every recorded event is also
forwarded to the innermost open span (``obs.add_event``), so simulator
events appear inline in exported traces under the ``sim.replication``
span that produced them.  The forwarding is one no-op call when tracing
is off and never alters the recorder's own contents.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro._validation import check_positive_int


@dataclass(frozen=True)
class TraceEvent:
    """One recorded simulator event."""

    time: float
    kind: str
    fields: tuple[tuple[str, object], ...]

    def as_dict(self) -> dict[str, object]:
        """Return the event as a plain dictionary (time/kind included)."""
        data: dict[str, object] = {"time": self.time, "kind": self.kind}
        data.update(dict(self.fields))
        return data


@dataclass
class TraceRecorder:
    """A bounded in-memory event trace.

    Args:
        max_events: hard cap; recording silently stops once reached (the
            ``truncated`` flag reports whether that happened).
    """

    max_events: int = 100_000
    events: list[TraceEvent] = field(default_factory=list)
    truncated: bool = False

    def __post_init__(self) -> None:
        check_positive_int(self.max_events, "max_events")

    def record(self, time: float, kind: str, **fields: object) -> None:
        """Append one event unless the cap has been reached."""
        if len(self.events) >= self.max_events:
            self.truncated = True
            return
        self.events.append(
            TraceEvent(time=time, kind=kind, fields=tuple(sorted(fields.items())))
        )
        obs.add_event(kind, time, **fields)

    def __len__(self) -> int:
        return len(self.events)

    def of_kind(self, kind: str) -> list[TraceEvent]:
        """All events of one kind, in time order."""
        return [e for e in self.events if e.kind == kind]

    def counts(self) -> dict[str, int]:
        """Event counts per kind."""
        result: dict[str, int] = {}
        for event in self.events:
            result[event.kind] = result.get(event.kind, 0) + 1
        return result
