"""Failure injection for the federation simulator.

SC-Share's evaluation (and the paper's C++ simulator) assumes every SC
stays healthy for the whole horizon.  This module adds the failure
classes the dynamic-market robustness literature asks about — does
sharing still beat the public cloud when a partner can die? — as
*scheduled windows* on the simulated timeline:

- ``outage``: the SC disappears for the window.  In-flight work (its own
  and guests') completes, but its queue is flushed to the public cloud,
  arrivals during the window forward immediately, and the SC is excluded
  from the lender set and cannot lend freed VMs until recovery.
- ``limplock``: the SC's VMs stay alive but degraded — every service
  started on the SC during the window takes ``factor`` times longer (the
  limping-hardware failure mode of Do et al.'s limplock study).
- ``flash_crowd``: the SC's *arrival rate* is multiplied by ``factor``
  for the window (a demand surge, not a fault — included because it
  stresses exactly the borrowing machinery outages starve).

Windows are plain data (:class:`FailureWindow`), serialize into the
scenario schema (``ScenarioSpec.failures``), and are interpreted by
:class:`~repro.sim.federation.FederationSimulator` via scheduled
transition events at priority −1 (before same-time arrivals).

Run ``python -m repro.sim.failures`` for a sweep over the generated
failure-scenario library reporting equilibrium welfare and per-SC
utility shift under each failure class versus the no-sharing /
public-cloud baseline (whose welfare is zero by Eq. (2): no sharing
means no cost reduction).
"""

from __future__ import annotations

import argparse
import json
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro._validation import check_finite, check_non_negative, check_non_negative_int
from repro.exceptions import ConfigurationError

if TYPE_CHECKING:
    from repro.scenarios.schema import ScenarioSpec

#: Recognized failure classes.
FAILURE_KINDS = ("outage", "limplock", "flash_crowd")

#: Version stamp of the sweep-report payload written by :func:`main`.
FAILURES_FORMAT_VERSION = 1

_WINDOW_KEYS = ("kind", "sc", "start", "end", "factor")


@dataclass(frozen=True)
class FailureWindow:
    """One scheduled failure window.

    Attributes:
        kind: one of :data:`FAILURE_KINDS`.
        sc: index of the affected SC.
        start: window start (simulated time, >= 0).
        end: window end (> start); the SC is healthy again at ``end``.
        factor: service-time multiplier (``limplock``) or arrival-rate
            multiplier (``flash_crowd``), >= 1.  Must be exactly 1 for
            ``outage`` windows (it carries no meaning there, and pinning
            it keeps the serialized form canonical).
    """

    kind: str
    sc: int
    start: float
    end: float
    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in FAILURE_KINDS:
            raise ConfigurationError(
                f"unknown failure kind {self.kind!r}; expected one of {FAILURE_KINDS}"
            )
        check_non_negative_int(self.sc, "sc")
        check_non_negative(check_finite(self.start, "start"), "start")
        check_finite(self.end, "end")
        if self.end <= self.start:
            raise ConfigurationError(
                f"failure window must have end > start, got [{self.start}, {self.end}]"
            )
        check_finite(self.factor, "factor")
        if self.kind == "outage":
            if self.factor != 1.0:
                raise ConfigurationError(
                    f"outage windows take no factor (got {self.factor})"
                )
        elif self.factor < 1.0:
            raise ConfigurationError(
                f"{self.kind} factor must be >= 1, got {self.factor}"
            )

    def to_dict(self) -> dict[str, Any]:
        """Canonical JSON-able form (all five keys, fixed order)."""
        return {
            "kind": self.kind,
            "sc": self.sc,
            "start": self.start,
            "end": self.end,
            "factor": self.factor,
        }


def window_from_dict(payload: Mapping[str, Any]) -> FailureWindow:
    """Parse one window, rejecting unknown keys (schema discipline)."""
    unknown = set(payload) - set(_WINDOW_KEYS)
    if unknown:
        raise ConfigurationError(
            f"unknown failure-window fields: {sorted(unknown)}"
        )
    missing = {"kind", "sc", "start", "end"} - set(payload)
    if missing:
        raise ConfigurationError(
            f"failure window missing fields: {sorted(missing)}"
        )
    return FailureWindow(
        kind=str(payload["kind"]),
        sc=int(payload["sc"]),
        start=float(payload["start"]),
        end=float(payload["end"]),
        factor=float(payload.get("factor", 1.0)),
    )


def validate_schedule(windows: Sequence[FailureWindow], k: int) -> None:
    """Check a failure schedule against a federation of ``k`` SCs.

    Windows of the same kind on the same SC must not overlap (the
    simulator's end-of-window transition resets that SC's state for the
    kind exactly, which is only well-defined without overlap); different
    kinds may overlap freely (a limping SC can see a flash crowd).
    """
    for window in windows:
        if window.sc >= k:
            raise ConfigurationError(
                f"failure window targets SC {window.sc} in a {k}-SC federation"
            )
    by_key: dict[tuple[int, str], list[FailureWindow]] = {}
    for window in windows:
        by_key.setdefault((window.sc, window.kind), []).append(window)
    for (sc, kind), group in by_key.items():
        group = sorted(group, key=lambda w: w.start)
        for previous, current in zip(group, group[1:]):
            if current.start < previous.end:
                raise ConfigurationError(
                    f"overlapping {kind} windows on SC {sc}: "
                    f"[{previous.start}, {previous.end}) and "
                    f"[{current.start}, {current.end})"
                )


# --------------------------------------------------------------------- #
# welfare-under-failure sweep
# --------------------------------------------------------------------- #


def _sc_utilities(
    scenario: Any, metrics: Sequence[Any], gamma: float
) -> tuple[list[float], list[float]]:
    """Per-SC (utility, cost) from simulated metrics via Eq. (1)-(2)."""
    from repro.market.cost import baseline_cost, baseline_metrics, operating_cost
    from repro.market.utility import utility
    from repro.perf.params import PerformanceParams

    utilities: list[float] = []
    costs: list[float] = []
    for cloud, m in zip(scenario, metrics):
        params = PerformanceParams(
            lent_mean=max(m.lent_mean, 0.0),
            borrowed_mean=max(m.borrowed_mean, 0.0),
            forward_rate=max(m.forward_rate, 0.0),
            utilization=min(max(m.utilization, 0.0), 1.0),
        )
        cost = operating_cost(cloud, params)
        base = baseline_metrics(cloud)
        utilities.append(
            utility(baseline_cost(cloud), cost, base.utilization, params.utilization, gamma)
        )
        costs.append(cost)
    return utilities, costs


def failure_impact(
    spec: "ScenarioSpec",
    step_mode: str = "batched",
    horizon: float | None = None,
) -> dict[str, Any]:
    """Welfare and per-SC utility shift of one failure scenario.

    Runs the spec's federation twice under common random numbers — once
    healthy, once with ``spec.failures`` injected — and maps the
    simulated metrics through the paper's Eq. (1)-(3) chain.  The
    no-sharing/public-cloud baseline has zero utility for every SC by
    Eq. (2) (no sharing, no cost reduction), so ``welfare_failed > 0``
    is exactly "sharing still beats the public cloud under this
    failure".
    """
    from repro.market.fairness import welfare
    from repro.sim.federation import FederationSimulator

    scenario = spec.federation()
    span = float(horizon if horizon is not None else spec.run.horizon)
    warmup = span * 0.05
    healthy = FederationSimulator(
        scenario, seed=spec.run.seed, step_mode=step_mode
    ).run(horizon=span, warmup=warmup)
    failed = FederationSimulator(
        scenario, seed=spec.run.seed, step_mode=step_mode, failures=spec.failures
    ).run(horizon=span, warmup=warmup)
    gamma = spec.run.gamma
    shares = [cloud.shared_vms for cloud in scenario]
    utils_healthy, costs_healthy = _sc_utilities(scenario, healthy, gamma)
    utils_failed, costs_failed = _sc_utilities(scenario, failed, gamma)
    kinds = sorted({w.kind for w in spec.failures})
    return {
        "scenario": spec.name,
        "hash": spec.content_hash(),
        "kinds": kinds,
        "step_mode": step_mode,
        "horizon": span,
        "welfare_baseline": 0.0,
        "welfare_healthy": welfare(spec.run.alpha, shares, utils_healthy),
        "welfare_failed": welfare(spec.run.alpha, shares, utils_failed),
        "per_sc": [
            {
                "name": cloud.name,
                "utility_healthy": uh,
                "utility_failed": uf,
                "utility_shift": uf - uh,
                "cost_healthy": ch,
                "cost_failed": cf,
                "forward_probability_failed": m.forward_probability,
            }
            for cloud, uh, uf, ch, cf, m in zip(
                scenario, utils_healthy, utils_failed, costs_healthy, costs_failed, failed
            )
        ],
    }


def sweep(
    specs: "Iterable[ScenarioSpec] | None" = None,
    step_mode: str = "batched",
    horizon: float | None = None,
) -> dict[str, Any]:
    """Run :func:`failure_impact` over the failure-scenario library.

    Args:
        specs: scenarios to sweep; defaults to every library scenario
            with a non-empty failure schedule (the ``failure`` family).
        step_mode: simulator stepping mode for every run.
        horizon: optional horizon override (shared across scenarios).
    """
    from repro import obs

    if specs is None:
        from repro.scenarios.library import full_library

        specs = [spec for spec in full_library() if spec.failures]
    reports = []
    with obs.span("sim.failures.sweep"):
        for spec in specs:
            with obs.span("sim.failures.scenario", scenario=spec.name):
                reports.append(
                    failure_impact(spec, step_mode=step_mode, horizon=horizon)
                )
            obs.inc("sim.failures.scenarios")
    return {
        "format_version": FAILURES_FORMAT_VERSION,
        "step_mode": step_mode,
        "scenarios": reports,
    }


def _format_table(report: dict[str, Any]) -> str:
    lines = [
        f"{'scenario':<28} {'kinds':<22} {'W healthy':>12} {'W failed':>12} {'delta':>12}",
    ]
    for entry in report["scenarios"]:
        delta = entry["welfare_failed"] - entry["welfare_healthy"]
        lines.append(
            f"{entry['scenario']:<28} {'+'.join(entry['kinds']):<22} "
            f"{entry['welfare_healthy']:>12.4f} {entry['welfare_failed']:>12.4f} "
            f"{delta:>12.4f}"
        )
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    """CLI: welfare-under-failure sweep over the failure library."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.sim.failures",
        description="Equilibrium welfare under injected SC failures.",
    )
    parser.add_argument(
        "--step-mode",
        default="batched",
        choices=("event", "batched", "three_phase"),
        help="simulator stepping mode (default: batched)",
    )
    parser.add_argument(
        "--horizon", type=float, default=None, help="override the specs' horizons"
    )
    parser.add_argument(
        "--scenario",
        action="append",
        default=None,
        help="limit to named library scenarios (repeatable)",
    )
    parser.add_argument(
        "--output", default=None, help="write the JSON report to this path"
    )
    options = parser.parse_args(argv)
    specs = None
    if options.scenario:
        from repro.scenarios.library import resolve

        specs = [resolve(name) for name in options.scenario]
        for spec in specs:
            if not spec.failures:
                raise SystemExit(f"scenario {spec.name!r} has no failure schedule")
    report = sweep(specs, step_mode=options.step_mode, horizon=options.horizon)
    print(_format_table(report))
    if options.output:
        with open(options.output, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print(f"wrote {options.output}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    raise SystemExit(main())
