"""Streaming statistics for simulation output analysis.

Three accumulators cover the simulator's needs:

- :class:`TimeWeightedAverage` — integrates a piecewise-constant signal
  (queue lengths, busy VM counts) over simulated time.
- :class:`WelfordAccumulator` — numerically stable mean/variance of i.i.d.
  observations (waiting times).
- :class:`BatchMeans` — the classical batch-means method for confidence
  intervals on steady-state means from a single autocorrelated run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro._validation import check_finite, check_positive_int
from repro.exceptions import SimulationError

# Two-sided 95% normal quantile; batch counts are large enough (>= 10)
# that the normal approximation to the t distribution is adequate and we
# avoid a scipy.stats dependency in the hot path.
_Z_95 = 1.959963984540054


class TimeWeightedAverage:
    """Time integral of a piecewise-constant signal divided by elapsed time."""

    def __init__(self, initial_value: float = 0.0, start_time: float = 0.0) -> None:
        self._value = check_finite(initial_value, "initial_value")
        self._last_time = check_finite(start_time, "start_time")
        self._start_time = self._last_time
        self._integral = 0.0

    def update(self, time: float, new_value: float) -> None:
        """Record that the signal changed to ``new_value`` at ``time``."""
        if time < self._last_time - 1e-12:
            raise SimulationError(
                f"time went backwards: {time} < {self._last_time}"
            )
        self._integral += self._value * (time - self._last_time)
        self._value = float(new_value)
        self._last_time = max(time, self._last_time)

    def reset(self, time: float) -> None:
        """Restart integration at ``time`` keeping the current value (warmup cut)."""
        self._integral = 0.0
        self._start_time = time
        self._last_time = time

    def mean(self, time: float) -> float:
        """Time-weighted mean of the signal from the last reset to ``time``."""
        elapsed = time - self._start_time
        if elapsed <= 0.0:
            return self._value
        return (self._integral + self._value * (time - self._last_time)) / elapsed

    @property
    def current(self) -> float:
        """Current signal value."""
        return self._value


class WelfordAccumulator:
    """Streaming mean and variance (Welford's algorithm)."""

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0

    def add(self, value: float) -> None:
        """Add one observation."""
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)

    def mean(self) -> float:
        """Sample mean (0.0 when empty)."""
        return self._mean if self.count else 0.0

    def variance(self) -> float:
        """Unbiased sample variance (0.0 with fewer than two observations)."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    def std(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance())

    def merge(self, other: "WelfordAccumulator") -> None:
        """Fold ``other``'s observations into this accumulator.

        Chan et al.'s pairwise combination: exact in count and mean and
        numerically stable in M2, so per-repeat (or per-worker)
        accumulators reduce to the same statistics as one serial stream.
        """
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self._mean = other._mean
            self._m2 = other._m2
            return
        total = self.count + other.count
        delta = other._mean - self._mean
        self._mean += delta * other.count / total
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self.count = total


@dataclass(frozen=True)
class ConfidenceInterval:
    """A symmetric confidence interval ``mean ± half_width``."""

    mean: float
    half_width: float

    @property
    def low(self) -> float:
        """Lower endpoint."""
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        """Upper endpoint."""
        return self.mean + self.half_width

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the interval."""
        return self.low <= value <= self.high


class BatchMeans:
    """Batch-means confidence intervals for steady-state simulation output.

    Observations (one per batch, e.g. the time-weighted mean of a signal
    over each batch window) are assumed approximately i.i.d. normal, which
    holds for batch windows much longer than the process correlation time.
    """

    def __init__(self, min_batches: int = 10) -> None:
        self.min_batches = check_positive_int(min_batches, "min_batches")
        self._acc = WelfordAccumulator()

    def add_batch(self, batch_mean: float) -> None:
        """Record the mean of one batch."""
        self._acc.add(batch_mean)

    @property
    def n_batches(self) -> int:
        """Batches recorded so far."""
        return self._acc.count

    def interval(self) -> ConfidenceInterval:
        """95% confidence interval over batch means.

        Raises:
            SimulationError: with fewer than ``min_batches`` batches.
        """
        n = self._acc.count
        if n < self.min_batches:
            raise SimulationError(
                f"need at least {self.min_batches} batches, have {n}"
            )
        half = _Z_95 * self._acc.std() / math.sqrt(n)
        return ConfidenceInterval(mean=self._acc.mean(), half_width=half)
