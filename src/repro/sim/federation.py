"""Discrete-event simulator of an SC federation.

Implements the exact sharing semantics of Sect. II-A / III-B (the paper's
ground-truth C++ simulator, rebuilt in Python):

- Arrivals at SC i first use a free local VM.
- If SC i is saturated, the request borrows a VM from the lender set
  ``L = {j : j has a free VM and lent_j < S_j}``, choosing uniformly among
  lenders with the *minimum* total load (the model's load-balancing rule).
- If no lender exists, the request joins SC i's FCFS queue with the SLA
  probability ``P^NF`` (service must be able to start within ``Q_i``);
  otherwise it is forwarded to the public cloud.
- A VM freed at SC h serves h's own queue first (owner priority); if h has
  no backlog and ``lent_h < S_h``, it is lent to the SC with the *maximum*
  backlog; otherwise it idles.  Guests are never preempted.

Metrics accumulated after warmup map one-to-one onto the paper's cost
inputs: ``Ibar_i`` (time-averaged VMs lent), ``Obar_i`` (time-averaged VMs
borrowed), ``Pbar_i`` (public-cloud forwarding rate), ``rho_i`` (busy
fraction of own VMs).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro._validation import check_non_negative, check_positive
from repro.core.small_cloud import FederationScenario
from repro.exceptions import SimulationError
from repro.queueing.sla import prob_no_forward
from repro.sim.engine import STEP_MODES, SimulationEngine
from repro.sim.rng import ExponentialBlock, RandomStreams, UniformBlock
from repro.sim.stats import WelfordAccumulator
from repro import obs
from repro.sim.trace import TraceRecorder
from repro.workload.service import ExponentialService, ServiceDistribution

if TYPE_CHECKING:
    from repro.sim.failures import FailureWindow

#: Typed event codes for the batched engine's dispatch lane.
_EV_ARRIVAL = 0
_EV_COMPLETION = 1


@dataclass(frozen=True)
class SimulatedMetrics:
    """Post-warmup metrics for one SC.

    Attributes:
        lent_mean: ``Ibar_i`` — time-averaged VMs lent to other SCs.
        borrowed_mean: ``Obar_i`` — time-averaged VMs borrowed.
        forward_rate: ``Pbar_i`` — forwarded requests per time unit.
        forward_probability: forwarded / arrived.
        utilization: ``rho_i`` — time-averaged busy own VMs over ``N_i``.
        mean_wait: mean realized waiting time of queued-and-served requests.
        mean_queue_length: time-averaged own-queue length.
        arrivals: arrivals counted after warmup.
        forwarded: forwards counted after warmup.
        served_locally: completions on own VMs (own traffic).
        served_borrowed: completions of own traffic on borrowed VMs.
        sla_violations: served requests whose realized wait exceeded Q_i.
    """

    lent_mean: float
    borrowed_mean: float
    forward_rate: float
    forward_probability: float
    utilization: float
    mean_wait: float
    mean_queue_length: float
    arrivals: int
    forwarded: int
    served_locally: int
    served_borrowed: int
    sla_violations: int


class _CloudState:
    """Mutable per-SC simulator state.

    Statistics are integrated inline (plain float accumulators) rather
    than through :class:`TimeWeightedAverage` objects — ``record`` runs on
    every event and dominates the simulator's profile otherwise.  The
    ``record`` contract: it must be called, at the current simulation
    time, for every cloud whose counters changed during an event, *after*
    the mutation (the integral attributes the pre-mutation value to the
    elapsed interval because integration happens before the snapshot is
    refreshed).
    """

    __slots__ = (
        "index",
        "vms",
        "share_limit",
        "sla_bound",
        "own_running",
        "lent_to",
        "lent_total",
        "queue_arrival_times",
        "arrivals",
        "forwarded",
        "served_locally",
        "served_borrowed",
        "sla_violations",
        "wait_acc",
        "borrowed_count",
        "_last_time",
        "_start_time",
        "_integ_busy",
        "_integ_lent",
        "_integ_borrowed",
        "_integ_queue",
        "_snap_busy",
        "_snap_lent",
        "_snap_borrowed",
        "_snap_queue",
    )

    def __init__(self, index: int, vms: int, share_limit: int, sla_bound: float) -> None:
        self.index = index
        self.vms = vms
        self.share_limit = share_limit
        self.sla_bound = sla_bound
        self.own_running = 0  # own requests served on own VMs
        self.lent_to: dict[int, int] = {}  # borrower index -> VM count
        self.lent_total = 0  # sum of lent_to values, kept incrementally
        # FCFS own queue; deque so the head pop in _start_queued is O(1)
        # (a list's pop(0) is O(n) and dominates deep-backlog sims).
        self.queue_arrival_times: deque[float] = deque()
        self.arrivals = 0
        self.forwarded = 0
        self.served_locally = 0
        self.served_borrowed = 0
        self.sla_violations = 0
        self.borrowed_count = 0
        self.wait_acc = WelfordAccumulator()
        self._last_time = 0.0
        self._start_time = 0.0
        self._integ_busy = 0.0
        self._integ_lent = 0.0
        self._integ_borrowed = 0.0
        self._integ_queue = 0.0
        self._snap_busy = 0
        self._snap_lent = 0
        self._snap_borrowed = 0
        self._snap_queue = 0

    @property
    def busy(self) -> int:
        """VMs currently serving anyone."""
        return self.own_running + self.lent_total

    @property
    def free(self) -> int:
        """Idle VMs."""
        return self.vms - self.own_running - self.lent_total

    @property
    def backlog(self) -> int:
        """Own requests waiting for a VM."""
        return len(self.queue_arrival_times)

    @property
    def load(self) -> int:
        """The load-balancing metric ``q_i + s_{i,i}`` of the paper."""
        return self.own_running + len(self.queue_arrival_times) + self.lent_total

    # hot-path: called on every arrival/departure/forward event
    def record(self, time: float) -> None:
        """Integrate the previous snapshot up to ``time`` and re-snapshot."""
        dt = time - self._last_time
        if dt > 0.0:
            self._integ_busy += self._snap_busy * dt
            self._integ_lent += self._snap_lent * dt
            self._integ_borrowed += self._snap_borrowed * dt
            self._integ_queue += self._snap_queue * dt
            self._last_time = time
        self._snap_busy = self.own_running + self.lent_total
        self._snap_lent = self.lent_total
        self._snap_borrowed = self.borrowed_count
        self._snap_queue = len(self.queue_arrival_times)

    def reset_statistics(self, time: float) -> None:
        """Discard integrals accumulated so far (end of warmup)."""
        self.record(time)
        self._integ_busy = 0.0
        self._integ_lent = 0.0
        self._integ_borrowed = 0.0
        self._integ_queue = 0.0
        self._start_time = time
        self._last_time = time

    def time_averages(self, time: float) -> tuple[float, float, float, float]:
        """Return (busy, lent, borrowed, queue) time averages up to ``time``."""
        self.record(time)
        elapsed = time - self._start_time
        if elapsed <= 0.0:
            return (float(self._snap_busy), float(self._snap_lent),
                    float(self._snap_borrowed), float(self._snap_queue))
        return (
            self._integ_busy / elapsed,
            self._integ_lent / elapsed,
            self._integ_borrowed / elapsed,
            self._integ_queue / elapsed,
        )


class FederationSimulator:
    """Discrete-event simulator for a :class:`FederationScenario`.

    Args:
        scenario: the federation configuration (sharing decisions included).
        seed: master RNG seed.
        service_distributions: optional per-SC service distributions
            overriding the exponential defaults (Sect. VII extension).
        arrival_processes: optional per-SC arrival processes (objects with
            a ``next_interarrival()`` method, e.g.
            :class:`~repro.workload.arrivals.MMPPProcess`) overriding the
            Poisson defaults (Sect. VII extension).  When provided, the
            scenario's ``arrival_rate`` is only used by analytic models.
        trace: optional :class:`TraceRecorder` capturing every event.
        step_mode: engine stepping mode (``event`` reference path,
            ``batched`` throughput path, or ``three_phase``).  All modes
            produce bit-identical metrics and traces: the batched paths
            draw arrival/service/SLA randomness from pre-drawn stream
            blocks (see :mod:`repro.sim.rng` for the mapping) and replace
            per-event closures with typed dispatch, and ``three_phase``
            additionally folds the per-event statistics snapshots of each
            timestamp batch into one deferred ``record`` per cloud.
        failures: optional schedule of :class:`FailureWindow` injections
            (see :mod:`repro.sim.failures` for the semantics).
    """

    def __init__(
        self,
        scenario: FederationScenario,
        seed: int = 0,
        service_distributions: list[ServiceDistribution] | None = None,
        arrival_processes: list | None = None,
        trace: TraceRecorder | None = None,
        step_mode: str = "event",
        failures: "tuple[FailureWindow, ...] | list[FailureWindow] | None" = None,
    ) -> None:
        if step_mode not in STEP_MODES:
            raise SimulationError(
                f"unknown step_mode {step_mode!r}; expected one of {STEP_MODES}"
            )
        self.scenario = scenario
        self.k = len(scenario)
        self.step_mode = step_mode
        self.engine = SimulationEngine(step_mode=step_mode)
        self.streams = RandomStreams(seed)
        self.trace = trace
        if service_distributions is None:
            service_distributions = [
                ExponentialService(c.service_rate) for c in scenario
            ]
        if len(service_distributions) != self.k:
            raise SimulationError(
                "service_distributions must have one entry per SC"
            )
        self.service = service_distributions
        if arrival_processes is not None and len(arrival_processes) != self.k:
            raise SimulationError("arrival_processes must have one entry per SC")
        self.arrivals = arrival_processes
        self.clouds = [
            _CloudState(i, c.vms, c.shared_vms, c.sla_bound)
            for i, c in enumerate(scenario)
        ]
        # Fixed stream-creation order for reproducibility.
        self._arrival_rng = [self.streams.stream(f"arrivals[{i}]") for i in range(self.k)]
        self._service_rng = [self.streams.stream(f"service[{i}]") for i in range(self.k)]
        self._choice_rng = self.streams.stream("choices")
        self._sla_rng = self.streams.stream("sla")
        # Batched modes: pre-drawn stream blocks (bit-identical to the
        # scalar draws, see repro.sim.rng) and typed event dispatch.
        # Blocks exist only where the scalar path would draw from the
        # same stream with a fixed one-draw routine: Poisson arrivals,
        # exponential service, SLA uniforms.  Everything else (choice
        # tie-breaks, custom distributions) stays scalar in every mode.
        batched = step_mode != "event"
        self._typed = batched
        self._arrival_block: list[ExponentialBlock | None] = [
            ExponentialBlock(rng) if batched and self.arrivals is None else None
            for rng in self._arrival_rng
        ]
        self._service_block: list[ExponentialBlock | None] = [
            ExponentialBlock(self._service_rng[i])
            if batched and type(self.service[i]) is ExponentialService
            else None
            for i in range(self.k)
        ]
        self._sla_block: UniformBlock | None = (
            UniformBlock(self._sla_rng) if batched else None
        )
        if batched:
            self.engine.typed_dispatch = self._dispatch
        # Deferred statistics snapshots: in three_phase mode, handlers
        # mark clouds dirty and the engine's batch hook records each
        # dirty cloud once per timestamp batch (float-identical to the
        # per-event records because intermediate same-time records only
        # perform dt=0 snapshot refreshes).
        self._defer = step_mode == "three_phase"
        self._dirty: set[int] = set()
        if self._defer:
            self.engine.batch_hook = self._flush_records
        # Failure injection: active-window state plus scheduled
        # transitions at priority -1 (before same-time arrivals).
        self.failures: tuple[FailureWindow, ...] = tuple(failures or ())
        if self.failures:
            # Imported here (not at module top) so `python -m
            # repro.sim.failures` does not pre-import its own target
            # through the repro.sim package init.
            from repro.sim.failures import validate_schedule

            validate_schedule(self.failures, self.k)
        self._out = [False] * self.k
        self._service_factor = [1.0] * self.k
        self._arrival_factor = [1.0] * self.k
        for window in self.failures:
            if window.kind == "flash_crowd" and self.arrivals is not None:
                raise SimulationError(
                    "flash_crowd windows require Poisson arrivals "
                    "(custom arrival processes own their own rates)"
                )
            self.engine.schedule_at(
                window.start, _Transition(self, window, True), priority=-1
            )
            self.engine.schedule_at(
                window.end, _Transition(self, window, False), priority=-1
            )
        self._measuring = True
        for i in range(self.k):
            self._schedule_arrival(i)

    # ------------------------------------------------------------------ #
    # event machinery
    # ------------------------------------------------------------------ #

    # hot-path: one call per simulated arrival
    def _schedule_arrival(self, sc: int) -> None:
        if self.arrivals is not None:
            delay = float(self.arrivals[sc].next_interarrival())
        else:
            rate = self.scenario[sc].arrival_rate
            factor = self._arrival_factor[sc]
            if factor != 1.0:
                rate = rate * factor
            block = self._arrival_block[sc]
            if block is not None:
                delay = block.next(1.0 / rate)
            else:
                delay = float(self._arrival_rng[sc].exponential(1.0 / rate))
        if self._typed:
            self.engine.schedule_typed(delay, _EV_ARRIVAL, sc)
        else:
            self.engine.schedule(delay, lambda: self._on_arrival(sc))

    # hot-path: one call per service start
    def _schedule_completion(self, owner: int, host: int) -> None:
        block = self._service_block[host]
        if block is not None:
            duration = block.next(self.service[host].mean())
        else:
            duration = self.service[host].sample(self._service_rng[host])
        factor = self._service_factor[host]
        if factor != 1.0:
            duration = duration * factor
        if self._typed:
            self.engine.schedule_typed(duration, _EV_COMPLETION, owner, host)
        else:
            self.engine.schedule(duration, lambda: self._on_completion(owner, host))

    def _dispatch(self, code: int, a: int, b: int) -> None:
        """Typed-event receiver for the batched engine."""
        if code == _EV_ARRIVAL:
            self._on_arrival(a)
        elif code == _EV_COMPLETION:
            self._on_completion(a, b)
        else:  # pragma: no cover - engine schedules only the codes above
            raise SimulationError(f"unknown typed event code {code}")

    def _flush_records(self, time: float) -> None:
        """three_phase batch hook: one record per dirty cloud per batch."""
        dirty = self._dirty
        if dirty:
            clouds = self.clouds
            for index in dirty:
                clouds[index].record(time)
            dirty.clear()

    def _record_all(self) -> None:
        now = self.engine.now
        for state in self.clouds:
            state.record(now)

    # ------------------------------------------------------------------ #
    # failure transitions
    # ------------------------------------------------------------------ #

    def _on_failure_start(self, window: FailureWindow) -> None:
        sc = window.sc
        state = self.clouds[sc]
        self._emit("failure_start", failure=window.kind, sc=sc, factor=window.factor)
        if window.kind == "outage":
            self._out[sc] = True
            # Flush the queue to the public cloud: a dead SC cannot honor
            # its SLA, and queued work is not lost — it forwards.
            flushed = len(state.queue_arrival_times)
            if flushed:
                state.queue_arrival_times.clear()
                if self._measuring:
                    state.forwarded += flushed
                self._emit("outage_flush", sc=sc, flushed=flushed)
            if self._defer:
                self._dirty.add(sc)
            else:
                state.record(self.engine.now)
        elif window.kind == "limplock":
            self._service_factor[sc] = window.factor
        else:
            self._arrival_factor[sc] = window.factor

    def _on_failure_end(self, window: FailureWindow) -> None:
        sc = window.sc
        self._emit("failure_end", failure=window.kind, sc=sc)
        if window.kind == "outage":
            self._out[sc] = False
        elif window.kind == "limplock":
            self._service_factor[sc] = 1.0
        else:
            self._arrival_factor[sc] = 1.0

    def _emit(self, kind: str, **fields: object) -> None:
        if self.trace is not None:
            self.trace.record(self.engine.now, kind, **fields)

    # ------------------------------------------------------------------ #
    # semantics
    # ------------------------------------------------------------------ #

    def _on_arrival(self, sc: int) -> None:
        self._schedule_arrival(sc)
        state = self.clouds[sc]
        now = self.engine.now
        if self._measuring:
            state.arrivals += 1
        if self._out[sc]:
            # The SC is down: its customers go straight to the public
            # cloud (no local VMs, no borrowing, no queueing under an
            # unhonorable SLA).
            if self._measuring:
                state.forwarded += 1
            self._emit("outage_forward", sc=sc)
        elif state.free > 0:
            state.own_running += 1
            self._schedule_completion(sc, sc)
            self._emit("serve_local", sc=sc)
        else:
            lender = self._pick_lender(sc)
            if lender is not None:
                host = self.clouds[lender]
                host.lent_to[sc] = host.lent_to.get(sc, 0) + 1
                host.lent_total += 1
                state.borrowed_count += 1
                self._schedule_completion(sc, lender)
                self._emit("serve_borrowed", sc=sc, host=lender)
                if self._defer:
                    self._dirty.add(lender)
                else:
                    host.record(now)
            else:
                self._queue_or_forward(sc)
        if self._defer:
            self._dirty.add(sc)
        else:
            state.record(now)

    def _pick_lender(self, sc: int) -> int | None:
        """Lender with a free VM, sharing headroom, and minimum load."""
        out = self._out
        candidates = [
            j
            for j in range(self.k)
            if j != sc
            and not out[j]
            and self.clouds[j].free > 0
            and self.clouds[j].lent_total < self.clouds[j].share_limit
        ]
        if not candidates:
            return None
        loads = [self.clouds[j].load for j in candidates]
        best = min(loads)
        tied = [j for j, load in zip(candidates, loads) if load == best]
        if len(tied) == 1:
            return tied[0]
        return int(tied[self._choice_rng.integers(len(tied))])

    def _queue_or_forward(self, sc: int) -> None:
        state = self.clouds[sc]
        config = self.scenario[sc]
        busy_for_own = state.own_running + state.borrowed_count
        p_queue = prob_no_forward(
            state.backlog, busy_for_own, config.service_rate, config.sla_bound
        )
        block = self._sla_block
        draw = block.next() if block is not None else float(self._sla_rng.random())
        if draw < p_queue:
            state.queue_arrival_times.append(self.engine.now)
            self._emit("queue", sc=sc, backlog=state.backlog)
        else:
            if self._measuring:
                state.forwarded += 1
            self._emit("forward", sc=sc)

    def _on_completion(self, owner: int, host: int) -> None:
        host_state = self.clouds[host]
        owner_state = self.clouds[owner]
        if owner == host:
            if host_state.own_running <= 0:
                raise SimulationError("completion with no running own request")
            host_state.own_running -= 1
            if self._measuring:
                owner_state.served_locally += 1
        else:
            count = host_state.lent_to.get(owner, 0)
            if count <= 0:
                raise SimulationError("completion of untracked borrowed VM")
            if count == 1:
                del host_state.lent_to[owner]
            else:
                host_state.lent_to[owner] = count - 1
            host_state.lent_total -= 1
            owner_state.borrowed_count -= 1
            if self._measuring:
                owner_state.served_borrowed += 1
        self._emit("complete", owner=owner, host=host)
        extra = self._allocate_freed_vm(host)
        now = self.engine.now
        if self._defer:
            dirty = self._dirty
            dirty.add(owner)
            dirty.add(host)
            if extra is not None:
                dirty.add(extra)
        else:
            owner_state.record(now)
            if host != owner:
                host_state.record(now)
            if extra is not None and extra not in (owner, host):
                self.clouds[extra].record(now)

    def _allocate_freed_vm(self, host: int) -> int | None:
        """Dispatch the VM freed at ``host`` per the paper's return rules.

        Returns the index of a third SC whose state changed (a borrower
        whose queued request was started), if any, so the caller can
        refresh its statistics.
        """
        state = self.clouds[host]
        if self._out[host]:
            # A dead SC neither serves its (flushed, empty) queue nor
            # lends freed capacity; the VM idles until recovery.
            return None
        if state.backlog > 0:
            # Owner priority: serve the host's own queue head.
            self._start_queued(host, host)
            return None
        if state.lent_total < state.share_limit:
            borrower = self._pick_borrower(host)
            if borrower is not None:
                self._start_queued(borrower, host)
                self._emit("lend_freed", host=host, borrower=borrower)
                return borrower
        return None

    def _pick_borrower(self, host: int) -> int | None:
        """Borrower with the maximum backlog (uniform tie-break)."""
        candidates = [
            j for j in range(self.k) if j != host and self.clouds[j].backlog > 0
        ]
        if not candidates:
            return None
        backlogs = [self.clouds[j].backlog for j in candidates]
        best = max(backlogs)
        tied = [j for j, b in zip(candidates, backlogs) if b == best]
        if len(tied) == 1:
            return tied[0]
        return int(tied[self._choice_rng.integers(len(tied))])

    def _start_queued(self, owner: int, host: int) -> None:
        """Move the FCFS head of ``owner``'s queue onto a VM at ``host``."""
        owner_state = self.clouds[owner]
        queued_at = owner_state.queue_arrival_times.popleft()
        wait = self.engine.now - queued_at
        if self._measuring:
            owner_state.wait_acc.add(wait)
            if wait > owner_state.sla_bound + 1e-12:
                owner_state.sla_violations += 1
        if owner == host:
            owner_state.own_running += 1
        else:
            host_state = self.clouds[host]
            host_state.lent_to[owner] = host_state.lent_to.get(owner, 0) + 1
            host_state.lent_total += 1
            owner_state.borrowed_count += 1
        self._schedule_completion(owner, host)

    # ------------------------------------------------------------------ #
    # running and results
    # ------------------------------------------------------------------ #

    def run(self, horizon: float, warmup: float = 0.0) -> list[SimulatedMetrics]:
        """Simulate to ``horizon`` and return per-SC metrics.

        Args:
            horizon: total simulated time (> warmup).
            warmup: initial period excluded from all statistics.
        """
        horizon = check_positive(horizon, "horizon")
        warmup = check_non_negative(warmup, "warmup")
        if warmup >= horizon:
            raise SimulationError("warmup must be shorter than the horizon")
        with obs.span("sim.run", k=self.k, horizon=horizon, warmup=warmup):
            if warmup > 0.0:
                self._measuring = False
                self.engine.run_until(warmup)
                self._measuring = True
                for state in self.clouds:
                    state.reset_statistics(warmup)
            self.engine.run_until(horizon)
            self._record_all()
            self._check_conservation()
        if obs.metrics_active():
            obs.inc("sim.arrivals", sum(s.arrivals for s in self.clouds))
            obs.inc("sim.forwarded", sum(s.forwarded for s in self.clouds))
        elapsed = horizon - warmup
        results = []
        for state in self.clouds:
            arrivals = state.arrivals
            busy_mean, lent_mean, borrowed_mean, queue_mean = state.time_averages(
                horizon
            )
            results.append(
                SimulatedMetrics(
                    lent_mean=lent_mean,
                    borrowed_mean=borrowed_mean,
                    forward_rate=state.forwarded / elapsed,
                    forward_probability=(
                        state.forwarded / arrivals if arrivals else 0.0
                    ),
                    utilization=busy_mean / state.vms,
                    mean_wait=state.wait_acc.mean(),
                    mean_queue_length=queue_mean,
                    arrivals=arrivals,
                    forwarded=state.forwarded,
                    served_locally=state.served_locally,
                    served_borrowed=state.served_borrowed,
                    sla_violations=state.sla_violations,
                )
            )
        return results

    def _check_conservation(self) -> None:
        """Invariants that must hold in any reachable simulator state."""
        for state in self.clouds:
            if state.busy > state.vms:
                raise SimulationError(
                    f"SC {state.index}: {state.busy} busy VMs exceed {state.vms}"
                )
            if state.lent_total > state.share_limit:
                raise SimulationError(
                    f"SC {state.index}: lent {state.lent_total} exceeds limit "
                    f"{state.share_limit}"
                )
            borrowed_elsewhere = sum(
                other.lent_to.get(state.index, 0)
                for other in self.clouds
                if other is not state
            )
            if borrowed_elsewhere != state.borrowed_count:
                raise SimulationError(
                    f"SC {state.index}: borrowed bookkeeping mismatch"
                )


class _Transition:
    """A scheduled failure-window edge (start or end) as a callback.

    A tiny callable class instead of a lambda so the two edges of every
    window read identically in heap dumps and the engine's event-mode
    and batched-mode schedules build the same object shape.
    """

    __slots__ = ("simulator", "window", "starting")

    def __init__(
        self, simulator: FederationSimulator, window: FailureWindow, starting: bool
    ) -> None:
        self.simulator = simulator
        self.window = window
        self.starting = starting

    def __call__(self) -> None:
        if self.starting:
            self.simulator._on_failure_start(self.window)
        else:
            self.simulator._on_failure_end(self.window)
