"""Independent-replication experiments with confidence intervals.

A single long simulation gives point estimates; validation work (Fig. 6's
"exact" curves) needs error bars.  :func:`replicate` runs R independent
replications of the federation simulator under different seeds and
reduces each metric to a mean plus a 95% confidence interval via the
batch-means machinery (each replication is one "batch" — replications
are i.i.d. by construction, so the normality assumption is clean).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro import obs
from repro._validation import check_positive_int
from repro.core.small_cloud import FederationScenario
from repro.sim.federation import FederationSimulator
from repro.sim.trace import TraceRecorder
from repro.sim.stats import BatchMeans, ConfidenceInterval

if TYPE_CHECKING:
    from repro.runtime.executor import Executor
    from repro.sim.failures import FailureWindow
    from repro.sim.federation import SimulatedMetrics

#: Metric fields reduced across replications.
_METRICS = (
    "lent_mean",
    "borrowed_mean",
    "forward_rate",
    "forward_probability",
    "utilization",
    "mean_wait",
    "mean_queue_length",
)


@dataclass(frozen=True)
class ReplicatedMetrics:
    """Per-SC confidence intervals over replications.

    Attributes map 1:1 onto :class:`~repro.sim.federation.SimulatedMetrics`
    fields, each as a :class:`ConfidenceInterval`.
    """

    lent_mean: ConfidenceInterval
    borrowed_mean: ConfidenceInterval
    forward_rate: ConfidenceInterval
    forward_probability: ConfidenceInterval
    utilization: ConfidenceInterval
    mean_wait: ConfidenceInterval
    mean_queue_length: ConfidenceInterval


def _run_replication(
    task: "tuple[FederationScenario, int, float, float, str, tuple[FailureWindow, ...]]"
) -> list[SimulatedMetrics]:
    """One replication as a pure, process-pool-friendly function.

    Under active tracing the replication runs with a
    :class:`~repro.sim.trace.TraceRecorder` attached, so simulator
    events are forwarded into the ``sim.replication`` span; the
    recorder is otherwise omitted to keep the hot path allocation-free.
    """
    scenario, seed, horizon, warmup, step_mode, failures = task
    with obs.span("sim.replication", seed=seed):
        obs.inc("sim.replications")
        trace = TraceRecorder() if obs.tracing_active() else None
        simulator = FederationSimulator(
            scenario,
            seed=seed,
            trace=trace,
            step_mode=step_mode,
            failures=failures or None,
        )
        return simulator.run(horizon=horizon, warmup=warmup)


def replicate(
    scenario: FederationScenario,
    replications: int = 10,
    horizon: float = 20_000.0,
    warmup: float = 1_000.0,
    base_seed: int = 0,
    executor: "Executor | None" = None,
    seed_scheme: str = "offset",
    step_mode: str = "event",
    failures: "tuple[FailureWindow, ...] | None" = None,
) -> list[ReplicatedMetrics]:
    """Run independent replications and reduce to confidence intervals.

    Args:
        scenario: the federation.
        replications: number of independent runs (>= 2; >= 10 for
            meaningful intervals).
        horizon: simulated time per replication.
        warmup: warmup per replication.
        base_seed: master seed; per-replication seeds derive from it
            under ``seed_scheme``.
        executor: optional executor running the replications in parallel
            (each replication's seed is fixed up front, so parallel runs
            reduce to exactly the serial estimates).
        seed_scheme: ``'offset'`` (historical ``base_seed + r``) or
            ``'spawn'`` (independent derived seeds) — see
            :func:`repro.runtime.seeding.replication_seeds`.
        step_mode: simulator stepping mode; every mode reduces to
            bit-identical intervals (the engine-equivalence guarantee).
        failures: optional failure schedule applied to every replication.

    Returns:
        One :class:`ReplicatedMetrics` per SC, in scenario order.
    """
    from repro.runtime.seeding import replication_seeds

    replications = check_positive_int(replications, "replications")
    k = len(scenario)
    accumulators = [
        {metric: BatchMeans(min_batches=2) for metric in _METRICS} for _ in range(k)
    ]
    seeds = replication_seeds(base_seed, replications, scheme=seed_scheme)
    schedule = tuple(failures or ())
    tasks = [
        (scenario, seed, horizon, warmup, step_mode, schedule) for seed in seeds
    ]
    with obs.span("sim.replicate", replications=replications):
        if executor is not None and replications > 1:
            # Routed through the executor on every backend (serial
            # included) so batch counters and merged metric totals are
            # backend-independent — the differential checker's
            # metrics-merge section relies on this.
            all_results = obs.map_with_metrics(executor, _run_replication, tasks)
        else:
            all_results = [_run_replication(task) for task in tasks]
    for results in all_results:
        for i, metrics in enumerate(results):
            for metric in _METRICS:
                accumulators[i][metric].add_batch(getattr(metrics, metric))
    return [
        ReplicatedMetrics(
            **{metric: accumulators[i][metric].interval() for metric in _METRICS}
        )
        for i in range(k)
    ]
