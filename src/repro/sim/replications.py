"""Independent-replication experiments with confidence intervals.

A single long simulation gives point estimates; validation work (Fig. 6's
"exact" curves) needs error bars.  :func:`replicate` runs R independent
replications of the federation simulator under different seeds and
reduces each metric to a mean plus a 95% confidence interval via the
batch-means machinery (each replication is one "batch" — replications
are i.i.d. by construction, so the normality assumption is clean).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._validation import check_positive_int
from repro.core.small_cloud import FederationScenario
from repro.sim.federation import FederationSimulator
from repro.sim.stats import BatchMeans, ConfidenceInterval

#: Metric fields reduced across replications.
_METRICS = (
    "lent_mean",
    "borrowed_mean",
    "forward_rate",
    "forward_probability",
    "utilization",
    "mean_wait",
    "mean_queue_length",
)


@dataclass(frozen=True)
class ReplicatedMetrics:
    """Per-SC confidence intervals over replications.

    Attributes map 1:1 onto :class:`~repro.sim.federation.SimulatedMetrics`
    fields, each as a :class:`ConfidenceInterval`.
    """

    lent_mean: ConfidenceInterval
    borrowed_mean: ConfidenceInterval
    forward_rate: ConfidenceInterval
    forward_probability: ConfidenceInterval
    utilization: ConfidenceInterval
    mean_wait: ConfidenceInterval
    mean_queue_length: ConfidenceInterval


def replicate(
    scenario: FederationScenario,
    replications: int = 10,
    horizon: float = 20_000.0,
    warmup: float = 1_000.0,
    base_seed: int = 0,
) -> list[ReplicatedMetrics]:
    """Run independent replications and reduce to confidence intervals.

    Args:
        scenario: the federation.
        replications: number of independent runs (>= 2; >= 10 for
            meaningful intervals).
        horizon: simulated time per replication.
        warmup: warmup per replication.
        base_seed: replication r uses seed ``base_seed + r``.

    Returns:
        One :class:`ReplicatedMetrics` per SC, in scenario order.
    """
    replications = check_positive_int(replications, "replications")
    k = len(scenario)
    accumulators = [
        {metric: BatchMeans(min_batches=2) for metric in _METRICS} for _ in range(k)
    ]
    for r in range(replications):
        simulator = FederationSimulator(scenario, seed=base_seed + r)
        results = simulator.run(horizon=horizon, warmup=warmup)
        for i, metrics in enumerate(results):
            for metric in _METRICS:
                accumulators[i][metric].add_batch(getattr(metrics, metric))
    return [
        ReplicatedMetrics(
            **{metric: accumulators[i][metric].interval() for metric in _METRICS}
        )
        for i in range(k)
    ]
