"""Generic discrete-event simulation core.

A small, dependency-free event core with three stepping modes:

- ``step_mode="event"`` — the retained reference path: an event heap of
  :class:`Event` objects popped one at a time.  Callers schedule
  ``Event`` objects (time, priority, callback) and run until a horizon
  or event budget.
- ``step_mode="batched"`` — the throughput path: heap entries are plain
  lists (so heap maintenance compares floats at C speed instead of
  calling a Python ``__lt__``), callbacks can be replaced by *typed*
  events dispatched through one bound method (no per-event closure
  allocation), and bulk schedules (:meth:`SimulationEngine.schedule_block`)
  keep pre-drawn event times in sorted NumPy arrays that the run loop
  drains in tight runs — including handing a whole run to a vectorized
  handler in one call.
- ``step_mode="three_phase"`` — batched stepping that additionally
  groups all events sharing one timestamp into a batch processed in
  three sweeps: *collect* (pop every event at the current time),
  *compute* (materialize their handlers, in execution order), *apply*
  (run them), then fire :attr:`SimulationEngine.batch_hook` once.  The
  federation simulator uses the hook to fold its per-event statistics
  snapshots into one per (cloud, timestamp).

All three modes execute events in the identical total order
``(time, priority, sequence)`` — ties in time break by priority (lower
first) then insertion order — so a deterministic workload produces
bit-identical results under every mode; the engine-equivalence property
suite (``tests/property/test_engine_equivalence.py``) pins this.

Ordering contract of ``three_phase``: events *scheduled during* a batch
join a later batch even when they land on the current timestamp, so a
handler that schedules a zero-delay event with a lower priority than a
not-yet-applied batch member observes batch order, not heap order.  No
simulator workload schedules into its own timestamp; the property suite
only exercises the shared total order under workloads honoring this.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable

import numpy as np

from repro import obs
from repro.exceptions import SimulationError

#: Recognized stepping modes.
STEP_MODES = ("event", "batched", "three_phase")

_INF = float("inf")


class Event:
    """A scheduled event.

    Ordering is (time, priority, sequence): ties in time are broken by
    priority (lower first), then by insertion order, so simultaneous
    events execute deterministically.  Implemented with ``__slots__`` and
    a hand-written ``__lt__`` because event comparison is the simulator's
    hottest operation (every heap push/pop) in ``event`` mode; the
    batched modes sidestep it with list-shaped heap entries.
    """

    __slots__ = ("time", "priority", "sequence", "callback", "cancelled")

    # Validation is skipped deliberately: Event sits on the simulator's
    # hottest path (every heap push), and the engine only builds events
    # from already-validated schedule() arguments.
    def __init__(  # repro: noqa[RPR104]
        self,
        time: float,
        priority: int,
        sequence: int,
        callback: Callable[[], None],
    ) -> None:
        self.time = time
        self.priority = priority
        self.sequence = sequence
        self.callback = callback
        self.cancelled = False

    # hot-path: every heap push/pop compares events; see analysis.hotness
    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        if self.priority != other.priority:
            return self.priority < other.priority
        return self.sequence < other.sequence

    def cancel(self) -> None:
        """Mark this event as cancelled; it will be skipped when popped."""
        self.cancelled = True


class _EventBlock:
    """A bulk-scheduled channel: sorted times, consumed front to back.

    Sequence numbers are the contiguous range ``[seq0, seq0 + n)`` so
    block events participate in the same global (time, priority,
    sequence) total order as individually scheduled ones.
    """

    __slots__ = ("times", "index", "priority", "seq0", "handler", "vectorized")

    def __init__(
        self,
        times: np.ndarray,
        priority: int,
        seq0: int,
        handler: Callable[..., None],
        vectorized: bool,
    ) -> None:
        self.times = times
        self.index = 0
        self.priority = priority
        self.seq0 = seq0
        self.handler = handler
        self.vectorized = vectorized

    @property
    def remaining(self) -> int:
        return len(self.times) - self.index


class SimulationEngine:
    """An event simulator with deterministic tie-breaking and three
    stepping modes (see the module docstring)."""

    def __init__(self, step_mode: str = "event") -> None:
        if step_mode not in STEP_MODES:
            raise SimulationError(
                f"unknown step_mode {step_mode!r}; expected one of {STEP_MODES}"
            )
        self.step_mode = step_mode
        # event mode: a heap of Event objects.  batched/three_phase: a
        # heap of [time, priority, seq, event, code, a, b] lists — lists
        # compare element-wise at C speed, and seq is unique so the
        # trailing payload slots are never compared.
        self._heap: list = []
        self._blocks: list[_EventBlock] = []
        self._seq = 0
        self.now = 0.0
        self.events_executed = 0
        self.batches_executed = 0
        #: three_phase only: called with the batch timestamp after every
        #: same-time batch has been applied.
        self.batch_hook: Callable[[float], None] | None = None
        #: batched modes only: receiver of typed events,
        #: ``dispatch(code, a, b)``.  Installed by the simulator built on
        #: top of the engine (one bound method replaces per-event
        #: closures on the hot path).
        self.typed_dispatch: Callable[[int, int, int], None] | None = None

    def _next_seq(self) -> int:
        seq = self._seq
        self._seq = seq + 1
        return seq

    # ------------------------------------------------------------------ #
    # scheduling
    # ------------------------------------------------------------------ #

    def schedule(
        self, delay: float, callback: Callable[[], None], priority: int = 0
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` time units from now.

        Returns the :class:`Event`, which the caller may cancel.
        """
        if delay < 0.0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        event = Event(
            time=self.now + delay,
            priority=priority,
            sequence=self._next_seq(),
            callback=callback,
        )
        if self.step_mode == "event":
            heapq.heappush(self._heap, event)
        else:
            heapq.heappush(
                self._heap,
                [event.time, priority, event.sequence, event, -1, 0, 0],
            )
        return event

    def schedule_at(
        self, time: float, callback: Callable[[], None], priority: int = 0
    ) -> Event:
        """Schedule ``callback`` at an absolute simulation time."""
        return self.schedule(time - self.now, callback, priority)

    # hot-path: one call per scheduled simulator event in batched mode
    def schedule_typed(self, delay: float, code: int, a: int = 0, b: int = 0, priority: int = 0) -> None:
        """Schedule a typed event ``(code, a, b)`` (batched modes only).

        Typed events dispatch through :attr:`typed_dispatch` and carry no
        callback or Event object — the allocation-free fast lane of the
        batched simulator.  They cannot be cancelled.
        """
        if self.step_mode == "event":
            raise SimulationError("schedule_typed requires a batched step_mode")
        if delay < 0.0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        heapq.heappush(
            self._heap,
            [self.now + delay, priority, self._next_seq(), None, code, a, b],
        )

    def schedule_typed_at(self, time: float, code: int, a: int = 0, b: int = 0, priority: int = 0) -> None:
        """Typed scheduling at an absolute simulation time."""
        self.schedule_typed(time - self.now, code, a, b, priority)

    def schedule_block(
        self,
        offsets: "np.ndarray | list[float]",
        handler: Callable[..., None],
        priority: int = 0,
        vectorized: bool = False,
    ) -> int:
        """Bulk-schedule events at ``now + offsets`` (non-decreasing).

        ``handler`` is called per event with the event time — or, when
        ``vectorized`` is true, once per drained run with a read-only
        NumPy slice of consecutive times (the batched drain hands over
        every event of the run in one call).  In ``event`` mode the block
        falls back to individual events so workloads stay expressible in
        every mode; a vectorized handler then receives length-1 slices.

        Returns the number of events scheduled.
        """
        times = np.asarray(offsets, dtype=float)
        if times.ndim != 1:
            raise SimulationError("schedule_block offsets must be one-dimensional")
        if len(times) == 0:
            return 0
        if float(times[0]) < 0.0 or bool(np.any(np.diff(times) < 0.0)):
            raise SimulationError(
                "schedule_block offsets must be non-negative and non-decreasing"
            )
        times = times + self.now
        if self.step_mode == "event":
            for t in times:
                time = float(t)
                if vectorized:
                    self.schedule_at(time, _SliceCall(handler, time), priority)
                else:
                    self.schedule_at(time, _TimeCall(handler, time), priority)
            return len(times)
        block = _EventBlock(
            times=times,
            priority=priority,
            seq0=self._seq,
            handler=handler,
            vectorized=vectorized,
        )
        self._seq += len(times)
        self._blocks.append(block)
        return len(times)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    @property
    def pending(self) -> int:
        """Scheduled (possibly cancelled) events still waiting to run."""
        return len(self._heap) + sum(b.remaining for b in self._blocks)

    def _heap_key(self) -> "tuple[float, int, int] | None":
        """(time, priority, seq) of the next live heap event, or None."""
        heap = self._heap
        if self.step_mode == "event":
            while heap and heap[0].cancelled:
                heapq.heappop(heap)
            if not heap:
                return None
            head = heap[0]
            return (head.time, head.priority, head.sequence)
        while heap and heap[0][3] is not None and heap[0][3].cancelled:
            heapq.heappop(heap)
        if not heap:
            return None
        entry = heap[0]
        return (entry[0], entry[1], entry[2])

    def _next_key(self) -> "tuple[float, int, int] | None":
        """Smallest (time, priority, seq) over the heap and all blocks."""
        best = self._heap_key()
        for block in self._blocks:
            if block.index < len(block.times):
                key = (float(block.times[block.index]), block.priority, block.seq0 + block.index)
                if best is None or key < best:
                    best = key
        return best

    def peek_time(self) -> float | None:
        """Time of the next live event, or None if everything is drained."""
        key = self._next_key()
        return key[0] if key is not None else None

    # ------------------------------------------------------------------ #
    # stepping
    # ------------------------------------------------------------------ #

    # hot-path: the event dispatch loop; one call per simulated event
    def step(self) -> bool:
        """Execute the next live event.  Returns False if none remain.

        Works in every mode; the batched modes use it as the tie-breaking
        slow path around their bulk drains.
        """
        if self.step_mode == "event":
            heap = self._heap
            while heap:
                event = heapq.heappop(heap)
                if event.cancelled:
                    continue
                if event.time < self.now - 1e-9:
                    raise SimulationError("event heap produced an out-of-order event")
                self.now = max(self.now, event.time)
                self.events_executed += 1
                event.callback()
                return True
            return False
        return self._step_merged()

    def _step_merged(self) -> bool:
        """One event off the merged heap + block sources (batched modes)."""
        hkey = self._heap_key()
        best_block: _EventBlock | None = None
        best_key = hkey
        for block in self._blocks:
            if block.index < len(block.times):
                key = (float(block.times[block.index]), block.priority, block.seq0 + block.index)
                if best_key is None or key < best_key:
                    best_key = key
                    best_block = block
        if best_key is None:
            return False
        if best_key[0] < self.now - 1e-9:
            raise SimulationError("event sources produced an out-of-order event")
        self.now = max(self.now, best_key[0])
        self.events_executed += 1
        if best_block is None:
            entry = heapq.heappop(self._heap)
            self._execute_entry(entry)
        else:
            index = best_block.index
            best_block.index = index + 1
            if best_block.vectorized:
                best_block.handler(best_block.times[index : index + 1])
            else:
                best_block.handler(float(best_block.times[index]))
        return True

    def _execute_entry(self, entry: list) -> None:
        """Run one batched-mode heap entry (callback or typed)."""
        event = entry[3]
        if event is not None:
            event.callback()
            return
        dispatch = self.typed_dispatch
        if dispatch is None:
            raise SimulationError("typed event scheduled without a typed_dispatch")
        dispatch(entry[4], entry[5], entry[6])

    # ------------------------------------------------------------------ #
    # running
    # ------------------------------------------------------------------ #

    def run_until(self, horizon: float, max_events: int | None = None) -> None:
        """Run until simulated time reaches ``horizon``.

        Events scheduled exactly at the horizon are *not* executed; the
        clock is advanced to the horizon on return so time-weighted
        statistics can be finalized consistently.
        """
        if horizon < self.now:
            raise SimulationError(f"horizon {horizon} is in the past (now={self.now})")
        if self.step_mode == "event":
            executed = self._run_event(horizon, max_events)
        elif self.step_mode == "batched":
            executed = self._run_batched(horizon, max_events)
        else:
            executed = self._run_three_phase(horizon, max_events)
        if executed:
            obs.inc("sim.engine.events", executed)
        self.now = max(self.now, horizon)

    def _run_event(self, horizon: float, max_events: int | None) -> int:
        executed = 0
        while True:
            next_time = self.peek_time()
            if next_time is None or next_time >= horizon:
                break
            if max_events is not None and executed >= max_events:
                break
            self.step()
            executed += 1
        return executed

    # hot-path: the batched drain loop; see analysis.hotness
    def _run_batched(self, horizon: float, max_events: int | None) -> int:
        """Merged drain: bulk runs off block channels, heap interleaved.

        A run is the longest prefix of one block strictly below every
        other source's next key and the horizon; vectorized handlers get
        the whole run in one call, per-event handlers run in a tight loop
        that re-checks the boundary only when the handler scheduled
        something new.  Ties across sources fall back to one-at-a-time
        stepping, preserving the global (time, priority, seq) order.
        """
        executed = 0
        budget = max_events if max_events is not None else -1
        heap = self._heap
        while True:
            if 0 <= budget <= executed:
                break
            hkey = self._heap_key()
            best_block: _EventBlock | None = None
            best_key = hkey
            for block in self._blocks:
                if block.index < len(block.times):
                    key = (
                        float(block.times[block.index]),
                        block.priority,
                        block.seq0 + block.index,
                    )
                    if best_key is None or key < best_key:
                        best_key = key
                        best_block = block
            if best_key is None or best_key[0] >= horizon:
                break
            if best_block is None:
                # Next event lives on the heap: execute exactly one, then
                # re-evaluate (its handler may have scheduled anything).
                self.now = max(self.now, best_key[0])
                entry = heapq.heappop(heap)
                self.events_executed += 1
                executed += 1
                self._execute_entry(entry)
                continue
            # Drain a run off the winning block: every event strictly
            # before the other sources' next key and the horizon.
            bound = horizon if hkey is None else min(horizon, hkey[0])
            for other in self._blocks:
                if other is not best_block and other.index < len(other.times):
                    t = float(other.times[other.index])
                    if t < bound:
                        bound = t
            start = best_block.index
            stop = int(np.searchsorted(best_block.times, bound, side="left"))
            if 0 <= budget:
                stop = min(stop, start + (budget - executed))
            if stop <= start:
                # The run is empty only because of a cross-source tie at
                # `bound`; resolve one event through the slow path.
                if self._step_merged():
                    executed += 1
                    continue
                break
            times = best_block.times
            handler = best_block.handler
            if best_block.vectorized:
                best_block.index = stop
                count = stop - start
                self.now = max(self.now, float(times[stop - 1]))
                self.events_executed += count
                executed += count
                self.batches_executed += 1
                handler(times[start:stop])
                continue
            heap_size = len(heap)
            block_count = len(self._blocks)
            self.batches_executed += 1
            # tolist() converts the whole run to Python floats in one C
            # call — far cheaper than one numpy-scalar unboxing per event.
            run_times = times[start:stop].tolist()
            blocks = self._blocks
            index = start
            done = 0
            for t in run_times:
                index += 1
                best_block.index = index
                self.now = t
                done += 1
                handler(t)
                if len(heap) != heap_size or len(blocks) != block_count:
                    # The handler scheduled new work; the run boundary is
                    # stale, so fall back to the outer merge.
                    break
            self.events_executed += done
            executed += done
        return executed

    def _run_three_phase(self, horizon: float, max_events: int | None) -> int:
        """Collect -> compute -> apply, one batch per timestamp.

        Phase 1 pops every event sharing the next timestamp (across the
        heap and all blocks, in (priority, seq) order).  Phase 2
        materializes their handlers into an apply list — the point where
        a simulator layered on top has *collected all deliveries* for the
        timestamp but not yet mutated state.  Phase 3 applies in order,
        then :attr:`batch_hook` fires once for the whole batch.
        """
        executed = 0
        while True:
            if max_events is not None and executed >= max_events:
                break
            first = self._next_key()
            if first is None or first[0] >= horizon:
                break
            batch_time = first[0]
            # Phase 1+2 fused: popping in key order *is* the ordered
            # compute list; entries hold everything needed to apply.
            batch: list = []
            while True:
                if max_events is not None and executed + len(batch) >= max_events:
                    break
                key = self._next_key()
                if key is None or key[0] != batch_time:
                    break
                batch.append(self._pop_one(key))
            if not batch:
                break
            # Phase 3: apply in collected order.
            self.now = max(self.now, batch_time)
            self.events_executed += len(batch)
            executed += len(batch)
            self.batches_executed += 1
            for thunk in batch:
                thunk()
            if self.batch_hook is not None:
                self.batch_hook(batch_time)
        return executed

    def _pop_one(self, key: "tuple[float, int, int]") -> Callable[[], None]:
        """Remove the event at ``key`` and return its apply thunk."""
        hkey = self._heap_key()
        if hkey == key:
            entry = heapq.heappop(self._heap)
            event = entry[3]
            if event is not None:
                callback: Callable[[], None] = event.callback
                return callback
            dispatch = self.typed_dispatch
            if dispatch is None:
                raise SimulationError("typed event scheduled without a typed_dispatch")
            return _TypedCall(dispatch, entry[4], entry[5], entry[6])
        for block in self._blocks:
            if block.index < len(block.times):
                bkey = (
                    float(block.times[block.index]),
                    block.priority,
                    block.seq0 + block.index,
                )
                if bkey == key:
                    index = block.index
                    block.index = index + 1
                    if block.vectorized:
                        return _SliceCall(block.handler, float(block.times[index]))
                    return _TimeCall(block.handler, float(block.times[index]))
        raise SimulationError("event sources drifted during batch collection")


class _TimeCall:
    """Deferred per-event handler call (bound early, no closure bugs)."""

    __slots__ = ("handler", "time")

    def __init__(self, handler: Callable[[float], None], time: float) -> None:
        self.handler = handler
        self.time = time

    def __call__(self) -> None:
        self.handler(self.time)


class _SliceCall:
    """Deferred vectorized handler call carrying a length-1 slice."""

    __slots__ = ("handler", "time")

    def __init__(self, handler: Callable[..., None], time: float) -> None:
        self.handler = handler
        self.time = time

    def __call__(self) -> None:
        self.handler(np.asarray([self.time]))


class _TypedCall:
    """Deferred typed dispatch for the three-phase apply list."""

    __slots__ = ("dispatch", "code", "a", "b")

    def __init__(
        self, dispatch: Callable[[int, int, int], None], code: int, a: int, b: int
    ) -> None:
        self.dispatch = dispatch
        self.code = code
        self.a = a
        self.b = b

    def __call__(self) -> None:
        self.dispatch(self.code, self.a, self.b)
