"""Generic discrete-event simulation core.

A small, dependency-free event heap: callers schedule ``Event`` objects
(time, priority, callback) and run until a horizon or event budget.  The
federation simulator builds on this core; keeping the core generic lets
tests exercise ordering/cancellation semantics in isolation and makes the
engine reusable for other queueing experiments.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable

from repro import obs
from repro.exceptions import SimulationError


class Event:
    """A scheduled event.

    Ordering is (time, priority, sequence): ties in time are broken by
    priority (lower first), then by insertion order, so simultaneous
    events execute deterministically.  Implemented with ``__slots__`` and
    a hand-written ``__lt__`` because event comparison is the simulator's
    hottest operation (every heap push/pop).
    """

    __slots__ = ("time", "priority", "sequence", "callback", "cancelled")

    # Validation is skipped deliberately: Event sits on the simulator's
    # hottest path (every heap push), and the engine only builds events
    # from already-validated schedule() arguments.
    def __init__(  # repro: noqa[RPR104]
        self,
        time: float,
        priority: int,
        sequence: int,
        callback: Callable[[], None],
    ) -> None:
        self.time = time
        self.priority = priority
        self.sequence = sequence
        self.callback = callback
        self.cancelled = False

    # hot-path: every heap push/pop compares events; see analysis.hotness
    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        if self.priority != other.priority:
            return self.priority < other.priority
        return self.sequence < other.sequence

    def cancel(self) -> None:
        """Mark this event as cancelled; it will be skipped when popped."""
        self.cancelled = True


class SimulationEngine:
    """An event-heap simulator with deterministic tie-breaking."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self.now = 0.0
        self.events_executed = 0

    def schedule(
        self, delay: float, callback: Callable[[], None], priority: int = 0
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` time units from now.

        Returns the :class:`Event`, which the caller may cancel.
        """
        if delay < 0.0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        event = Event(
            time=self.now + delay,
            priority=priority,
            sequence=next(self._counter),
            callback=callback,
        )
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(
        self, time: float, callback: Callable[[], None], priority: int = 0
    ) -> Event:
        """Schedule ``callback`` at an absolute simulation time."""
        return self.schedule(time - self.now, callback, priority)

    @property
    def pending(self) -> int:
        """Number of scheduled (possibly cancelled) events still on the heap."""
        return len(self._heap)

    def peek_time(self) -> float | None:
        """Time of the next live event, or None if the heap is drained."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    # hot-path: the event dispatch loop; one call per simulated event
    def step(self) -> bool:
        """Execute the next live event.  Returns False if none remain."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            if event.time < self.now - 1e-9:
                raise SimulationError("event heap produced an out-of-order event")
            self.now = max(self.now, event.time)
            self.events_executed += 1
            event.callback()
            return True
        return False

    def run_until(self, horizon: float, max_events: int | None = None) -> None:
        """Run until simulated time reaches ``horizon``.

        Events scheduled exactly at the horizon are *not* executed; the
        clock is advanced to the horizon on return so time-weighted
        statistics can be finalized consistently.
        """
        if horizon < self.now:
            raise SimulationError(f"horizon {horizon} is in the past (now={self.now})")
        executed = 0
        while True:
            next_time = self.peek_time()
            if next_time is None or next_time >= horizon:
                break
            if max_events is not None and executed >= max_events:
                break
            self.step()
            executed += 1
        if executed:
            obs.inc("sim.engine.events", executed)
        self.now = max(self.now, horizon)
