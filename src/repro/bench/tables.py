"""Plain-text table rendering for benchmark output.

The harness prints each figure's data as an aligned text table (the
"same rows/series the paper reports"), keeping the output greppable and
diff-able in CI logs.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    float_format: str = "{:.4f}",
) -> str:
    """Render rows as an aligned monospace table.

    Args:
        headers: column names.
        rows: row values; floats are formatted with ``float_format``.
        title: optional title line.
        float_format: format spec applied to float cells.
    """
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return float_format.format(cell)
        return str(cell)

    text_rows = [[fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in text_rows)) if text_rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(series: Mapping[str, Sequence[tuple[float, float]]], title: str) -> str:
    """Render named (x, y) series as one table with a column per series."""
    xs = sorted({x for points in series.values() for x, _y in points})
    headers = ["x"] + list(series)
    lookup = {
        name: {x: y for x, y in points} for name, points in series.items()
    }
    rows = []
    for x in xs:
        row: list[object] = [x]
        for name in series:
            row.append(lookup[name].get(x, float("nan")))
        rows.append(row)
    return render_table(headers, rows, title=title)
