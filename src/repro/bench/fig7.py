"""Fig. 7: market outcomes vs the price ratio ``C^G/C^P``.

For each price ratio the harness runs the full SC-Share loop (Algorithm 1
to an equilibrium, then welfare scoring) and reports the federation
efficiency for the three fairness levels the paper plots (utilitarian,
proportional, max-min), for a chosen utility function (UF0 or UF1) and a
chosen load mix (Fig. 7a–7d).

Model note: the default performance model is the fast pooled estimator so
a full sweep finishes in minutes; pass ``model=ApproximateModel()`` for
the paper-faithful hierarchy (hours at strategy_step=1 — use a coarser
``strategy_step``).  Performance parameters are cached across the whole
sweep since they do not depend on prices.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

from repro.bench.scenarios import fig7_scenario
from repro.bench.tables import render_table
from repro.core.framework import SCShare
from repro.market.fairness import ALPHA_MAX_MIN, ALPHA_PROPORTIONAL, ALPHA_UTILITARIAN
from repro.market.pricing import price_ratio_grid
from repro.perf.base import PerformanceModel
from repro.perf.pooled import PooledModel

if TYPE_CHECKING:
    from repro.runtime.executor import Executor

#: The three fairness curves of each Fig. 7 panel.
ALPHAS = {
    "utilitarian": ALPHA_UTILITARIAN,
    "proportional": ALPHA_PROPORTIONAL,
    "max-min": ALPHA_MAX_MIN,
}


@dataclass(frozen=True)
class Fig7Row:
    """Market outcome at one price ratio."""

    loads: str
    gamma: float
    price_ratio: float
    equilibrium: tuple[int, ...]
    iterations: int
    efficiency: dict[str, float]
    welfare: dict[str, float]

    @property
    def federation_formed(self) -> bool:
        """Whether anybody shares at equilibrium."""
        return any(s > 0 for s in self.equilibrium)


def run_fig7(
    loads: str = "spread",
    gamma: float = 0.0,
    ratios: list[float] | None = None,
    model: PerformanceModel | None = None,
    strategy_step: int = 1,
    restarts: tuple[tuple[int, ...], ...] = (),
    executor: "Executor | None" = None,
    cache_dir: str | Path | None = None,
) -> list[Fig7Row]:
    """Sweep the price ratio for one Fig. 7 panel.

    Args:
        loads: load-mix key (``'spread'``, ``'high'``, ``'medium'``).
        gamma: utility exponent (0 = UF0 as in 7a/7c, 1 = UF1 as in 7b/7d).
        ratios: price grid (default: the paper's (0, 1] spread).
        model: performance model (default: pooled).
        strategy_step: sharing-grid step.
        restarts: extra initial profiles per price point (the paper
            starts "arbitrarily" and restarts the search, keeping the
            fairest equilibrium).  Defaults to half-sharing and
            full-sharing starts — without them, best-response dynamics
            from the no-sharing profile can stall in the coordination
            trap where nobody shares because nobody else does.
        executor: optional executor for the game's parallel sections.
        cache_dir: optional directory for a persistent parameter cache;
            performance parameters are price-independent, so one
            populated cache serves the entire sweep (and later re-runs)
            without a single fresh model solve.
    """
    from repro.market.efficiency import federation_efficiency, social_optimum

    base = fig7_scenario(loads)
    if ratios is None:
        ratios = price_ratio_grid(points=11)
    model = model if model is not None else PooledModel()
    if cache_dir is None:
        params_cache: dict = {}
    else:
        from repro.runtime.cache import DiskParamsCache

        params_cache = DiskParamsCache(cache_dir, base, model)
    rows = []
    for ratio in ratios:
        scenario = base.with_price_ratio(ratio)
        runner = SCShare(
            scenario,
            model=model,
            gamma=gamma,
            strategy_step=strategy_step,
            params_cache=params_cache,
            executor=executor,
        )
        if not restarts:
            restarts = (
                tuple(c.vms // 2 for c in scenario),
                tuple(c.vms for c in scenario),
            )
        # The equilibrium depends only on gamma and prices — not on the
        # welfare's alpha — so the game runs once per price point and the
        # three fairness curves are scored from the same equilibrium.
        results = [runner.game.run()]
        for restart in restarts:
            results.append(runner.game.run(restart))
        converged = [r for r in results if r.converged] or results
        efficiency: dict[str, float] = {}
        welfare: dict[str, float] = {}
        equilibrium: tuple[int, ...] = ()
        iterations = 0
        for name, alpha in ALPHAS.items():
            best = max(
                converged,
                key=lambda r: runner.evaluator.welfare(r.equilibrium, alpha),
            )
            achieved = runner.evaluator.welfare(best.equilibrium, alpha)
            _profile, optimum = social_optimum(
                runner.evaluator, alpha, runner.strategy_spaces, method="ascent"
            )
            efficiency[name] = federation_efficiency(achieved, optimum)
            welfare[name] = achieved
            equilibrium = best.equilibrium
            iterations = best.iterations
        rows.append(
            Fig7Row(
                loads=loads,
                gamma=gamma,
                price_ratio=ratio,
                equilibrium=equilibrium,
                iterations=iterations,
                efficiency=efficiency,
                welfare=welfare,
            )
        )
    return rows


def render(rows: list[Fig7Row]) -> str:
    """Render one Fig. 7 panel as the paper's three efficiency series."""
    return render_table(
        ["C^G/C^P", "equilibrium", "iters"] + list(ALPHAS),
        [
            (
                r.price_ratio,
                str(r.equilibrium),
                r.iterations,
                *(r.efficiency[name] for name in ALPHAS),
            )
            for r in rows
        ],
        title=(
            "Fig. 7 — federation efficiency vs price ratio "
            f"(loads={rows[0].loads}, gamma={rows[0].gamma})"
        ),
    )


def check_shape(rows: list[Fig7Row]) -> list[str]:
    """Check the paper's qualitative Fig. 7 claims; returns violations."""
    problems = []
    formed = [r for r in rows if r.federation_formed]
    if not formed:
        problems.append("the federation never forms at any price ratio")
        return problems
    # Sharing should not collapse in the low/middle price range.
    low_mid = [r for r in rows if 0.1 <= r.price_ratio <= 0.6]
    if low_mid and not any(r.federation_formed for r in low_mid):
        problems.append("no federation in the low/middle price range")
    return problems
