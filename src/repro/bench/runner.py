"""Standalone benchmark runner: ``python -m repro.bench.runner <figure>``.

Runs one figure's harness with its default parameters and prints the
table.  The pytest-benchmark drivers in ``benchmarks/`` use the same
functions; this entry point is for quick interactive regeneration.

``--workers N`` fans the independent work units (model rotations,
simulation points, game sections) out over N processes; ``--cache-dir``
persists every model solve so a repeated run (or a CI smoke job with a
warm cache) skips them entirely.  Both knobs change wall-clock only —
tables are byte-identical to a serial, uncached run.

``--trace`` / ``--metrics`` / ``--profile`` (shared with
``python -m repro``) capture a span tree, a metrics snapshot, or a
cProfile report of the whole benchmark run; they too leave every table
byte-identical.

``scenario --scenario NAME|FILE`` drives a scenario-library entry (or a
scenario JSON file) through the market loop instead of a paper figure —
the same traced/profiled/cached surface, pointed at any of the 100+
generated scenarios (``python -m repro.scenarios list``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.__main__ import add_obs_arguments, run_with_obs
from repro.analysis.sanitize import sanitize_enable
from repro.bench import fig5, fig6, fig7, fig8
from repro.runtime.executor import Executor, make_executor

_QUICK_RATIOS = [0.1, 0.3, 0.5, 0.7, 0.9]


def _run_fig5(quick: bool, executor: Executor, cache_dir: str | None) -> str:
    rows = fig5.run_fig5(
        utilizations=(0.6, 0.8, 0.9) if quick else (0.5, 0.6, 0.7, 0.8, 0.9, 0.95),
        horizon=5_000.0 if quick else 20_000.0,
        executor=executor,
    )
    problems = fig5.check_shape(rows)
    output = fig5.render(rows)
    if problems:
        output += "\nSHAPE VIOLATIONS: " + "; ".join(problems)
    return output


def _run_fig6(quick: bool, executor: Executor, cache_dir: str | None) -> str:
    rates = (6.0, 8.0) if quick else (5.0, 6.0, 7.0, 8.0)
    parts = [
        fig6.render(
            fig6.run_fig6_2sc(target_rates=rates, executor=executor, cache_dir=cache_dir)
        )
    ]
    if not quick:
        parts.append(
            fig6.render(
                fig6.run_fig6_10sc(
                    target_rates=rates, executor=executor, cache_dir=cache_dir
                )
            )
        )
        parts.append(
            fig6.render(fig6.run_fig6_100vm(executor=executor, cache_dir=cache_dir))
        )
    return "\n\n".join(parts)


def _run_fig7(quick: bool, executor: Executor, cache_dir: str | None) -> str:
    parts = []
    panels = [("spread", 0.0)] if quick else [
        ("spread", 0.0),
        ("spread", 1.0),
        ("high", 0.0),
        ("medium", 1.0),
    ]
    for loads, gamma in panels:
        rows = fig7.run_fig7(
            loads=loads,
            gamma=gamma,
            ratios=_QUICK_RATIOS if quick else None,
            strategy_step=2 if quick else 1,
            executor=executor,
            cache_dir=cache_dir,
        )
        parts.append(fig7.render(rows))
        problems = fig7.check_shape(rows)
        if problems:
            parts.append("SHAPE VIOLATIONS: " + "; ".join(problems))
    return "\n\n".join(parts)


def _run_fig8(quick: bool, executor: Executor, cache_dir: str | None) -> str:
    sizes_a = (2, 3, 4) if quick else (2, 3, 4, 6, 8, 10)
    sizes_b = (2, 3, 4) if quick else (2, 3, 4, 6, 8)
    parts = [
        # 8a times chain construction, so it always runs serial and uncached.
        fig8.render_8a(fig8.run_fig8a(sizes=sizes_a)),
        fig8.render_8b(
            fig8.run_fig8b(sizes=sizes_b, executor=executor, cache_dir=cache_dir)
        ),
    ]
    return "\n\n".join(parts)


FIGURES = {
    "fig5": _run_fig5,
    "fig6": _run_fig6,
    "fig7": _run_fig7,
    "fig8": _run_fig8,
}


def _run_scenario(reference: str, workers: int, backend: str, cache_dir: str | None) -> str:
    """Run one scenario-library entry (or spec file) through the market loop."""
    import json

    from repro.scenarios.library import resolve
    from repro.scenarios.runner import run_spec

    spec = resolve(reference)
    report = run_spec(
        spec,
        mode="solve",
        workers=workers if workers > 1 else None,
        backend=None if backend == "auto" else backend,
        cache_dir=cache_dir,
    )
    return json.dumps(report, indent=2)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        description="Regenerate a figure of the SC-Share evaluation."
    )
    parser.add_argument("figure", choices=sorted(FIGURES) + ["all", "scenario"])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller grids / shorter simulations for a fast smoke run",
    )
    parser.add_argument(
        "--scenario",
        default=None,
        metavar="NAME|FILE",
        help="scenario-library entry or spec file (with the 'scenario' figure)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="parallel width for independent work units (1 = serial)",
    )
    parser.add_argument(
        "--parallel-backend",
        choices=["auto", "thread", "process"],
        default="auto",
        help="executor kind behind --workers (auto = process pools)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="directory for the persistent model-solution cache",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="DIR",
        help="also write each figure's table to DIR/<figure>.txt",
    )
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help="enable the runtime stochastic sanitizer "
        "(equivalent to REPRO_SANITIZE=1)",
    )
    add_obs_arguments(parser)
    args = parser.parse_args(argv)
    if args.sanitize:
        sanitize_enable()
    if args.figure == "scenario" and args.scenario is None:
        parser.error("the 'scenario' figure needs --scenario NAME|FILE")
    executor = make_executor(args.workers, kind=args.parallel_backend)
    names = sorted(FIGURES) if args.figure == "all" else [args.figure]
    output_dir = Path(args.output) if args.output else None
    if output_dir is not None:
        output_dir.mkdir(parents=True, exist_ok=True)

    def run_figures() -> int:
        for name in names:
            if name == "scenario":
                table = _run_scenario(
                    args.scenario, args.workers, args.parallel_backend, args.cache_dir
                )
                stem = "scenario"
            else:
                table = FIGURES[name](args.quick, executor, args.cache_dir)
                stem = name
            print(table)
            print()
            if output_dir is not None:
                (output_dir / f"{stem}.txt").write_text(table + "\n")
        return 0

    return run_with_obs(args, run_figures)


if __name__ == "__main__":
    sys.exit(main())
