"""Standalone benchmark runner: ``python -m repro.bench.runner <figure>``.

Runs one figure's harness with its default parameters and prints the
table.  The pytest-benchmark drivers in ``benchmarks/`` use the same
functions; this entry point is for quick interactive regeneration.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench import fig5, fig6, fig7, fig8

_QUICK_RATIOS = [0.1, 0.3, 0.5, 0.7, 0.9]


def _run_fig5(quick: bool) -> str:
    rows = fig5.run_fig5(
        utilizations=(0.6, 0.8, 0.9) if quick else (0.5, 0.6, 0.7, 0.8, 0.9, 0.95),
        horizon=5_000.0 if quick else 20_000.0,
    )
    problems = fig5.check_shape(rows)
    output = fig5.render(rows)
    if problems:
        output += "\nSHAPE VIOLATIONS: " + "; ".join(problems)
    return output


def _run_fig6(quick: bool) -> str:
    rates = (6.0, 8.0) if quick else (5.0, 6.0, 7.0, 8.0)
    parts = [fig6.render(fig6.run_fig6_2sc(target_rates=rates))]
    if not quick:
        parts.append(fig6.render(fig6.run_fig6_10sc(target_rates=rates)))
        parts.append(fig6.render(fig6.run_fig6_100vm()))
    return "\n\n".join(parts)


def _run_fig7(quick: bool) -> str:
    parts = []
    panels = [("spread", 0.0)] if quick else [
        ("spread", 0.0),
        ("spread", 1.0),
        ("high", 0.0),
        ("medium", 1.0),
    ]
    for loads, gamma in panels:
        rows = fig7.run_fig7(
            loads=loads,
            gamma=gamma,
            ratios=_QUICK_RATIOS if quick else None,
            strategy_step=2 if quick else 1,
        )
        parts.append(fig7.render(rows))
        problems = fig7.check_shape(rows)
        if problems:
            parts.append("SHAPE VIOLATIONS: " + "; ".join(problems))
    return "\n\n".join(parts)


def _run_fig8(quick: bool) -> str:
    sizes_a = (2, 3, 4) if quick else (2, 3, 4, 6, 8, 10)
    sizes_b = (2, 3, 4) if quick else (2, 3, 4, 6, 8)
    parts = [
        fig8.render_8a(fig8.run_fig8a(sizes=sizes_a)),
        fig8.render_8b(fig8.run_fig8b(sizes=sizes_b)),
    ]
    return "\n\n".join(parts)


FIGURES = {
    "fig5": _run_fig5,
    "fig6": _run_fig6,
    "fig7": _run_fig7,
    "fig8": _run_fig8,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        description="Regenerate a figure of the SC-Share evaluation."
    )
    parser.add_argument("figure", choices=sorted(FIGURES) + ["all"])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller grids / shorter simulations for a fast smoke run",
    )
    args = parser.parse_args(argv)
    names = sorted(FIGURES) if args.figure == "all" else [args.figure]
    for name in names:
        print(FIGURES[name](args.quick))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
