"""Microbenchmarks for the model hot path: ``python -m repro.bench.micro``.

Three timed probes, each emitting one entry of a ``BENCH_micro.json``
artifact so the perf trajectory of the reproduction is recorded run over
run:

- ``assembly`` — one chain built twice, with the retained per-state
  reference assembler and with the vectorized assembler, asserting the
  two generators are bit-identical and reporting the speedup;
- ``fig6_evaluate`` — end-to-end ``evaluate`` / ``evaluate_target`` on a
  Fig. 6 scenario (the 10-SC federation in full mode, the 2-SC one with
  ``--quick``);
- ``tabu_sweep`` — a Tabu-style neighborhood sweep: 20 single-coordinate
  neighbor sharing vectors of the Fig. 7 federation (6 with ``--quick``),
  each scored for one SC through a
  :class:`~repro.market.evaluator.UtilityEvaluator` the way the best
  responder scores trial profiles;
- ``incremental`` — a warm single-SC deviation re-solve on a K-scaling
  federation, surfacing the incremental mode's levels-reused /
  levels-rebuilt stats and its speedup over the cold solve;
- ``obs_overhead`` — prices the :mod:`repro.obs` hooks: the cost of one
  disabled hook call, the hook crossings a real solve performs, and the
  implied disabled-instrumentation overhead fraction (pinned below 2%
  by ``tests/obs/test_overhead.py``), plus the traced/untraced ratio;
- ``sim_fifo`` — prices the simulator's FIFO queue discipline: an
  end-to-end deep-backlog federation simulation, plus a steady-state
  FIFO replay at the backlog depth comparing ``list.pop(0)`` (the
  RPR404 anti-pattern the perf lint flagged) against the
  ``deque.popleft()`` the simulator now uses.  At equilibrium depths
  the end-to-end delta is within run-to-run noise — the replay is what
  pins the asymptotic mechanism.
- ``sim_throughput`` — engine events/sec under ``event`` vs ``batched``
  stepping (scalar and vectorized channel drains), plus the equivalence
  gate: a federation simulated under all three step modes must produce
  identical metrics or the probe raises;
- ``sim_failures`` — end-to-end cost of the failure-injection welfare
  sweep (healthy + failed runs per scenario, one per failure class).

The sim probes are additionally extracted into a ``BENCH_sim.json``
artifact next to ``BENCH_micro.json``.

Every probe runs under a metrics capture, so each report entry carries
the counters the workload produced alongside its timings.

``--reference`` runs every probe with the reference assembler and all
caching disabled — the pre-optimization configuration — which is how the
committed ``benchmarks/results/BENCH_baseline.json`` numbers were
produced.  ``--compare PATH`` prints a *non-blocking* delta against such
a file: CI surfaces regressions without going red on a noisy runner.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path
from typing import Any, Callable

import numpy as np

from repro import obs
from repro.bench.scenarios import (
    fig6_2sc_scenario,
    fig6_10sc_scenario,
    fig7_scenario,
    fig8_perf_scenario,
)
from repro.market.evaluator import UtilityEvaluator
from repro.perf.approximate import ApproximateModel

SCHEMA_VERSION = 1


def _make_model(reference: bool) -> ApproximateModel:
    if reference:
        return ApproximateModel(assembly="reference", level_cache_size=0)
    return ApproximateModel()


def _timed(fn: Callable[[], Any]) -> tuple[float, Any]:
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def bench_assembly(quick: bool, reference: bool) -> dict[str, Any]:
    """Time chain assembly for both assemblers and check bit-identity."""
    scenario = fig8_perf_scenario(3 if quick else 5)
    ref_model = ApproximateModel(assembly="reference", level_cache_size=0)
    vec_model = ApproximateModel(assembly="vectorized", level_cache_size=0)
    ref_seconds, ref_level = _timed(lambda: ref_model._build_chain(scenario))
    vec_seconds, vec_level = _timed(lambda: vec_model._build_chain(scenario))
    ref_gen = ref_level.ctmc.generator
    vec_gen = vec_level.ctmc.generator
    identical = (
        np.array_equal(ref_gen.indptr, vec_gen.indptr)
        and np.array_equal(ref_gen.indices, vec_gen.indices)
        and np.array_equal(ref_gen.data, vec_gen.data)
        and np.array_equal(ref_level.forward_flow, vec_level.forward_flow)
    )
    return {
        "scenario": f"fig8_perf_{len(scenario)}sc",
        "n_states": ref_level.ctmc.n_states,
        "reference_seconds": ref_seconds,
        "vectorized_seconds": vec_seconds,
        "speedup": ref_seconds / vec_seconds if vec_seconds > 0 else float("inf"),
        "generators_identical": identical,
        # The probe's headline number follows the requested configuration.
        "seconds": ref_seconds if reference else vec_seconds,
    }


def bench_fig6(quick: bool, reference: bool) -> dict[str, Any]:
    """End-to-end evaluation cost of a Fig. 6 scenario."""
    if quick:
        scenario = fig6_2sc_scenario(target_share=5, target_rate=6.0)
        label = "fig6_2sc"
    else:
        scenario = fig6_10sc_scenario(target_share=5, target_rate=6.0)
        label = "fig6_10sc"
    model = _make_model(reference)
    target_seconds, _ = _timed(lambda: model.evaluate_target(scenario))
    evaluate_seconds, _ = _timed(lambda: model.evaluate(scenario))
    return {
        "scenario": label,
        "evaluate_target_seconds": target_seconds,
        "evaluate_seconds": evaluate_seconds,
        "level_cache": model.level_cache_stats(),
        "seconds": evaluate_seconds,
    }


def _neighbor_vectors(base: tuple[int, ...], count: int) -> list[tuple[int, ...]]:
    """``count`` distinct single-coordinate neighbors of ``base`` (plus
    ``base`` itself), the shape of a Tabu neighborhood scan."""
    vectors: list[tuple[int, ...]] = [base]
    offsets = [1, -1, 2, -2, 3, -3, 4, -4]
    for offset in offsets:
        for position in range(len(base)):
            if len(vectors) >= count:
                return vectors
            candidate = list(base)
            candidate[position] = max(0, min(10, candidate[position] + offset))
            vector = tuple(candidate)
            if vector not in vectors:
                vectors.append(vector)
    return vectors


def bench_tabu_sweep(quick: bool, reference: bool) -> dict[str, Any]:
    """Score a Tabu-style neighborhood of sharing vectors end to end.

    Mirrors the best-response objective: each trial vector is scored for
    a single SC via ``utility(vector, index)``.  Optimized, that is one
    target rotation of the hierarchical chain; under ``--reference``
    every query is answered the pre-optimization way — a full-federation
    ``params`` solve — and the utility is read off the cached vector.
    The recorded utilities are identical either way, which the committed
    baseline documents.
    """
    scenario = fig7_scenario("spread")
    model = _make_model(reference)
    evaluator = UtilityEvaluator(scenario, model, gamma=0.0)
    vectors = _neighbor_vectors((5, 5, 5), 6 if quick else 20)

    def sweep() -> list[float]:
        values = []
        for j, vector in enumerate(vectors):
            index = j % len(scenario)
            if reference:
                evaluator.params(vector)
            values.append(evaluator.utility(vector, index))
        return values

    seconds, values = _timed(sweep)
    return {
        "scenario": "fig7_spread_3sc",
        "evaluations": len(vectors),
        "per_evaluation_seconds": seconds / len(vectors),
        "utilities": values,
        "cache_info": evaluator.cache_info(),
        "seconds": seconds,
    }


def bench_obs_overhead(quick: bool, reference: bool) -> dict[str, Any]:
    """Price the observability hooks.

    Three measurements:

    - the per-call cost of a *disabled* hook, timed over a tight loop of
      span/inc/observe calls under :func:`repro.obs.suspended`;
    - the hook crossings one real solve performs (spans started plus
      metric recordings, counted by an enabled run of the same solve);
    - the traced/untraced wall-clock ratio of that solve.

    The implied disabled overhead — crossings x per-hook cost relative
    to the untraced solve time — is the number the overhead guard test
    pins below 2%.
    """
    calls = 50_000 if quick else 200_000
    with obs.suspended():
        start = time.perf_counter()
        for _ in range(calls):
            with obs.span("bench.noop"):
                pass
            obs.inc("bench.counter")
            obs.observe("bench.hist", 0.5)
        disabled_seconds = time.perf_counter() - start
    per_hook_seconds = disabled_seconds / (3 * calls)

    scenario = fig6_2sc_scenario(target_share=5, target_rate=6.0)

    def solve() -> Any:
        # A fresh model per run: no level cache carries over, so the
        # plain and instrumented runs do identical work.
        return _make_model(reference).evaluate_target(scenario)

    with obs.suspended():
        plain_seconds, _ = _timed(solve)
    with obs.capture(tracing=True, metrics=True) as cap:
        instrumented_seconds, _ = _timed(solve)
        crossings = cap.tracer.span_count + cap.registry.recordings()
    disabled_fraction = (
        crossings * per_hook_seconds / plain_seconds if plain_seconds > 0 else 0.0
    )
    return {
        "scenario": "fig6_2sc",
        "hook_calls": 3 * calls,
        "per_hook_seconds": per_hook_seconds,
        "solve_crossings": crossings,
        "plain_seconds": plain_seconds,
        "instrumented_seconds": instrumented_seconds,
        "instrumented_ratio": (
            instrumented_seconds / plain_seconds if plain_seconds > 0 else 1.0
        ),
        "disabled_overhead_fraction": disabled_fraction,
        "seconds": disabled_seconds,
    }


def bench_incremental(quick: bool, reference: bool) -> dict[str, Any]:
    """Price a single-SC deviation re-solve under incremental mode.

    A K-scaling federation is solved once to warm the chain state, then
    one SC's arrival rate drifts and the target is re-solved.  Under
    ``--reference`` (cache off, monolithic) the re-solve rebuilds every
    level; incremental mode rebuilds only the suffix at/after the
    drifted position.  The probe surfaces the model's own
    ``incremental_stats()`` — levels reused vs rebuilt and chain-prefix
    hits — alongside the ``perf.incremental.*`` / ``perf.warm_replay.*``
    counters run_micro captures for every probe.
    """
    from dataclasses import replace as dc_replace

    from repro.bench.scenarios import kscale_scenario
    from repro.core.small_cloud import FederationScenario

    k = 6 if quick else 10
    base = kscale_scenario(k)
    position = k - 3
    clouds = list(base.clouds)
    clouds[position] = dc_replace(
        clouds[position], arrival_rate=clouds[position].arrival_rate + 0.001
    )
    drifted = FederationScenario(tuple(clouds))

    if reference:
        model = ApproximateModel(level_cache_size=0, mode="monolithic")
    else:
        model = ApproximateModel(level_cache_size=0, mode="incremental")
    cold_seconds, _ = _timed(lambda: model.evaluate_target(base))
    resolve_seconds, _ = _timed(
        lambda: model.evaluate_target(drifted, deviation=position)
    )
    stats = (
        model.incremental_stats()
        if isinstance(model, ApproximateModel) and model.mode == "incremental"
        else {}
    )
    return {
        "scenario": f"kscale_{k}sc",
        "deviation_position": position,
        "cold_solve_seconds": cold_seconds,
        "resolve_seconds": resolve_seconds,
        "resolve_speedup": (
            cold_seconds / resolve_seconds if resolve_seconds > 0 else float("inf")
        ),
        "incremental_stats": stats,
        "seconds": resolve_seconds,
    }


def bench_sim_fifo(quick: bool, reference: bool) -> dict[str, Any]:
    """Price the simulator's FIFO queue discipline.

    Two measurements:

    - an end-to-end deep-backlog federation simulation (every cloud
      overloaded and forwarding, so the wait queues stay populated) —
      the workload whose profile evidence drives the hot-path lint;
    - a steady-state FIFO replay at a representative backlog depth:
      prefill to the depth, then alternate push/pop, timed once with a
      ``list`` using ``pop(0)`` (the RPR404 anti-pattern
      ``_CloudState.queue_arrival_times`` used to be) and once with a
      ``deque`` using ``popleft()`` (what it is now).

    The sim-level numbers are honest — at the depths the Erlang
    forwarding bound sustains, pop cost is a small fraction of event
    handling, so the end-to-end delta sits within noise; the replay
    isolates the O(n)-vs-O(1) mechanism the triage fix removed.
    ``--reference`` changes nothing here: the queue discipline is not
    configurable, the replay always times both.
    """
    from collections import deque

    from repro.core.small_cloud import FederationScenario, SmallCloud
    from repro.sim.federation import FederationSimulator

    scenario = FederationScenario(
        clouds=(
            SmallCloud(
                name="sc1",
                vms=2,
                arrival_rate=6.0,
                sla_bound=50.0,
                federation_price=0.4,
            ),
            SmallCloud(
                name="sc2",
                vms=2,
                arrival_rate=5.5,
                sla_bound=50.0,
                federation_price=0.4,
            ),
        )
    )
    horizon = 1000.0 if quick else 4000.0
    sim_seconds, result = _timed(
        lambda: FederationSimulator(scenario, seed=7).run(
            horizon=horizon, warmup=100.0
        )
    )
    total_forwarded = sum(m.forwarded for m in result)

    depth = 512 if quick else 2048
    ops = 20_000 if quick else 100_000

    def replay(queue: Any, pop: Callable[[], float]) -> float:
        for i in range(depth):
            queue.append(float(i))
        start = time.perf_counter()
        for i in range(ops):
            queue.append(float(i))
            pop()
        return time.perf_counter() - start

    as_list: list[float] = []
    list_seconds = replay(as_list, lambda: as_list.pop(0))
    as_deque: deque[float] = deque()
    deque_seconds = replay(as_deque, as_deque.popleft)
    return {
        "scenario": "deep_backlog_2sc",
        "horizon": horizon,
        "sim_seconds": sim_seconds,
        "jobs_forwarded": total_forwarded,
        "replay_depth": depth,
        "replay_ops": ops,
        "list_pop0_seconds": list_seconds,
        "deque_popleft_seconds": deque_seconds,
        "replay_speedup": (
            list_seconds / deque_seconds if deque_seconds > 0 else float("inf")
        ),
        "seconds": sim_seconds,
    }


def bench_sim_throughput(quick: bool, reference: bool) -> dict[str, Any]:
    """Engine events/sec: batched stepping vs the event-heap reference.

    Two measurements:

    - a synthetic drain: N Poisson-spaced events bulk-scheduled through
      ``schedule_block``, run once per mode.  In ``event`` mode the block
      falls back to one heap ``Event`` per entry (the pre-overhaul
      configuration); in ``batched`` mode the run loop drains the sorted
      channel directly — timed once with a per-event handler (the
      headline ``speedup``) and once with a vectorized handler receiving
      whole runs (``vectorized_speedup``).  Timings repeat and reduce
      through a :class:`~repro.sim.stats.WelfordAccumulator`.
    - the equivalence gate: a federation scenario simulated under all
      three step modes; any difference in any per-SC metric raises,
      so every bench run re-proves the bit-identity the property suite
      pins.  ``--reference`` changes nothing: the event path *is* the
      reference and is always timed.
    """
    from dataclasses import asdict

    from repro.core.small_cloud import FederationScenario, SmallCloud
    from repro.sim.engine import SimulationEngine
    from repro.sim.federation import FederationSimulator
    from repro.sim.stats import WelfordAccumulator

    n_events = 100_000 if quick else 500_000
    repeats = 3 if quick else 5
    rng = np.random.default_rng(11)
    offsets = np.cumsum(rng.exponential(1.0, n_events))
    horizon = float(offsets[-1]) + 1.0

    sink = [0]

    def scalar_handler(time_: float) -> None:
        sink[0] += 1

    def vector_handler(times: np.ndarray) -> None:
        sink[0] += len(times)

    def drain(mode: str, handler: Callable[..., Any], vectorized: bool) -> float:
        engine = SimulationEngine(step_mode=mode)
        engine.schedule_block(offsets, handler, vectorized=vectorized)
        start = time.perf_counter()
        engine.run_until(horizon)
        elapsed = time.perf_counter() - start
        if engine.events_executed != n_events:
            raise RuntimeError(
                f"{mode} drain executed {engine.events_executed} != {n_events}"
            )
        return elapsed

    event_acc = WelfordAccumulator()
    batched_acc = WelfordAccumulator()
    vector_acc = WelfordAccumulator()
    for _ in range(repeats):
        # One accumulator per repeat, merged: exercises the same
        # reduction path parallel repeats would use.
        for acc, mode, handler, vectorized in (
            (event_acc, "event", scalar_handler, False),
            (batched_acc, "batched", scalar_handler, False),
            (vector_acc, "batched", vector_handler, True),
        ):
            repeat_acc = WelfordAccumulator()
            repeat_acc.add(n_events / drain(mode, handler, vectorized))
            acc.merge(repeat_acc)

    scenario = FederationScenario(
        clouds=tuple(
            SmallCloud(
                name=f"sc{i + 1}",
                vms=4,
                arrival_rate=3.0 + 0.5 * i,
                sla_bound=0.5,
                shared_vms=2,
            )
            for i in range(4)
        )
    )
    fed_horizon = 500.0 if quick else 2_000.0

    def federation(mode: str) -> tuple[float, list[dict[str, Any]]]:
        simulator = FederationSimulator(scenario, seed=42, step_mode=mode)
        seconds, metrics = _timed(
            lambda: simulator.run(horizon=fed_horizon, warmup=fed_horizon * 0.05)
        )
        return seconds, [asdict(m) for m in metrics]

    fed_seconds: dict[str, float] = {}
    fed_metrics: dict[str, list[dict[str, Any]]] = {}
    for mode in ("event", "batched", "three_phase"):
        fed_seconds[mode], fed_metrics[mode] = federation(mode)
    for mode in ("batched", "three_phase"):
        if fed_metrics[mode] != fed_metrics["event"]:
            raise RuntimeError(
                f"step_mode={mode!r} diverged from the event reference path"
            )

    event_eps = event_acc.mean()
    batched_eps = batched_acc.mean()
    vector_eps = vector_acc.mean()
    return {
        "scenario": f"poisson_drain_{n_events}",
        "events": n_events,
        "repeats": repeats,
        "event_events_per_second": event_eps,
        "batched_events_per_second": batched_eps,
        "vectorized_events_per_second": vector_eps,
        "events_per_second_std": {
            "event": event_acc.std(),
            "batched": batched_acc.std(),
            "vectorized": vector_acc.std(),
        },
        "speedup": batched_eps / event_eps if event_eps > 0 else float("inf"),
        "vectorized_speedup": (
            vector_eps / event_eps if event_eps > 0 else float("inf")
        ),
        "federation_seconds": fed_seconds,
        "federation_modes_identical": True,
        "seconds": n_events / event_eps if event_eps > 0 else 0.0,
    }


def bench_sim_failures(quick: bool, reference: bool) -> dict[str, Any]:
    """Price the failure-injection layer end to end.

    Times :func:`repro.sim.failures.failure_impact` — two federation
    runs (healthy + failed) plus the Eq. (1)-(3) welfare chain — on one
    library scenario per failure class, and reports the injected
    overhead on a healthy run (a failure-free simulation constructed
    with the failure machinery in place costs the same bytes and draws
    as one without, so the overhead is pure bookkeeping).
    ``--reference`` runs the sweep on the event-mode engine instead of
    the batched one.
    """
    from repro.scenarios.library import resolve
    from repro.sim.failures import failure_impact

    step_mode = "event" if reference else "batched"
    horizon = 400.0 if quick else 1_500.0
    names = ("failure-000", "failure-001", "failure-002")
    reports = {}
    total_seconds = 0.0
    for name in names:
        spec = resolve(name)
        seconds, impact = _timed(
            lambda spec=spec: failure_impact(
                spec, step_mode=step_mode, horizon=horizon
            )
        )
        total_seconds += seconds
        reports[name] = {
            "kinds": impact["kinds"],
            "seconds": seconds,
            "welfare_healthy": impact["welfare_healthy"],
            "welfare_failed": impact["welfare_failed"],
        }
    return {
        "scenario": "failure_library_head",
        "step_mode": step_mode,
        "horizon": horizon,
        "impacts": reports,
        "seconds": total_seconds,
    }


BENCHES: dict[str, Callable[[bool, bool], dict[str, Any]]] = {
    "assembly": bench_assembly,
    "fig6_evaluate": bench_fig6,
    "tabu_sweep": bench_tabu_sweep,
    "incremental": bench_incremental,
    "obs_overhead": bench_obs_overhead,
    "sim_fifo": bench_sim_fifo,
    "sim_throughput": bench_sim_throughput,
    "sim_failures": bench_sim_failures,
}

#: Probes extracted into the committed ``BENCH_sim.json`` artifact.
_SIM_PROBES = ("sim_fifo", "sim_throughput", "sim_failures")


def run_micro(
    quick: bool = False,
    reference: bool = False,
    only: "list[str] | None" = None,
) -> dict[str, Any]:
    """Run the selected microbenchmarks and return the report payload."""
    names = list(BENCHES) if not only else [n for n in BENCHES if n in only]
    results = {}
    for name in names:
        with obs.capture(tracing=False, metrics=True) as cap:
            results[name] = BENCHES[name](quick, reference)
        results[name]["metrics"] = cap.snapshot().to_dict()
        print(f"{name}: {results[name]['seconds']:.3f} s", flush=True)
    return {
        "schema": SCHEMA_VERSION,
        "benchmark": "micro",
        "quick": quick,
        "reference": reference,
        "python": platform.python_version(),
        "results": results,
    }


def compare(report: dict[str, Any], baseline: dict[str, Any]) -> list[str]:
    """Human-readable (non-blocking) deltas against a baseline report."""
    lines = []
    base_results = baseline.get("results", {})
    for name, entry in report.get("results", {}).items():
        base = base_results.get(name)
        if not isinstance(base, dict) or "seconds" not in base:
            lines.append(f"{name}: no baseline entry")
            continue
        now, then = float(entry["seconds"]), float(base["seconds"])
        if then <= 0:
            lines.append(f"{name}: baseline has non-positive time")
            continue
        ratio = now / then
        direction = "slower" if ratio > 1.0 else "faster"
        lines.append(
            f"{name}: {now:.3f}s vs baseline {then:.3f}s "
            f"({1 / ratio if ratio < 1 else ratio:.2f}x {direction})"
        )
    return lines


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(description="Model hot-path microbenchmarks.")
    parser.add_argument(
        "--quick", action="store_true", help="small scenarios for a CI smoke run"
    )
    parser.add_argument(
        "--reference",
        action="store_true",
        help="run with the reference assembler and caching disabled "
        "(the pre-optimization configuration)",
    )
    parser.add_argument(
        "--only",
        action="append",
        choices=sorted(BENCHES),
        help="run only the named probe (repeatable)",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="DIR",
        help="write the report to DIR/BENCH_micro.json",
    )
    parser.add_argument(
        "--compare",
        default=None,
        metavar="FILE",
        help="print a non-blocking delta against a previous report",
    )
    args = parser.parse_args(argv)
    report = run_micro(quick=args.quick, reference=args.reference, only=args.only)
    print(json.dumps(report, indent=2))
    if args.output is not None:
        out_dir = Path(args.output)
        out_dir.mkdir(parents=True, exist_ok=True)
        path = out_dir / "BENCH_micro.json"
        # Bench reports deliberately record the interpreter/platform they
        # ran on — that is provenance, not a cache key.
        path.write_text(json.dumps(report, indent=2) + "\n")  # repro: noqa[RPR303] - provenance metadata, not a key
        print(f"wrote {path}")
        sim_results = {
            name: report["results"][name]
            for name in _SIM_PROBES
            if name in report["results"]
        }
        if sim_results:
            sim_report = {**report, "benchmark": "sim", "results": sim_results}
            sim_path = out_dir / "BENCH_sim.json"
            sim_path.write_text(json.dumps(sim_report, indent=2) + "\n")  # repro: noqa[RPR303] - provenance metadata, not a key
            print(f"wrote {sim_path}")
    if args.compare is not None:
        try:
            baseline = json.loads(Path(args.compare).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"baseline unavailable ({exc}); skipping comparison")
            return 0
        print("-- delta vs baseline (informational, never fails the run) --")
        for line in compare(report, baseline):
            print(line)
    return 0


if __name__ == "__main__":
    sys.exit(main())
