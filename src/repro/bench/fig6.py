"""Fig. 6: approximate-model validation (Ibar, Obar) against ground truth.

Three scenario families, as in the paper:

- 6a/6b: a 2-SC federation (fixed SC: lambda=7, S=5; target SC shares 1
  or 9) swept over the target's load.  Ground truth: the exact detailed
  CTMC (Sect. III-B).
- 6c/6d: a 10-SC federation (nine fixed SCs; target shares 1 or 5).
  Ground truth: the discrete-event simulator (the exact chain is far too
  large, exactly as the paper notes).
- 6e/6f: two 100-VM SCs sharing 10 each, the other SC at utilization 0.8
  or 0.9.  Ground truth: the simulator.

Each row reports the approximate and exact ``Ibar``/``Obar`` of the
target SC and the error of the *difference* ``Obar - Ibar`` (the
quantity the cost function consumes; the paper's headline accuracy claim
is about this difference).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

from repro.bench.scenarios import (
    fig6_2sc_scenario,
    fig6_10sc_scenario,
    fig6_100vm_scenario,
)
from repro.bench.tables import render_table
from repro.core.small_cloud import FederationScenario
from repro.perf.approximate import ApproximateModel
from repro.perf.base import PerformanceModel
from repro.perf.detailed import DetailedModel
from repro.perf.params import PerformanceParams
from repro.perf.simulation import SimulationModel

if TYPE_CHECKING:
    from repro.runtime.executor import Executor


@dataclass(frozen=True)
class Fig6Row:
    """One validation point: the target SC under approx vs exact."""

    panel: str
    target_share: int
    target_rate: float
    approx: PerformanceParams
    exact: PerformanceParams

    @property
    def lent_error(self) -> float:
        """Relative error of ``Ibar``."""
        return _relative_error(self.approx.lent_mean, self.exact.lent_mean)

    @property
    def borrowed_error(self) -> float:
        """Relative error of ``Obar``."""
        return _relative_error(self.approx.borrowed_mean, self.exact.borrowed_mean)

    @property
    def net_error(self) -> float:
        """Error of ``Obar - Ibar``, normalized by the sharing traffic.

        The difference itself can be near zero when lending and borrowing
        balance, which would blow up a plain relative error; normalizing
        by the total exchanged traffic ``Ibar + Obar`` (the natural scale
        of the quantity) keeps the metric meaningful everywhere.
        """
        scale = max(self.exact.lent_mean + self.exact.borrowed_mean, 0.1)
        return abs(self.approx.net_borrowed - self.exact.net_borrowed) / scale


def _relative_error(estimate: float, truth: float) -> float:
    scale = max(abs(truth), 0.05)  # floor avoids exploding on ~zero truths
    return abs(estimate - truth) / scale


@dataclass(frozen=True)
class _RowTask:
    """One validation point as a picklable work unit.

    Rows are independent of each other, so a ``--workers N`` run ships
    them to a process pool; each worker solves its approximate chain and
    its ground-truth model, optionally through a shared on-disk cache.
    """

    panel: str
    target_share: int
    target_rate: float
    scenario: FederationScenario
    approx: PerformanceModel
    exact: PerformanceModel


def _evaluate_row(task: _RowTask) -> Fig6Row:
    return Fig6Row(
        panel=task.panel,
        target_share=task.target_share,
        target_rate=task.target_rate,
        approx=task.approx.evaluate_target(task.scenario),
        exact=task.exact.evaluate(task.scenario)[-1],
    )


def _run_rows(
    tasks: list[_RowTask], executor: "Executor | None"
) -> list[Fig6Row]:
    if executor is not None and executor.workers > 1 and len(tasks) > 1:
        return executor.map(_evaluate_row, tasks)
    return [_evaluate_row(task) for task in tasks]


def _cached(model: PerformanceModel, cache_dir: str | Path | None) -> PerformanceModel:
    if cache_dir is None:
        return model
    from repro.runtime.cache import CachedModel

    return CachedModel(model, cache_dir)


def run_fig6_2sc(
    target_shares: tuple[int, ...] = (1, 9),
    target_rates: tuple[float, ...] = (5.0, 6.0, 7.0, 8.0),
    executor: "Executor | None" = None,
    cache_dir: str | Path | None = None,
) -> list[Fig6Row]:
    """Panels 6a/6b: 2 SCs, exact CTMC as ground truth."""
    approx = _cached(ApproximateModel(), cache_dir)
    detailed = _cached(DetailedModel(), cache_dir)
    tasks = [
        _RowTask(
            panel="2sc",
            target_share=share,
            target_rate=rate,
            scenario=fig6_2sc_scenario(target_share=share, target_rate=rate),
            approx=approx,
            exact=detailed,
        )
        for share in target_shares
        for rate in target_rates
    ]
    return _run_rows(tasks, executor)


def run_fig6_10sc(
    target_shares: tuple[int, ...] = (1, 5),
    target_rates: tuple[float, ...] = (5.0, 6.0, 7.0, 8.0),
    horizon: float = 100_000.0,
    seed: int = 6,
    executor: "Executor | None" = None,
    cache_dir: str | Path | None = None,
) -> list[Fig6Row]:
    """Panels 6c/6d: 10 SCs, simulation as ground truth."""
    simulation = _cached(
        SimulationModel(horizon=horizon, warmup=horizon * 0.05, seed=seed), cache_dir
    )
    approx = _cached(ApproximateModel(), cache_dir)
    tasks = [
        _RowTask(
            panel="10sc",
            target_share=share,
            target_rate=rate,
            scenario=fig6_10sc_scenario(target_share=share, target_rate=rate),
            approx=approx,
            exact=simulation,
        )
        for share in target_shares
        for rate in target_rates
    ]
    return _run_rows(tasks, executor)


def run_fig6_100vm(
    other_utilizations: tuple[float, ...] = (0.8, 0.9),
    target_rates: tuple[float, ...] = (60.0, 70.0, 80.0, 90.0),
    horizon: float = 20_000.0,
    seed: int = 66,
    executor: "Executor | None" = None,
    cache_dir: str | Path | None = None,
) -> list[Fig6Row]:
    """Panels 6e/6f: two 100-VM SCs, simulation as ground truth."""
    simulation = _cached(
        SimulationModel(horizon=horizon, warmup=horizon * 0.05, seed=seed), cache_dir
    )
    approx = _cached(ApproximateModel(), cache_dir)
    tasks = [
        _RowTask(
            panel=f"100vm(rho={other_util})",
            target_share=10,
            target_rate=rate,
            scenario=fig6_100vm_scenario(
                other_rate=other_util * 100.0, target_rate=rate
            ),
            approx=approx,
            exact=simulation,
        )
        for other_util in other_utilizations
        for rate in target_rates
    ]
    return _run_rows(tasks, executor)


def render(rows: list[Fig6Row]) -> str:
    """Render the Fig. 6 validation table."""
    return render_table(
        [
            "panel",
            "S_tgt",
            "lambda",
            "I approx",
            "I exact",
            "O approx",
            "O exact",
            "err(O-I)",
        ],
        [
            (
                r.panel,
                r.target_share,
                r.target_rate,
                r.approx.lent_mean,
                r.exact.lent_mean,
                r.approx.borrowed_mean,
                r.exact.borrowed_mean,
                r.net_error,
            )
            for r in rows
        ],
        title="Fig. 6 — approximate model vs ground truth (target SC)",
    )
