"""Fig. 5: forwarding probability vs system utilization.

For each of the four configurations (N in {10, 100} x Q in {0.2, 0.5})
the harness sweeps the arrival rate so the achieved utilization covers
the paper's range, computing the forwarding probability twice: from the
Sect. III-A analytic model and from the discrete-event simulator.  The
paper's claims checked here: the model tracks simulation closely, higher
Q forwards less, and at equal utilization the smaller cloud forwards
more.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING


from repro.bench.scenarios import Fig5Config, fig5_configurations

if TYPE_CHECKING:
    from repro.runtime.executor import Executor
from repro.bench.tables import render_table
from repro.core.small_cloud import FederationScenario, SmallCloud
from repro.queueing.forwarding import NoSharingModel
from repro.sim.federation import FederationSimulator


@dataclass(frozen=True)
class Fig5Row:
    """One data point of Fig. 5."""

    config: Fig5Config
    arrival_rate: float
    utilization: float
    model_forward_probability: float
    simulated_forward_probability: float

    @property
    def relative_error(self) -> float:
        """Model vs simulation relative error (guarding tiny denominators)."""
        sim = self.simulated_forward_probability
        if sim < 1e-6:
            return abs(self.model_forward_probability - sim)
        return abs(self.model_forward_probability - sim) / sim


def simulate_forward_probability(
    config: Fig5Config, arrival_rate: float, horizon: float, seed: int
) -> float:
    """Estimate the forwarding probability of a lone SC by simulation."""
    cloud = SmallCloud(
        name="solo",
        vms=config.vms,
        arrival_rate=arrival_rate,
        sla_bound=config.sla_bound,
    )
    simulator = FederationSimulator(FederationScenario((cloud,)), seed=seed)
    metrics = simulator.run(horizon=horizon, warmup=horizon * 0.05)
    return metrics[0].forward_probability


def _simulate_point(task: tuple[Fig5Config, float, float, int]) -> float:
    """Process-pool-friendly wrapper around one simulated data point."""
    config, arrival_rate, horizon, seed = task
    return simulate_forward_probability(config, arrival_rate, horizon, seed)


def run_fig5(
    utilizations: tuple[float, ...] = (0.5, 0.6, 0.7, 0.8, 0.9, 0.95),
    horizon: float = 20_000.0,
    seed: int = 5,
    with_simulation: bool = True,
    executor: "Executor | None" = None,
) -> list[Fig5Row]:
    """Produce all Fig. 5 data points.

    Args:
        utilizations: target offered utilizations (``lambda = u * N``).
        horizon: simulated time per point.
        seed: simulation seed.
        with_simulation: skip the simulator (model only) when False.
        executor: optional executor running the independent simulation
            points in parallel (each point re-seeds identically, so the
            table matches a serial run exactly).
    """
    grid = [
        (config, target * config.vms)
        for config in fig5_configurations()
        for target in utilizations
    ]
    if with_simulation:
        tasks = [(config, rate, horizon, seed) for config, rate in grid]
        if executor is not None and executor.workers > 1 and len(tasks) > 1:
            simulated_points = executor.map(_simulate_point, tasks)
        else:
            simulated_points = [_simulate_point(task) for task in tasks]
    else:
        simulated_points = [float("nan")] * len(grid)
    rows = []
    for (config, arrival_rate), simulated in zip(grid, simulated_points):
        model = NoSharingModel(
            servers=config.vms,
            arrival_rate=arrival_rate,
            service_rate=1.0,
            sla_bound=config.sla_bound,
        )
        rows.append(
            Fig5Row(
                config=config,
                arrival_rate=arrival_rate,
                utilization=model.utilization,
                model_forward_probability=model.forward_probability,
                simulated_forward_probability=simulated,
            )
        )
    return rows


def render(rows: list[Fig5Row]) -> str:
    """Render the Fig. 5 table."""
    return render_table(
        ["config", "lambda", "rho", "P_f (model)", "P_f (sim)"],
        [
            (
                r.config.label,
                r.arrival_rate,
                r.utilization,
                r.model_forward_probability,
                r.simulated_forward_probability,
            )
            for r in rows
        ],
        title="Fig. 5 — forwarding probability vs utilization",
    )


def check_shape(rows: list[Fig5Row]) -> list[str]:
    """Verify the paper's qualitative claims; returns violation messages."""
    problems = []
    by_config: dict[str, list[Fig5Row]] = {}
    for row in rows:
        by_config.setdefault(row.config.label, []).append(row)
    for label, points in by_config.items():
        probs = [p.model_forward_probability for p in sorted(points, key=lambda r: r.utilization)]
        if probs != sorted(probs):
            problems.append(f"{label}: forwarding not increasing with load")
    # Higher Q forwards less at equal (N, lambda).
    for vms in (10, 100):
        # Exact grid literals: sla_bound is constructed from these values.
        tight = {r.arrival_rate: r for r in rows if r.config.vms == vms and r.config.sla_bound == 0.2}  # repro: noqa[RPR102]
        loose = {r.arrival_rate: r for r in rows if r.config.vms == vms and r.config.sla_bound == 0.5}  # repro: noqa[RPR102]
        for rate, row in tight.items():
            if rate in loose and loose[rate].model_forward_probability > row.model_forward_probability + 1e-12:
                problems.append(f"N={vms}, lambda={rate}: larger Q forwards more")
    # The small cloud forwards more at equal utilization and Q.
    for sla in (0.2, 0.5):
        small = {round(r.arrival_rate / r.config.vms, 3): r for r in rows if r.config.vms == 10 and r.config.sla_bound == sla}
        big = {round(r.arrival_rate / r.config.vms, 3): r for r in rows if r.config.vms == 100 and r.config.sla_bound == sla}
        for u, row in small.items():
            if u in big and big[u].model_forward_probability > row.model_forward_probability + 1e-12:
                problems.append(f"Q={sla}, rho={u}: big cloud forwards more than small")
    return problems
