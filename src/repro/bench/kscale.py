"""K-scaling benchmark: ``python -m repro.bench.kscale``.

Measures how federation size K moves the two costs the market loop
actually pays, on the :func:`~repro.bench.scenarios.kscale_scenario`
family (chain length grows with K, per-level pools stay bounded):

- ``evaluate`` — one full-federation ``evaluate`` (all K target
  rotations) per evaluation mode: serial monolithic, sharded across an
  executor, and incremental.  The sharded/monolithic ratio is the
  headline parallel speedup; results are asserted bit-identical before
  any timing is reported.
- ``deviation_resolve`` — the per-move cost of a warm re-solve: after a
  base solve, 20 single-SC arrival-rate drifts (cycling over the last
  chain positions) are each re-solved for the target SC.  The
  ``full_rebuild`` configuration (level cache off, the pre-incremental
  path) rebuilds all K levels per move; the memoized and incremental
  configurations rebuild only the suffix at/after the deviating
  position.  ``speedup_vs_full_rebuild`` is the acceptance number.
- ``sharing_sweep`` — 20 single-coordinate *sharing* neighbors scored
  through a :class:`~repro.market.evaluator.UtilityEvaluator`, the
  shape of a Tabu neighborhood.  Sharing moves change the federation
  total, which re-keys every level's pool, so only same-total trial
  pairs reuse prefixes — this section documents the honest (much
  smaller) win on that traffic.

The report is committed as ``benchmarks/results/BENCH_kscale.json`` so
the seconds-vs-K trajectory is recorded run over run (chart in
EXPERIMENTS.md).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from dataclasses import replace
from pathlib import Path
from typing import Any, Callable

from repro import obs
from repro.bench.scenarios import kscale_scenario
from repro.core.small_cloud import FederationScenario
from repro.market.evaluator import UtilityEvaluator
from repro.perf.approximate import ApproximateModel
from repro.perf.params import PerformanceParams
from repro.runtime.executor import make_executor

SCHEMA_VERSION = 1

#: Federation sizes of the committed report (``--quick`` trims to two).
DEFAULT_KS = (10, 20, 50)

#: Trial count of the per-move sections (the issue's "20-trial Tabu").
MOVES = 20


def _timed(fn: Callable[[], Any]) -> tuple[float, Any]:
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def _params_digestable(params: list[PerformanceParams]) -> list[tuple[str, ...]]:
    """Bitwise rendering of an evaluate result (``float.hex`` per field)."""
    return [
        (
            float(p.lent_mean).hex(),
            float(p.borrowed_mean).hex(),
            float(p.forward_rate).hex(),
            float(p.utilization).hex(),
        )
        for p in params
    ]


def bench_evaluate(k: int, workers: int) -> dict[str, Any]:
    """Full-federation evaluate per mode; bit-identity asserted first."""
    scenario = kscale_scenario(k)
    serial = ApproximateModel(mode="monolithic")
    sharded = ApproximateModel(
        executor=make_executor(workers, kind="thread"), mode="sharded"
    )
    incremental = ApproximateModel(mode="incremental")

    serial_seconds, serial_params = _timed(lambda: serial.evaluate(scenario))
    sharded_seconds, sharded_params = _timed(lambda: sharded.evaluate(scenario))
    incr_seconds, incr_params = _timed(lambda: incremental.evaluate(scenario))

    reference = _params_digestable(serial_params)
    if _params_digestable(sharded_params) != reference:
        raise AssertionError(f"sharded evaluate diverged at K={k}")
    if _params_digestable(incr_params) != reference:
        raise AssertionError(f"incremental evaluate diverged at K={k}")
    return {
        "k": k,
        "workers": workers,
        "monolithic_seconds": serial_seconds,
        "sharded_seconds": sharded_seconds,
        "incremental_seconds": incr_seconds,
        "sharded_speedup": (
            serial_seconds / sharded_seconds if sharded_seconds > 0 else float("inf")
        ),
        "bit_identical": True,
    }


def _drifted(scenario: FederationScenario, position: int, step: int) -> FederationScenario:
    """The scenario with SC ``position``'s arrival rate drifted by step."""
    clouds = list(scenario.clouds)
    cloud = clouds[position]
    clouds[position] = replace(cloud, arrival_rate=cloud.arrival_rate + 0.001 * step)
    return FederationScenario(tuple(clouds))


def bench_deviation_resolve(k: int) -> dict[str, Any]:
    """Per-move cost of single-SC drift re-solves, warm vs full rebuild.

    Move ``j`` drifts SC ``k - 1 - (j % 3) - 1``'s arrival rate (a fresh
    value each move, cycling over the last chain positions before the
    target) and re-solves the target SC.  Every configuration answers
    bit-identically; only the rebuilt-level count differs.
    """
    base = kscale_scenario(k)
    configs = {
        "full_rebuild": ApproximateModel(level_cache_size=0, mode="monolithic"),
        "memo": ApproximateModel(mode="monolithic"),
        "incremental": ApproximateModel(mode="incremental"),
    }
    moves = [
        _drifted(base, k - 2 - (j % 3), j + 1) for j in range(MOVES)
    ]
    entry: dict[str, Any] = {"k": k, "moves": MOVES}
    reference: list[tuple[str, ...]] | None = None
    for name, model in configs.items():
        model.evaluate_target(base)  # warm the caches / chain state
        seconds, results = _timed(
            lambda m=model: [m.evaluate_target(s) for s in moves]
        )
        rendered = _params_digestable(results)
        if reference is None:
            reference = rendered
        elif rendered != reference:
            raise AssertionError(f"{name} deviation re-solve diverged at K={k}")
        entry[name] = {
            "seconds": seconds,
            "per_move_seconds": seconds / MOVES,
        }
        if name == "incremental":
            entry[name]["incremental_stats"] = model.incremental_stats()
    full = entry["full_rebuild"]["per_move_seconds"]
    for name in ("memo", "incremental"):
        entry[name]["speedup_vs_full_rebuild"] = (
            full / entry[name]["per_move_seconds"]
            if entry[name]["per_move_seconds"] > 0
            else float("inf")
        )
    entry["bit_identical"] = True
    return entry


def _sharing_neighbors(base: tuple[int, ...], sharers: int, vms: int) -> list[tuple[int, ...]]:
    """MOVES single-coordinate sharing neighbors of ``base`` (Tabu shape)."""
    vectors: list[tuple[int, ...]] = []
    offsets = (1, -1, 2, -2, 3, -3)
    for offset in offsets:
        for position in range(sharers):
            if len(vectors) >= MOVES:
                return vectors
            trial = list(base)
            trial[position] = max(0, min(vms, trial[position] + offset))
            if tuple(trial) != base:
                vectors.append(tuple(trial))
    distinct = len(vectors)  # tiny strategy spaces: recycle the ring
    while vectors and len(vectors) < MOVES:
        vectors.append(vectors[len(vectors) % distinct])
    return vectors


def bench_sharing_sweep(k: int) -> dict[str, Any]:
    """Score a Tabu-shaped sharing neighborhood through the evaluator.

    Sharing moves change ``sum(S)``, so every level's pool is re-keyed
    and prefix reuse is limited to same-total trial pairs — the honest
    number for this traffic, reported without criterion.
    """
    sharers, vms = 4, 3
    scenario = kscale_scenario(k, sharers=sharers, vms=vms)
    base = tuple(c.shared_vms for c in scenario)
    trials = _sharing_neighbors(base, sharers, vms)
    entry: dict[str, Any] = {"k": k, "trials": len(trials)}
    reference: list[str] | None = None
    for name, model in (
        ("full_rebuild", ApproximateModel(level_cache_size=0)),
        ("memo", ApproximateModel()),
        ("incremental", ApproximateModel(mode="incremental")),
    ):
        evaluator = UtilityEvaluator(scenario, model, gamma=0.5)
        seconds, values = _timed(
            lambda e=evaluator: [
                e.utility(trial, j % sharers, deviation=j % sharers)
                for j, trial in enumerate(trials)
            ]
        )
        rendered = [float(v).hex() for v in values]
        if reference is None:
            reference = rendered
        elif rendered != reference:
            raise AssertionError(f"{name} sharing sweep diverged at K={k}")
        entry[name] = {
            "seconds": seconds,
            "per_trial_seconds": seconds / len(trials),
        }
    full = entry["full_rebuild"]["per_trial_seconds"]
    for name in ("memo", "incremental"):
        entry[name]["speedup_vs_full_rebuild"] = (
            full / entry[name]["per_trial_seconds"]
            if entry[name]["per_trial_seconds"] > 0
            else float("inf")
        )
    entry["bit_identical"] = True
    return entry


def run_kscale(
    ks: tuple[int, ...] = DEFAULT_KS, workers: int = 4, quick: bool = False
) -> dict[str, Any]:
    """Run the sweep; per-K sections keyed ``"k=<K>"`` in the report."""
    if quick:
        ks = tuple(k for k in ks if k <= 20) or (10,)
    results: dict[str, Any] = {}
    for k in ks:
        with obs.capture(tracing=False, metrics=True) as cap:
            section = {
                "evaluate": bench_evaluate(k, workers),
                "deviation_resolve": bench_deviation_resolve(k),
            }
            if not quick:
                section["sharing_sweep"] = bench_sharing_sweep(k)
        section["counters"] = {
            name: count
            for name, count in cap.snapshot().counter_view().items()
            if name.startswith(("perf.incremental", "perf.sharded"))
        }
        results[f"k={k}"] = section
        print(
            f"k={k}: evaluate mono {section['evaluate']['monolithic_seconds']:.2f}s"
            f" / sharded {section['evaluate']['sharded_seconds']:.2f}s,"
            " deviation re-solve speedup "
            f"{section['deviation_resolve']['incremental']['speedup_vs_full_rebuild']:.1f}x",
            flush=True,
        )
    return {
        "schema": SCHEMA_VERSION,
        "benchmark": "kscale",
        "quick": quick,
        "workers": workers,
        "ks": list(ks),
        "python": platform.python_version(),
        "results": results,
    }


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(description="K-scaling benchmark.")
    parser.add_argument(
        "--quick", action="store_true", help="trim to K<=20 and skip the sharing sweep"
    )
    parser.add_argument(
        "--workers", type=int, default=4, help="executor width for the sharded mode"
    )
    parser.add_argument(
        "--ks",
        default=None,
        help="comma-separated federation sizes (default: 10,20,50)",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="DIR",
        help="write the report to DIR/BENCH_kscale.json",
    )
    args = parser.parse_args(argv)
    ks = (
        tuple(int(part) for part in args.ks.split(","))
        if args.ks
        else DEFAULT_KS
    )
    report = run_kscale(ks=ks, workers=args.workers, quick=args.quick)
    print(json.dumps(report, indent=2))
    if args.output is not None:
        out_dir = Path(args.output)
        out_dir.mkdir(parents=True, exist_ok=True)
        path = out_dir / "BENCH_kscale.json"
        # Bench reports record the interpreter they ran on — provenance,
        # not a cache key.
        path.write_text(json.dumps(report, indent=2) + "\n")  # repro: noqa[RPR303] - provenance metadata, not a key
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
