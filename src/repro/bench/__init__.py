"""Benchmark harness: regenerates every figure of the paper's evaluation.

One module per figure (5–8), each exposing a ``run_*`` function returning
structured rows plus a ``render`` helper that prints the same series the
paper plots.  The ``benchmarks/`` directory drives these through
pytest-benchmark; ``python -m repro.bench.runner <figure>`` runs them
standalone.

Scenario constants (the paper's parameter choices) live in
:mod:`repro.bench.scenarios` so tests, benches, and examples agree on
them.
"""

from repro.bench.scenarios import (
    fig5_configurations,
    fig6_2sc_scenario,
    fig6_10sc_scenario,
    fig6_100vm_scenario,
    fig7_scenario,
    fig8_game_scenario,
    fig8_perf_scenario,
)

__all__ = [
    "fig5_configurations",
    "fig6_2sc_scenario",
    "fig6_10sc_scenario",
    "fig6_100vm_scenario",
    "fig7_scenario",
    "fig8_game_scenario",
    "fig8_perf_scenario",
]
